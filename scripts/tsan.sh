#!/usr/bin/env bash
# ThreadSanitizer pass over the concurrency-heavy test suites.
#
# This is the dynamic complement to `xtask deepcheck`'s static lock
# analysis: deepcheck proves acquisition *orders* are cycle-free; TSan
# observes actual interleavings for data races the static pass cannot
# see. It needs nightly (-Zbuild-std with -Zsanitizer=thread) and is
# wired into CI as an advisory continue-on-error job — TSan has known
# false positives on std runtime internals, so a red run is a signal to
# read, not an automatic merge blocker.
#
# Usage: scripts/tsan.sh [extra cargo-test args]
set -euo pipefail

HOST_TARGET="$(rustc +nightly -vV | sed -n 's/^host: //p')"
case "$HOST_TARGET" in
  x86_64-*-linux-gnu | aarch64-*-linux-gnu | x86_64-apple-darwin | aarch64-apple-darwin) ;;
  *)
    echo "tsan.sh: ThreadSanitizer is unsupported on $HOST_TARGET — skipping" >&2
    exit 0
    ;;
esac

# The concurrent surfaces: the sharded single-flight cache + server pool
# (evcap-serve), the parallel map and lockstep batch engine (evcap-sim),
# and the mutex-serialized artifact store (evcap-store).
export RUSTFLAGS="-Zsanitizer=thread ${RUSTFLAGS:-}"
export RUSTDOCFLAGS="-Zsanitizer=thread"
# Suppress known-noisy std internals rather than the whole run.
export TSAN_OPTIONS="halt_on_error=0:second_deadlock_stack=1"

exec cargo +nightly test \
  -Zbuild-std \
  --target "$HOST_TARGET" \
  -p evcap-serve -p evcap-sim -p evcap-store \
  "$@"
