#!/usr/bin/env bash
# Certify a corpus of solved artifacts and emit AUDIT_report.jsonl: every
# distribution family crossed with every policy at the default cost model,
# plus a cost-regime sweep on one family. Each line of the report is the
# flat JSON audit record for one (scenario, policy) pair; the script fails
# if any artifact is rejected.
#
# Usage: scripts/audit_corpus.sh [path-to-evcap-binary]
#
# Environment overrides (defaults match crates/audit/tests/corpus.rs):
#   AUDIT_DISTS     space-separated dist specs
#   AUDIT_POLICIES  space-separated policies   (default: all five)
#   AUDIT_HORIZON   slot horizon               (default 2048)
#   AUDIT_OUT       output JSONL path          (default AUDIT_report.jsonl)
set -euo pipefail

EVCAP="${1:-target/release/evcap}"
if [ ! -x "$EVCAP" ]; then
  echo "building release binary ($EVCAP not found)"
  cargo build --release -p evcap-cli
fi

DISTS="${AUDIT_DISTS:-exp:0.1 weibull:10,0.8 weibull:10,3 pareto:5,2.5 erlang:3,0.3 uniform:2,18 det:8 hyperexp:0.4,0.2,0.04}"
POLICIES="${AUDIT_POLICIES:-greedy clustering aggressive periodic myopic}"
HORIZON="${AUDIT_HORIZON:-2048}"
OUT="${AUDIT_OUT:-AUDIT_report.jsonl}"

: > "$OUT"
total=0
rejected=0

certify() { # certify <dist> <e> <policy> [extra flags...]
  local dist="$1" e="$2" policy="$3"
  shift 3
  total=$((total + 1))
  local line
  if line=$("$EVCAP" audit --dist "$dist" --e "$e" --policy "$policy" \
      --horizon "$HORIZON" --format json "$@" 2>/dev/null); then
    :
  else
    rejected=$((rejected + 1))
    echo "REJECTED: $dist e=$e $policy $*"
  fi
  [ -n "$line" ] && printf '%s\n' "$line" >> "$OUT"
}

# Every family x every policy at the default cost model.
for dist in $DISTS; do
  for policy in $POLICIES; do
    certify "$dist" 0.2 "$policy"
  done
done

# Cost regimes on one family: cheap-sensing/expensive-capture, the
# inverse, and a tight energy budget.
for regime in "0.2 1 6" "0.35 2 1" "0.05 0.5 12"; do
  set -- $regime
  for policy in $POLICIES; do
    certify "weibull:12,1.5" "$1" "$policy" --delta1 "$2" --delta2 "$3"
  done
done

echo "audited $total artifacts, $rejected rejected -> $OUT"
# Belt and braces: the report itself must not record a failure, so a stale
# or truncated file can't masquerade as a pass.
if grep -q '"clean": false' "$OUT"; then
  echo "FAIL: $OUT records an unclean artifact"
  exit 1
fi
[ "$rejected" -eq 0 ] || exit 1
echo "OK: $OUT"
