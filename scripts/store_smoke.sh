#!/usr/bin/env bash
# Smoke test for the persistent artifact store: batch-solve a scenario
# matrix with `evcap solve-fleet` (proving warm-started clustering solves),
# verify and inspect the store, then boot `evcap serve --store` against it
# twice — the restarted server must answer a stored scenario from the disk
# tier (store_hits on /metrics) with the same bytes as a cold solve, and a
# corrupted record must be rejected and healed by a fresh solve.
#
# Usage: scripts/store_smoke.sh [path-to-evcap-binary] [store-dir]
set -euo pipefail

EVCAP="${1:-target/release/evcap}"
STORE="${2:-$(mktemp -d)/store}"
OUT="$(mktemp -d)"
SERVER_PID=""
trap 'kill "$SERVER_PID" 2>/dev/null || true; rm -rf "$OUT"' EXIT

fail() { echo "FAIL: $1"; exit 1; }

# Boots the server against $STORE, exporting SERVER_PID and ADDR.
start_server() {
  "$EVCAP" serve --addr 127.0.0.1:0 --threads 2 --store "$STORE" \
    >"$OUT/serve.out" 2>"$OUT/serve.err" &
  SERVER_PID=$!
  ADDR=""
  for _ in $(seq 1 100); do
    ADDR="$(sed -n 's#^listening on http://##p' "$OUT/serve.out")"
    [ -n "$ADDR" ] && break
    sleep 0.1
  done
  [ -n "$ADDR" ] || fail "server never announced its address"
}

stop_server() {
  kill -TERM "$SERVER_PID"
  wait "$SERVER_PID" || fail "server exited non-zero on SIGTERM"
  : >"$OUT/serve.out"
}

# 1. Fleet-solve a small matrix into the store. The second run must be a
#    no-op (every scenario already stored).
"$EVCAP" solve-fleet --store "$STORE" --dists 'weibull:40,3;det:7' \
  --e-list 0.1,0.2 --policies greedy,clustering --horizon 4096 \
  > "$OUT/fleet.out"
grep -q '8 solved' "$OUT/fleet.out" || fail "fleet did not solve the full matrix"
grep -q '(warm)' "$OUT/fleet.out" || fail "no clustering solve warm-started"
# Capture output before grepping: `evcap | grep -q` would close the pipe
# at the first match, and under pipefail the writer's EPIPE fails the check.
"$EVCAP" solve-fleet --store "$STORE" --dists 'weibull:40,3;det:7' \
  --e-list 0.1,0.2 --policies greedy,clustering --horizon 4096 \
  > "$OUT/rerun.out"
grep -q 'nothing to solve' "$OUT/rerun.out" || fail "re-run was not a no-op"

# 2. The maintenance commands agree with what was written.
"$EVCAP" store stat --store "$STORE" > "$OUT/stat.out"
grep -q 'entries      : 8' "$OUT/stat.out" \
  || fail "store stat does not show 8 entries"
"$EVCAP" store ls --store "$STORE" --quiet > "$OUT/ls.out"
[ "$(wc -l < "$OUT/ls.out")" -eq 8 ] || fail "store ls does not list 8 keys"
"$EVCAP" store verify --store "$STORE" > "$OUT/verify.out"
grep -q 'store is clean' "$OUT/verify.out" \
  || fail "freshly written store is not clean"

# 3. Warm-restart serving: a brand-new server answers a stored scenario
#    from the disk tier. The body must match a cold solve byte for byte.
#    det:7 clustering e=0.2 is the matrix's last-appended record, which is
#    exactly the one step 5's last-byte flip corrupts.
BODY='{"dist":"det:7","e":0.2,"policy":"clustering","horizon":4096}'
start_server
curl -sf -X POST -d "$BODY" "http://$ADDR/v1/solve" > "$OUT/warm.json"
curl -sf "http://$ADDR/metrics" > "$OUT/metrics.json"
grep -q '"store_enabled":true' "$OUT/metrics.json" || fail "store tier not enabled"
grep -q '"store_hits":1' "$OUT/metrics.json" || fail "stored scenario was not a disk hit"
curl -sf "http://$ADDR/metrics?format=prometheus" > "$OUT/prom.out"
grep -q '^evcap_store_hits_total 1' "$OUT/prom.out" \
  || fail "prometheus missing store hits"
stop_server

# 4. Cold reference: the same scenario solved without any store.
"$EVCAP" serve --addr 127.0.0.1:0 --threads 2 \
  >"$OUT/serve.out" 2>"$OUT/serve.err" &
SERVER_PID=$!
ADDR=""
for _ in $(seq 1 100); do
  ADDR="$(sed -n 's#^listening on http://##p' "$OUT/serve.out")"
  [ -n "$ADDR" ] && break
  sleep 0.1
done
[ -n "$ADDR" ] || fail "reference server never announced its address"
curl -sf -X POST -d "$BODY" "http://$ADDR/v1/solve" > "$OUT/cold.json"
stop_server
cmp -s "$OUT/warm.json" "$OUT/cold.json" \
  || fail "disk-tier body differs from a cold solve"

# 5. Corruption: flip the last byte of the record log. The restarted
#    server must reject the record, re-solve identically, and write a
#    healed copy back.
FILE="$STORE/artifacts.evst"
SIZE=$(wc -c < "$FILE")
printf '\x00' | dd of="$FILE" bs=1 seek=$((SIZE - 1)) conv=notrunc 2>/dev/null
start_server
curl -sf -X POST -d "$BODY" "http://$ADDR/v1/solve" > "$OUT/healed.json"
curl -sf "http://$ADDR/metrics" > "$OUT/metrics.json"
grep -q '"store_rejects":1' "$OUT/metrics.json" || fail "corrupt record was not rejected"
grep -q '"store_appends":1' "$OUT/metrics.json" || fail "fallback solve did not heal the store"
stop_server
cmp -s "$OUT/healed.json" "$OUT/cold.json" \
  || fail "corrupt-fallback body differs from a cold solve"

# 6. Compaction drops the superseded corrupt record; the store is clean.
"$EVCAP" store compact --store "$STORE" > "$OUT/compact.out"
grep -q 'kept         : 8' "$OUT/compact.out" || fail "compact lost records"
"$EVCAP" store verify --store "$STORE" > "$OUT/verify.out"
grep -q 'store is clean' "$OUT/verify.out" \
  || fail "store not clean after heal + compact"

echo "store smoke: OK (store at $STORE)"
