#!/usr/bin/env bash
# Measure simulation-engine throughput and emit BENCH_sim.json: a single
# run, the same replications as truly sequential scalar runs, and the
# lockstep SoA batch engine at several thread counts, with two gates: the
# determinism cross-check (per-seed reports bit-identical to the scalar
# runs, and identical across thread counts) and the regression gate (the
# batch at one worker must not be slower than the scalar loop it replaced).
#
# Usage: scripts/bench_sim.sh [path-to-evcap-binary]
#
# Environment overrides (CI runs a short smoke; defaults reproduce the
# acceptance configuration of 16 × 10^6-slot Weibull replications):
#   BENCH_DIST     distribution spec        (default weibull:40,3)
#   BENCH_SLOTS    slots per replication    (default 1000000)
#   BENCH_REPS     replications             (default 16)
#   BENCH_THREADS  comma-separated threads  (default 1,4,8)
#   BENCH_OUT      output JSON path         (default BENCH_sim.json)
set -euo pipefail

EVCAP="${1:-target/release/evcap}"
if [ ! -x "$EVCAP" ]; then
  echo "building release binary ($EVCAP not found)"
  cargo build --release -p evcap-cli
fi

"$EVCAP" bench-sim \
  --dist "${BENCH_DIST:-weibull:40,3}" \
  --slots "${BENCH_SLOTS:-1000000}" \
  --replications "${BENCH_REPS:-16}" \
  --threads-list "${BENCH_THREADS:-1,4,8}" \
  --out "${BENCH_OUT:-BENCH_sim.json}"

# The run itself fails on nondeterminism; double-check the recorded flag so
# a stale file can't masquerade as a pass.
grep -q '"deterministic_across_threads": true' "${BENCH_OUT:-BENCH_sim.json}" \
  || { echo "FAIL: ${BENCH_OUT:-BENCH_sim.json} does not record determinism"; exit 1; }

# Perf regression gate: batching must actually be faster than (or at worst
# equal to) running the same replications sequentially on one worker.
grep -q '"batched_t1_beats_sequential": true' "${BENCH_OUT:-BENCH_sim.json}" \
  || { echo "FAIL: batched (1 thread) is slower than the sequential scalar loop"; exit 1; }
echo "OK: ${BENCH_OUT:-BENCH_sim.json}"
