#!/usr/bin/env bash
# Smoke test for `evcap serve`: boot on an ephemeral port, hit every
# endpoint, prove the scenario cache works (second identical solve is a
# hit), drain on SIGTERM, and run a small loadgen pass.
#
# Usage: scripts/serve_smoke.sh [path-to-evcap-binary]
set -euo pipefail

EVCAP="${1:-target/release/evcap}"
OUT="$(mktemp -d)"
trap 'kill "$SERVER_PID" 2>/dev/null || true; rm -rf "$OUT"' EXIT

"$EVCAP" serve --addr 127.0.0.1:0 --threads 2 --cache-cap 64 \
  >"$OUT/serve.out" 2>"$OUT/serve.err" &
SERVER_PID=$!

# Wait (bounded) for the banner announcing the bound port.
ADDR=""
for _ in $(seq 1 100); do
  ADDR="$(sed -n 's#^listening on http://##p' "$OUT/serve.out")"
  [ -n "$ADDR" ] && break
  sleep 0.1
done
[ -n "$ADDR" ] || { echo "FAIL: server never announced its address"; exit 1; }
echo "server at $ADDR"

fail() { echo "FAIL: $1"; exit 1; }

# 1. Health.
curl -sf "http://$ADDR/healthz" | grep -q '"status":"ok"' \
  || fail "/healthz did not answer ok"

# 2. First solve: a cache miss.
BODY='{"dist":"weibull:40,3","e":0.2,"horizon":4096}'
HDRS="$(curl -sf -D - -o "$OUT/solve1.json" -X POST \
  -d "$BODY" "http://$ADDR/v1/solve")"
echo "$HDRS" | grep -qi 'x-evcap-cache: miss' || fail "first solve was not a miss"
grep -q '"type":"solve"' "$OUT/solve1.json" || fail "solve body malformed"

# 3. Second identical solve (alias spelling): a cache hit, same body.
BODY2='{"dist":"weibull:40.0,3.0","e":0.2,"horizon":4096}'
HDRS="$(curl -sf -D - -o "$OUT/solve2.json" -X POST \
  -d "$BODY2" "http://$ADDR/v1/solve")"
echo "$HDRS" | grep -qi 'x-evcap-cache: hit' || fail "second solve was not a hit"
cmp -s "$OUT/solve1.json" "$OUT/solve2.json" || fail "hit body differs from miss body"

# 4. Metrics agree: one miss, one hit.
curl -sf "http://$ADDR/metrics" > "$OUT/metrics.json"
grep -q '"solve_cache_hits":1' "$OUT/metrics.json" || fail "metrics missing the hit"
grep -q '"solve_cache_misses":1' "$OUT/metrics.json" || fail "metrics missing the miss"

# 4b. Prometheus exposition: content-negotiated text format with the
# request counter, per-shard cache series, and a cumulative histogram.
curl -sf "http://$ADDR/metrics?format=prometheus" > "$OUT/metrics.prom"
grep -q '^# TYPE evcap_requests_total counter' "$OUT/metrics.prom" \
  || fail "prometheus scrape missing the requests counter TYPE line"
grep -q '^evcap_cache_hits_total{cache="solve",shard="' "$OUT/metrics.prom" \
  || fail "prometheus scrape missing per-shard solve cache series"
grep -q '^evcap_request_latency_seconds_bucket{le="+Inf"}' "$OUT/metrics.prom" \
  || fail "prometheus scrape missing the +Inf histogram bucket"
# The Accept header negotiates the same format; JSON stays the default.
curl -sf -H 'Accept: text/plain' "http://$ADDR/metrics" \
  | grep -q '^evcap_uptime_seconds' || fail "Accept: text/plain did not negotiate"
curl -sf "http://$ADDR/metrics" | grep -q '"type":"metrics"' \
  || fail "JSON is no longer the /metrics default"

# 4c. Request tracing: a caller-supplied X-Request-Id is echoed back, and
# the flight recorder shows the request on /debug/recent.
HDRS="$(curl -sf -D - -o /dev/null -H 'X-Request-Id: smoke-42' \
  -X POST -d "$BODY" "http://$ADDR/v1/solve")"
echo "$HDRS" | grep -qi 'x-request-id: smoke-42' || fail "request id not echoed"
curl -sf "http://$ADDR/debug/recent" > "$OUT/recent.json"
grep -q '"type":"recent"' "$OUT/recent.json" || fail "/debug/recent malformed"
grep -q '"trace_id":"smoke-42"' "$OUT/recent.json" \
  || fail "/debug/recent does not show the traced request"

# 5. NaN spec arguments are a structured 400.
CODE="$(curl -s -o "$OUT/err.json" -w '%{http_code}' -X POST \
  -d '{"dist":"weibull:nan,3","e":0.2}' "http://$ADDR/v1/solve")"
[ "$CODE" = "400" ] || fail "nan spec returned $CODE, wanted 400"
grep -q '"kind":"invalid_spec"' "$OUT/err.json" || fail "nan error not structured"

# 6. Small loadgen pass (keep-alive, all cache hits after the first).
"$EVCAP" loadgen --addr "$ADDR" --concurrency 2 --requests 2000 \
  > "$OUT/loadgen.out" 2>&1
grep -q ' 0 errors' "$OUT/loadgen.out" || fail "loadgen saw errors"

# 7. Graceful shutdown: SIGTERM → exit code 0.
kill -TERM "$SERVER_PID"
if wait "$SERVER_PID"; then
  echo "server drained cleanly"
else
  fail "server exited non-zero on SIGTERM"
fi

echo "serve smoke: OK"
