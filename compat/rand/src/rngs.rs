//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// A small, fast, seedable generator — xoshiro256++.
///
/// Upstream `rand` documents `SmallRng` as "a small-state, fast,
/// non-cryptographic PRNG" with an unspecified algorithm, so xoshiro256++
/// (upstream's actual choice on 64-bit targets) is a conforming
/// implementation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

impl RngCore for SmallRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for SmallRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        // xoshiro's state must not be all zero; SplitMix-expand in that case.
        if s == [0; 4] {
            let mut sm = 0xDEAD_BEEF_CAFE_F00Du64;
            for slot in &mut s {
                *slot = crate::splitmix64(&mut sm);
            }
        }
        Self { s }
    }
}

/// A "strong" generator alias; upstream's `StdRng` is a different algorithm,
/// but nothing in this workspace depends on its stream.
pub type StdRng = SmallRng;
