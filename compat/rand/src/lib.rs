//! Offline drop-in shim for the `rand` crate (0.9 API subset).
//!
//! The build environment has no network access and no vendored registry, so
//! the real `rand` cannot be fetched. This crate shadows it through a
//! workspace path dependency and implements exactly the surface the
//! workspace uses:
//!
//! * [`rngs::SmallRng`] — a seedable small PRNG (xoshiro256++ here; the
//!   upstream algorithm choice is explicitly unspecified, so any good
//!   generator is conforming);
//! * [`SeedableRng::seed_from_u64`] / [`SeedableRng::from_seed`];
//! * [`Rng::random`] for `f64`/`u64`/`u32`/`bool` and
//!   [`Rng::random_range`] over integer and float ranges;
//! * [`RngCore`] as the object-safe base trait (`&mut dyn RngCore` works,
//!   and `Rng` is blanket-implemented for it, as upstream does).
//!
//! Determinism matters more than distribution-identity here: all simulator
//! tests assert statistical bounds or same-seed reproducibility, never
//! upstream-exact streams.

#![forbid(unsafe_code)]

pub mod rngs;

/// The object-safe core of a random number generator.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&bytes[..rest.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A type that can be sampled uniformly from an RNG's raw bits
/// (the shim's analogue of `StandardUniform: Distribution<T>`).
pub trait StandardSample: Sized {
    /// Draws one value.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// A range argument accepted by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, span)` via Lemire's widening multiply (the
/// residual bias of ≤ 2⁻⁶⁴ is irrelevant for simulation workloads).
#[inline]
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u128::from(u64::MAX) {
                    return rng.next_u64() as $t; // full-width range
                }
                (lo as i128 + bounded_u64(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::standard_sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        // Scale a 53-bit integer over an inclusive grid.
        let steps = (1u64 << 53) as f64;
        let u = (rng.next_u64() >> 11) as f64 / (steps - 1.0);
        lo + u * (hi - lo)
    }
}

/// Convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from the type's standard distribution
    /// (`[0, 1)` for floats, full width for integers).
    fn random<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Samples uniformly from a range.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64` via SplitMix64 expansion (never
    /// yields the degenerate all-zero state).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = splitmix64(&mut sm).to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// One step of the SplitMix64 sequence (used for seed expansion).
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "{mean}");
    }

    #[test]
    fn ranges_hit_all_values() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[rng.random_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1_000 {
            let v: i64 = rng.random_range(-3i64..=3);
            assert!((-3..=3).contains(&v));
        }
        for _ in 0..1_000 {
            let v: f64 = rng.random_range(2.0..4.0);
            assert!((2.0..4.0).contains(&v));
        }
    }

    #[test]
    fn dyn_rng_core_works() {
        let mut rng = SmallRng::seed_from_u64(3);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let x: f64 = dyn_rng.random();
        assert!((0.0..1.0).contains(&x));
        let _ = dyn_rng.random_range(1i64..=6);
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
