//! Offline drop-in shim for `criterion`.
//!
//! The build environment cannot fetch crates, so this crate shadows
//! `criterion` via a workspace path dependency. It implements the API
//! surface the workspace's benches use — [`Criterion::bench_function`],
//! [`Bencher::iter`]/[`Bencher::iter_batched`], benchmark groups, and the
//! [`criterion_group!`]/[`criterion_main!`] macros — with a simple but
//! honest measurement loop:
//!
//! * a warm-up phase (default 300 ms) to stabilise caches and branch
//!   predictors;
//! * a measurement phase (default 1 s) of repeated timed batches;
//! * median / mean / min batch-normalised per-iteration times printed in a
//!   one-line report.
//!
//! Environment knobs: `CRITERION_WARMUP_MS`, `CRITERION_MEASURE_MS` (both
//! integer milliseconds) shorten or lengthen runs, e.g. for CI smoke tests.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batched inputs are sized (shim: only influences nothing; all batch
/// sizes run one setup per measured routine call, which matches
/// `PerIteration` semantics and is conservative for the others).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One fresh input per iteration.
    PerIteration,
}

fn env_ms(var: &str, default_ms: u64) -> Duration {
    std::env::var(var)
        .ok()
        .and_then(|raw| raw.parse().ok())
        .map(Duration::from_millis)
        .unwrap_or(Duration::from_millis(default_ms))
}

/// One measured sample: `iters` iterations took `elapsed`.
#[derive(Debug, Clone, Copy)]
struct Sample {
    iters: u64,
    elapsed: Duration,
}

impl Sample {
    fn per_iter_ns(&self) -> f64 {
        self.elapsed.as_nanos() as f64 / self.iters.max(1) as f64
    }
}

/// The benchmark timer handed to the routine closure.
pub struct Bencher {
    samples: Vec<Sample>,
    warmup: Duration,
    measure: Duration,
}

impl Bencher {
    fn new(warmup: Duration, measure: Duration) -> Self {
        Self {
            samples: Vec::new(),
            warmup,
            measure,
        }
    }

    /// Benchmarks `routine` by calling it repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: also estimates a batch size targeting ~10 ms per sample.
        let warm_start = Instant::now();
        let mut calls: u64 = 0;
        while warm_start.elapsed() < self.warmup || calls == 0 {
            black_box(routine());
            calls += 1;
        }
        let per_call = warm_start.elapsed().as_nanos() as f64 / calls as f64;
        let batch = ((10_000_000.0 / per_call.max(1.0)) as u64).max(1);

        let run_start = Instant::now();
        while run_start.elapsed() < self.measure {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples.push(Sample {
                iters: batch,
                elapsed: t0.elapsed(),
            });
        }
    }

    /// Benchmarks `routine` on fresh inputs from `setup`; only the routine
    /// is timed.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_start = Instant::now();
        let mut calls: u64 = 0;
        while warm_start.elapsed() < self.warmup || calls == 0 {
            let input = setup();
            black_box(routine(input));
            calls += 1;
        }

        let run_start = Instant::now();
        while run_start.elapsed() < self.measure {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples.push(Sample {
                iters: 1,
                elapsed: t0.elapsed(),
            });
        }
    }

    fn report(&self, id: &str) {
        if self.samples.is_empty() {
            println!("{id:<44} (no samples)");
            return;
        }
        let mut per_iter: Vec<f64> = self.samples.iter().map(Sample::per_iter_ns).collect();
        per_iter.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let median = per_iter[per_iter.len() / 2];
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        let min = per_iter[0];
        let total_iters: u64 = self.samples.iter().map(|s| s.iters).sum();
        println!(
            "{id:<44} median {} mean {} min {}  ({} iters, {} samples)",
            fmt_ns(median),
            fmt_ns(mean),
            fmt_ns(min),
            total_iters,
            per_iter.len(),
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:8.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:8.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:8.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:8.3} s ", ns / 1_000_000_000.0)
    }
}

/// The benchmark harness entry point.
pub struct Criterion {
    warmup: Duration,
    measure: Duration,
    group_prefix: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            warmup: env_ms("CRITERION_WARMUP_MS", 300),
            measure: env_ms("CRITERION_MEASURE_MS", 1_000),
            group_prefix: None,
        }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let id = match &self.group_prefix {
            Some(prefix) => format!("{prefix}/{}", id.into()),
            None => id.into(),
        };
        let mut bencher = Bencher::new(self.warmup, self.measure);
        f(&mut bencher);
        bencher.report(&id);
        self
    }

    /// Opens a named benchmark group (ids are prefixed `group/id`).
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A group of related benchmarks sharing an id prefix.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one named benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let previous = self.criterion.group_prefix.replace(self.name.clone());
        self.criterion.bench_function(id, f);
        self.criterion.group_prefix = previous;
        self
    }

    /// Closes the group (no-op in the shim; kept for API compatibility).
    pub fn finish(self) {}
}

/// Declares a group-running function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Declares a `main` that runs benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Criterion {
        Criterion {
            warmup: Duration::from_millis(1),
            measure: Duration::from_millis(5),
            group_prefix: None,
        }
    }

    #[test]
    fn bench_function_collects_samples() {
        let mut c = tiny();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut c = tiny();
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
    }

    #[test]
    fn groups_prefix_ids() {
        let mut c = tiny();
        let mut g = c.benchmark_group("grp");
        g.bench_function("inner", |b| b.iter(|| 2 * 2));
        g.finish();
    }

    #[test]
    fn fmt_ns_scales_units() {
        assert!(fmt_ns(12.0).contains("ns"));
        assert!(fmt_ns(12_000.0).contains("µs"));
        assert!(fmt_ns(12_000_000.0).contains("ms"));
        assert!(fmt_ns(2.5e9).contains("s"));
    }
}
