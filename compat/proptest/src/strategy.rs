//! Value-generation strategies.

use rand::{Rng, RngCore};

use crate::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike upstream, a strategy here is just a deterministic sampler — there
/// is no value tree and no shrinking.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`](crate::prop_oneof)).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Chooses uniformly among boxed strategies with a common value type.
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics on an empty arm list.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.random_range(0..self.arms.len());
        self.arms[i].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// Raw-bit sampling helper shared with [`crate::collection`].
pub(crate) fn next_u64(rng: &mut TestRng) -> u64 {
    rng.next_u64()
}
