//! Collection strategies.

use crate::strategy::Strategy;
use crate::TestRng;

/// A length specification for collection strategies.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    /// Exclusive upper bound.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n + 1 }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        Self {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

/// Generates `Vec`s whose length is drawn from `size` and whose elements are
/// drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// The result of [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let span = (self.size.hi - self.size.lo) as u64;
        let len = self.size.lo
            + if span == 0 {
                0
            } else {
                (crate::strategy::next_u64(rng) % span) as usize
            };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
