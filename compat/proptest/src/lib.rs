//! Offline drop-in shim for `proptest`.
//!
//! The build environment cannot fetch crates, so this crate shadows
//! `proptest` via a workspace path dependency. It keeps the same *testing
//! semantics* — each property runs against many pseudo-random inputs — but
//! intentionally simplifies the machinery:
//!
//! * inputs are drawn from a deterministic per-test RNG (seeded from the
//!   test's name), so failures reproduce on re-run;
//! * there is **no shrinking**: a failing case panics with the case index
//!   so it can be replayed;
//! * `*.proptest-regressions` files are ignored.

#![forbid(unsafe_code)]
// The doc example on `proptest!` necessarily shows `#[test]` inside the
// macro invocation — that is the macro's real calling convention, and the
// attribute is consumed by the macro, not by the doctest harness.
#![allow(clippy::test_attr_in_doctest)]
//!
//! Supported surface (what the workspace's property tests use): the
//! [`proptest!`] macro with optional `#![proptest_config(...)]`, range and
//! tuple strategies, [`collection::vec`], `prop_map`, [`prop_oneof!`],
//! [`prop_assert!`]/[`prop_assert_eq!`], [`Just`], and
//! [`ProptestConfig::with_cases`].

pub mod collection;
pub mod strategy;

pub use strategy::{BoxedStrategy, Just, Strategy, Union};

/// Run-time configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Everything a property test module typically imports.
pub mod prelude {
    /// Upstream re-exports `prop` as the root-ish namespace alias.
    pub use crate as prop;
    pub use crate::collection;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// FNV-1a hash of a test name — the per-test base seed.
#[doc(hidden)]
pub fn __seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The shim's test RNG (deterministic per test name and case index).
#[doc(hidden)]
pub type TestRng = rand::rngs::SmallRng;

/// Declares property tests.
///
/// The `#[test]` attribute below is consumed by the macro itself (as in
/// real proptest), so the usual "test attr in doctest" concern does not
/// apply; the example is still compile-checked.
///
/// ```
/// use proptest::prelude::*;
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                $crate::__run_cases(stringify!($name), config.cases, |__rng| {
                    $(let $pat = $crate::Strategy::generate(&($strat), __rng);)+
                    $body
                });
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($pat in $strat),+) $body
            )*
        }
    };
}

/// Drives one property over `cases` deterministic random inputs.
#[doc(hidden)]
pub fn __run_cases(name: &str, cases: u32, mut case: impl FnMut(&mut TestRng)) {
    use rand::SeedableRng;
    let base = __seed_for(name);
    for i in 0..u64::from(cases) {
        let mut rng = TestRng::seed_from_u64(base ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| case(&mut rng)));
        if let Err(payload) = caught {
            eprintln!("proptest shim: property `{name}` failed on case {i}/{cases} (deterministic; re-run reproduces)");
            std::panic::resume_unwind(payload);
        }
    }
}

/// Asserts a condition inside a property (panics with context on failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Chooses uniformly among several strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 1.5f64..9.5, n in 3u64..17, k in 0usize..4) {
            prop_assert!((1.5..9.5).contains(&x));
            prop_assert!((3..17).contains(&n));
            prop_assert!(k < 4);
        }

        #[test]
        fn vec_respects_size_and_element_ranges(
            v in collection::vec(0.25f64..0.75, 2..6),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            for &x in &v {
                prop_assert!((0.25..0.75).contains(&x));
            }
        }

        #[test]
        fn tuples_and_maps_compose(
            (a, b) in (0u32..10, 0u32..10),
            doubled in (1i64..50).prop_map(|x| x * 2),
        ) {
            prop_assert!(a < 10 && b < 10);
            prop_assert_eq!(doubled % 2, 0);
            prop_assert!((2..100).contains(&doubled));
        }

        #[test]
        fn oneof_picks_every_arm_eventually(
            tag in prop_oneof![
                (0u8..1).prop_map(|_| "low"),
                (0u8..1).prop_map(|_| "high"),
            ],
        ) {
            prop_assert!(tag == "low" || tag == "high");
        }
    }

    #[test]
    fn seeds_are_stable_per_name() {
        assert_eq!(crate::__seed_for("abc"), crate::__seed_for("abc"));
        assert_ne!(crate::__seed_for("abc"), crate::__seed_for("abd"));
    }

    #[test]
    fn union_covers_all_arms() {
        use rand::SeedableRng;
        let union = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut rng = crate::TestRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[union.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }
}
