//! Slots/sec throughput recording for the figure runners.
//!
//! The simulation engine already instruments itself through `evcap-obs`
//! (the `sim.run` span and the `sim.slots` counter), so the bench harness
//! does not time anything by hand: it enables the global timing registry
//! around a runner, drains the registry afterwards, and derives throughput
//! from what the engine reported. Because spans aggregate across threads,
//! `sim.run` total time is *CPU-seconds of simulation*, not wall time — the
//! derived rate is per-core throughput and is stable under `parallel_map`
//! fan-out.
//!
//! Reports go to stderr (stdout carries the figure tables, which tests
//! scrape) and, when `EVCAP_PERF_LOG` names a file, are appended to it as
//! JSONL `throughput` records compatible with `evcap trace`.

use std::time::Instant;

use evcap_obs::{timing, JsonObject, JsonlSink};

/// Throughput of one runner invocation, as reported by the engine's own
/// instrumentation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Throughput {
    /// Total slots simulated (the `sim.slots` counter).
    pub slots: u64,
    /// CPU-seconds spent inside the engine loop (the `sim.run` span,
    /// summed across simulations and threads).
    pub sim_seconds: f64,
    /// Wall-clock seconds of the whole runner, including optimization.
    pub wall_seconds: f64,
    /// Number of simulation runs (the `sim.run` call count).
    pub runs: u64,
}

impl Throughput {
    /// Per-core engine throughput in slots per second.
    pub fn slots_per_second(&self) -> f64 {
        if self.sim_seconds > 0.0 {
            self.slots as f64 / self.sim_seconds
        } else {
            0.0
        }
    }

    /// The JSONL record appended to `EVCAP_PERF_LOG`.
    pub fn record(&self, label: &str) -> JsonObject {
        let mut obj = JsonObject::with_type("throughput");
        obj.field_str("label", label);
        obj.field_u64("slots", self.slots);
        obj.field_u64("runs", self.runs);
        obj.field_f64("sim_seconds", self.sim_seconds);
        obj.field_f64("wall_seconds", self.wall_seconds);
        obj.field_f64("slots_per_second", self.slots_per_second());
        obj
    }
}

/// Runs `f` with the observability timing registry enabled and returns its
/// result together with the engine-reported throughput.
///
/// The registry is global: the caller should not nest `measured` calls, and
/// concurrent simulations all fold into the same totals (by design — see
/// the module docs). Returns `None` for the throughput if `f` never entered
/// the engine.
pub fn measured<R>(f: impl FnOnce() -> R) -> (R, Option<Throughput>) {
    timing::set_enabled(true);
    timing::reset();
    let wall = Instant::now();
    let result = f();
    let wall_seconds = wall.elapsed().as_secs_f64();
    let spans = timing::drain_spans();
    let counters = timing::drain_counters();
    let run_span = spans.iter().find(|(name, _)| *name == "sim.run");
    let slots = counters
        .iter()
        .find(|(name, _)| *name == "sim.slots")
        .map_or(0, |&(_, n)| n);
    let throughput = run_span.map(|(_, stats)| Throughput {
        slots,
        sim_seconds: stats.total_ns as f64 / 1e9,
        wall_seconds,
        runs: stats.count,
    });
    (result, throughput)
}

/// Wraps a figure runner: measures it, prints the throughput line on
/// stderr, appends to `EVCAP_PERF_LOG` if set, and returns the runner's
/// output for the caller to print.
pub fn with_throughput<R>(label: &str, f: impl FnOnce() -> R) -> R {
    let (result, throughput) = measured(f);
    if let Some(t) = throughput {
        eprintln!(
            "# perf {label}: {} slots in {} runs, sim {:.2} s, {:.2} M slots/sec/core, wall {:.2} s",
            t.slots,
            t.runs,
            t.sim_seconds,
            t.slots_per_second() / 1e6,
            t.wall_seconds,
        );
        if let Ok(path) = std::env::var("EVCAP_PERF_LOG") {
            if let Err(err) = append_record(&path, t.record(label)) {
                eprintln!("# perf {label}: cannot append to {path}: {err}");
            }
        }
    } else {
        eprintln!("# perf {label}: no simulation ran, wall only");
    }
    result
}

fn append_record(path: &str, record: JsonObject) -> std::io::Result<()> {
    let file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    let mut sink = JsonlSink::new(std::io::BufWriter::new(file));
    sink.write(record)?;
    sink.finish().map(drop)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::{weibull_pmf, Scale};
    use evcap_core::AggressivePolicy;
    use evcap_energy::{BernoulliRecharge, Energy};
    use evcap_sim::Simulation;

    fn simulate(slots: u64) {
        Simulation::builder(&weibull_pmf())
            .slots(slots)
            .seed(Scale::quick().seed)
            .run(&AggressivePolicy::new(), &mut |_| {
                Box::new(BernoulliRecharge::new(0.5, Energy::from_units(1.0)).expect("static"))
            })
            .expect("valid simulation");
    }

    #[test]
    fn measured_reports_engine_counters() {
        let ((), t) = measured(|| simulate(10_000));
        let t = t.expect("one simulation ran");
        assert_eq!(t.slots, 10_000);
        assert_eq!(t.runs, 1);
        assert!(t.sim_seconds > 0.0);
        assert!(t.wall_seconds >= t.sim_seconds * 0.5, "wall covers the run");
        assert!(t.slots_per_second() > 0.0);
    }

    #[test]
    fn measured_without_simulation_is_none() {
        let (value, t) = measured(|| 7);
        assert_eq!(value, 7);
        assert!(t.is_none());
    }

    #[test]
    fn record_round_trips_through_the_parser() {
        let ((), t) = measured(|| simulate(5_000));
        let line = t.expect("ran").record("unit-test").finish();
        let value = evcap_obs::parse_line(&line).expect("valid JSON");
        assert_eq!(
            value.get("type").and_then(evcap_obs::JsonValue::as_str),
            Some("throughput")
        );
        assert_eq!(
            value.get("slots").and_then(evcap_obs::JsonValue::as_f64),
            Some(5_000.0)
        );
        assert!(value
            .get("slots_per_second")
            .and_then(evcap_obs::JsonValue::as_f64)
            .is_some_and(|rate| rate > 0.0));
    }
}
