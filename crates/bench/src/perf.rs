//! Slots/sec throughput recording for the figure runners.
//!
//! The simulation engine already instruments itself through `evcap-obs`
//! (the `sim.run` span per scalar run, the `sim.batch.run` span per SoA
//! chunk, and the shared `sim.slots` counter), so the bench harness does
//! not time anything by hand: it enables the global timing registry around
//! a runner, drains the registry afterwards, and derives throughput from
//! what the engine reported. Because spans aggregate across threads, the
//! engine-span total is *CPU-seconds of simulation*, not wall time — the
//! derived rate is per-core throughput and is stable under `parallel_map`
//! fan-out.
//!
//! Reports go to stderr (stdout carries the figure tables, which tests
//! scrape) and, when `EVCAP_PERF_LOG` names a file, are appended to it as
//! JSONL `throughput` records compatible with `evcap trace`.

use std::time::Instant;

use evcap_obs::{timing, JsonObject, JsonlSink};

/// Throughput of one runner invocation, as reported by the engine's own
/// instrumentation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Throughput {
    /// Total slots simulated (the `sim.slots` counter).
    pub slots: u64,
    /// CPU-seconds spent inside the engine loop (the `sim.run` and
    /// `sim.batch.run` spans, summed across simulations and threads —
    /// *not* wall time).
    pub cpu_seconds: f64,
    /// Wall-clock seconds of the whole runner, including optimization.
    pub wall_seconds: f64,
    /// Number of engine entries: scalar `sim.run` calls plus SoA
    /// `sim.batch.run` chunks.
    pub runs: u64,
}

impl Throughput {
    /// Per-core engine throughput in slots per second (CPU-time based, so
    /// it is stable under `parallel_map` fan-out).
    pub fn slots_per_second(&self) -> f64 {
        if self.cpu_seconds > 0.0 {
            self.slots as f64 / self.cpu_seconds
        } else {
            0.0
        }
    }

    /// Aggregate throughput in slots per wall-clock second — the number
    /// that actually improves when a batch fans out across threads.
    pub fn wall_slots_per_second(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.slots as f64 / self.wall_seconds
        } else {
            0.0
        }
    }

    /// The JSONL record appended to `EVCAP_PERF_LOG`.
    pub fn record(&self, label: &str) -> JsonObject {
        let mut obj = JsonObject::with_type("throughput");
        obj.field_str("label", label);
        obj.field_u64("slots", self.slots);
        obj.field_u64("runs", self.runs);
        obj.field_f64("cpu_seconds", self.cpu_seconds);
        obj.field_f64("wall_seconds", self.wall_seconds);
        obj.field_f64("slots_per_second", self.slots_per_second());
        obj.field_f64("wall_slots_per_second", self.wall_slots_per_second());
        obj
    }
}

/// Runs `f` with the observability timing registry enabled and returns its
/// result together with the engine-reported throughput.
///
/// The registry is global: the caller should not nest `measured` calls, and
/// concurrent simulations all fold into the same totals (by design — see
/// the module docs). Returns `None` for the throughput if `f` never entered
/// the engine.
pub fn measured<R>(f: impl FnOnce() -> R) -> (R, Option<Throughput>) {
    timing::set_enabled(true);
    timing::reset();
    let wall = Instant::now(); // tidy:allow(instant-now): the perf harness is itself the timing authority
    let result = f();
    let wall_seconds = wall.elapsed().as_secs_f64();
    let spans = timing::drain_spans();
    let counters = timing::drain_counters();
    // The scalar engine reports `sim.run` per run; the SoA batch engine
    // reports `sim.batch.run` per chunk. Both feed the shared `sim.slots`
    // counter, so mixed workloads sum cleanly.
    let (mut total_ns, mut runs) = (0u128, 0u64);
    for (name, stats) in &spans {
        if *name == "sim.run" || *name == "sim.batch.run" {
            total_ns += stats.total_ns;
            runs += stats.count;
        }
    }
    let slots = counters
        .iter()
        .find(|(name, _)| *name == "sim.slots")
        .map_or(0, |&(_, n)| n);
    let throughput = (runs > 0).then(|| Throughput {
        slots,
        cpu_seconds: total_ns as f64 / 1e9,
        wall_seconds,
        runs,
    });
    (result, throughput)
}

/// Wraps a figure runner: measures it, prints the throughput line on
/// stderr, appends to `EVCAP_PERF_LOG` if set, and returns the runner's
/// output for the caller to print.
pub fn with_throughput<R>(label: &str, f: impl FnOnce() -> R) -> R {
    let (result, throughput) = measured(f);
    if let Some(t) = throughput {
        eprintln!( // tidy:allow(print): perf reports go to stderr by design (stdout carries figure tables)
            "# perf {label}: {} slots in {} runs, cpu {:.2} s, {:.2} M slots/sec/core, wall {:.2} s",
            t.slots,
            t.runs,
            t.cpu_seconds,
            t.slots_per_second() / 1e6,
            t.wall_seconds,
        );
        if let Ok(path) = std::env::var("EVCAP_PERF_LOG") {
            if let Err(err) = append_record(&path, t.record(label)) {
                eprintln!("# perf {label}: cannot append to {path}: {err}"); // tidy:allow(print): perf reports go to stderr by design
            }
        }
    } else {
        eprintln!("# perf {label}: no simulation ran, wall only"); // tidy:allow(print): perf reports go to stderr by design
    }
    result
}

/// Request-latency percentiles for a load-generation run, computed exactly
/// from the recorded per-request samples (unlike the server's bucketed
/// [`evcap_obs::LatencyHistogram`], the loadgen holds every sample in
/// memory, so its percentiles are order statistics, not bucket bounds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Successful requests.
    pub count: u64,
    /// Failed requests (connect/parse/non-2xx).
    pub errors: u64,
    /// Wall-clock seconds of the whole run.
    pub wall_seconds: f64,
    /// Mean latency, microseconds.
    pub mean_us: f64,
    /// Median latency, microseconds.
    pub p50_us: f64,
    /// 90th-percentile latency, microseconds.
    pub p90_us: f64,
    /// 99th-percentile latency, microseconds.
    pub p99_us: f64,
    /// Worst latency, microseconds.
    pub max_us: f64,
}

impl LatencySummary {
    /// Summarizes per-request samples (nanoseconds). Sorts in place.
    pub fn from_samples_ns(samples: &mut [u64], errors: u64, wall_seconds: f64) -> Self {
        samples.sort_unstable();
        let count = samples.len() as u64;
        let pick = |q: f64| -> f64 {
            if samples.is_empty() {
                return 0.0;
            }
            // The ceil-rank order statistic: the smallest sample ≥ q of the
            // distribution, matching the loadgen convention of textbooks.
            let rank = ((q * count as f64).ceil() as usize).clamp(1, samples.len());
            samples[rank - 1] as f64 / 1e3
        };
        let mean_us = if samples.is_empty() {
            0.0
        } else {
            samples.iter().map(|&ns| ns as f64).sum::<f64>() / count as f64 / 1e3
        };
        Self {
            count,
            errors,
            wall_seconds,
            mean_us,
            p50_us: pick(0.50),
            p90_us: pick(0.90),
            p99_us: pick(0.99),
            max_us: samples.last().map_or(0.0, |&ns| ns as f64 / 1e3),
        }
    }

    /// Successful requests per wall-clock second.
    pub fn requests_per_second(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.count as f64 / self.wall_seconds
        } else {
            0.0
        }
    }

    /// The JSONL record appended to `EVCAP_PERF_LOG` (`type: "loadgen"`).
    pub fn record(&self, label: &str) -> JsonObject {
        let mut obj = JsonObject::with_type("loadgen");
        obj.field_str("label", label);
        obj.field_u64("requests", self.count);
        obj.field_u64("errors", self.errors);
        obj.field_f64("wall_seconds", self.wall_seconds);
        obj.field_f64("requests_per_second", self.requests_per_second());
        obj.field_f64("mean_us", self.mean_us);
        obj.field_f64("p50_us", self.p50_us);
        obj.field_f64("p90_us", self.p90_us);
        obj.field_f64("p99_us", self.p99_us);
        obj.field_f64("max_us", self.max_us);
        obj
    }
}

/// Reports a loadgen run the same way `with_throughput` reports figure
/// runners: one line on stderr plus an `EVCAP_PERF_LOG` append when set.
pub fn report_loadgen(label: &str, summary: &LatencySummary) {
    eprintln!( // tidy:allow(print): perf reports go to stderr by design (stdout carries figure tables)
        "# perf {label}: {} requests ({} errors) in {:.2} s, {:.0} req/s, p50 {:.0} µs, p99 {:.0} µs",
        summary.count,
        summary.errors,
        summary.wall_seconds,
        summary.requests_per_second(),
        summary.p50_us,
        summary.p99_us,
    );
    if let Ok(path) = std::env::var("EVCAP_PERF_LOG") {
        if let Err(err) = append_record(&path, summary.record(label)) {
            eprintln!("# perf {label}: cannot append to {path}: {err}"); // tidy:allow(print): perf reports go to stderr by design
        }
    }
}

fn append_record(path: &str, record: JsonObject) -> std::io::Result<()> {
    let file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    let mut sink = JsonlSink::new(std::io::BufWriter::new(file));
    sink.write(record)?;
    sink.finish().map(drop)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::{weibull_pmf, Scale};
    use evcap_core::AggressivePolicy;
    use evcap_energy::{BernoulliRecharge, Energy};
    use evcap_sim::Simulation;

    fn simulate(slots: u64) {
        Simulation::builder(&weibull_pmf())
            .slots(slots)
            .seed(Scale::quick().seed)
            .run(&AggressivePolicy::new(), &mut |_| {
                Box::new(BernoulliRecharge::new(0.5, Energy::from_units(1.0)).expect("static"))
            })
            .expect("valid simulation");
    }

    /// The timing registry is process-global, so tests that enable and
    /// drain it serialize here.
    fn measured_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::OnceLock<std::sync::Mutex<()>> = std::sync::OnceLock::new();
        LOCK.get_or_init(|| std::sync::Mutex::new(()))
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    #[test]
    fn measured_reports_engine_counters() {
        let _guard = measured_lock();
        let ((), t) = measured(|| simulate(10_000));
        let t = t.expect("one simulation ran");
        assert_eq!(t.slots, 10_000);
        assert_eq!(t.runs, 1);
        assert!(t.cpu_seconds > 0.0);
        assert!(t.wall_seconds >= t.cpu_seconds * 0.5, "wall covers the run");
        assert!(t.slots_per_second() > 0.0);
        assert!(t.wall_slots_per_second() > 0.0);
    }

    #[test]
    fn measured_reports_batched_engine_counters() {
        use evcap_sim::ReplicationBatch;
        let _guard = measured_lock();
        let pmf = weibull_pmf();
        let ((), t) = measured(|| {
            let sim = Simulation::builder(&pmf).slots(4_000).seed(3);
            ReplicationBatch::new(sim, 5)
                .unwrap()
                .threads(2)
                .run(&AggressivePolicy::new(), &|_| {
                    Box::new(BernoulliRecharge::new(0.5, Energy::from_units(1.0)).expect("static"))
                })
                .expect("valid batch");
        });
        let t = t.expect("the batch engine reported spans");
        assert_eq!(t.slots, 5 * 4_000, "counter covers every replication");
        assert!(t.runs >= 1 && t.runs <= 5, "one span per chunk: {}", t.runs);
        assert!(t.cpu_seconds > 0.0);
        assert!(t.slots_per_second() > 0.0);
    }

    #[test]
    fn measured_without_simulation_is_none() {
        let _guard = measured_lock();
        let (value, t) = measured(|| 7);
        assert_eq!(value, 7);
        assert!(t.is_none());
    }

    #[test]
    fn latency_summary_percentiles_are_order_statistics() {
        // 1..=100 µs in nanoseconds, shuffled order.
        let mut ns: Vec<u64> = (1..=100u64).rev().map(|us| us * 1_000).collect();
        let s = LatencySummary::from_samples_ns(&mut ns, 2, 0.5);
        assert_eq!(s.count, 100);
        assert_eq!(s.errors, 2);
        assert_eq!(s.p50_us, 50.0);
        assert_eq!(s.p90_us, 90.0);
        assert_eq!(s.p99_us, 99.0);
        assert_eq!(s.max_us, 100.0);
        assert!((s.mean_us - 50.5).abs() < 1e-9);
        assert_eq!(s.requests_per_second(), 200.0);

        let s = LatencySummary::from_samples_ns(&mut [], 0, 0.0);
        assert_eq!(s.count, 0);
        assert_eq!(s.p99_us, 0.0);
        assert_eq!(s.requests_per_second(), 0.0);
    }

    #[test]
    fn loadgen_record_round_trips_through_the_parser() {
        let mut ns = vec![1_000u64, 2_000, 3_000];
        let s = LatencySummary::from_samples_ns(&mut ns, 1, 0.25);
        let line = s.record("smoke").finish();
        let value = evcap_obs::parse_line(&line).expect("valid JSON");
        assert_eq!(
            value.get("type").and_then(evcap_obs::JsonValue::as_str),
            Some("loadgen")
        );
        assert_eq!(
            value.get("requests").and_then(evcap_obs::JsonValue::as_f64),
            Some(3.0)
        );
        assert_eq!(
            value.get("p99_us").and_then(evcap_obs::JsonValue::as_f64),
            Some(3.0)
        );
    }

    #[test]
    fn record_round_trips_through_the_parser() {
        let _guard = measured_lock();
        let ((), t) = measured(|| simulate(5_000));
        let line = t.expect("ran").record("unit-test").finish();
        let value = evcap_obs::parse_line(&line).expect("valid JSON");
        assert_eq!(
            value.get("type").and_then(evcap_obs::JsonValue::as_str),
            Some("throughput")
        );
        assert_eq!(
            value.get("slots").and_then(evcap_obs::JsonValue::as_f64),
            Some(5_000.0)
        );
        assert!(value
            .get("slots_per_second")
            .and_then(evcap_obs::JsonValue::as_f64)
            .is_some_and(|rate| rate > 0.0));
    }
}
