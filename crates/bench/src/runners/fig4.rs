//! Fig. 4: the clustering policy against the aggressive and periodic
//! baselines, sweeping the recharge amount `c`.
//!
//! Setup (paper Section VI-A2): Bernoulli recharge with `q = 0.5` and
//! varying `c` (so `e = 0.5·c`), `K = 1000` with `K/2` initial energy,
//! `θ1 = 3` for the energy-balanced periodic policy. Panel (a) uses
//! `X ~ W(40, 3)`, panel (b) `X ~ P(2, 10)`. Sweep points run in parallel.

use evcap_core::{
    ActivationPolicy, AggressivePolicy, ClusteringOptimizer, EnergyBudget, EvalOptions,
    SlotAssignment,
};
use evcap_dist::SlotPmf;
use evcap_sim::parallel::parallel_map;
use evcap_sim::EventSchedule;
use evcap_spec::PolicySpec;

use crate::figure::{Figure, Series};
use crate::setup::{consumption, pareto_pmf, simulate_qom, solved, weibull_pmf, Scale};

const Q: f64 = 0.5;
const CAPACITY: f64 = 1000.0;

/// A per-sweep-point policy factory: recharge amount `c` in, solved policy
/// out. Lets each panel choose pipeline or bespoke construction per family.
type PolicyFor<'a> = &'a (dyn Fn(f64) -> Box<dyn ActivationPolicy + Send + Sync> + Sync);

fn run(
    scale: Scale,
    pmf: &SlotPmf,
    cs: &[f64],
    clustering_for: PolicyFor<'_>,
    periodic_for: PolicyFor<'_>,
    id: &str,
    title: &str,
) -> Figure {
    let schedule = EventSchedule::generate(pmf, scale.slots, scale.seed).expect("valid schedule");
    let rows = parallel_map(cs.to_vec(), |c| {
        let sim = |policy: &dyn evcap_core::ActivationPolicy| {
            simulate_qom(
                pmf,
                &schedule,
                policy,
                Q,
                c,
                CAPACITY,
                1,
                SlotAssignment::RoundRobin,
                scale,
            )
        };
        let cl_policy = clustering_for(c);
        let pe = periodic_for(c);
        (
            c,
            sim(cl_policy.as_ref()),
            sim(&AggressivePolicy::new()), // tidy:allow(solve-site): bench runners sweep raw optimizer variants the artifact layer does not expose
            sim(pe.as_ref()),
        )
    });

    let mut clustering = Series::new("clustering");
    let mut aggressive = Series::new("aggressive");
    let mut periodic = Series::new("periodic");
    for (c, cl, ag, pe) in rows {
        clustering.push(c, cl);
        aggressive.push(c, ag);
        periodic.push(c, pe);
    }
    let mut fig = Figure::new(id, title, "c");
    fig.series.push(clustering);
    fig.series.push(aggressive);
    fig.series.push(periodic);
    fig
}

/// Reproduces Fig. 4(a): capture probability vs recharge amount `c` for
/// `π'_PI`, `π_AG`, `π_PE` under `X ~ W(40, 3)`.
pub fn fig4a(scale: Scale) -> Figure {
    let cs = [0.6, 0.8, 1.0, 1.2, 1.4, 1.6, 1.8, 2.0, 2.2];
    run(
        scale,
        &weibull_pmf(),
        &cs,
        &|c| solved("weibull:40,3", 65_536, PolicySpec::Clustering, Q * c, 1).policy,
        &|c| {
            solved(
                "weibull:40,3",
                65_536,
                PolicySpec::Periodic { theta1: 3 },
                Q * c,
                1,
            )
            .policy
        },
        "fig4a",
        "QoM vs recharge amount c (q=0.5, K=1000), X~W(40,3)",
    )
}

/// Reproduces Fig. 4(b): same comparison under `X ~ P(2, 10)`.
pub fn fig4b(scale: Scale) -> Figure {
    let cs = [0.5, 0.75, 1.0, 1.25, 1.5, 1.75, 2.0, 2.25, 2.5];
    // Heavy tail: cap the analytic chain evaluation; a geometric residual
    // covers the remainder (see ClusterEvaluation::truncated_survival).
    // These truncation knobs are panel-specific, so the clustering family
    // is solved directly here rather than through the shared pipeline
    // (which uses the default EvalOptions).
    let opts = EvalOptions {
        survival_eps: 1e-9,
        max_slots: 4_000,
    };
    let pmf = pareto_pmf();
    let consumption = consumption();
    run(
        scale,
        &pmf,
        &cs,
        &|c| {
            let (policy, _) = ClusteringOptimizer::new(EnergyBudget::per_slot(Q * c)) // tidy:allow(solve-site): bench runners sweep raw optimizer variants the artifact layer does not expose
                .eval_options(opts)
                .optimize(&pmf, &consumption)
                .expect("feasible budget");
            Box::new(policy)
        },
        &|c| {
            solved(
                "pareto:2,10",
                2_000,
                PolicySpec::Periodic { theta1: 3 },
                Q * c,
                1,
            )
            .policy
        },
        "fig4b",
        "QoM vs recharge amount c (q=0.5, K=1000), X~P(2,10)",
    )
}
