//! Fig. 4: the clustering policy against the aggressive and periodic
//! baselines, sweeping the recharge amount `c`.
//!
//! Setup (paper Section VI-A2): Bernoulli recharge with `q = 0.5` and
//! varying `c` (so `e = 0.5·c`), `K = 1000` with `K/2` initial energy,
//! `θ1 = 3` for the energy-balanced periodic policy. Panel (a) uses
//! `X ~ W(40, 3)`, panel (b) `X ~ P(2, 10)`. Sweep points run in parallel.

use evcap_core::{
    AggressivePolicy, ClusteringOptimizer, EnergyBudget, EvalOptions, PeriodicPolicy,
    SlotAssignment,
};
use evcap_dist::SlotPmf;
use evcap_sim::EventSchedule;

use crate::figure::{Figure, Series};
use crate::parallel::parallel_map;
use crate::setup::{consumption, pareto_pmf, simulate_qom, weibull_pmf, Scale};

const Q: f64 = 0.5;
const CAPACITY: f64 = 1000.0;

fn run(
    scale: Scale,
    pmf: &SlotPmf,
    cs: &[f64],
    opts: EvalOptions,
    id: &str,
    title: &str,
) -> Figure {
    let consumption = consumption();
    let schedule = EventSchedule::generate(pmf, scale.slots, scale.seed).expect("valid schedule");
    let rows = parallel_map(cs.to_vec(), |c| {
        let e = Q * c;
        let budget = EnergyBudget::per_slot(e);
        let sim = |policy: &dyn evcap_core::ActivationPolicy| {
            simulate_qom(
                pmf,
                &schedule,
                policy,
                Q,
                c,
                CAPACITY,
                1,
                SlotAssignment::RoundRobin,
                scale,
            )
        };
        let (cl_policy, _) = ClusteringOptimizer::new(budget)
            .eval_options(opts)
            .optimize(pmf, &consumption)
            .expect("feasible budget");
        let pe = PeriodicPolicy::energy_balanced(3, budget, pmf.mean(), &consumption)
            .expect("valid setup");
        (c, sim(&cl_policy), sim(&AggressivePolicy::new()), sim(&pe))
    });

    let mut clustering = Series::new("clustering");
    let mut aggressive = Series::new("aggressive");
    let mut periodic = Series::new("periodic");
    for (c, cl, ag, pe) in rows {
        clustering.push(c, cl);
        aggressive.push(c, ag);
        periodic.push(c, pe);
    }
    let mut fig = Figure::new(id, title, "c");
    fig.series.push(clustering);
    fig.series.push(aggressive);
    fig.series.push(periodic);
    fig
}

/// Reproduces Fig. 4(a): capture probability vs recharge amount `c` for
/// `π'_PI`, `π_AG`, `π_PE` under `X ~ W(40, 3)`.
pub fn fig4a(scale: Scale) -> Figure {
    let cs = [0.6, 0.8, 1.0, 1.2, 1.4, 1.6, 1.8, 2.0, 2.2];
    run(
        scale,
        &weibull_pmf(),
        &cs,
        EvalOptions::default(),
        "fig4a",
        "QoM vs recharge amount c (q=0.5, K=1000), X~W(40,3)",
    )
}

/// Reproduces Fig. 4(b): same comparison under `X ~ P(2, 10)`.
pub fn fig4b(scale: Scale) -> Figure {
    let cs = [0.5, 0.75, 1.0, 1.25, 1.5, 1.75, 2.0, 2.25, 2.5];
    // Heavy tail: cap the analytic chain evaluation; a geometric residual
    // covers the remainder (see ClusterEvaluation::truncated_survival).
    let opts = EvalOptions {
        survival_eps: 1e-9,
        max_slots: 4_000,
    };
    run(
        scale,
        &pareto_pmf(),
        &cs,
        opts,
        "fig4b",
        "QoM vs recharge amount c (q=0.5, K=1000), X~P(2,10)",
    )
}
