//! Ablations of the multi-sensor coordination layer.

use evcap_core::{EnergyBudget, MultiSensorPlan, SlotAssignment};
use evcap_energy::{BernoulliRecharge, Energy};
use evcap_sim::{EventSchedule, OutagePlan, Simulation};
use evcap_spec::PolicySpec;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::figure::{Figure, Series};
use crate::setup::{consumption, weibull_pmf, Scale};

const Q: f64 = 0.1;
const C: f64 = 1.0;
const CAPACITY: f64 = 1000.0;

/// Coordinated round-robin vs fully independent operation (the paper's
/// Section V motivation: "without coordination, the sensors are prone to
/// activating at the same time slots and duplicate each other's efforts").
///
/// Both fleets run partial-information clustering policies with the same
/// per-sensor recharge; the coordinated fleet shares captures via the sink
/// broadcast and rotates responsibility, the independent one does not.
pub fn ablation_coordination(scale: Scale) -> Figure {
    let pmf = weibull_pmf();
    let schedule = EventSchedule::generate(&pmf, scale.slots, scale.seed).expect("valid schedule");
    let mut coordinated = Series::new("coordinated");
    let mut independent = Series::new("independent");
    for n in [1usize, 2, 4, 6, 8] {
        // Coordinated: M-PI at the aggregate rate (`sensors = n` pools the
        // per-sensor budget inside the shared pipeline).
        let pi_agg =
            crate::setup::solved("weibull:40,3", 65_536, PolicySpec::Clustering, Q * C, n).policy;
        let report = Simulation::builder(&pmf)
            .slots(scale.slots)
            .seed(scale.seed)
            .sensors(n)
            .assignment(SlotAssignment::RoundRobin)
            .battery(Energy::from_units(CAPACITY))
            .run_on(&schedule, pi_agg.as_ref(), &mut |_| {
                Box::new(BernoulliRecharge::new(Q, Energy::from_units(C)).expect("valid"))
            })
            .expect("valid simulation");
        coordinated.push(n as f64, report.qom());

        // Independent: every sensor runs the single-sensor policy on its own
        // observations.
        let pi_single =
            crate::setup::solved("weibull:40,3", 65_536, PolicySpec::Clustering, Q * C, 1).policy;
        let report = Simulation::builder(&pmf)
            .slots(scale.slots)
            .seed(scale.seed)
            .sensors(n)
            .independent()
            .battery(Energy::from_units(CAPACITY))
            .run_on(&schedule, pi_single.as_ref(), &mut |_| {
                Box::new(BernoulliRecharge::new(Q, Energy::from_units(C)).expect("valid"))
            })
            .expect("valid simulation");
        independent.push(n as f64, report.qom());
    }
    let mut fig = Figure::new(
        "ablation-coordination",
        "coordinated (M-PI) vs independent fleets, QoM vs N (q=0.1, c=1), X~W(40,3)",
        "N",
    );
    fig.series.push(coordinated);
    fig.series.push(independent);
    fig
}

/// Outage robustness: M-FI QoM as random sensor outages intensify.
pub fn ablation_outage_robustness(scale: Scale) -> Figure {
    let pmf = weibull_pmf();
    let consumption = consumption();
    let schedule = EventSchedule::generate(&pmf, scale.slots, scale.seed).expect("valid schedule");
    let n = 5usize;
    let plan = MultiSensorPlan::m_fi(&pmf, EnergyBudget::per_slot(Q * C), n, &consumption)
        .expect("valid setup");
    let mut qom = Series::new("QoM");
    let mut downtime = Series::new("downtime-frac");
    for p_fail in [0.0, 0.02, 0.05, 0.1, 0.2] {
        let mut rng = SmallRng::seed_from_u64(scale.seed ^ 0xDEAD);
        let outages = OutagePlan::sample(&mut rng, n, scale.slots, 1_000, p_fail, 2_000);
        let report = Simulation::builder(&pmf)
            .slots(scale.slots)
            .seed(scale.seed)
            .sensors(n)
            .assignment(plan.assignment())
            .battery(Energy::from_units(CAPACITY))
            .outages(outages)
            .run_on(&schedule, plan.policy(), &mut |_| {
                Box::new(BernoulliRecharge::new(Q, Energy::from_units(C)).expect("valid"))
            })
            .expect("valid simulation");
        qom.push(p_fail, report.qom());
        downtime.push(
            p_fail,
            report.total_outage_slots() as f64 / (scale.slots as f64 * n as f64),
        );
    }
    let mut fig = Figure::new(
        "ablation-outage",
        "M-FI robustness to random sensor outages (N=5, q=0.1, c=1), X~W(40,3)",
        "p_fail",
    );
    fig.series.push(qom);
    fig.series.push(downtime);
    fig
}
