//! Fig. 5: the clustering policy against π_EBCW on Markov-chain events.
//!
//! Setup (paper Section VI-A2): events follow a two-state Markov chain with
//! `a = P(1|1)`, `b = P(0|0)`; Bernoulli recharge `q = 0.5, c = 2`
//! (`e = 1`), `K = 1000`. Panel (a) fixes `b = 0.2` and sweeps `a`;
//! panel (b) fixes `b = 0.7`. The paper's claim: the curves coincide where
//! `a, b > 0.5` (EBCW's positive-correlation premise holds) and `π'_PI`
//! wins elsewhere.

use evcap_core::{EbcwPolicy, EnergyBudget, SlotAssignment};
use evcap_dist::MarkovEvents;
use evcap_sim::parallel::parallel_map;
use evcap_sim::EventSchedule;
use evcap_spec::PolicySpec;

use crate::figure::{Figure, Series};
use crate::setup::{consumption, simulate_qom, solved, Scale};

const Q: f64 = 0.5;
const C: f64 = 2.0;
const CAPACITY: f64 = 1000.0;

/// Which panel of Fig. 5 to reproduce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fig5Panel {
    /// Panel (a): `b = 0.2`, `a ∈ [0.1, 0.9]`.
    LowB,
    /// Panel (b): `b = 0.7`, `a ∈ [0.2, 1.0]`.
    HighB,
}

impl Fig5Panel {
    fn b(self) -> f64 {
        match self {
            Fig5Panel::LowB => 0.2,
            Fig5Panel::HighB => 0.7,
        }
    }

    fn a_values(self) -> Vec<f64> {
        match self {
            Fig5Panel::LowB => vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9],
            Fig5Panel::HighB => vec![0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0],
        }
    }
}

/// Reproduces one panel of Fig. 5: simulated QoM of `π'_PI(e)` and
/// `π_EBCW` vs `a`.
pub fn fig5(scale: Scale, panel: Fig5Panel) -> Figure {
    let consumption = consumption();
    let b = panel.b();
    let e = Q * C;
    let budget = EnergyBudget::per_slot(e);
    let rows = parallel_map(panel.a_values(), |a| {
        let chain = MarkovEvents::new(a, b).expect("valid parameters");
        let pmf = chain.to_slot_pmf().expect("proper renewal transform");
        let schedule =
            EventSchedule::generate(&pmf, scale.slots, scale.seed).expect("valid schedule");
        let sim = |policy: &dyn evcap_core::ActivationPolicy| {
            simulate_qom(
                &pmf,
                &schedule,
                policy,
                Q,
                C,
                CAPACITY,
                1,
                SlotAssignment::RoundRobin,
                scale,
            )
        };
        // The Markov pmf is exact (no discretization), so the pipeline's
        // parse of `markov:a,b` reproduces `chain.to_slot_pmf()` bit for
        // bit and the shared artifact is interchangeable with it.
        let pi = solved(
            &format!("markov:{a},{b}"),
            65_536,
            PolicySpec::Clustering,
            e,
            1,
        )
        .policy;
        let eb = EbcwPolicy::optimize(&chain, budget, &consumption).expect("feasible budget");
        (a, sim(pi.as_ref()), sim(&eb))
    });
    let mut clustering = Series::new("clustering");
    let mut ebcw = Series::new("EBCW");
    for (a, pi, eb) in rows {
        clustering.push(a, pi);
        ebcw.push(a, eb);
    }
    let id = match panel {
        Fig5Panel::LowB => "fig5a",
        Fig5Panel::HighB => "fig5b",
    };
    let mut fig = Figure::new(
        id,
        format!("QoM vs a (b={b}, q=0.5, c=2, K=1000), Markov events"),
        "a",
    );
    fig.series.push(clustering);
    fig.series.push(ebcw);
    fig
}
