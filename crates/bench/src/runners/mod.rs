//! One runner per reproduced figure, plus ablations beyond the paper.

mod ablations;
mod coordination;
mod fig3;
mod fig4;
mod fig5;
mod fig6;
mod objectives;
mod refined;

pub use ablations::{ablation_clustering_regions, ablation_load_balance};
pub use coordination::{ablation_coordination, ablation_outage_robustness};
pub use fig3::{fig3a, fig3b};
pub use fig4::{fig4a, fig4b};
pub use fig5::{fig5, Fig5Panel};
pub use fig6::{fig6a, fig6b};
pub use objectives::objective_frontier;
pub use refined::{ablation_refined_convergence, ablation_refined_weibull40};
