//! Beyond the paper: the QoM ↔ age-of-information frontier.
//!
//! The paper optimizes capture rate (QoM) alone. The objective abstraction
//! lets the fleet allocator place the same sensors to minimize the age of
//! information instead — and at the fleet level the two optima genuinely
//! diverge: QoM concentrates sensors where events are frequent (captures
//! are cheap there), while the age objective pushes sensors toward slow
//! PoIs, whose long inter-arrival gaps multiply staleness. This runner
//! allocates one fleet over three Weibull PoIs (fast, paper, slow) under
//! each objective across recharge budgets `e`, simulates every watched PoI
//! under its M-FI share, and plots the fleet's pooled capture fraction
//! next to its measured mean capture age.

use evcap_core::{EnergyBudget, FleetAllocator, MultiSensorPlan, PoiSpec};
use evcap_dist::{Discretizer, SlotPmf, Weibull};
use evcap_sim::parallel::parallel_map;
use evcap_sim::EventSchedule;
use evcap_spec::Objective;

use crate::figure::{Figure, Series};
use crate::setup::{consumption, simulate_report, Scale};

const Q: f64 = 0.5;
const CAPACITY: f64 = 1000.0;
/// Fleet size: enough that both objectives keep every PoI watched across
/// the sweep, small enough that each sensor placement matters.
const SENSORS: usize = 6;
/// PoI event gap scales (Weibull shape 3): fast, the paper's W(40,3), slow.
const POI_SCALES: [f64; 3] = [15.0, 40.0, 90.0];
/// Per-sensor recharge budgets swept by the frontier (units per slot).
const E_VALUES: [f64; 5] = [0.06, 0.1, 0.15, 0.22, 0.3];

fn poi_pmf(scale: f64) -> SlotPmf {
    Discretizer::new()
        .discretize(&Weibull::new(scale, 3.0).expect("static parameters"))
        .expect("light tail discretizes")
}

/// Allocates the fleet under QoM and under mean-AoI across `e`, simulates
/// each PoI under its M-FI share on a shared schedule, and returns the
/// pooled-capture panel followed by the mean-age panel (series
/// `qom-optimal` and `aoi-optimal` in each).
pub fn objective_frontier(scale: Scale) -> (Figure, Figure) {
    let consumption = consumption();
    let pois: Vec<(SlotPmf, EventSchedule)> = POI_SCALES
        .iter()
        .map(|&s| {
            let pmf = poi_pmf(s);
            let schedule =
                EventSchedule::generate(&pmf, scale.slots, scale.seed).expect("valid schedule");
            (pmf, schedule)
        })
        .collect();
    let specs: Vec<PoiSpec> = pois
        .iter()
        .map(|(pmf, _)| PoiSpec {
            pmf: pmf.clone(),
            weight: 1.0,
        })
        .collect();

    let rows = parallel_map(E_VALUES.to_vec(), |e| {
        let run = |objective: Objective| {
            let plan = FleetAllocator::new(EnergyBudget::per_slot(e), consumption)
                .objective(objective)
                .allocate(&specs, SENSORS)
                .expect("paper workloads allocate");
            let mut qom_sum = 0.0;
            let mut age_sum = 0.0;
            for ((pmf, schedule), &n) in pois.iter().zip(&plan.allocation) {
                if n == 0 {
                    // An unwatched PoI captures nothing and is infinitely
                    // stale.
                    age_sum += f64::INFINITY;
                    continue;
                }
                let fi = MultiSensorPlan::m_fi(pmf, EnergyBudget::per_slot(e), n, &consumption)
                    .expect("valid setup");
                let report = simulate_report(
                    pmf,
                    schedule,
                    fi.policy(),
                    Q,
                    2.0 * e,
                    CAPACITY,
                    n,
                    fi.assignment(),
                    scale,
                );
                qom_sum += report.qom();
                age_sum += report.mean_age();
            }
            // The capture panel plots the allocator's own maximand (the
            // equal-weight mean capture fraction), so QoM-optimal is the
            // upper envelope there by construction; the age panel shows
            // what that choice costs in freshness.
            let pois_n = POI_SCALES.len() as f64;
            (qom_sum / pois_n, age_sum / pois_n)
        };
        (e, run(Objective::Qom), run(Objective::AoiMean))
    });

    let mut capture_qom = Series::new("qom-optimal");
    let mut capture_aoi = Series::new("aoi-optimal");
    let mut age_qom = Series::new("qom-optimal");
    let mut age_aoi = Series::new("aoi-optimal");
    for (e, (q_qom, a_qom), (q_aoi, a_aoi)) in rows {
        capture_qom.push(e, q_qom);
        capture_aoi.push(e, q_aoi);
        age_qom.push(e, a_qom);
        age_aoi.push(e, a_aoi);
    }

    let mut capture = Figure::new(
        "objectives-capture",
        "Fleet capture fraction vs e: QoM vs AoI allocation, 6 sensors / 3 PoIs",
        "e",
    );
    capture.series.push(capture_qom);
    capture.series.push(capture_aoi);
    let mut age = Figure::new(
        "objectives-age",
        "Fleet mean capture age (slots) vs e: QoM vs AoI allocation, 6 sensors / 3 PoIs",
        "e",
    );
    age.series.push(age_qom);
    age.series.push(age_aoi);
    (capture, age)
}
