//! Ablation: progressively finer partial-information policies (the paper's
//! "converge to π*_PI" remark) against the exhaustive optimum and the
//! myopic belief-threshold baseline.

use evcap_core::{
    ClusteringOptimizer, EnergyBudget, EvalOptions, ExhaustiveSearch, MyopicPolicy, RegionPolicy,
};
use evcap_dist::{Discretizer, Weibull};

use crate::figure::{Figure, Series};
use crate::setup::{consumption, weibull_pmf, Scale};

/// Small-instance certification: analytic capture probability of clustering,
/// its refinements, the myopic baseline, and the exhaustive deterministic
/// optimum, on `X ~ W(6, 3)` where brute force is tractable.
pub fn ablation_refined_convergence(_scale: Scale) -> Figure {
    let consumption = consumption();
    let small = Discretizer::new()
        .discretize(&Weibull::new(6.0, 3.0).expect("static"))
        .expect("light tail");
    let opts = EvalOptions::default();

    let mut clustering = Series::new("clustering");
    let mut refined1 = Series::new("refined-1");
    let mut refined3 = Series::new("refined-3");
    let mut myopic = Series::new("myopic");
    let mut exhaustive = Series::new("exhaustive");

    for e in [0.7, 0.9, 1.2, 1.6, 2.0] {
        let budget = EnergyBudget::per_slot(e);
        let (coarse, coarse_eval) = ClusteringOptimizer::new(budget) // tidy:allow(solve-site): bench runners sweep raw optimizer variants the artifact layer does not expose
            .optimize(&small, &consumption)
            .expect("feasible");
        clustering.push(e, coarse_eval.capture_probability);

        let seed = RegionPolicy::from_clustering(&coarse);
        let (_, r1) = seed.refine(&small, budget, &consumption, opts, 1, 16);
        refined1.push(e, r1.capture_probability);
        let (_, r3) = seed.refine(&small, budget, &consumption, opts, 3, 24);
        refined3.push(e, r3.capture_probability);

        let my = MyopicPolicy::derive(&small, budget, &consumption, 24, opts).expect("feasible"); // tidy:allow(solve-site): bench runners sweep raw optimizer variants the artifact layer does not expose
        myopic.push(e, my.evaluation().capture_probability);

        let (_, ex) = ExhaustiveSearch::new(budget, 14)
            .optimize(&small, &consumption)
            .expect("feasible");
        exhaustive.push(e, ex.capture_probability);
    }

    let mut fig = Figure::new(
        "ablation-refined",
        "partial-info policy families vs exhaustive optimum, X~W(6,3) (analytic QoM)",
        "e",
    );
    fig.series.push(clustering);
    fig.series.push(refined1);
    fig.series.push(refined3);
    fig.series.push(myopic);
    fig.series.push(exhaustive);
    fig
}

/// Larger-instance comparison (no exhaustive): clustering vs refinement vs
/// myopic on the paper's Weibull workload, analytic QoM across budgets.
pub fn ablation_refined_weibull40(_scale: Scale) -> Figure {
    let consumption = consumption();
    let pmf = weibull_pmf();
    let opts = EvalOptions::default();
    let mut clustering = Series::new("clustering");
    let mut refined2 = Series::new("refined-2");
    let mut myopic = Series::new("myopic");
    for e in [0.3, 0.5, 0.8] {
        let budget = EnergyBudget::per_slot(e);
        let (coarse, coarse_eval) = ClusteringOptimizer::new(budget) // tidy:allow(solve-site): bench runners sweep raw optimizer variants the artifact layer does not expose
            .optimize(&pmf, &consumption)
            .expect("feasible");
        clustering.push(e, coarse_eval.capture_probability);
        let (_, r2) =
            RegionPolicy::from_clustering(&coarse).refine(&pmf, budget, &consumption, opts, 2, 24);
        refined2.push(e, r2.capture_probability);
        let my = MyopicPolicy::derive(&pmf, budget, &consumption, 160, opts).expect("feasible"); // tidy:allow(solve-site): bench runners sweep raw optimizer variants the artifact layer does not expose
        myopic.push(e, my.evaluation().capture_probability);
    }
    let mut fig = Figure::new(
        "ablation-refined-w40",
        "clustering vs refinement vs myopic, X~W(40,3) (analytic QoM)",
        "e",
    );
    fig.series.push(clustering);
    fig.series.push(refined2);
    fig.series.push(myopic);
    fig
}
