//! Fig. 6: multi-sensor coordination (M-FI, M-PI vs aggressive/periodic).
//!
//! Setup (paper Section VI-B): every sensor recharges with a Bernoulli
//! process `q = 0.1` and amount `c`; `K = 1000`. M-FI and M-PI round-robin
//! slots and follow the single-sensor policies computed for the aggregate
//! rate `N·e`. The aggressive baseline round-robins slots; the periodic
//! baseline hands each sensor a block of `θ2` consecutive slots. Panel (a)
//! sweeps the number of sensors `N` at `c = 1`; panel (b) sweeps `c` at
//! `N = 5`. Sweep points run in parallel.

use evcap_core::{AggressivePolicy, EnergyBudget, MultiSensorPlan, PeriodicPolicy, SlotAssignment};
use evcap_dist::SlotPmf;
use evcap_sim::parallel::parallel_map;
use evcap_sim::EventSchedule;
use evcap_spec::PolicySpec;

use crate::figure::{Figure, Series};
use crate::setup::{consumption, simulate_qom, solved, weibull_pmf, Scale};

const Q: f64 = 0.1;
const CAPACITY: f64 = 1000.0;

fn run(
    scale: Scale,
    pmf: &SlotPmf,
    points: &[(usize, f64)],
    id: &str,
    title: &str,
    x_of: impl Fn(usize, f64) -> f64 + Sync,
) -> Figure {
    let consumption = consumption();
    let schedule = EventSchedule::generate(pmf, scale.slots, scale.seed).expect("valid schedule");
    let rows = parallel_map(points.to_vec(), |(n, c)| {
        let x = x_of(n, c);
        let per_sensor = EnergyBudget::per_slot(Q * c);
        let aggregate = EnergyBudget::per_slot(per_sensor.rate() * n as f64);
        let sim = |policy: &dyn evcap_core::ActivationPolicy, assignment: SlotAssignment| {
            simulate_qom(pmf, &schedule, policy, Q, c, CAPACITY, n, assignment, scale)
        };

        let fi = MultiSensorPlan::m_fi(pmf, per_sensor, n, &consumption).expect("valid setup");
        let fi_qom = sim(fi.policy(), fi.assignment());

        // M-PI: the aggregate-rate clustering policy through the shared
        // pipeline — `sensors = n` folds the N·e pooling into the scenario.
        let pi_policy = solved("weibull:40,3", 65_536, PolicySpec::Clustering, Q * c, n).policy;
        let pi_qom = sim(pi_policy.as_ref(), SlotAssignment::RoundRobin);

        let ag_qom = sim(&AggressivePolicy::new(), SlotAssignment::RoundRobin); // tidy:allow(solve-site): bench runners sweep raw optimizer variants the artifact layer does not expose

        // The in-charge sensor banks energy during the other sensors'
        // blocks, so the sustainable duty cycle reflects the aggregate rate.
        let pe = PeriodicPolicy::energy_balanced(3, aggregate, pmf.mean(), &consumption) // tidy:allow(solve-site): bench runners sweep raw optimizer variants the artifact layer does not expose
            .expect("valid setup");
        let pe_qom = sim(
            &pe,
            SlotAssignment::Blocks {
                block_len: pe.theta2(),
            },
        );
        (x, fi_qom, pi_qom, ag_qom, pe_qom)
    });

    let mut m_fi = Series::new("M-FI");
    let mut m_pi = Series::new("M-PI");
    let mut aggressive = Series::new("aggressive");
    let mut periodic = Series::new("periodic");
    for (x, fi, pi, ag, pe) in rows {
        m_fi.push(x, fi);
        m_pi.push(x, pi);
        aggressive.push(x, ag);
        periodic.push(x, pe);
    }
    let mut fig = Figure::new(id, title, if id.ends_with('a') { "N" } else { "c" });
    fig.series.push(m_fi);
    fig.series.push(m_pi);
    fig.series.push(aggressive);
    fig.series.push(periodic);
    fig
}

/// Reproduces Fig. 6(a): QoM vs the number of sensors `N` at `q = 0.1`,
/// `c = 1`, `X ~ W(40, 3)`.
pub fn fig6a(scale: Scale) -> Figure {
    let points: Vec<(usize, f64)> = [1, 2, 3, 4, 5, 6, 8, 10, 12]
        .into_iter()
        .map(|n| (n, 1.0))
        .collect();
    run(
        scale,
        &weibull_pmf(),
        &points,
        "fig6a",
        "QoM vs number of sensors N (q=0.1, c=1, K=1000), X~W(40,3)",
        |n, _| n as f64,
    )
}

/// Reproduces Fig. 6(b): QoM vs per-recharge amount `c` at `N = 5`,
/// `q = 0.1`, `X ~ W(40, 3)`.
pub fn fig6b(scale: Scale) -> Figure {
    let points: Vec<(usize, f64)> = [0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 2.5, 3.0]
        .into_iter()
        .map(|c| (5, c))
        .collect();
    run(
        scale,
        &weibull_pmf(),
        &points,
        "fig6b",
        "QoM vs recharge amount c (N=5, q=0.1, K=1000), X~W(40,3)",
        |_, c| c,
    )
}
