//! Ablations beyond the paper, probing the design choices DESIGN.md calls
//! out.

use evcap_core::{
    ClusteringOptimizer, ClusteringPolicy, EnergyBudget, MultiSensorPlan, SlotAssignment,
};
use evcap_sim::EventSchedule;

use crate::figure::{Figure, Series};
use crate::setup::{consumption, simulate_qom, weibull_pmf, Scale};

/// Region ablation for the clustering policy: how much do the recovery and
/// cooling regions contribute?
///
/// Three variants are simulated over an energy sweep (`q = 0.5`, varying
/// `c`, `X ~ W(40, 3)`, `K = 1000`):
///
/// * `full` — the optimized `π'_PI(e)`;
/// * `no-recovery` — same hot region but `n3 → ∞` (missed events are never
///   recovered, so the schedule can drift off the renewal phase);
/// * `no-cooling` — hot region pinned to start at slot 1 (energy wasted in
///   slots where the next event cannot plausibly arrive yet).
pub fn ablation_clustering_regions(scale: Scale) -> Figure {
    let pmf = weibull_pmf();
    let consumption = consumption();
    let schedule = EventSchedule::generate(&pmf, scale.slots, scale.seed).expect("valid schedule");
    let q = 0.5;
    let capacity = 1000.0;
    let mut full = Series::new("full");
    let mut no_recovery = Series::new("no-recovery");
    let mut no_cooling = Series::new("no-cooling");
    for c in [0.6, 1.0, 1.4, 1.8] {
        let budget = EnergyBudget::per_slot(q * c);
        let (policy, _) = ClusteringOptimizer::new(budget) // tidy:allow(solve-site): bench runners sweep raw optimizer variants the artifact layer does not expose
            .optimize(&pmf, &consumption)
            .expect("feasible budget");
        let sim = |p: &ClusteringPolicy| {
            simulate_qom(
                &pmf,
                &schedule,
                p,
                q,
                c,
                capacity,
                1,
                SlotAssignment::RoundRobin,
                scale,
            )
        };
        full.push(c, sim(&policy));

        // Push the recovery region out beyond any reachable state.
        let (c1, c2, _) = policy.boundary_coefficients();
        let distant = u32::MAX as usize;
        let variant = ClusteringPolicy::new(policy.n1(), policy.n2(), distant, c1, c2, 0.0) // tidy:allow(solve-site): bench runners sweep raw optimizer variants the artifact layer does not expose
            .expect("ordered regions");
        no_recovery.push(c, sim(&variant));

        // Remove the initial cooling region: hot from slot 1.
        let variant = ClusteringPolicy::new(1, policy.n2(), policy.n3(), 1.0, c2, 1.0) // tidy:allow(solve-site): bench runners sweep raw optimizer variants the artifact layer does not expose
            .expect("ordered regions");
        no_cooling.push(c, sim(&variant));
    }
    let mut fig = Figure::new(
        "ablation-regions",
        "clustering region ablation: QoM vs c (q=0.5, K=1000), X~W(40,3)",
        "c",
    );
    fig.series.push(full);
    fig.series.push(no_recovery);
    fig.series.push(no_cooling);
    fig
}

/// Load-balance measurement for M-FI (Section V-A's concern): ratio of the
/// least- to the most-active sensor, swept over the fleet size.
///
/// The paper argues round-robin balances load for "natural" distributions
/// such as Weibull; this ablation quantifies that.
pub fn ablation_load_balance(scale: Scale) -> Figure {
    let pmf = weibull_pmf();
    let consumption = consumption();
    let schedule = EventSchedule::generate(&pmf, scale.slots, scale.seed).expect("valid schedule");
    let q = 0.1;
    let c = 1.0;
    let mut balance = Series::new("min/max");
    let mut qom = Series::new("QoM");
    for n in [2usize, 3, 5, 8, 12] {
        let plan = MultiSensorPlan::m_fi(&pmf, EnergyBudget::per_slot(q * c), n, &consumption)
            .expect("valid setup");
        let report = evcap_sim::Simulation::builder(&pmf)
            .slots(scale.slots)
            .seed(scale.seed)
            .sensors(n)
            .assignment(plan.assignment())
            .battery(evcap_energy::Energy::from_units(1000.0))
            .run_on(&schedule, plan.policy(), &mut |_| {
                Box::new(
                    evcap_energy::BernoulliRecharge::new(q, evcap_energy::Energy::from_units(c))
                        .expect("valid"),
                )
            })
            .expect("valid simulation");
        balance.push(n as f64, report.load_balance());
        qom.push(n as f64, report.qom());
    }
    let mut fig = Figure::new(
        "ablation-load-balance",
        "M-FI per-sensor load balance vs N (q=0.1, c=1), X~W(40,3)",
        "N",
    );
    fig.series.push(balance);
    fig.series.push(qom);
    fig
}
