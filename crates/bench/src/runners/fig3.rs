//! Fig. 3: asymptotic optimality in the battery capacity `K`.
//!
//! Setup (paper Section VI-A1): `e = 0.5`, events `X ~ W(40, 3)`, three
//! recharge processes with identical mean rate (Bernoulli `q=0.5, c=1`;
//! Periodic `5` units every `10` slots; constant `0.5`/slot, the paper's
//! "Uniform"). Sweep the battery capacity `K` and plot the achieved QoM of
//! (a) the greedy full-information policy `π*_FI(e)` and (b) the clustering
//! partial-information policy `π'_PI(e)`, against their analytic values
//! under the energy assumption ("Upper Bound").

use evcap_core::ActivationPolicy;
use evcap_energy::Energy;
use evcap_sim::{EventSchedule, Simulation};
use evcap_spec::PolicySpec;

use crate::figure::{Figure, Series};
use crate::setup::{fig3_recharges, solved, weibull_pmf, Scale};

/// Battery capacities swept on the x-axis (energy units).
fn capacities() -> Vec<f64> {
    vec![8.0, 15.0, 25.0, 40.0, 70.0, 100.0, 150.0, 200.0]
}

fn run(
    scale: Scale,
    policy: &dyn ActivationPolicy,
    upper_bound: f64,
    id: &str,
    title: &str,
) -> Figure {
    let pmf = weibull_pmf();
    let schedule = EventSchedule::generate(&pmf, scale.slots, scale.seed).expect("valid schedule");
    let mut fig = Figure::new(id, title, "K");
    for (name, make) in fig3_recharges() {
        let mut series = Series::new(name);
        for &k in &capacities() {
            let report = Simulation::builder(&pmf)
                .slots(scale.slots)
                .seed(scale.seed)
                .battery(Energy::from_units(k))
                .run_on(&schedule, policy, &mut |_| make())
                .expect("valid simulation");
            series.push(k, report.qom());
        }
        fig.series.push(series);
    }
    let mut bound = Series::new("UpperBound");
    for &k in &capacities() {
        bound.push(k, upper_bound);
    }
    fig.series.push(bound);
    fig
}

/// Reproduces Fig. 3(a): `U_K(π*_FI(0.5))` vs `K` for three recharge
/// processes, with the analytic optimum as the bound.
pub fn fig3a(scale: Scale) -> Figure {
    let artifact = solved("weibull:40,3", 65_536, PolicySpec::Greedy, 0.5, 1);
    run(
        scale,
        artifact.policy.as_ref(),
        artifact.meta.objective.expect("greedy reports U(π*)"),
        "fig3a",
        "achieved QoM of greedy π*_FI(0.5) vs battery capacity K, X~W(40,3)",
    )
}

/// Reproduces Fig. 3(b): `U_K(π'_PI(0.5))` vs `K` for three recharge
/// processes, with the analytic clustering value as the bound.
pub fn fig3b(scale: Scale) -> Figure {
    let artifact = solved("weibull:40,3", 65_536, PolicySpec::Clustering, 0.5, 1);
    run(
        scale,
        artifact.policy.as_ref(),
        artifact.meta.objective.expect("clustering reports U(π')"),
        "fig3b",
        "achieved QoM of clustering π'_PI(0.5) vs battery capacity K, X~W(40,3)",
    )
}
