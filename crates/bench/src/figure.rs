//! Tabular figure output.

use std::fmt;

/// One curve of a figure: a named series of `(x, y)` points.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// `(x, y)` points, in x order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a named series.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Appends a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// The y value at the given x, if present.
    pub fn y_at(&self, x: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|(px, _)| (px - x).abs() < 1e-9)
            .map(|&(_, y)| y)
    }

    /// The final y value.
    pub fn last_y(&self) -> Option<f64> {
        self.points.last().map(|&(_, y)| y)
    }
}

/// A reproduced figure: an id (e.g. `"fig3a"`), axis labels, and the series.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure {
    /// Short id matching the paper's numbering, e.g. `"fig4b"`.
    pub id: String,
    /// One-line description of the experiment.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// The curves.
    pub series: Vec<Series>,
}

impl Figure {
    /// Creates an empty figure.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        x_label: impl Into<String>,
    ) -> Self {
        Self {
            id: id.into(),
            title: title.into(),
            x_label: x_label.into(),
            series: Vec::new(),
        }
    }

    /// Looks a series up by name.
    ///
    /// # Panics
    ///
    /// Panics if no series has that name — figure construction bugs should
    /// fail loudly in tests.
    pub fn series(&self, name: &str) -> &Series {
        self.series
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("no series named {name:?} in {}", self.id))
    }

    /// The shared x values of the first series.
    pub fn xs(&self) -> Vec<f64> {
        self.series
            .first()
            .map(|s| s.points.iter().map(|&(x, _)| x).collect())
            .unwrap_or_default()
    }
}

impl fmt::Display for Figure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "# {}: {}", self.id, self.title)?;
        write!(f, "{:>10}", self.x_label)?;
        for s in &self.series {
            write!(f, "  {:>14}", truncate(&s.name, 14))?;
        }
        writeln!(f)?;
        for (row, &x) in self.xs().iter().enumerate() {
            write!(f, "{x:>10.4}")?;
            for s in &self.series {
                match s.points.get(row) {
                    Some(&(_, y)) => write!(f, "  {y:>14.4}")?,
                    None => write!(f, "  {:>14}", "-")?,
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

fn truncate(s: &str, n: usize) -> &str {
    if s.len() <= n {
        s
    } else {
        &s[..n]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_figure() -> Figure {
        let mut fig = Figure::new("figX", "test figure", "x");
        let mut a = Series::new("alpha");
        a.push(1.0, 0.5);
        a.push(2.0, 0.75);
        let mut b = Series::new("beta");
        b.push(1.0, 0.25);
        b.push(2.0, 0.5);
        fig.series.push(a);
        fig.series.push(b);
        fig
    }

    #[test]
    fn lookup_and_accessors() {
        let fig = sample_figure();
        assert_eq!(fig.xs(), vec![1.0, 2.0]);
        assert_eq!(fig.series("alpha").y_at(2.0), Some(0.75));
        assert_eq!(fig.series("beta").last_y(), Some(0.5));
        assert_eq!(fig.series("alpha").y_at(9.0), None);
    }

    #[test]
    #[should_panic(expected = "no series named")]
    fn missing_series_panics() {
        sample_figure().series("gamma");
    }

    #[test]
    fn display_renders_all_rows() {
        let text = sample_figure().to_string();
        assert!(text.contains("figX"));
        assert!(text.contains("alpha"));
        assert!(text.contains("0.7500"));
        assert_eq!(text.lines().count(), 4);
    }
}
