//! Order-preserving parallel map over sweep points.
//!
//! Figure sweeps are embarrassingly parallel — every point runs its own
//! optimizer calls and simulations on a shared, immutable setup — so the
//! runners fan the points out over scoped worker threads. Results come back
//! in input order regardless of completion order.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Applies `f` to every item on up to `threads` worker threads (capped at
/// the item count), returning results in the input order.
///
/// The thread count defaults to the machine's available parallelism; the
/// `EVCAP_THREADS` environment variable overrides it (in either direction:
/// CI pins worker counts deterministically, and I/O-bound callers like
/// `evcap loadgen` oversubscribe cores with connection-per-thread workers).
///
/// # Panics
///
/// Propagates a panic from any worker (the whole map panics, matching the
/// behavior of a sequential loop).
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let default_threads = std::env::var("EVCAP_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&t| t > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        });
    let threads = default_threads.min(n).max(1);
    if threads == 1 {
        return items.into_iter().map(f).collect();
    }

    // Items move into Option slots; workers claim indices via an atomic
    // cursor and deposit results into matching slots.
    let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = work[i]
                    .lock()
                    .expect("no other claimant for this index")
                    .take()
                    .expect("each index is claimed once");
                let value = f(item);
                *results[i].lock().expect("result slot uncontended") = Some(value);
            });
        }
    });
    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("worker threads have exited")
                .expect("every index was processed")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = parallel_map((0..100).collect(), |i: i32| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = parallel_map(Vec::<i32>::new(), |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item() {
        assert_eq!(parallel_map(vec![7], |i: i32| i + 1), vec![8]);
    }

    #[test]
    fn work_actually_runs_concurrently_or_not_but_is_correct() {
        // Heavier closure exercising the claim/deposit paths.
        let out = parallel_map((0..32).collect(), |i: u64| {
            let mut acc = 0u64;
            for k in 0..10_000 {
                acc = acc.wrapping_add(k * i);
            }
            acc
        });
        assert_eq!(out.len(), 32);
        assert_eq!(out[0], 0);
    }

    #[test]
    fn evcap_threads_override_is_honored() {
        // Set the override for this process; the map below must still be
        // correct (and exercise the multi-thread claim/deposit path even on
        // a single-core machine). The variable is cleared afterwards so
        // other tests see the default behavior.
        std::env::set_var("EVCAP_THREADS", "4");
        let out = parallel_map((0..64).collect(), |i: i32| i * 2);
        std::env::remove_var("EVCAP_THREADS");
        assert_eq!(out, (0..64).map(|i| i * 2).collect::<Vec<_>>());

        // Garbage values fall back to the default.
        std::env::set_var("EVCAP_THREADS", "zero");
        let out = parallel_map(vec![1, 2, 3], |i: i32| i);
        std::env::remove_var("EVCAP_THREADS");
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panic_propagates() {
        parallel_map(vec![1, 2, 3], |i: i32| {
            if i == 2 {
                panic!("boom");
            }
            i
        });
    }
}
