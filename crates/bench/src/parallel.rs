//! Order-preserving parallel map over sweep points.
//!
//! Figure sweeps are embarrassingly parallel — every point runs its own
//! optimizer calls and simulations on a shared, immutable setup — so the
//! runners fan the points out over scoped worker threads. Results come back
//! in input order regardless of completion order.
//!
//! The implementation lives in [`evcap_sim::parallel`] (the simulator's
//! batched replication engine shares it, and `evcap-bench` already sits
//! above `evcap-sim` in the crate graph); this module re-exports it so the
//! figure runners and the serving load generator keep their historical
//! import path. The chunk-claiming and `EVCAP_THREADS` semantics are
//! documented there.

pub use evcap_sim::parallel::{parallel_map, parallel_map_with};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reexport_preserves_order() {
        let out = parallel_map((0..100).collect(), |i: i32| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn reexport_exposes_explicit_thread_counts() {
        let out = parallel_map_with((0..10).collect(), Some(3), |i: i32| i + 1);
        assert_eq!(out, (1..=10).collect::<Vec<_>>());
    }
}
