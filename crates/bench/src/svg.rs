//! Dependency-free SVG rendering of reproduced figures.
//!
//! Every [`Figure`] can be rendered to a standalone SVG line chart — axes,
//! ticks, legend, one polyline per series — so the reproduction can be
//! compared against the paper's plots visually, not just numerically.
//! `evcap figure <id> --svg out.svg` uses this.

use std::fmt::Write as _;

use crate::figure::Figure;

/// Chart geometry.
const WIDTH: f64 = 720.0;
const HEIGHT: f64 = 460.0;
const MARGIN_LEFT: f64 = 64.0;
const MARGIN_RIGHT: f64 = 160.0;
const MARGIN_TOP: f64 = 48.0;
const MARGIN_BOTTOM: f64 = 56.0;

/// A color-blind-safe categorical palette (Okabe–Ito).
const PALETTE: [&str; 8] = [
    "#0072B2", "#D55E00", "#009E73", "#CC79A7", "#E69F00", "#56B4E9", "#F0E442", "#000000",
];

/// Renders the figure as a standalone SVG document.
///
/// The y-axis is fixed to `[0, 1]` when every value fits (the natural range
/// for capture probabilities) and auto-scaled otherwise. Non-finite points
/// (a censored measurement, e.g. the mean age of an unwatched PoI) are
/// omitted from the chart and excluded from the axis bounds.
pub fn render(figure: &Figure) -> String {
    let xs: Vec<f64> = figure
        .series
        .iter()
        .flat_map(|s| s.points.iter().map(|&(x, _)| x))
        .filter(|x| x.is_finite())
        .collect();
    let ys: Vec<f64> = figure
        .series
        .iter()
        .flat_map(|s| s.points.iter().map(|&(_, y)| y))
        .filter(|y| y.is_finite())
        .collect();
    let (x_min, x_max) = bounds(&xs, 0.0, 1.0);
    let all_unit = ys.iter().all(|&y| (-0.001..=1.001).contains(&y));
    let (y_min, y_max) = if all_unit {
        (0.0, 1.0)
    } else {
        bounds(&ys, 0.0, 1.0)
    };

    let plot_w = WIDTH - MARGIN_LEFT - MARGIN_RIGHT;
    let plot_h = HEIGHT - MARGIN_TOP - MARGIN_BOTTOM;
    let sx = |x: f64| MARGIN_LEFT + (x - x_min) / (x_max - x_min).max(1e-12) * plot_w;
    let sy = |y: f64| MARGIN_TOP + plot_h - (y - y_min) / (y_max - y_min).max(1e-12) * plot_h;

    let mut out = String::with_capacity(8192);
    let _ = writeln!(
        out,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{HEIGHT}" viewBox="0 0 {WIDTH} {HEIGHT}" font-family="sans-serif">"#
    );
    let _ = writeln!(
        out,
        r#"<rect width="{WIDTH}" height="{HEIGHT}" fill="white"/>"#
    );
    // Title.
    let _ = writeln!(
        out,
        r#"<text x="{}" y="24" font-size="14" text-anchor="middle">{}</text>"#,
        WIDTH / 2.0,
        escape(&format!("{}: {}", figure.id, figure.title))
    );

    // Gridlines + y ticks.
    for k in 0..=5 {
        let y = y_min + (y_max - y_min) * k as f64 / 5.0;
        let py = sy(y);
        let _ = writeln!(
            out,
            r##"<line x1="{:.1}" y1="{py:.1}" x2="{:.1}" y2="{py:.1}" stroke="#ddd"/>"##,
            MARGIN_LEFT,
            MARGIN_LEFT + plot_w
        );
        let _ = writeln!(
            out,
            r#"<text x="{:.1}" y="{:.1}" font-size="11" text-anchor="end">{}</text>"#,
            MARGIN_LEFT - 8.0,
            py + 4.0,
            trim_num(y)
        );
    }
    // X ticks.
    for k in 0..=6 {
        let x = x_min + (x_max - x_min) * k as f64 / 6.0;
        let px = sx(x);
        let _ = writeln!(
            out,
            r##"<line x1="{px:.1}" y1="{:.1}" x2="{px:.1}" y2="{:.1}" stroke="#ddd"/>"##,
            MARGIN_TOP,
            MARGIN_TOP + plot_h
        );
        let _ = writeln!(
            out,
            r#"<text x="{px:.1}" y="{:.1}" font-size="11" text-anchor="middle">{}</text>"#,
            MARGIN_TOP + plot_h + 18.0,
            trim_num(x)
        );
    }
    // Axes.
    let _ = writeln!(
        out,
        r##"<rect x="{:.1}" y="{:.1}" width="{plot_w:.1}" height="{plot_h:.1}" fill="none" stroke="#333"/>"##,
        MARGIN_LEFT, MARGIN_TOP
    );
    // Axis labels.
    let _ = writeln!(
        out,
        r#"<text x="{:.1}" y="{:.1}" font-size="12" text-anchor="middle">{}</text>"#,
        MARGIN_LEFT + plot_w / 2.0,
        HEIGHT - 14.0,
        escape(&figure.x_label)
    );
    let _ = writeln!(
        out,
        r#"<text x="18" y="{:.1}" font-size="12" text-anchor="middle" transform="rotate(-90 18 {:.1})">QoM</text>"#,
        MARGIN_TOP + plot_h / 2.0,
        MARGIN_TOP + plot_h / 2.0
    );

    // Series.
    for (idx, series) in figure.series.iter().enumerate() {
        let color = PALETTE[idx % PALETTE.len()];
        let mut path = String::new();
        for &(x, y) in &series.points {
            if !x.is_finite() || !y.is_finite() {
                continue;
            }
            let _ = write!(path, "{:.1},{:.1} ", sx(x), sy(y));
        }
        let _ = writeln!(
            out,
            r#"<polyline points="{}" fill="none" stroke="{color}" stroke-width="2"/>"#,
            path.trim_end()
        );
        for &(x, y) in &series.points {
            if !x.is_finite() || !y.is_finite() {
                continue;
            }
            let _ = writeln!(
                out,
                r#"<circle cx="{:.1}" cy="{:.1}" r="3" fill="{color}"/>"#,
                sx(x),
                sy(y)
            );
        }
        // Legend entry.
        let ly = MARGIN_TOP + 16.0 * idx as f64;
        let lx = MARGIN_LEFT + plot_w + 12.0;
        let _ = writeln!(
            out,
            r#"<line x1="{lx:.1}" y1="{:.1}" x2="{:.1}" y2="{:.1}" stroke="{color}" stroke-width="2"/>"#,
            ly + 4.0,
            lx + 18.0,
            ly + 4.0
        );
        let _ = writeln!(
            out,
            r#"<text x="{:.1}" y="{:.1}" font-size="11">{}</text>"#,
            lx + 24.0,
            ly + 8.0,
            escape(&series.name)
        );
    }
    out.push_str("</svg>\n");
    out
}

/// Min/max with a fallback for empty or degenerate data.
fn bounds(values: &[f64], lo: f64, hi: f64) -> (f64, f64) {
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for &v in values {
        min = min.min(v);
        max = max.max(v);
    }
    if !min.is_finite() || !max.is_finite() {
        (lo, hi)
    } else if (max - min).abs() < 1e-12 {
        (min - 0.5, max + 0.5)
    } else {
        (min, max)
    }
}

/// Formats a tick value compactly.
fn trim_num(v: f64) -> String {
    if (v - v.round()).abs() < 1e-9 {
        format!("{}", v.round() as i64)
    } else {
        format!("{v:.2}")
    }
}

/// Escapes XML-special characters in labels.
fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figure::{Figure, Series};

    fn sample() -> Figure {
        let mut fig = Figure::new("figT", "test <plot> & stuff", "c");
        let mut a = Series::new("alpha");
        a.push(0.5, 0.2);
        a.push(1.0, 0.8);
        let mut b = Series::new("beta");
        b.push(0.5, 0.1);
        b.push(1.0, 0.4);
        fig.series.push(a);
        fig.series.push(b);
        fig
    }

    #[test]
    fn renders_well_formed_svg() {
        let svg = render(&sample());
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        // One polyline per series plus legend lines.
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert!(svg.contains("alpha") && svg.contains("beta"));
        // Labels are escaped.
        assert!(svg.contains("&lt;plot&gt; &amp; stuff"));
        assert!(!svg.contains("<plot>"));
    }

    #[test]
    fn unit_range_is_pinned() {
        let svg = render(&sample());
        // y tick "1" must appear (fixed 0..1 axis).
        assert!(svg.contains(">1</text>"));
        assert!(svg.contains(">0</text>"));
    }

    #[test]
    fn autoscale_kicks_in_beyond_unit_range() {
        let mut fig = sample();
        fig.series[0].points[1].1 = 40.0;
        let svg = render(&fig);
        assert!(svg.contains(">40</text>") || svg.contains(">32</text>") || svg.contains("40"));
    }

    #[test]
    fn degenerate_single_point() {
        let mut fig = Figure::new("figD", "one point", "x");
        let mut s = Series::new("solo");
        s.push(1.0, 0.5);
        fig.series.push(s);
        let svg = render(&fig);
        assert!(svg.contains("<circle"));
    }

    #[test]
    fn non_finite_points_are_omitted_not_rendered() {
        let mut fig = Figure::new("figI", "censored point", "e");
        let mut s = Series::new("aged");
        s.push(0.1, f64::INFINITY);
        s.push(0.2, 40.0);
        s.push(0.3, 20.0);
        fig.series.push(s);
        let svg = render(&fig);
        // The infinite point never reaches the document, and the finite
        // values still set the axis bounds.
        assert!(!svg.contains("inf") && !svg.contains("NaN"));
        assert_eq!(svg.matches("<circle").count(), 2);
        assert!(svg.contains(">40</text>"));
    }

    #[test]
    fn tick_formatting() {
        assert_eq!(trim_num(1.0), "1");
        assert_eq!(trim_num(0.25), "0.25");
        assert_eq!(trim_num(-2.0), "-2");
    }
}
