//! Experiment runners that regenerate every figure of the paper.
//!
//! Each `benches/fig*.rs` target is a thin `main` that calls one of the
//! runners in [`runners`] at full scale (`T = 10^6` slots, the paper's
//! horizon) and prints the series. The runners are also callable at reduced
//! scale from integration tests, which assert the *shape* of each figure
//! (orderings, convergence, crossovers) rather than absolute values.

#![forbid(unsafe_code)]

pub mod figure;
pub mod perf;
pub mod runners;
pub mod setup;
pub mod svg;

pub use figure::{Figure, Series};
pub use perf::Throughput;
pub use setup::Scale;
