//! Shared experimental setup: the paper's workloads, recharge processes, and
//! scale knobs.

use evcap_core::{ActivationPolicy, SlotAssignment};
use evcap_dist::{Discretizer, Pareto, SlotPmf, Weibull};
use evcap_energy::{
    BernoulliRecharge, ConstantRecharge, ConsumptionModel, Energy, PeriodicRecharge,
    RechargeProcess,
};
use evcap_sim::{EventSchedule, SimReport, Simulation};
use evcap_spec::{Objective, PolicySpec, Scenario, SolvedPolicy};

/// How big to run an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Simulated slots per data point.
    pub slots: u64,
    /// Base RNG seed.
    pub seed: u64,
}

impl Scale {
    /// The paper's scale: `T = 10^6` slots.
    pub fn paper() -> Self {
        Self {
            slots: 1_000_000,
            seed: 2012,
        }
    }

    /// A reduced scale for integration tests (still enough events for the
    /// orderings to be statistically stable).
    pub fn quick() -> Self {
        Self {
            slots: 150_000,
            seed: 2012,
        }
    }
}

/// The paper's Weibull workload `W(40, 3)`, discretized.
pub fn weibull_pmf() -> SlotPmf {
    Discretizer::new()
        .discretize(&Weibull::new(40.0, 3.0).expect("static parameters"))
        .expect("light tail discretizes")
}

/// The paper's Pareto workload `P(2, 10)`, discretized with a 2 000-slot head
/// and analytic geometric tail.
pub fn pareto_pmf() -> SlotPmf {
    Discretizer::new()
        .max_horizon(2_000)
        .discretize(&Pareto::new(2.0, 10.0).expect("static parameters"))
        .expect("tail is modeled")
}

/// The paper's consumption model (`δ1 = 1`, `δ2 = 6`).
pub fn consumption() -> ConsumptionModel {
    ConsumptionModel::paper_defaults()
}

/// Solves a static paper scenario through the shared
/// `Scenario → SolvedPolicy` pipeline — the same artifact layer the CLI
/// and the server go through, so the figures exercise production policy
/// construction rather than a bench-local copy of it.
///
/// `horizon` must match the workload's discretization cap (65 536 for the
/// default, 2 000 for the Pareto head) so the artifact's pmf is
/// bit-identical to the bench's own.
pub fn solved(
    dist: &str,
    horizon: usize,
    policy: PolicySpec,
    e: f64,
    sensors: usize,
) -> SolvedPolicy {
    solved_for(dist, horizon, policy, e, sensors, Objective::Qom)
}

/// [`solved`] with an explicit optimization [`Objective`] — the entry point
/// for frontier experiments that pit a QoM-optimal policy against an
/// age-optimal one on the same physics.
pub fn solved_for(
    dist: &str,
    horizon: usize,
    policy: PolicySpec,
    e: f64,
    sensors: usize,
    objective: Objective,
) -> SolvedPolicy {
    let scenario = Scenario::new(dist, policy, e)
        .expect("static paper spec")
        .with_horizon(horizon)
        .with_sensors(sensors)
        .with_objective(objective);
    evcap_spec::solve(&scenario).expect("paper scenarios are solvable")
}

/// A named factory for one of Fig. 3's recharge processes.
pub type RechargeFactoryEntry = (&'static str, Box<dyn Fn() -> Box<dyn RechargeProcess>>);

/// The three recharge processes of Fig. 3, all with mean rate 0.5.
pub fn fig3_recharges() -> Vec<RechargeFactoryEntry> {
    vec![
        (
            "Bernoulli",
            Box::new(|| {
                Box::new(BernoulliRecharge::new(0.5, Energy::from_units(1.0)).expect("static"))
                    as Box<dyn RechargeProcess>
            }),
        ),
        (
            "Periodic",
            Box::new(|| {
                Box::new(PeriodicRecharge::new(Energy::from_units(5.0), 10).expect("static"))
                    as Box<dyn RechargeProcess>
            }),
        ),
        (
            "Uniform",
            Box::new(|| {
                Box::new(ConstantRecharge::new(Energy::from_units(0.5)).expect("static"))
                    as Box<dyn RechargeProcess>
            }),
        ),
    ]
}

/// Runs one policy on a shared schedule with Bernoulli recharge of rate
/// `q·c` per sensor, returning the achieved QoM.
#[allow(clippy::too_many_arguments)]
pub fn simulate_qom(
    pmf: &SlotPmf,
    schedule: &EventSchedule,
    policy: &dyn ActivationPolicy,
    q: f64,
    c: f64,
    capacity_units: f64,
    sensors: usize,
    assignment: SlotAssignment,
    scale: Scale,
) -> f64 {
    simulate_report(
        pmf,
        schedule,
        policy,
        q,
        c,
        capacity_units,
        sensors,
        assignment,
        scale,
    )
    .qom()
}

/// [`simulate_qom`] returning the full report, for runners that read the
/// capture-age statistics alongside the capture rate.
#[allow(clippy::too_many_arguments)]
pub fn simulate_report(
    pmf: &SlotPmf,
    schedule: &EventSchedule,
    policy: &dyn ActivationPolicy,
    q: f64,
    c: f64,
    capacity_units: f64,
    sensors: usize,
    assignment: SlotAssignment,
    scale: Scale,
) -> SimReport {
    Simulation::builder(pmf)
        .slots(scale.slots)
        .seed(scale.seed)
        .sensors(sensors)
        .assignment(assignment)
        .battery(Energy::from_units(capacity_units))
        .run_on(schedule, policy, &mut |_| {
            Box::new(BernoulliRecharge::new(q, Energy::from_units(c)).expect("validated by caller"))
        })
        .expect("simulation configuration is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_have_expected_means() {
        assert!((weibull_pmf().mean() - 36.2).abs() < 0.5);
        assert!((pareto_pmf().mean() - 20.0).abs() < 1.0);
    }

    #[test]
    fn fig3_recharges_share_rate() {
        for (name, make) in fig3_recharges() {
            let p = make();
            assert!((p.mean_rate() - 0.5).abs() < 1e-12, "{name}");
        }
    }

    #[test]
    fn scales_are_ordered() {
        assert!(Scale::quick().slots < Scale::paper().slots);
    }
}
