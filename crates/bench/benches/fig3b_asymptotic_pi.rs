//! Regenerates the paper's Fig. 3(b) at full scale. Run: `cargo bench --bench fig3b_asymptotic_pi`.

use evcap_bench::{perf, runners, Scale};

fn main() {
    println!(
        "{}",
        perf::with_throughput("fig3b", || runners::fig3b(Scale::paper()))
    );
}
