//! Regenerates the paper's Fig. 4(a) at full scale. Run: `cargo bench --bench fig4a_policy_comparison_weibull`.

use evcap_bench::{perf, runners, Scale};

fn main() {
    println!(
        "{}",
        perf::with_throughput("fig4a", || runners::fig4a(Scale::paper()))
    );
}
