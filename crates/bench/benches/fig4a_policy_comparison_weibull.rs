//! Regenerates the paper's Fig. 4(a) at full scale. Run: `cargo bench --bench fig4a_policy_comparison_weibull`.

use evcap_bench::{runners, Scale};

fn main() {
    println!("{}", runners::fig4a(Scale::paper()));
}
