//! Regenerates the coordination and outage-robustness ablations (beyond the
//! paper). Run: `cargo bench --bench ablation_coordination`.

use evcap_bench::{perf, runners, Scale};

fn main() {
    println!(
        "{}",
        perf::with_throughput("ablation_coordination", || runners::ablation_coordination(
            Scale::paper()
        ))
    );
    println!(
        "{}",
        perf::with_throughput("ablation_outage_robustness", || {
            runners::ablation_outage_robustness(Scale::paper())
        })
    );
}
