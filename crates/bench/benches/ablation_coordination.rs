//! Regenerates the coordination and outage-robustness ablations (beyond the
//! paper). Run: `cargo bench --bench ablation_coordination`.

use evcap_bench::{runners, Scale};

fn main() {
    println!("{}", runners::ablation_coordination(Scale::paper()));
    println!("{}", runners::ablation_outage_robustness(Scale::paper()));
}
