//! Regenerates the paper's Fig. 3(a) at full scale. Run: `cargo bench --bench fig3a_asymptotic_fi`.

use evcap_bench::{perf, runners, Scale};

fn main() {
    println!(
        "{}",
        perf::with_throughput("fig3a", || runners::fig3a(Scale::paper()))
    );
}
