//! Regenerates the paper's Fig. 6(a) at full scale. Run: `cargo bench --bench fig6a_multisensor_n`.

use evcap_bench::{runners, Scale};

fn main() {
    println!("{}", runners::fig6a(Scale::paper()));
}
