//! Regenerates the paper's Fig. 6(a) at full scale. Run: `cargo bench --bench fig6a_multisensor_n`.

use evcap_bench::{perf, runners, Scale};

fn main() {
    println!(
        "{}",
        perf::with_throughput("fig6a", || runners::fig6a(Scale::paper()))
    );
}
