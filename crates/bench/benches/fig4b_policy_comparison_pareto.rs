//! Regenerates the paper's Fig. 4(b) at full scale. Run: `cargo bench --bench fig4b_policy_comparison_pareto`.

use evcap_bench::{runners, Scale};

fn main() {
    println!("{}", runners::fig4b(Scale::paper()));
}
