//! Regenerates the paper's Fig. 4(b) at full scale. Run: `cargo bench --bench fig4b_policy_comparison_pareto`.

use evcap_bench::{perf, runners, Scale};

fn main() {
    println!(
        "{}",
        perf::with_throughput("fig4b", || runners::fig4b(Scale::paper()))
    );
}
