//! Regenerates the paper's M-FI load-balance ablation at full scale. Run: `cargo bench --bench ablation_load_balance`.

use evcap_bench::{runners, Scale};

fn main() {
    println!("{}", runners::ablation_load_balance(Scale::paper()));
}
