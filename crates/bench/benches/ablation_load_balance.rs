//! Regenerates the paper's M-FI load-balance ablation at full scale. Run: `cargo bench --bench ablation_load_balance`.

use evcap_bench::{perf, runners, Scale};

fn main() {
    println!(
        "{}",
        perf::with_throughput("ablation_load_balance", || runners::ablation_load_balance(
            Scale::paper()
        ))
    );
}
