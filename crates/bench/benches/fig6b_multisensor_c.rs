//! Regenerates the paper's Fig. 6(b) at full scale. Run: `cargo bench --bench fig6b_multisensor_c`.

use evcap_bench::{perf, runners, Scale};

fn main() {
    println!(
        "{}",
        perf::with_throughput("fig6b", || runners::fig6b(Scale::paper()))
    );
}
