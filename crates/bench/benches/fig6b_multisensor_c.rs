//! Regenerates the paper's Fig. 6(b) at full scale. Run: `cargo bench --bench fig6b_multisensor_c`.

use evcap_bench::{runners, Scale};

fn main() {
    println!("{}", runners::fig6b(Scale::paper()));
}
