//! Regenerates the paper's clustering region ablation at full scale. Run: `cargo bench --bench ablation_clustering_regions`.

use evcap_bench::{perf, runners, Scale};

fn main() {
    println!(
        "{}",
        perf::with_throughput("ablation_clustering_regions", || {
            runners::ablation_clustering_regions(Scale::paper())
        })
    );
}
