//! Regenerates the paper's clustering region ablation at full scale. Run: `cargo bench --bench ablation_clustering_regions`.

use evcap_bench::{runners, Scale};

fn main() {
    println!("{}", runners::ablation_clustering_regions(Scale::paper()));
}
