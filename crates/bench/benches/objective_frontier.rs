//! Regenerates the QoM ↔ AoI frontier panels at full scale.
//! Run: `cargo bench --bench objective_frontier`.

use evcap_bench::{perf, runners, Scale};

fn main() {
    let (capture, age) = perf::with_throughput("objective_frontier", || {
        runners::objective_frontier(Scale::paper())
    });
    println!("{capture}");
    println!("{age}");
}
