//! Criterion micro-benchmarks: cost of the core algorithmic kernels.
//!
//! These are not paper figures; they document the library's own performance
//! (policy optimization latency, simulator throughput, belief-propagation
//! cost) so regressions are visible.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use evcap_core::{
    AggressivePolicy, ClusteringPolicy, EnergyBudget, EvalOptions, ExhaustiveSearch, GreedyPolicy,
};
use evcap_dist::{Discretizer, SlotPmf, SlotSampler, Weibull};
use evcap_energy::{BernoulliRecharge, ConsumptionModel, Energy};
use evcap_lp::{Problem, Relation};
use evcap_obs::{ObsConfig, ObsSuite};
use evcap_renewal::AgeBeliefDp;
use evcap_sim::Simulation;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn weibull_pmf() -> SlotPmf {
    Discretizer::new()
        .discretize(&Weibull::new(40.0, 3.0).unwrap())
        .unwrap()
}

fn bench_greedy_optimize(c: &mut Criterion) {
    let pmf = weibull_pmf();
    let consumption = ConsumptionModel::paper_defaults();
    c.bench_function("greedy_optimize_weibull", |b| {
        b.iter(|| GreedyPolicy::optimize(&pmf, EnergyBudget::per_slot(0.5), &consumption).unwrap())
    });
}

fn bench_clustering_evaluate(c: &mut Criterion) {
    let pmf = weibull_pmf();
    let consumption = ConsumptionModel::paper_defaults();
    let policy = ClusteringPolicy::new(25, 45, 60, 0.5, 1.0, 1.0).unwrap();
    c.bench_function("clustering_evaluate_weibull", |b| {
        b.iter(|| policy.evaluate(&pmf, &consumption, EvalOptions::default()))
    });
}

fn bench_belief_dp(c: &mut Criterion) {
    let pmf = weibull_pmf();
    c.bench_function("age_belief_dp_200_slots", |b| {
        b.iter(|| AgeBeliefDp::run(&pmf, |i| if i >= 25 { 1.0 } else { 0.0 }, 200))
    });
}

fn bench_simulator_throughput(c: &mut Criterion) {
    let pmf = weibull_pmf();
    c.bench_function("simulate_100k_slots_aggressive", |b| {
        b.iter(|| {
            Simulation::builder(&pmf)
                .slots(100_000)
                .seed(1)
                .run(&AggressivePolicy::new(), &mut |_| {
                    Box::new(BernoulliRecharge::new(0.5, Energy::from_units(1.0)).unwrap())
                })
                .unwrap()
        })
    });
}

fn bench_simulator_throughput_observed(c: &mut Criterion) {
    // The same run with a full ObsSuite attached: the gap to the plain
    // benchmark above is the price of the instrumentation layer (the plain
    // run goes through NullObserver, whose hooks inline to nothing).
    let pmf = weibull_pmf();
    c.bench_function("simulate_100k_slots_obs_suite", |b| {
        b.iter(|| {
            let mut suite = ObsSuite::new(ObsConfig::default());
            Simulation::builder(&pmf)
                .slots(100_000)
                .seed(1)
                .run_observed(
                    &AggressivePolicy::new(),
                    &mut |_| {
                        Box::new(BernoulliRecharge::new(0.5, Energy::from_units(1.0)).unwrap())
                    },
                    &mut suite,
                )
                .unwrap()
        })
    });
}

fn bench_slot_sampler(c: &mut Criterion) {
    let pmf = weibull_pmf();
    let sampler = SlotSampler::new(&pmf).unwrap();
    c.bench_function("slot_sampler_draw", |b| {
        b.iter_batched(
            || SmallRng::seed_from_u64(7),
            |mut rng| {
                let mut acc = 0usize;
                for _ in 0..1_000 {
                    acc += sampler.sample(&mut rng);
                }
                acc
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_lp_solve(c: &mut Criterion) {
    // The truncated paper LP at 200 variables.
    let pmf = weibull_pmf();
    let consumption = ConsumptionModel::paper_defaults();
    let horizon = 200.min(pmf.horizon());
    c.bench_function("lp_solve_paper_200_vars", |b| {
        b.iter(|| {
            let rewards: Vec<f64> = (1..=horizon).map(|i| pmf.pmf(i)).collect();
            let costs: Vec<f64> = (1..=horizon)
                .map(|i| {
                    consumption.delta1_units() * pmf.survival(i - 1)
                        + consumption.delta2_units() * pmf.pmf(i)
                })
                .collect();
            let budget = 0.5 * pmf.mean();
            let mut p = Problem::maximize(rewards);
            p.constraint(costs, Relation::Eq, budget).unwrap();
            for i in 0..horizon {
                p.upper_bound(i, 1.0).unwrap();
            }
            p.solve().unwrap()
        })
    });
}

fn bench_exhaustive_window_scaling(c: &mut Criterion) {
    // The paper's intractability claim in miniature: doubling per window
    // slot. The group makes the exponential growth visible in one report.
    let pmf = Discretizer::new()
        .discretize(&Weibull::new(6.0, 3.0).unwrap())
        .unwrap();
    let consumption = ConsumptionModel::paper_defaults();
    let mut group = c.benchmark_group("exhaustive_window");
    for window in [6usize, 8, 10, 12] {
        group.bench_function(format!("window_{window}"), |b| {
            b.iter(|| {
                ExhaustiveSearch::new(EnergyBudget::per_slot(1.0), window)
                    .optimize(&pmf, &consumption)
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_greedy_optimize,
    bench_clustering_evaluate,
    bench_belief_dp,
    bench_simulator_throughput,
    bench_simulator_throughput_observed,
    bench_slot_sampler,
    bench_lp_solve,
    bench_exhaustive_window_scaling
);
criterion_main!(benches);
