//! Regenerates the refined-policy convergence ablation (beyond the paper).
//! Run: `cargo bench --bench ablation_refined_convergence`.

use evcap_bench::{perf, runners, Scale};

fn main() {
    println!(
        "{}",
        perf::with_throughput("ablation_refined_convergence", || {
            runners::ablation_refined_convergence(Scale::paper())
        })
    );
    println!(
        "{}",
        perf::with_throughput("ablation_refined_weibull40", || {
            runners::ablation_refined_weibull40(Scale::paper())
        })
    );
}
