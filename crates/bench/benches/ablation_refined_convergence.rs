//! Regenerates the refined-policy convergence ablation (beyond the paper).
//! Run: `cargo bench --bench ablation_refined_convergence`.

use evcap_bench::{runners, Scale};

fn main() {
    println!("{}", runners::ablation_refined_convergence(Scale::paper()));
    println!("{}", runners::ablation_refined_weibull40(Scale::paper()));
}
