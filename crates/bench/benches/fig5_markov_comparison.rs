//! Regenerates both panels of the paper's Fig. 5 at full scale.
//! Run: `cargo bench --bench fig5_markov_comparison`.

use evcap_bench::{runners, Scale};
use evcap_bench::runners::Fig5Panel;

fn main() {
    println!("{}", runners::fig5(Scale::paper(), Fig5Panel::LowB));
    println!("{}", runners::fig5(Scale::paper(), Fig5Panel::HighB));
}
