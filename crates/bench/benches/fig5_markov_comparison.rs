//! Regenerates both panels of the paper's Fig. 5 at full scale.
//! Run: `cargo bench --bench fig5_markov_comparison`.

use evcap_bench::runners::Fig5Panel;
use evcap_bench::{perf, runners, Scale};

fn main() {
    println!(
        "{}",
        perf::with_throughput("fig5_low_b", || runners::fig5(
            Scale::paper(),
            Fig5Panel::LowB
        ))
    );
    println!(
        "{}",
        perf::with_throughput("fig5_high_b", || runners::fig5(
            Scale::paper(),
            Fig5Panel::HighB
        ))
    );
}
