//! Proves the hot-loop satellite: the SoA batch engine's steady-state slot
//! loop is allocation-free. All per-replication scratch (state/probability
//! buffers, trace slots, recharge sweeps) is hoisted before slot 1, so the
//! total allocation count of a batched run is independent of the slot count
//! — a 4× longer run over the same event schedule allocates exactly as many
//! times as the short one.
//!
//! This lives in its own test binary because it installs a counting global
//! allocator (and so must not share a process with tests that measure
//! anything else).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use evcap_core::AggressivePolicy;
use evcap_dist::{Discretizer, Weibull};
use evcap_energy::{BernoulliRecharge, Energy, RechargeProcess};
use evcap_sim::{BatchReport, EventSchedule, ReplicationBatch, Simulation};

/// Counts every heap allocation made through the global allocator.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Runs the batch on a shared schedule at one worker (the sequential path —
/// no thread spawns, so every allocation belongs to the engine itself) and
/// returns how many allocations the whole run made.
fn measured_run(sim: &Simulation<'_>, schedule: &EventSchedule, reps: usize) -> (u64, BatchReport) {
    let factory = |_: usize| {
        Box::new(BernoulliRecharge::new(0.5, Energy::from_units(1.0)).unwrap())
            as Box<dyn RechargeProcess>
    };
    let batch = ReplicationBatch::new(sim.clone(), reps).unwrap().threads(1);
    let before = allocations();
    let report = batch
        .run_on(schedule, &AggressivePolicy::new(), &factory)
        .unwrap();
    (allocations() - before, report)
}

#[test]
fn steady_state_slot_loop_allocates_nothing() {
    let pmf = Discretizer::new()
        .discretize(&Weibull::new(40.0, 3.0).unwrap())
        .unwrap();
    let slots = 5_000u64;
    // One schedule long enough for the 4× run, shared by both, so schedule
    // construction cannot contribute a slot-dependent allocation count.
    let schedule = EventSchedule::generate(&pmf, 4 * slots, 99).unwrap();

    let base = Simulation::builder(&pmf)
        .seed(11)
        .battery(Energy::from_units(200.0))
        .sensors(2);
    let short = base.clone().slots(slots);
    let long = base.clone().slots(4 * slots);

    // Warm-up pass to absorb any one-time lazy initialization.
    let _ = measured_run(&short, &schedule, 4);

    // The process-wide counter also sees the test harness's own background
    // threads, which allocate a couple of times at unpredictable moments.
    // The engine's true cost is the minimum over a few attempts; a genuine
    // per-slot leak would add ~15 000 allocations to the long run, far
    // beyond any background jitter.
    let min_allocs = |sim: &Simulation<'_>| {
        (0..5)
            .map(|_| measured_run(sim, &schedule, 4).0)
            .min()
            .unwrap()
    };
    let (_, short_report) = measured_run(&short, &schedule, 4);
    let (_, long_report) = measured_run(&long, &schedule, 4);
    let short_allocs = min_allocs(&short);
    let long_allocs = min_allocs(&long);

    // Sanity: both runs actually simulated (and the long one saw more).
    assert!(short_report.events > 0);
    assert!(long_report.events > short_report.events);

    assert!(
        long_allocs.abs_diff(short_allocs) <= 8,
        "allocation count grew with the slot count — the SoA slot loop is \
         allocating in steady state ({short_allocs} for {slots} slots vs \
         {long_allocs} for {} slots)",
        4 * slots
    );
    // And the fixed setup cost is genuinely modest: buffers scale with
    // replications × sensors, not slots.
    assert!(
        short_allocs < 600,
        "batch setup made {short_allocs} allocations — scratch is leaking \
         into per-slot work"
    );
}
