//! Property-based equivalence between the lockstep SoA batch engine and the
//! scalar engine: for randomized scenarios spanning distribution families,
//! recharge kinds, coordination modes, and policy shapes, every per-seed
//! [`evcap_sim::SimReport`] out of a [`ReplicationBatch`] must be
//! bit-identical to a standalone scalar run with the same strided seed, and
//! the cross-seed reduction must not depend on the thread/chunk count.

use evcap_core::{ActivationPolicy, AggressivePolicy, EnergyBudget, GreedyPolicy};
use evcap_dist::{Discretizer, Exponential, InterArrival, Pareto, UniformArrival, Weibull};
use evcap_energy::{
    BernoulliRecharge, ConstantRecharge, ConsumptionModel, Energy, PeriodicRecharge,
    RechargeProcess, UniformRecharge,
};
use evcap_sim::{EventSchedule, OutagePlan, OutageWindow, ReplicationBatch, Simulation};
use proptest::prelude::*;

/// A static recharge configuration the factory can replay deterministically
/// for the scalar and batched engines alike.
#[derive(Debug, Clone, Copy)]
enum Recharge {
    Bernoulli { q: f64, c: f64 },
    Constant { rate: f64 },
    Periodic { amount: f64, period: u32 },
    Uniform { lo: f64, hi: f64 },
}

impl Recharge {
    /// Builds the process for one sensor. Parameters are staggered by sensor
    /// index so multi-sensor scenarios exercise heterogeneous processes of
    /// the same kind (the case the SoA sweep classifier must keep separate
    /// per sensor).
    fn make(self, sensor: usize) -> Box<dyn RechargeProcess> {
        let bump = 1.0 + sensor as f64 * 0.25;
        match self {
            Recharge::Bernoulli { q, c } => {
                Box::new(BernoulliRecharge::new(q, Energy::from_units(c * bump)).unwrap())
            }
            Recharge::Constant { rate } => {
                Box::new(ConstantRecharge::new(Energy::from_units(rate * bump)).unwrap())
            }
            Recharge::Periodic { amount, period } => Box::new(
                PeriodicRecharge::new(Energy::from_units(amount * bump), period + sensor as u32)
                    .unwrap(),
            ),
            Recharge::Uniform { lo, hi } => Box::new(
                UniformRecharge::new(Energy::from_units(lo), Energy::from_units(hi * bump))
                    .unwrap(),
            ),
        }
    }
}

/// Heterogeneous inter-arrival distributions, kept at modest horizons so the
/// per-case discretization and greedy solve stay cheap.
fn arb_dist() -> impl Strategy<Value = Box<dyn InterArrival>> {
    prop_oneof![
        (2.0f64..40.0, 0.6f64..4.0)
            .prop_map(|(s, k)| Box::new(Weibull::new(s, k).unwrap()) as Box<dyn InterArrival>),
        (0.02f64..0.8)
            .prop_map(|r| Box::new(Exponential::new(r).unwrap()) as Box<dyn InterArrival>),
        (1.2f64..3.0, 1.0f64..15.0)
            .prop_map(|(a, s)| Box::new(Pareto::new(a, s).unwrap()) as Box<dyn InterArrival>),
        (1.0f64..8.0, 9.0f64..30.0).prop_map(|(lo, hi)| {
            Box::new(UniformArrival::new(lo, hi).unwrap()) as Box<dyn InterArrival>
        }),
    ]
}

fn arb_recharge() -> impl Strategy<Value = Recharge> {
    prop_oneof![
        (0.1f64..0.9, 0.5f64..2.0).prop_map(|(q, c)| Recharge::Bernoulli { q, c }),
        (0.1f64..1.5).prop_map(|rate| Recharge::Constant { rate }),
        (1.0f64..5.0, 2u32..9).prop_map(|(amount, period)| Recharge::Periodic { amount, period }),
        (0.0f64..0.5, 0.6f64..2.0).prop_map(|(lo, hi)| Recharge::Uniform { lo, hi }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn soa_batches_are_bit_identical_to_strided_scalar_runs(
        dist in arb_dist(),
        recharge in arb_recharge(),
        seed in 0u64..10_000,
        slots in 400u64..1_500,
        sensors in 1usize..=3,
        independent in (0u8..2).prop_map(|b| b == 1),
        greedy in (0u8..2).prop_map(|b| b == 1),
        reps_idx in 0usize..3,
        warmup in 0u64..40,
        with_outage in (0u8..2).prop_map(|b| b == 1),
    ) {
        let reps = [1usize, 3, 16][reps_idx];
        let pmf = Discretizer::new()
            .max_horizon(512)
            .discretize(dist.as_ref())
            .expect("discretizes");

        let greedy_policy;
        let aggressive_policy;
        let policy: &(dyn ActivationPolicy + Sync) = if greedy {
            greedy_policy = GreedyPolicy::optimize(
                &pmf,
                EnergyBudget::per_slot(0.5),
                &ConsumptionModel::paper_defaults(),
            )
            .expect("solves");
            &greedy_policy
        } else {
            aggressive_policy = AggressivePolicy::new();
            &aggressive_policy
        };

        let mut sim = Simulation::builder(&pmf)
            .slots(slots)
            .seed(seed)
            .battery(Energy::from_units(150.0))
            .sensors(sensors)
            .warmup_slots(warmup)
            .trace_slots(16);
        if independent {
            sim = sim.independent();
        }
        if with_outage {
            sim = sim.outages(OutagePlan::from_windows(vec![OutageWindow {
                sensor: 0,
                from: 50,
                to: 90,
            }]));
        }

        // Reference: one truly independent scalar run per strided seed.
        let seeds = ReplicationBatch::new(sim.clone(), reps).expect("valid").seeds();
        let scalar: Vec<_> = seeds
            .iter()
            .map(|&s| {
                sim.clone()
                    .seed(s)
                    .run(policy, &mut |i: usize| recharge.make(i))
                    .expect("scalar run")
            })
            .collect();

        let factory = move |s: usize| recharge.make(s);
        let mut reductions = Vec::new();
        for &threads in &[1usize, 2, 8] {
            let report = ReplicationBatch::new(sim.clone(), reps)
                .expect("valid")
                .threads(threads)
                .run(policy, &factory)
                .expect("batched run");
            prop_assert_eq!(
                &report.reports, &scalar,
                "per-seed reports diverged from scalar runs at threads={}", threads
            );
            // Age-of-information statistics, explicitly: the integer
            // accumulators must match the scalar engine bit for bit and
            // satisfy their internal invariants at every thread count.
            for (batched, reference) in report.reports.iter().zip(&scalar) {
                prop_assert_eq!(
                    (batched.measured_slots, batched.age_sum, batched.peak_age),
                    (reference.measured_slots, reference.age_sum, reference.peak_age),
                    "age statistics diverged at threads={}", threads
                );
                prop_assert_eq!(batched.measured_slots, slots - warmup);
                prop_assert!(batched.age_sum <= batched.measured_slots * batched.peak_age.max(1));
                prop_assert_eq!(batched.mean_age().to_bits(), reference.mean_age().to_bits());
            }
            reductions.push(report);
        }
        for r in &reductions[1..] {
            prop_assert_eq!(r, &reductions[0], "reduction depends on thread count");
        }

        // The shared-schedule variant (common random numbers) must agree
        // with scalar `run_on` against the same schedule.
        let schedule = EventSchedule::generate(&pmf, slots, seed).expect("schedule");
        let on_scalar: Vec<_> = seeds
            .iter()
            .map(|&s| {
                sim.clone()
                    .seed(s)
                    .run_on(&schedule, policy, &mut |i: usize| recharge.make(i))
                    .expect("scalar run_on")
            })
            .collect();
        let on_batched = ReplicationBatch::new(sim.clone(), reps)
            .expect("valid")
            .threads(2)
            .run_on(&schedule, policy, &factory)
            .expect("batched run_on");
        prop_assert_eq!(&on_batched.reports, &on_scalar, "shared-schedule reports diverged");
    }
}
