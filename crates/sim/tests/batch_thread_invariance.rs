//! The batched-reduction determinism contract, exercised through the
//! process-global `EVCAP_THREADS` override (the unit tests pin thread
//! counts via `ReplicationBatch::threads`, which bypasses the variable).
//!
//! Everything lives in one `#[test]` because the override is process-global
//! mutable state: parallel test threads must not race on it.

use evcap_core::{AggressivePolicy, EnergyBudget, GreedyPolicy};
use evcap_dist::{Discretizer, Weibull};
use evcap_energy::{BernoulliRecharge, ConsumptionModel, Energy, RechargeProcess};
use evcap_sim::{ReplicationBatch, Simulation};

fn bernoulli() -> impl Fn(usize) -> Box<dyn RechargeProcess> + Sync {
    |_| Box::new(BernoulliRecharge::new(0.5, Energy::from_units(1.0)).unwrap())
}

#[test]
fn batch_report_is_bit_identical_for_evcap_threads_1_2_8() {
    let pmf = Discretizer::new()
        .discretize(&Weibull::new(40.0, 3.0).unwrap())
        .unwrap();
    let greedy = GreedyPolicy::optimize(
        &pmf,
        EnergyBudget::per_slot(0.5),
        &ConsumptionModel::paper_defaults(),
    )
    .unwrap();

    // One policy with a precompiled table (greedy) and one without a
    // nontrivial table path being special-cased (aggressive), both through
    // the env-var thread selection.
    for (label, policy) in [
        (
            "greedy",
            &greedy as &(dyn evcap_core::ActivationPolicy + Sync),
        ),
        ("aggressive", &AggressivePolicy::new()),
    ] {
        let sim = Simulation::builder(&pmf)
            .slots(30_000)
            .seed(11)
            .battery(Energy::from_units(200.0));
        let mut reports = Vec::new();
        for threads in ["1", "2", "8"] {
            std::env::set_var("EVCAP_THREADS", threads);
            let report = ReplicationBatch::new(sim.clone(), 6)
                .unwrap()
                .run(policy, &bernoulli())
                .unwrap();
            std::env::remove_var("EVCAP_THREADS");
            reports.push((threads, report));
        }
        let (_, reference) = &reports[0];
        for (threads, report) in &reports[1..] {
            assert_eq!(
                report, reference,
                "{label}: EVCAP_THREADS={threads} diverged from EVCAP_THREADS=1"
            );
        }

        // And each batched seed is bit-identical to a standalone run.
        let batch = ReplicationBatch::new(sim.clone(), 6).unwrap();
        for (i, seed) in batch.seeds().into_iter().enumerate() {
            let standalone = sim
                .clone()
                .seed(seed)
                .run(policy, &mut |_: usize| {
                    Box::new(BernoulliRecharge::new(0.5, Energy::from_units(1.0)).unwrap())
                        as Box<dyn RechargeProcess>
                })
                .unwrap();
            assert_eq!(
                reference.reports[i], standalone,
                "{label}: replication {i} diverged from standalone seed {seed}"
            );
        }
    }
}
