//! Failure injection: sensor outage windows.
//!
//! Real deployments lose nodes — radio faults, weather, tampering. An
//! [`OutagePlan`] takes sensors offline for slot ranges; an offline sensor
//! neither decides nor senses (its harvester keeps charging the bucket, as a
//! supercapacitor would). The robustness tests use this to check that a
//! coordinated fleet degrades gracefully rather than collapsing.

use rand::Rng;

/// One outage: `sensor` is offline during slots `from..=to` (inclusive,
/// 1-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutageWindow {
    /// Index of the affected sensor.
    pub sensor: usize,
    /// First offline slot.
    pub from: u64,
    /// Last offline slot.
    pub to: u64,
}

/// A set of outage windows, queryable per slot.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OutagePlan {
    /// Windows sorted by `(sensor, from)`.
    windows: Vec<OutageWindow>,
}

impl OutagePlan {
    /// An empty plan (no failures).
    pub fn none() -> Self {
        Self::default()
    }

    /// Builds a plan from explicit windows.
    ///
    /// # Panics
    ///
    /// Panics if any window has `from == 0` or `from > to`.
    pub fn from_windows(mut windows: Vec<OutageWindow>) -> Self {
        for w in &windows {
            assert!(w.from >= 1, "slots are 1-based");
            assert!(w.from <= w.to, "outage window is inverted: {w:?}");
        }
        windows.sort_by_key(|w| (w.sensor, w.from));
        Self { windows }
    }

    /// Samples random outages: each sensor independently fails with
    /// probability `p_fail` per `period` slots, staying down for
    /// `down_slots`.
    pub fn sample<R: Rng + ?Sized>(
        rng: &mut R,
        sensors: usize,
        horizon: u64,
        period: u64,
        p_fail: f64,
        down_slots: u64,
    ) -> Self {
        let mut windows = Vec::new();
        let period = period.max(1);
        for sensor in 0..sensors {
            let mut t = 1;
            while t <= horizon {
                if rng.random::<f64>() < p_fail {
                    let to = (t + down_slots.saturating_sub(1)).min(horizon);
                    windows.push(OutageWindow {
                        sensor,
                        from: t,
                        to,
                    });
                    t = to + 1;
                } else {
                    t += period;
                }
            }
        }
        Self::from_windows(windows)
    }

    /// Returns `true` if the plan has no windows.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// The windows, sorted by `(sensor, from)`.
    pub fn windows(&self) -> &[OutageWindow] {
        &self.windows
    }

    /// Whether `sensor` is offline in `slot`. O(log n) per query.
    pub fn is_down(&self, sensor: usize, slot: u64) -> bool {
        // Find the last window for this sensor starting at or before `slot`.
        let idx = self
            .windows
            .partition_point(|w| (w.sensor, w.from) <= (sensor, slot));
        if idx == 0 {
            return false;
        }
        let w = self.windows[idx - 1];
        w.sensor == sensor && w.from <= slot && slot <= w.to
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn empty_plan_is_never_down() {
        let plan = OutagePlan::none();
        assert!(!plan.is_down(0, 1));
        assert!(plan.is_empty());
    }

    #[test]
    fn windows_are_inclusive() {
        let plan = OutagePlan::from_windows(vec![OutageWindow {
            sensor: 1,
            from: 10,
            to: 20,
        }]);
        assert!(!plan.is_down(1, 9));
        assert!(plan.is_down(1, 10));
        assert!(plan.is_down(1, 15));
        assert!(plan.is_down(1, 20));
        assert!(!plan.is_down(1, 21));
        // Other sensors are unaffected.
        assert!(!plan.is_down(0, 15));
        assert!(!plan.is_down(2, 15));
    }

    #[test]
    fn multiple_windows_per_sensor() {
        let plan = OutagePlan::from_windows(vec![
            OutageWindow {
                sensor: 0,
                from: 30,
                to: 40,
            },
            OutageWindow {
                sensor: 0,
                from: 5,
                to: 8,
            },
        ]);
        assert!(plan.is_down(0, 6));
        assert!(!plan.is_down(0, 20));
        assert!(plan.is_down(0, 35));
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn rejects_inverted_windows() {
        OutagePlan::from_windows(vec![OutageWindow {
            sensor: 0,
            from: 9,
            to: 3,
        }]);
    }

    #[test]
    fn sampled_outages_stay_in_range() {
        let mut rng = SmallRng::seed_from_u64(3);
        let plan = OutagePlan::sample(&mut rng, 4, 10_000, 100, 0.05, 250);
        for w in plan.windows() {
            assert!(w.sensor < 4);
            assert!(w.from >= 1 && w.to <= 10_000 && w.from <= w.to);
        }
        // With p=0.05 per 100 slots over 10k slots × 4 sensors, expect a
        // handful of outages.
        assert!(!plan.is_empty());
    }
}
