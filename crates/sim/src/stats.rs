//! Replication statistics: run an experiment across seeds and summarize.
//!
//! A single `10^6`-slot run already averages ~28 000 events, but A/B
//! comparisons near crossover points need honest error bars. [`replicate`]
//! runs a closure once per seed and [`Summary`] reports the mean, sample
//! standard deviation, and a normal-approximation confidence interval.

/// Summary statistics of a replicated measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of replications.
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (unbiased, `n−1` denominator; 0 for a
    /// single replication).
    pub std_dev: f64,
}

impl Summary {
    /// Computes a summary from raw values.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    pub fn from_values(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "need at least one replication");
        let n = values.len();
        let mean = values.iter().sum::<f64>() / n as f64;
        let std_dev = if n > 1 {
            let ss: f64 = values.iter().map(|v| (v - mean) * (v - mean)).sum();
            (ss / (n - 1) as f64).sqrt()
        } else {
            0.0
        };
        Self { n, mean, std_dev }
    }

    /// Standard error of the mean.
    pub fn std_error(&self) -> f64 {
        self.std_dev / (self.n as f64).sqrt()
    }

    /// A symmetric normal-approximation confidence half-width at the given
    /// z-score (1.96 ≈ 95%, 2.58 ≈ 99%).
    pub fn half_width(&self, z: f64) -> f64 {
        z * self.std_error()
    }

    /// The 95% confidence interval `(lo, hi)`.
    pub fn ci95(&self) -> (f64, f64) {
        let hw = self.half_width(1.96);
        (self.mean - hw, self.mean + hw)
    }

    /// Whether this summary's 95% interval is entirely above `other`'s —
    /// the one-line "A beats B significantly" check used by tests.
    pub fn significantly_above(&self, other: &Summary) -> bool {
        self.ci95().0 > other.ci95().1
    }
}

/// Runs `experiment(seed)` for `replications` seeds derived from
/// `base_seed` and summarizes the results.
///
/// # Panics
///
/// Panics if `replications == 0`.
pub fn replicate(
    base_seed: u64,
    replications: usize,
    mut experiment: impl FnMut(u64) -> f64,
) -> Summary {
    assert!(replications > 0, "need at least one replication");
    let values: Vec<f64> = (0..replications)
        .map(|i| experiment(base_seed.wrapping_add(i as u64).wrapping_mul(0x9E37_79B9)))
        .collect();
    Summary::from_values(&values)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_constant_values() {
        let s = Summary::from_values(&[0.5, 0.5, 0.5]);
        assert_eq!(s.mean, 0.5);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.ci95(), (0.5, 0.5));
    }

    #[test]
    fn summary_matches_hand_computation() {
        let s = Summary::from_values(&[1.0, 2.0, 3.0, 4.0]);
        assert!((s.mean - 2.5).abs() < 1e-12);
        // Sample variance = (2.25 + 0.25 + 0.25 + 2.25)/3 = 5/3.
        assert!((s.std_dev - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert!((s.std_error() - s.std_dev / 2.0).abs() < 1e-12);
    }

    #[test]
    fn single_value_has_zero_spread() {
        let s = Summary::from_values(&[0.7]);
        assert_eq!(s.n, 1);
        assert_eq!(s.std_dev, 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_values_panic() {
        Summary::from_values(&[]);
    }

    #[test]
    fn replicate_uses_distinct_seeds() {
        let mut seen = Vec::new();
        let s = replicate(7, 5, |seed| {
            seen.push(seed);
            seed as f64
        });
        assert_eq!(s.n, 5);
        seen.dedup();
        assert_eq!(seen.len(), 5, "seeds must differ");
    }

    #[test]
    fn significance_check() {
        let high = Summary::from_values(&[0.80, 0.81, 0.79, 0.80]);
        let low = Summary::from_values(&[0.50, 0.51, 0.49, 0.50]);
        assert!(high.significantly_above(&low));
        assert!(!low.significantly_above(&high));
        // Overlapping intervals are not significant.
        let near = Summary::from_values(&[0.78, 0.90, 0.70, 0.84]);
        assert!(!near.significantly_above(&high) && !high.significantly_above(&near));
    }
}
