//! Simulation outputs: per-sensor statistics, traces, and the QoM report.

use evcap_energy::Energy;

/// Per-sensor accounting for one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SensorStats {
    /// Slots in which the sensor was active.
    pub activations: u64,
    /// Events this sensor captured.
    pub captures: u64,
    /// Slots in which the policy wanted to activate but the battery was
    /// below the `δ1 + δ2` threshold.
    pub forced_idle: u64,
    /// Slots in which the sensor was offline due to an injected outage.
    pub outage_slots: u64,
    /// Total energy consumed (sensing + capture costs).
    pub consumed: Energy,
    /// Total energy absorbed into the battery.
    pub recharged: Energy,
    /// Recharge energy lost to a full battery.
    pub overflow: Energy,
    /// Battery level at the start of the run.
    pub initial_level: Energy,
    /// Battery level at the end of the run.
    pub final_level: Energy,
}

impl SensorStats {
    /// Checks exact energy conservation:
    /// `initial + recharged − consumed = final`.
    ///
    /// (`recharged` counts only absorbed energy; `overflow` is what bounced
    /// off a full battery.)
    pub fn conserves_energy(&self) -> bool {
        self.initial_level + self.recharged - self.consumed == self.final_level
    }
}

/// One slot of a recorded trace (the paper's Section V worked example).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceRecord {
    /// Global slot `t`.
    pub slot: u64,
    /// Index of the sensor in charge (sensor 0 in independent mode).
    pub owner: usize,
    /// The information-state index `i` the owner decided from (0 if the
    /// owner was down).
    pub state: usize,
    /// Whether the policy voted to activate.
    pub wanted_active: bool,
    /// Whether the sensor actually activated (vote ∧ energy feasible).
    pub active: bool,
    /// Whether an event occurred in the slot.
    pub event: bool,
    /// Whether the event was captured (by any sensor).
    pub captured: bool,
}

/// A snapshot of every sensor's battery level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatterySample {
    /// Slot at which the sample was taken (after the slot completed).
    pub slot: u64,
    /// Battery level per sensor.
    pub levels: Vec<Energy>,
}

/// The outcome of a simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Simulated horizon, in slots.
    pub slots: u64,
    /// Events that occurred.
    pub events: u64,
    /// Events captured in their slot (counted once even if several sensors
    /// captured the same event).
    pub captures: u64,
    /// Per-sensor accounting.
    pub sensors: Vec<SensorStats>,
    /// Slots counted toward the age statistics (the post-warmup horizon).
    pub measured_slots: u64,
    /// Sum over measured slots of the age of information — slots since the
    /// last fleet-wide capture (0 in a capture slot). Integer, so the
    /// scalar and SoA engines agree bit for bit.
    pub age_sum: u64,
    /// Largest age observed in a measured slot.
    pub peak_age: u64,
    /// Recorded per-slot trace (empty unless tracing was enabled).
    pub trace: Vec<TraceRecord>,
    /// Sampled battery levels (empty unless sampling was enabled).
    pub battery_trace: Vec<BatterySample>,
}

impl SimReport {
    /// Time-average age of information over the measured horizon, in slots
    /// (0.0 for an empty measurement window).
    pub fn mean_age(&self) -> f64 {
        if self.measured_slots == 0 {
            0.0
        } else {
            self.age_sum as f64 / self.measured_slots as f64
        }
    }
    /// The achieved quality of monitoring `U_K(π)` — Eq. (1): fraction of
    /// events captured in the slot they occurred. Returns 1.0 for an
    /// event-free run (nothing was missed).
    pub fn qom(&self) -> f64 {
        if self.events == 0 {
            1.0
        } else {
            self.captures as f64 / self.events as f64
        }
    }

    /// Total activations across sensors.
    pub fn total_activations(&self) -> u64 {
        self.sensors.iter().map(|s| s.activations).sum()
    }

    /// Total slots in which some sensor's vote was blocked by energy.
    pub fn total_forced_idle(&self) -> u64 {
        self.sensors.iter().map(|s| s.forced_idle).sum()
    }

    /// Total energy consumed across sensors.
    pub fn total_consumed(&self) -> Energy {
        self.sensors.iter().map(|s| s.consumed).sum()
    }

    /// Total sensor-slots lost to injected outages.
    pub fn total_outage_slots(&self) -> u64 {
        self.sensors.iter().map(|s| s.outage_slots).sum()
    }

    /// Load balance across sensors: ratio of the minimum to the maximum
    /// per-sensor activation count (1.0 = perfectly balanced; 1.0 for a
    /// single sensor; 0.0 if some sensor never activates while another
    /// does).
    pub fn load_balance(&self) -> f64 {
        let max = self
            .sensors
            .iter()
            .map(|s| s.activations)
            .max()
            .unwrap_or(0);
        if max == 0 {
            return 1.0;
        }
        let min = self
            .sensors
            .iter()
            .map(|s| s.activations)
            .min()
            .unwrap_or(0);
        min as f64 / max as f64
    }

    /// Empirical per-slot discharge rate across the whole deployment.
    pub fn discharge_rate(&self) -> f64 {
        self.total_consumed().as_units() / self.slots as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(activations: u64, captures: u64) -> SensorStats {
        SensorStats {
            activations,
            captures,
            ..SensorStats::default()
        }
    }

    fn report(events: u64, captures: u64, sensors: Vec<SensorStats>) -> SimReport {
        SimReport {
            slots: 100,
            events,
            captures,
            sensors,
            measured_slots: 0,
            age_sum: 0,
            peak_age: 0,
            trace: vec![],
            battery_trace: vec![],
        }
    }

    #[test]
    fn qom_counts_fraction() {
        assert!((report(10, 7, vec![]).qom() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn qom_of_eventless_run_is_one() {
        assert_eq!(report(0, 0, vec![]).qom(), 1.0);
    }

    #[test]
    fn load_balance_ratio() {
        let r = report(0, 0, vec![stats(10, 0), stats(5, 0)]);
        assert!((r.load_balance() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn load_balance_with_no_activations_is_one() {
        let r = report(0, 0, vec![stats(0, 0), stats(0, 0)]);
        assert_eq!(r.load_balance(), 1.0);
    }

    #[test]
    fn totals_aggregate_over_sensors() {
        let mut a = stats(3, 1);
        a.forced_idle = 2;
        a.outage_slots = 5;
        let mut b = stats(4, 2);
        b.forced_idle = 1;
        b.outage_slots = 7;
        let r = report(5, 3, vec![a, b]);
        assert_eq!(r.total_activations(), 7);
        assert_eq!(r.total_forced_idle(), 3);
        assert_eq!(r.total_outage_slots(), 12);
    }

    #[test]
    fn mean_age_divides_by_measured_slots() {
        let mut r = report(5, 3, vec![]);
        r.measured_slots = 50;
        r.age_sum = 125;
        r.peak_age = 9;
        assert!((r.mean_age() - 2.5).abs() < 1e-12);
        r.measured_slots = 0;
        assert_eq!(r.mean_age(), 0.0);
    }

    #[test]
    fn conservation_identity() {
        let s = SensorStats {
            initial_level: Energy::from_units(500.0),
            recharged: Energy::from_units(120.0),
            consumed: Energy::from_units(100.0),
            final_level: Energy::from_units(520.0),
            ..SensorStats::default()
        };
        assert!(s.conserves_energy());
        let bad = SensorStats {
            final_level: Energy::from_units(521.0),
            ..s
        };
        assert!(!bad.conserves_energy());
    }
}
