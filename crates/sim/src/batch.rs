//! Batched Monte Carlo replication of one scenario across many seeds.
//!
//! A single `10^6`-slot run gives one sample of the QoM; confidence
//! intervals need many independent seeds. [`ReplicationBatch`] makes that
//! fan-out a first-class primitive instead of a caller-side loop:
//!
//! * the policy's activation coefficients are compiled to a flat
//!   [`PolicyTable`] **once per batch** (stationary policies), and the
//!   scenario's event sampler (alias tables over the inter-arrival pmf) is
//!   built **once per batch** and shared read-only across replications;
//! * replications advance **in lockstep over slots** inside each worker:
//!   a contiguous chunk of seeds runs through the structure-of-arrays
//!   engine ([`crate::soa`]), whose per-slot work is flat sweeps over
//!   per-replication lanes (battery levels, capture ages, event cursors,
//!   RNG states) rather than one full scalar pass per seed;
//! * chunks run in parallel over [`crate::parallel::parallel_map_with`]
//!   worker threads, and results reduce into a [`BatchReport`] in **seed
//!   order**, so the output is bit-identical no matter how many threads ran
//!   the batch — and each per-seed [`SimReport`] is bit-identical to a
//!   standalone [`Simulation::run`] with that seed.
//!
//! Seed `i` is `base + i·0x9E37_79B9_7F4A_7C15` (the 64-bit golden-ratio
//! stride, odd, hence a permutation of the seed space). Seed 0 *is* the
//! base seed, so a one-replication batch reproduces today's single runs
//! exactly.
//!
//! Timing spans fire once per chunk (`sim.batch.run`), not once per
//! replication; [`ReplicationBatch::phase_timing`] additionally attributes
//! the slot loop to per-phase samples.
//!
//! # Example
//!
//! ```
//! use evcap_core::AggressivePolicy;
//! use evcap_dist::{Discretizer, Weibull};
//! use evcap_energy::{BernoulliRecharge, Energy};
//! use evcap_sim::{ReplicationBatch, Simulation};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let pmf = Discretizer::new().discretize(&Weibull::new(40.0, 3.0)?)?;
//! let sim = Simulation::builder(&pmf).slots(20_000).seed(7);
//! let batch = ReplicationBatch::new(sim, 8)?;
//! let report = batch.run(&AggressivePolicy::new(), &|_| {
//!     Box::new(BernoulliRecharge::new(0.5, Energy::from_units(1.0)).expect("valid"))
//! })?;
//! assert_eq!(report.replications(), 8);
//! let (lo, hi) = report.qom.ci95();
//! assert!(lo <= report.qom.mean && report.qom.mean <= hi);
//! # Ok(())
//! # }
//! ```

use evcap_core::{ActivationPolicy, InfoModel, PolicyTable};
use evcap_dist::SlotSampler;
use evcap_energy::RechargeProcess;
use evcap_obs::timing::{self, Stopwatch};

use crate::engine::{DynProb, ProbSource, Simulation, TableProb};
use crate::events::EventSchedule;
use crate::metrics::SimReport;
use crate::parallel::{parallel_map_with, resolved_threads};
use crate::soa::{self, ChunkSchedules};
use crate::stats::Summary;
use crate::{Result, SimError};

/// Thread-safe factory producing one recharge process per sensor index.
///
/// The batched runner calls it from worker threads (sensor by sensor,
/// replication by replication), so unlike the single-run
/// [`crate::RechargeFactory`] it must be `Fn + Sync` rather than `FnMut`.
pub type SyncRechargeFactory<'f> = dyn Fn(usize) -> Box<dyn RechargeProcess> + Sync + 'f;

/// The golden-ratio seed stride: odd, so seeds never collide, and seed 0 is
/// the base seed itself.
const SEED_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

/// N independent replications of one configured scenario.
///
/// Built from a [`Simulation`] (whose `seed` becomes the batch's base seed)
/// and a replication count. See the module-level docs for the determinism
/// contract.
#[derive(Debug, Clone)]
pub struct ReplicationBatch<'a> {
    sim: Simulation<'a>,
    replications: usize,
    threads: Option<usize>,
    table: Option<PolicyTable>,
    phased: bool,
}

impl<'a> ReplicationBatch<'a> {
    /// Wraps a configured simulation into a batch of `replications` seeds.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ZeroReplications`] for an empty batch.
    pub fn new(sim: Simulation<'a>, replications: usize) -> Result<Self> {
        if replications == 0 {
            return Err(SimError::ZeroReplications);
        }
        Ok(Self {
            sim,
            replications,
            threads: None,
            table: None,
            phased: false,
        })
    }

    /// Supplies a pre-solved activation table (e.g. from an
    /// `evcap_spec::SolvedPolicy` artifact), skipping the per-batch
    /// `policy.table()` compilation. The table must belong to the policy
    /// passed to [`ReplicationBatch::run`]; passing `None` keeps the
    /// default per-batch compilation.
    #[must_use]
    pub fn precompiled(mut self, table: Option<PolicyTable>) -> Self {
        self.table = table;
        self
    }

    /// Pins the worker-thread count, bypassing the machine default and the
    /// `EVCAP_THREADS` override. The result is identical either way; this
    /// only controls parallelism.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// Attributes each chunk's slot loop to per-phase timing samples
    /// (`sim.batch.phase.generate` / `.recharge` / `.decide` / `.events`)
    /// on top of the usual `sim.batch.run` span. The extra clock reads sit
    /// inside the hot loop, so leave this off when measuring throughput;
    /// results are bit-identical either way.
    #[must_use]
    pub fn phase_timing(mut self, enabled: bool) -> Self {
        self.phased = enabled;
        self
    }

    /// The number of replications in the batch.
    pub fn replications(&self) -> usize {
        self.replications
    }

    /// The derived per-replication seeds, in reduction order. Seed 0 is the
    /// base seed of the wrapped simulation.
    pub fn seeds(&self) -> Vec<u64> {
        (0..self.replications as u64)
            .map(|i| self.sim.seed.wrapping_add(i.wrapping_mul(SEED_STRIDE)))
            .collect()
    }

    /// Contiguous `(start, len)` chunks of the replication range, one per
    /// effective worker. Chunk boundaries carry no simulation state — every
    /// replication's result depends only on its own seed — so the partition
    /// affects scheduling, never output.
    fn chunks(&self) -> Vec<(usize, usize)> {
        let workers = resolved_threads(self.threads).min(self.replications);
        let base = self.replications / workers;
        let extra = self.replications % workers;
        let mut chunks = Vec::with_capacity(workers);
        let mut start = 0;
        for w in 0..workers {
            let len = base + usize::from(w < extra);
            chunks.push((start, len));
            start += len;
        }
        chunks
    }

    /// Runs every replication (each with its own sampled event schedule)
    /// and reduces into a [`BatchReport`].
    ///
    /// # Errors
    ///
    /// The first failing chunk's [`SimError`], in seed order (configuration
    /// errors are seed-independent, so every chunk fails identically).
    pub fn run(
        &self,
        policy: &(dyn ActivationPolicy + Sync),
        make_recharge: &SyncRechargeFactory<'_>,
    ) -> Result<BatchReport> {
        // Shared, immutable per-batch precomputation: the alias-table event
        // sampler and the policy's flat activation table. Worker threads
        // only ever read them.
        let sampler = SlotSampler::new(self.sim.pmf)?;
        let mean_gap = self.sim.pmf.mean();
        let compiled = self.compile(policy);
        let seeds = self.seeds();
        let _span = timing::span("sim.batch");
        let results = parallel_map_with(self.chunks(), self.threads, |(start, len)| {
            let chunk_seeds = &seeds[start..start + len];
            let mut gen_watch = self.phased.then(Stopwatch::new);
            if let Some(w) = gen_watch.as_mut() {
                // deepcheck:allow(panic-path): `w.start()` is Stopwatch::start; the edge to Server::start is a method-name alias
                w.start();
            }
            let mut schedules = Vec::with_capacity(len);
            for &seed in chunk_seeds {
                schedules.push(EventSchedule::generate_shared(
                    &sampler,
                    mean_gap,
                    self.sim.slots,
                    seed,
                )?);
            }
            if let Some(w) = gen_watch.take() {
                w.record("sim.batch.phase.generate");
            }
            self.run_chunk(
                chunk_seeds,
                &ChunkSchedules::PerReplication(&schedules),
                &compiled,
                make_recharge,
            )
        });
        self.reduce_chunks(results)
    }

    /// Runs every replication on one **shared** pre-sampled event schedule
    /// (decision RNG streams still differ by seed) — the common-random-
    /// numbers mode the figure runners use for A/B policy comparisons.
    ///
    /// # Errors
    ///
    /// As [`ReplicationBatch::run`], plus [`SimError::ScheduleTooShort`].
    pub fn run_on(
        &self,
        schedule: &EventSchedule,
        policy: &(dyn ActivationPolicy + Sync),
        make_recharge: &SyncRechargeFactory<'_>,
    ) -> Result<BatchReport> {
        let compiled = self.compile(policy);
        let seeds = self.seeds();
        let _span = timing::span("sim.batch");
        let results = parallel_map_with(self.chunks(), self.threads, |(start, len)| {
            self.run_chunk(
                &seeds[start..start + len],
                &ChunkSchedules::Shared(schedule),
                &compiled,
                make_recharge,
            )
        });
        self.reduce_chunks(results)
    }

    /// Uses the caller-supplied precompiled table when one was attached,
    /// otherwise compiles the policy's own table once for the batch.
    fn compile<'p>(&self, policy: &'p (dyn ActivationPolicy + Sync)) -> Compiled<'p> {
        let mut compiled = Compiled::of(policy);
        if let Some(table) = &self.table {
            compiled.table = Some(table.clone());
        }
        compiled
    }

    /// Dispatches one chunk of seeds into the lockstep SoA engine,
    /// monomorphized over the probability source exactly as the scalar
    /// engine is.
    fn run_chunk(
        &self,
        seeds: &[u64],
        schedules: &ChunkSchedules<'_>,
        compiled: &Compiled<'_>,
        make_recharge: &SyncRechargeFactory<'_>,
    ) -> Result<Vec<SimReport>> {
        match &compiled.table {
            Some(table) => self.dispatch(
                seeds,
                schedules,
                compiled.info,
                &TableProb(table),
                make_recharge,
            ),
            None => self.dispatch(
                seeds,
                schedules,
                compiled.info,
                &DynProb(compiled.policy),
                make_recharge,
            ),
        }
    }

    fn dispatch<P: ProbSource>(
        &self,
        seeds: &[u64],
        schedules: &ChunkSchedules<'_>,
        info: InfoModel,
        prob: &P,
        make_recharge: &SyncRechargeFactory<'_>,
    ) -> Result<Vec<SimReport>> {
        soa::run_chunk(
            &self.sim,
            seeds,
            schedules,
            info,
            prob,
            make_recharge,
            self.phased,
        )
    }

    /// Flattens chunk results (surfacing the first chunk's error, which for
    /// the seed-independent configuration errors is the same error every
    /// chunk hit) and folds the per-seed reports sequentially in seed
    /// order: f64 accumulation order is fixed, so the report is
    /// bit-identical for any worker-thread count.
    fn reduce_chunks(&self, results: Vec<Result<Vec<SimReport>>>) -> Result<BatchReport> {
        let mut reports = Vec::with_capacity(self.replications);
        for result in results {
            reports.extend(result?);
        }
        let qom: Vec<f64> = reports.iter().map(SimReport::qom).collect();
        let discharge: Vec<f64> = reports.iter().map(SimReport::discharge_rate).collect();
        let mean_age_values: Vec<f64> = reports.iter().map(SimReport::mean_age).collect();
        let peak_age = reports.iter().map(|r| r.peak_age).max().unwrap_or(0);
        let mut events = 0u64;
        let mut captures = 0u64;
        let mut activations = 0u64;
        let mut forced_idle = 0u64;
        let mut final_units = 0.0f64;
        let mut sensor_count = 0usize;
        for report in &reports {
            events += report.events;
            captures += report.captures;
            activations += report.total_activations();
            forced_idle += report.total_forced_idle();
            for sensor in &report.sensors {
                final_units += sensor.final_level.as_units();
                sensor_count += 1;
            }
        }
        let capacity = self.sim.battery_capacity.as_units();
        let mean_final_fill = if capacity > 0.0 && sensor_count > 0 {
            final_units / (sensor_count as f64 * capacity)
        } else {
            0.0
        };
        let measured_slots = reports.len() as u64 * (self.sim.slots - self.sim.warmup_slots);
        let mean_capture_gap = if captures > 0 {
            Some(measured_slots as f64 / captures as f64)
        } else {
            None
        };
        Ok(BatchReport {
            slots: self.sim.slots,
            seeds: self.seeds(),
            qom: Summary::from_values(&qom),
            discharge: Summary::from_values(&discharge),
            events,
            captures,
            activations,
            forced_idle,
            mean_final_fill,
            mean_capture_gap,
            mean_age: Summary::from_values(&mean_age_values),
            peak_age,
            reports,
        })
    }
}

/// Per-batch compilation of the policy: info model hoisted, activation
/// table (when stationary) built exactly once and shared by every
/// replication.
struct Compiled<'p> {
    policy: &'p (dyn ActivationPolicy + Sync),
    info: InfoModel,
    table: Option<PolicyTable>,
}

impl<'p> Compiled<'p> {
    fn of(policy: &'p (dyn ActivationPolicy + Sync)) -> Self {
        Self {
            policy,
            info: policy.info_model(),
            table: policy.table(),
        }
    }
}

/// The deterministic reduction of a [`ReplicationBatch`].
///
/// Per-replication [`SimReport`]s are kept (in seed order) alongside the
/// cross-replication summaries, so callers can drill into any seed.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchReport {
    /// Slots simulated per replication.
    pub slots: u64,
    /// The per-replication seeds, aligned with `reports`.
    pub seeds: Vec<u64>,
    /// Every replication's full report, in seed order.
    pub reports: Vec<SimReport>,
    /// Mean / sample std-dev / CI of the per-replication QoM.
    pub qom: Summary,
    /// Mean / sample std-dev / CI of the per-replication discharge rate.
    pub discharge: Summary,
    /// Pooled event count across replications (post-warm-up).
    pub events: u64,
    /// Pooled capture count across replications (post-warm-up).
    pub captures: u64,
    /// Pooled activation count across replications.
    pub activations: u64,
    /// Pooled forced-idle count across replications.
    pub forced_idle: u64,
    /// Mean final battery fill fraction across replications and sensors.
    pub mean_final_fill: f64,
    /// Pooled mean slots between fleet-wide captures (post-warm-up), or
    /// `None` if nothing was captured.
    pub mean_capture_gap: Option<f64>,
    /// Mean / sample std-dev / CI of the per-replication mean age of
    /// information ([`SimReport::mean_age`]).
    pub mean_age: Summary,
    /// Largest age of information observed in any replication's measured
    /// window.
    pub peak_age: u64,
}

impl BatchReport {
    /// Number of replications reduced into this report.
    pub fn replications(&self) -> usize {
        self.reports.len()
    }

    /// The pooled QoM `Σ captures / Σ events` (weights replications by
    /// their event counts, unlike `qom.mean`).
    pub fn pooled_qom(&self) -> f64 {
        if self.events == 0 {
            0.0
        } else {
            self.captures as f64 / self.events as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evcap_core::AggressivePolicy;
    use evcap_dist::{Discretizer, SlotPmf, Weibull};
    use evcap_energy::{BernoulliRecharge, Energy};

    fn weibull_pmf() -> SlotPmf {
        Discretizer::new()
            .discretize(&Weibull::new(40.0, 3.0).unwrap())
            .unwrap()
    }

    fn bernoulli(q: f64, c: f64) -> impl Fn(usize) -> Box<dyn RechargeProcess> + Sync {
        move |_| Box::new(BernoulliRecharge::new(q, Energy::from_units(c)).unwrap())
    }

    #[test]
    fn zero_replications_rejected() {
        let pmf = weibull_pmf();
        let sim = Simulation::builder(&pmf).slots(1_000);
        assert!(matches!(
            ReplicationBatch::new(sim, 0),
            Err(SimError::ZeroReplications)
        ));
    }

    #[test]
    fn seed_zero_is_the_base_seed() {
        let pmf = weibull_pmf();
        let batch = ReplicationBatch::new(Simulation::builder(&pmf).seed(123), 3).unwrap();
        let seeds = batch.seeds();
        assert_eq!(seeds[0], 123);
        assert_eq!(seeds.len(), 3);
        let mut dedup = seeds.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), 3, "seeds must differ");
    }

    #[test]
    fn chunks_cover_the_replication_range_exactly() {
        let pmf = weibull_pmf();
        for (reps, threads) in [(1, 1), (7, 2), (7, 3), (16, 8), (3, 100)] {
            let batch = ReplicationBatch::new(Simulation::builder(&pmf), reps)
                .unwrap()
                .threads(threads);
            let chunks = batch.chunks();
            assert_eq!(chunks.len(), threads.min(reps));
            let mut next = 0;
            for &(start, len) in &chunks {
                assert_eq!(start, next, "chunks are contiguous");
                assert!(len > 0, "no empty chunks");
                next += len;
            }
            assert_eq!(next, reps, "chunks cover every replication");
            let (min, max) = chunks.iter().fold((usize::MAX, 0), |(lo, hi), &(_, len)| {
                (lo.min(len), hi.max(len))
            });
            assert!(max - min <= 1, "chunks are balanced: {chunks:?}");
        }
    }

    #[test]
    fn single_replication_batch_matches_single_run() {
        let pmf = weibull_pmf();
        let sim = Simulation::builder(&pmf).slots(20_000).seed(9);
        let single = sim
            .clone()
            .run(&AggressivePolicy::new(), &mut |_: usize| {
                Box::new(BernoulliRecharge::new(0.5, Energy::from_units(1.0)).unwrap())
                    as Box<dyn RechargeProcess>
            })
            .unwrap();
        let batch = ReplicationBatch::new(sim, 1).unwrap();
        let report = batch
            .run(&AggressivePolicy::new(), &bernoulli(0.5, 1.0))
            .unwrap();
        assert_eq!(report.reports[0], single);
        assert_eq!(report.qom.mean, single.qom());
        assert_eq!(report.qom.std_dev, 0.0);
    }

    #[test]
    fn every_seed_matches_standalone_run() {
        let pmf = weibull_pmf();
        let sim = Simulation::builder(&pmf).slots(15_000).seed(77).sensors(2);
        let batch = ReplicationBatch::new(sim.clone(), 5).unwrap();
        let report = batch
            .run(&AggressivePolicy::new(), &bernoulli(0.4, 1.0))
            .unwrap();
        for (i, seed) in batch.seeds().into_iter().enumerate() {
            let standalone = sim
                .clone()
                .seed(seed)
                .run(&AggressivePolicy::new(), &mut |_: usize| {
                    Box::new(BernoulliRecharge::new(0.4, Energy::from_units(1.0)).unwrap())
                        as Box<dyn RechargeProcess>
                })
                .unwrap();
            assert_eq!(report.reports[i], standalone, "replication {i}");
        }
    }

    #[test]
    fn reduction_is_invariant_under_thread_count() {
        let pmf = weibull_pmf();
        let sim = Simulation::builder(&pmf).slots(10_000).seed(5);
        let reference = ReplicationBatch::new(sim.clone(), 7)
            .unwrap()
            .threads(1)
            .run(&AggressivePolicy::new(), &bernoulli(0.5, 1.0))
            .unwrap();
        for threads in [2, 3, 8] {
            let report = ReplicationBatch::new(sim.clone(), 7)
                .unwrap()
                .threads(threads)
                .run(&AggressivePolicy::new(), &bernoulli(0.5, 1.0))
                .unwrap();
            assert_eq!(report, reference, "threads = {threads}");
        }
    }

    #[test]
    fn phase_timing_mode_is_bit_identical() {
        let pmf = weibull_pmf();
        let sim = Simulation::builder(&pmf).slots(10_000).seed(15).sensors(2);
        let plain = ReplicationBatch::new(sim.clone(), 3)
            .unwrap()
            .run(&AggressivePolicy::new(), &bernoulli(0.5, 1.0))
            .unwrap();
        let phased = ReplicationBatch::new(sim, 3)
            .unwrap()
            .phase_timing(true)
            .run(&AggressivePolicy::new(), &bernoulli(0.5, 1.0))
            .unwrap();
        assert_eq!(plain, phased);
    }

    #[test]
    fn shared_schedule_mode_holds_events_fixed() {
        let pmf = weibull_pmf();
        let schedule = EventSchedule::generate(&pmf, 12_000, 3).unwrap();
        let sim = Simulation::builder(&pmf).slots(12_000).seed(3);
        let report = ReplicationBatch::new(sim, 4)
            .unwrap()
            .run_on(&schedule, &AggressivePolicy::new(), &bernoulli(0.5, 1.0))
            .unwrap();
        for rep in &report.reports {
            assert_eq!(rep.events, report.reports[0].events);
        }
        // Decision RNG streams still differ, so the runs are not clones.
        assert_eq!(report.replications(), 4);
    }

    #[test]
    fn pooled_statistics_add_up() {
        let pmf = weibull_pmf();
        let sim = Simulation::builder(&pmf).slots(8_000).seed(21);
        let report = ReplicationBatch::new(sim, 3)
            .unwrap()
            .run(&AggressivePolicy::new(), &bernoulli(0.5, 1.0))
            .unwrap();
        let events: u64 = report.reports.iter().map(|r| r.events).sum();
        let captures: u64 = report.reports.iter().map(|r| r.captures).sum();
        assert_eq!(report.events, events);
        assert_eq!(report.captures, captures);
        assert!(report.pooled_qom() > 0.0 && report.pooled_qom() <= 1.0);
        assert!(report.mean_final_fill >= 0.0 && report.mean_final_fill <= 1.0);
        let gap = report.mean_capture_gap.expect("captures happened");
        assert!(gap >= 1.0, "{gap}");
    }

    #[test]
    fn precompiled_table_matches_default_compilation() {
        use evcap_core::ClusteringPolicy;
        let pmf = weibull_pmf();
        let policy = ClusteringPolicy::new(20, 40, 60, 0.5, 1.0, 0.25).unwrap();
        let sim = Simulation::builder(&pmf).slots(12_000).seed(11);
        let default = ReplicationBatch::new(sim.clone(), 3)
            .unwrap()
            .run(&policy, &bernoulli(0.5, 1.0))
            .unwrap();
        let pre = ReplicationBatch::new(sim, 3)
            .unwrap()
            .precompiled(policy.table())
            .run(&policy, &bernoulli(0.5, 1.0))
            .unwrap();
        assert_eq!(pre, default);
    }

    #[test]
    fn first_error_in_seed_order_is_returned() {
        let pmf = weibull_pmf();
        // A schedule shorter than the horizon fails inside every
        // replication; the batch must surface it as an error, not panic.
        let short = EventSchedule::from_slots(vec![1], 10);
        let sim = Simulation::builder(&pmf).slots(100).seed(1);
        let err = ReplicationBatch::new(sim, 3)
            .unwrap()
            .run_on(&short, &AggressivePolicy::new(), &bernoulli(0.5, 1.0))
            .unwrap_err();
        assert!(matches!(err, SimError::ScheduleTooShort { .. }));
    }
}
