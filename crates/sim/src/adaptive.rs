//! Online adaptation: learn the event process while capturing it.
//!
//! The paper assumes the inter-arrival distribution is *known*. In a fresh
//! deployment it is not — but under full information every event is observed
//! after the fact, so the sensor can fit the distribution from its own log
//! and re-optimize. [`run_adaptive_greedy`] plays that loop in episodes:
//!
//! 1. run an episode with the current policy (bootstrapping with the
//!    aggressive policy when nothing is known yet);
//! 2. append the episode's observed inter-arrival gaps to the log;
//! 3. refit an empirical [`SlotPmf`] and recompute the greedy policy.
//!
//! The per-episode QoM climbs from the aggressive baseline to the oracle's
//! level within a few episodes — the library's answer to "what if μ, F are
//! unknown?".

use evcap_core::{ActivationPolicy, AggressivePolicy, EnergyBudget, GreedyPolicy};
use evcap_dist::{EmpiricalGaps, SlotPmf};
use evcap_energy::{ConsumptionModel, Energy, RechargeProcess};

use crate::engine::Simulation;
use crate::events::EventSchedule;
use crate::{Result, SimError};

/// Controls for the adaptive loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveConfig {
    /// Number of episodes to run.
    pub episodes: usize,
    /// Slots per episode.
    pub episode_slots: u64,
    /// Base seed (each episode derives its own).
    pub seed: u64,
    /// Battery capacity (fresh, half-full, each episode).
    pub capacity: Energy,
    /// Observations required before the first refit.
    pub min_observations: usize,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        Self {
            episodes: 6,
            episode_slots: 50_000,
            seed: 7,
            capacity: Energy::from_units(1000.0),
            min_observations: 50,
        }
    }
}

/// One episode's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct EpisodeOutcome {
    /// Episode index (0-based).
    pub episode: usize,
    /// Events that occurred.
    pub events: u64,
    /// Events captured.
    pub captures: u64,
    /// The label of the policy used this episode.
    pub policy: String,
    /// Observations accumulated *before* this episode ran.
    pub observations: usize,
}

impl EpisodeOutcome {
    /// The episode's QoM.
    pub fn qom(&self) -> f64 {
        if self.events == 0 {
            1.0
        } else {
            self.captures as f64 / self.events as f64
        }
    }
}

/// The outcome of the adaptive loop.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveReport {
    /// Per-episode outcomes, in order.
    pub episodes: Vec<EpisodeOutcome>,
}

impl AdaptiveReport {
    /// QoM of the final episode (the converged behavior).
    pub fn final_qom(&self) -> f64 {
        self.episodes.last().map(EpisodeOutcome::qom).unwrap_or(1.0)
    }

    /// QoM of the first episode (the uninformed bootstrap).
    pub fn initial_qom(&self) -> f64 {
        self.episodes
            .first()
            .map(EpisodeOutcome::qom)
            .unwrap_or(1.0)
    }
}

/// Runs the learn-and-re-optimize loop against the (hidden) true process.
///
/// # Errors
///
/// * [`SimError::ZeroSlots`] for a zero-episode or zero-slot configuration.
/// * Simulation and fitting errors propagate.
pub fn run_adaptive_greedy(
    truth: &SlotPmf,
    budget: EnergyBudget,
    consumption: &ConsumptionModel,
    make_recharge: &mut (dyn FnMut(usize) -> Box<dyn RechargeProcess> + '_),
    config: AdaptiveConfig,
) -> Result<AdaptiveReport> {
    if config.episodes == 0 || config.episode_slots == 0 {
        return Err(SimError::ZeroSlots);
    }
    let mut observed_gaps: Vec<usize> = Vec::new();
    let mut fitted_policy: Option<GreedyPolicy> = None;
    let mut episodes = Vec::with_capacity(config.episodes);

    for episode in 0..config.episodes {
        let schedule = EventSchedule::generate(
            truth,
            config.episode_slots,
            config.seed.wrapping_add(episode as u64 * 0x9E37),
        )?;
        let observations = observed_gaps.len();
        let bootstrap = AggressivePolicy::new(); // tidy:allow(solve-site): episode re-planning from the fitted empirical pmf; no scenario spec exists
        let policy: &dyn ActivationPolicy = match &fitted_policy {
            Some(p) => p,
            None => &bootstrap,
        };
        let report = Simulation::builder(truth)
            .slots(config.episode_slots)
            .seed(config.seed.wrapping_add(episode as u64 * 0x51_7C))
            .battery(config.capacity)
            .run_on(&schedule, policy, make_recharge)?;
        episodes.push(EpisodeOutcome {
            episode,
            events: report.events,
            captures: report.captures,
            policy: policy.label(),
            observations,
        });

        // Full information: every event is observed after the fact, so the
        // whole schedule enters the log (the first gap is anchored at the
        // episode's slot 0, matching the paper's convention).
        let mut prev = 0u64;
        for &slot in schedule.event_slots() {
            observed_gaps.push((slot - prev) as usize);
            prev = slot;
        }

        if observed_gaps.len() >= config.min_observations {
            let fitted =
                EmpiricalGaps::from_slot_gaps(observed_gaps.clone())?.to_slot_pmf(Some(0.5))?;
            // tidy:allow(solve-site): episode re-planning from the fitted empirical pmf; no scenario spec exists
            fitted_policy = Some(GreedyPolicy::optimize(&fitted, budget, consumption)?);
        }
    }
    Ok(AdaptiveReport { episodes })
}

#[cfg(test)]
mod tests {
    use super::*;
    use evcap_dist::{Discretizer, Weibull};
    use evcap_energy::BernoulliRecharge;

    #[test]
    fn adapts_toward_the_oracle() {
        let truth = Discretizer::new()
            .discretize(&Weibull::new(40.0, 3.0).unwrap())
            .unwrap();
        let consumption = ConsumptionModel::paper_defaults();
        let budget = EnergyBudget::per_slot(0.5);
        let report = run_adaptive_greedy(
            &truth,
            budget,
            &consumption,
            &mut |_| Box::new(BernoulliRecharge::new(0.5, Energy::from_units(1.0)).unwrap()),
            AdaptiveConfig {
                episodes: 5,
                episode_slots: 80_000,
                ..AdaptiveConfig::default()
            },
        )
        .unwrap();
        let oracle = GreedyPolicy::optimize(&truth, budget, &consumption).unwrap();
        // Bootstrap episode (aggressive) is clearly below the oracle…
        assert!(
            report.initial_qom() < oracle.ideal_qom() - 0.1,
            "{}",
            report.initial_qom()
        );
        // …and the converged episodes reach it (within simulation noise).
        assert!(
            report.final_qom() > oracle.ideal_qom() - 0.05,
            "final {} vs oracle {}",
            report.final_qom(),
            oracle.ideal_qom()
        );
        // The log grows monotonically across episodes.
        for pair in report.episodes.windows(2) {
            assert!(pair[1].observations > pair[0].observations);
        }
    }

    #[test]
    fn bootstrap_policy_is_aggressive() {
        let truth = Discretizer::new()
            .discretize(&Weibull::new(10.0, 3.0).unwrap())
            .unwrap();
        let report = run_adaptive_greedy(
            &truth,
            EnergyBudget::per_slot(0.5),
            &ConsumptionModel::paper_defaults(),
            &mut |_| Box::new(BernoulliRecharge::new(0.5, Energy::from_units(1.0)).unwrap()),
            AdaptiveConfig {
                episodes: 2,
                episode_slots: 10_000,
                ..AdaptiveConfig::default()
            },
        )
        .unwrap();
        assert!(report.episodes[0].policy.contains("aggressive"));
        assert!(report.episodes[1].policy.contains("greedy"));
    }

    #[test]
    fn zero_config_rejected() {
        let truth = SlotPmf::from_pmf(vec![1.0]).unwrap();
        let err = run_adaptive_greedy(
            &truth,
            EnergyBudget::per_slot(0.5),
            &ConsumptionModel::paper_defaults(),
            &mut |_| Box::new(BernoulliRecharge::new(0.5, Energy::from_units(1.0)).unwrap()),
            AdaptiveConfig {
                episodes: 0,
                ..AdaptiveConfig::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, SimError::ZeroSlots));
    }
}
