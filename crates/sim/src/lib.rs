//! Slotted discrete-time simulator for rechargeable event-capture sensors.
//!
//! This crate is the experimental testbed of the reproduction: it plays an
//! activation policy against a sampled renewal event process, with real
//! finite batteries (capacity `K`, overflow losses, forced idling below the
//! `δ1 + δ2` activation threshold) and any of the recharge processes from
//! `evcap-energy`. It implements both of the paper's observation models and
//! the multi-sensor round-robin coordination of Section V.
//!
//! The in-slot ordering follows the paper's Fig. 1 exactly:
//!
//! 1. every sensor's recharge `e_t` is applied (clamped at `K`);
//! 2. the sensor in charge of the slot makes its activation decision from
//!    its information state (and is forced inactive below `δ1 + δ2`);
//! 3. the event, if any, occurs; an active in-charge sensor captures it
//!    (consuming `δ2` on top of the `δ1` sensing cost).
//!
//! # Example
//!
//! ```
//! use evcap_core::AggressivePolicy;
//! use evcap_dist::{Discretizer, Weibull};
//! use evcap_energy::{BernoulliRecharge, Energy};
//! use evcap_sim::Simulation;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let pmf = Discretizer::new().discretize(&Weibull::new(40.0, 3.0)?)?;
//! let report = Simulation::builder(&pmf)
//!     .slots(100_000)
//!     .seed(7)
//!     .battery(Energy::from_units(1000.0))
//!     .run(&AggressivePolicy::new(), &mut |_| {
//!         Box::new(BernoulliRecharge::new(0.5, Energy::from_units(1.0)).expect("valid"))
//!     })?;
//! assert!(report.events > 0);
//! assert!(report.qom() > 0.0 && report.qom() <= 1.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

mod adaptive;
mod batch;
mod engine;
mod error;
mod events;
mod metrics;
mod outage;
pub mod parallel;
mod sizing;
mod soa;
mod stats;

pub use adaptive::{run_adaptive_greedy, AdaptiveConfig, AdaptiveReport, EpisodeOutcome};
pub use batch::{BatchReport, ReplicationBatch, SyncRechargeFactory};
pub use engine::{Coordination, RechargeFactory, Simulation};
pub use error::SimError;
pub use events::EventSchedule;
pub use metrics::{BatterySample, SensorStats, SimReport, TraceRecord};
pub use outage::{OutagePlan, OutageWindow};
pub use sizing::{recommend_capacity, CapacityRecommendation, SizingOptions};
pub use stats::{replicate, Summary};

/// Convenience alias for results in this crate.
pub type Result<T, E = SimError> = std::result::Result<T, E>;
