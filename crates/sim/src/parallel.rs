//! Order-preserving parallel map over independent work items.
//!
//! Replication batches and figure sweeps are embarrassingly parallel —
//! every item runs its own simulations on a shared, immutable setup — so
//! callers fan items out over scoped worker threads. Results come back in
//! input order regardless of completion order, which is what makes the
//! batch layer's sequential reduction deterministic under any thread count.
//!
//! This lives in `evcap-sim` (the bottom of the simulation stack) so the
//! batch engine can use it; `evcap_bench::parallel` re-exports it for the
//! figure runners and the serving load generator.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

/// Applies `f` to every item on up to `threads` worker threads (capped at
/// the item count), returning results in the input order.
///
/// The thread count defaults to the machine's available parallelism; the
/// `EVCAP_THREADS` environment variable overrides it (in either direction:
/// CI pins worker counts deterministically, and I/O-bound callers like
/// `evcap loadgen` oversubscribe cores with connection-per-thread workers).
///
/// Workers claim *chunks* of contiguous indices rather than single items,
/// so cheap per-item closures amortize the claim over several items while
/// expensive stragglers still rebalance across threads.
///
/// # Panics
///
/// Propagates a panic from any worker (the whole map panics, matching the
/// behavior of a sequential loop).
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    parallel_map_with(items, None, f)
}

/// Resolves an optional explicit thread count to the effective worker
/// count: the explicit value when given, else the `EVCAP_THREADS`
/// environment override, else the machine's available parallelism. Always
/// at least 1. This is the single resolution rule shared by
/// [`parallel_map_with`] and the batch engine's chunk partitioning, so
/// "how many workers would run" and "how many chunks to cut" can never
/// disagree.
pub fn resolved_threads(threads: Option<usize>) -> usize {
    threads
        .unwrap_or_else(|| {
            std::env::var("EVCAP_THREADS")
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
                .filter(|&t| t > 0)
                .unwrap_or_else(|| {
                    std::thread::available_parallelism()
                        .map(|p| p.get())
                        .unwrap_or(1)
                })
        })
        .max(1)
}

/// [`parallel_map`] with an explicit thread count.
///
/// `threads: Some(n)` bypasses both the machine default and the
/// `EVCAP_THREADS` override — callers that must pin parallelism without
/// touching process-global environment (e.g. thread-invariance tests, the
/// `bench-sim` sweep) pass it directly. `None` behaves like
/// [`parallel_map`].
///
/// # Panics
///
/// As [`parallel_map`].
pub fn parallel_map_with<T, R, F>(items: Vec<T>, threads: Option<usize>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = resolved_threads(threads).min(n).max(1);
    if threads == 1 {
        return items.into_iter().map(f).collect();
    }

    // Chunked claiming: aim for ~8 claims per thread so the atomic traffic
    // is negligible for tiny closures, while chunks stay small enough that
    // an uneven workload still rebalances.
    let chunk = (n / (threads * 8)).max(1);

    // Items move into Option slots; workers claim chunk-aligned index
    // ranges via an atomic cursor and deposit results into matching slots.
    let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                if start >= n {
                    break;
                }
                for i in start..(start + chunk).min(n) {
                    let item = work[i]
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .take()
                        // deepcheck:allow(panic-path): the atomic cursor hands each index to exactly one worker, so the slot is always full here
                        .expect("each index is claimed once");
                    let value = f(item);
                    *results[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(value);
                }
            });
        }
    });
    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(PoisonError::into_inner)
                // deepcheck:allow(panic-path): the scope joins every worker and the cursor covers every index, so each slot was filled
                .expect("every index was processed")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = parallel_map((0..100).collect(), |i: i32| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = parallel_map(Vec::<i32>::new(), |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item() {
        assert_eq!(parallel_map(vec![7], |i: i32| i + 1), vec![8]);
    }

    #[test]
    fn work_actually_runs_concurrently_or_not_but_is_correct() {
        // Heavier closure exercising the claim/deposit paths.
        let out = parallel_map((0..32).collect(), |i: u64| {
            let mut acc = 0u64;
            for k in 0..10_000 {
                acc = acc.wrapping_add(k * i);
            }
            acc
        });
        assert_eq!(out.len(), 32);
        assert_eq!(out[0], 0);
    }

    #[test]
    fn evcap_threads_override_is_honored() {
        // Set the override for this process; the map below must still be
        // correct (and exercise the multi-thread claim/deposit path even on
        // a single-core machine). The variable is cleared afterwards so
        // other tests see the default behavior.
        std::env::set_var("EVCAP_THREADS", "4");
        let out = parallel_map((0..64).collect(), |i: i32| i * 2);
        std::env::remove_var("EVCAP_THREADS");
        assert_eq!(out, (0..64).map(|i| i * 2).collect::<Vec<_>>());

        // Garbage values fall back to the default.
        std::env::set_var("EVCAP_THREADS", "zero");
        let out = parallel_map(vec![1, 2, 3], |i: i32| i);
        std::env::remove_var("EVCAP_THREADS");
        assert_eq!(out, vec![1, 2, 3]);

        // The shared resolution rule: explicit beats the env override,
        // which beats the machine default; never below 1.
        std::env::set_var("EVCAP_THREADS", "5");
        assert_eq!(resolved_threads(Some(3)), 3);
        assert_eq!(resolved_threads(None), 5);
        std::env::remove_var("EVCAP_THREADS");
        assert_eq!(resolved_threads(Some(0)), 1);
        assert!(resolved_threads(None) >= 1);
    }

    #[test]
    fn explicit_thread_counts_agree() {
        let expected: Vec<i64> = (0..203).map(|i| i * 3 - 1).collect();
        for threads in [1, 2, 3, 8, 64] {
            let out = parallel_map_with((0..203).collect(), Some(threads), |i: i64| i * 3 - 1);
            assert_eq!(out, expected, "threads = {threads}");
        }
    }

    #[test]
    fn chunking_covers_every_index_when_n_is_not_a_multiple() {
        // 1000 items over 3 threads → chunk ≈ 41; the tail chunk is short.
        let out = parallel_map_with((0..1000).collect(), Some(3), |i: u32| i + 1);
        assert_eq!(out, (1..=1000).collect::<Vec<_>>());
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let out = parallel_map_with(vec![1, 2, 3], Some(100), |i: i32| i * 10);
        assert_eq!(out, vec![10, 20, 30]);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panic_propagates() {
        parallel_map(vec![1, 2, 3], |i: i32| {
            if i == 2 {
                panic!("boom");
            }
            i
        });
    }
}
