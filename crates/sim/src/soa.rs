//! Lockstep structure-of-arrays execution of replication chunks.
//!
//! The scalar engine ([`Simulation::run`]) advances one replication over
//! its horizon. This module advances a whole *chunk* of replications in
//! lockstep over slots instead: every per-replication scalar of the slot
//! loop — battery level, capture ages, event cursor, RNG state, stat
//! counters — lives in a flat buffer indexed by `replication` (or
//! `replication × sensor`), and each step of the slot loop becomes a tight
//! sweep across those lanes. The sweeps are branch-light on purpose:
//! configuration-level branches (coordination mode, outages, tracing,
//! recharge process shape) are hoisted out of the lane loops, so what
//! remains per lane is arithmetic the compiler can vectorize.
//!
//! # Why determinism survives
//!
//! Each replication owns a private `SmallRng` (seeded exactly as a scalar
//! run with that seed would be) and a private event cursor. Within a slot,
//! every sweep visits a replication's RNG in the same order the scalar
//! engine would: recharge draws for sensors `0..S` in index order, then
//! the activation coin (drawn *only* for probabilities strictly inside
//! `(0, 1)`, via the shared [`crate::engine::coin_wants`]), then the
//! pre-sampled event check (no draws). Interleaving replications between
//! those per-replication draws cannot reorder any single stream, so every
//! lane reproduces its scalar run bit for bit — the equivalence suite in
//! `tests/soa_equivalence.rs` holds this to the letter. Chunk boundaries
//! carry no state at all, which is why the batch's reduction is identical
//! under any worker-thread count.
//!
//! Energy arithmetic mirrors [`evcap_energy::Battery`] exactly: levels are
//! raw milli-unit `i64`s with the same clamp-at-capacity recharge and
//! all-or-nothing consume, and stat accumulators use the same saturating
//! adds as [`Energy`].

use evcap_core::{DecisionContext, InfoModel};
use evcap_energy::{Battery, Energy, RechargeKind, RechargeProcess};
use evcap_obs::timing::{self, Stopwatch};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::batch::SyncRechargeFactory;
use crate::engine::{coin_wants, event_occurs, Coordination, ProbSource, Simulation};
use crate::events::EventSchedule;
use crate::metrics::{BatterySample, SensorStats, SimReport, TraceRecord};
use crate::{Result, SimError};

/// Where a chunk's replications get their event timelines.
pub(crate) enum ChunkSchedules<'a> {
    /// One independently sampled schedule per replication (the default
    /// [`crate::ReplicationBatch::run`] mode).
    PerReplication(&'a [EventSchedule]),
    /// One schedule shared by every replication (the common-random-numbers
    /// [`crate::ReplicationBatch::run_on`] mode).
    Shared(&'a EventSchedule),
}

impl ChunkSchedules<'_> {
    fn for_replication(&self, r: usize) -> &EventSchedule {
        match self {
            ChunkSchedules::PerReplication(schedules) => &schedules[r],
            ChunkSchedules::Shared(schedule) => schedule,
        }
    }
}

/// Runs `seeds.len()` replications of `sim` in lockstep and returns their
/// per-seed reports in seed order. `phased` additionally attributes the
/// slot loop's time to per-phase `sim.batch.phase.*` timing samples (one
/// registry touch per phase per chunk, never per slot).
pub(crate) fn run_chunk<P: ProbSource>(
    sim: &Simulation<'_>,
    seeds: &[u64],
    schedules: &ChunkSchedules<'_>,
    info: InfoModel,
    prob: &P,
    make_recharge: &SyncRechargeFactory<'_>,
    phased: bool,
) -> Result<Vec<SimReport>> {
    if phased {
        run_chunk_inner::<P, true>(sim, seeds, schedules, info, prob, make_recharge)
    } else {
        run_chunk_inner::<P, false>(sim, seeds, schedules, info, prob, make_recharge)
    }
}

/// How one sensor column's recharge sweep executes. Closed-form kinds
/// (reported by [`RechargeProcess::kind`] and identical across the chunk's
/// replications) run as inlined lane sweeps; everything else falls back to
/// the per-lane virtual `next` call — exactly what the scalar engine does
/// every slot.
enum RechargeSweep {
    Bernoulli { q: f64, c_millis: i64 },
    Constant { rate_millis: i64 },
    Periodic { amount_millis: i64, period: u32 },
    Uniform { lo_millis: i64, hi_millis: i64 },
    Dynamic,
}

fn run_chunk_inner<P: ProbSource, const PHASED: bool>(
    sim: &Simulation<'_>,
    seeds: &[u64],
    schedules: &ChunkSchedules<'_>,
    info: InfoModel,
    prob: &P,
    make_recharge: &SyncRechargeFactory<'_>,
) -> Result<Vec<SimReport>> {
    // Validation mirrors the scalar engine's `run_core`, in the same order,
    // so a failing configuration surfaces the same error either way.
    if sim.slots == 0 {
        return Err(SimError::ZeroSlots);
    }
    if sim.sensors == 0 {
        return Err(SimError::NoSensors);
    }
    let reps = seeds.len();
    let sensors = sim.sensors;
    let lanes = reps * sensors;
    for r in 0..reps {
        let schedule = schedules.for_replication(r);
        if schedule.slots() < sim.slots {
            return Err(SimError::ScheduleTooShort {
                schedule_slots: schedule.slots(),
                needed: sim.slots,
            });
        }
    }
    if sim.warmup_slots >= sim.slots {
        return Err(SimError::ZeroSlots);
    }

    let threshold_m = sim.consumption.activation_threshold().as_millis();
    let d1_m = sim.consumption.sensing_cost().as_millis();
    let d2_m = sim.consumption.capture_cost().as_millis();
    let cap_m = sim.battery_capacity.as_millis();

    // Battery construction (and its validation) is shared with the scalar
    // path; every lane starts from the same level.
    let proto = match sim.initial_level {
        Some(level) => Battery::new(sim.battery_capacity, level)?,
        None => Battery::half_full(sim.battery_capacity)?,
    };
    let init_m = proto.level().as_millis();

    // --- Structure-of-arrays state ---------------------------------------
    // Lane index is `r * sensors + s`; per-replication state indexes by `r`.
    let mut level = vec![init_m; lanes];
    let mut consumed = vec![0i64; lanes];
    let mut recharged = vec![0i64; lanes];
    let mut overflow = vec![0i64; lanes];
    let mut activations = vec![0u64; lanes];
    let mut sensor_captures = vec![0u64; lanes];
    let mut forced_idle = vec![0u64; lanes];
    let mut outage_slots = vec![0u64; lanes];
    let mut own_last_capture = vec![0u64; lanes];
    let mut active = vec![false; lanes];
    let mut last_event = vec![0u64; reps];
    let mut shared_last_capture = vec![0u64; reps];
    let mut events = vec![0u64; reps];
    let mut captures = vec![0u64; reps];
    let mut age_sum = vec![0u64; reps];
    let mut peak_age = vec![0u64; reps];
    let mut next_event = vec![0usize; reps];
    let mut rngs: Vec<SmallRng> = seeds
        .iter()
        .map(|&seed| SmallRng::seed_from_u64(seed))
        .collect();

    // Recharge processes are built through the same factory calls, in the
    // same per-replication order, as the scalar runs would make.
    let mut procs: Vec<Box<dyn RechargeProcess>> = Vec::with_capacity(lanes);
    for _r in 0..reps {
        for s in 0..sensors {
            procs.push(make_recharge(s));
        }
    }
    // Per-sensor sweep classification: a closed-form sweep is only safe if
    // every replication's process for that sensor reports the identical
    // kind (the factory is indexed by sensor, so in practice they do).
    let mut periodic_phase = vec![0u32; lanes];
    let sweeps: Vec<RechargeSweep> = (0..sensors)
        .map(|s| {
            let kind = procs[s].kind();
            if procs
                .iter()
                .skip(s)
                .step_by(sensors)
                .any(|p| p.kind() != kind)
            {
                return RechargeSweep::Dynamic;
            }
            match kind {
                RechargeKind::Bernoulli { q, c } => RechargeSweep::Bernoulli {
                    q,
                    c_millis: c.as_millis(),
                },
                RechargeKind::Constant { rate } => RechargeSweep::Constant {
                    rate_millis: rate.as_millis(),
                },
                RechargeKind::Periodic {
                    amount,
                    period,
                    phase,
                } => {
                    for r in 0..reps {
                        periodic_phase[r * sensors + s] = phase;
                    }
                    RechargeSweep::Periodic {
                        amount_millis: amount.as_millis(),
                        period,
                    }
                }
                RechargeKind::Uniform { lo, hi } => RechargeSweep::Uniform {
                    lo_millis: lo.as_millis(),
                    hi_millis: hi.as_millis(),
                },
                RechargeKind::Other => RechargeSweep::Dynamic,
            }
        })
        .collect();

    // Per-slot lanes, hoisted once for the whole horizon: the steady-state
    // slot loop below allocates nothing (proven by `tests/alloc.rs`).
    let mut states = vec![0usize; reps];
    let mut probs = vec![0f64; reps];
    let mut trace_pending: Vec<Option<TraceRecord>> = vec![None; reps];
    let mut traces: Vec<Vec<TraceRecord>> = (0..reps)
        .map(|_| Vec::with_capacity(sim.trace_slots.min(4096)))
        .collect();
    let mut battery_traces: Vec<Vec<BatterySample>> = (0..reps).map(|_| Vec::new()).collect();

    let mut recharge_watch = PHASED.then(Stopwatch::new);
    let mut decide_watch = PHASED.then(Stopwatch::new);
    let mut events_watch = PHASED.then(Stopwatch::new);
    let run_span = timing::span("sim.batch.run");

    for t in 1..=sim.slots {
        // 1. Recharge every lane (harvesting continues through outages).
        if let Some(w) = recharge_watch.as_mut() {
            w.start();
        }
        for (s, sweep) in sweeps.iter().enumerate() {
            match *sweep {
                RechargeSweep::Bernoulli { q, c_millis } => {
                    for (r, rng) in rngs.iter_mut().enumerate() {
                        // Identical draw discipline to `BernoulliRecharge::next`:
                        // one f64 per lane per slot, hit or miss.
                        let hit = rng.random::<f64>() < q;
                        if hit {
                            let i = r * sensors + s;
                            let absorbed = c_millis.min(cap_m - level[i]);
                            level[i] += absorbed;
                            recharged[i] = recharged[i].saturating_add(absorbed);
                            overflow[i] = overflow[i].saturating_add(c_millis - absorbed);
                        }
                    }
                }
                RechargeSweep::Constant { rate_millis } => {
                    if rate_millis > 0 {
                        for r in 0..reps {
                            let i = r * sensors + s;
                            let absorbed = rate_millis.min(cap_m - level[i]);
                            level[i] += absorbed;
                            recharged[i] = recharged[i].saturating_add(absorbed);
                            overflow[i] = overflow[i].saturating_add(rate_millis - absorbed);
                        }
                    }
                }
                RechargeSweep::Periodic {
                    amount_millis,
                    period,
                } => {
                    for r in 0..reps {
                        let i = r * sensors + s;
                        periodic_phase[i] += 1;
                        if periodic_phase[i] == period {
                            periodic_phase[i] = 0;
                            let absorbed = amount_millis.min(cap_m - level[i]);
                            level[i] += absorbed;
                            recharged[i] = recharged[i].saturating_add(absorbed);
                            overflow[i] = overflow[i].saturating_add(amount_millis - absorbed);
                        }
                    }
                }
                RechargeSweep::Uniform {
                    lo_millis,
                    hi_millis,
                } => {
                    for (r, rng) in rngs.iter_mut().enumerate() {
                        let amount = rng.random_range(lo_millis..=hi_millis);
                        let i = r * sensors + s;
                        let absorbed = amount.min(cap_m - level[i]);
                        level[i] += absorbed;
                        recharged[i] = recharged[i].saturating_add(absorbed);
                        overflow[i] = overflow[i].saturating_add(amount - absorbed);
                    }
                }
                RechargeSweep::Dynamic => {
                    for (r, rng) in rngs.iter_mut().enumerate() {
                        let i = r * sensors + s;
                        let amount = procs[i].next(rng).as_millis();
                        let absorbed = amount.min(cap_m - level[i]);
                        level[i] += absorbed;
                        recharged[i] = recharged[i].saturating_add(absorbed);
                        overflow[i] = overflow[i].saturating_add(amount - absorbed);
                    }
                }
            }
        }
        if let Some(w) = recharge_watch.as_mut() {
            w.stop();
        }

        // 2. The deciding sensor(s) act. Configuration branches (owner,
        //    outage, tracing) are identical across lanes and stay outside
        //    the replication sweeps.
        if let Some(w) = decide_watch.as_mut() {
            w.start();
        }
        active.fill(false);
        let tracing = (t as usize) <= sim.trace_slots;
        match sim.coordination {
            Coordination::Rotating(assignment) => {
                let owner = assignment.owner(t, sensors);
                if sim.outages.is_down(owner, t) {
                    for r in 0..reps {
                        outage_slots[r * sensors + owner] += 1;
                    }
                    if tracing {
                        for slot in trace_pending.iter_mut() {
                            *slot = Some(TraceRecord {
                                slot: t,
                                owner,
                                state: 0,
                                wanted_active: false,
                                active: false,
                                event: false,
                                captured: false,
                            });
                        }
                    }
                } else {
                    match info {
                        InfoModel::Full => {
                            for r in 0..reps {
                                states[r] = (t - last_event[r]) as usize;
                            }
                        }
                        InfoModel::Partial => {
                            for r in 0..reps {
                                states[r] = (t - shared_last_capture[r]) as usize;
                            }
                        }
                    }
                    fill_probs(prob, t, owner, sensors, cap_m, &level, &states, &mut probs);
                    for r in 0..reps {
                        let i = r * sensors + owner;
                        let p = probs[r];
                        debug_assert!((0.0..=1.0).contains(&p), "policy returned {p}");
                        let wanted = coin_wants(p, &mut rngs[r]);
                        let feasible = level[i] >= threshold_m;
                        let is_active = wanted && feasible;
                        forced_idle[i] += u64::from(wanted && !feasible);
                        if is_active {
                            level[i] -= d1_m;
                            consumed[i] = consumed[i].saturating_add(d1_m);
                            activations[i] += 1;
                            active[i] = true;
                        }
                        if tracing {
                            trace_pending[r] = Some(TraceRecord {
                                slot: t,
                                owner,
                                state: states[r],
                                wanted_active: wanted,
                                active: is_active,
                                event: false,
                                captured: false,
                            });
                        }
                    }
                }
            }
            Coordination::Independent => {
                for s in 0..sensors {
                    if sim.outages.is_down(s, t) {
                        for r in 0..reps {
                            outage_slots[r * sensors + s] += 1;
                        }
                        continue;
                    }
                    match info {
                        InfoModel::Full => {
                            for r in 0..reps {
                                states[r] = (t - last_event[r]) as usize;
                            }
                        }
                        InfoModel::Partial => {
                            for r in 0..reps {
                                states[r] = (t - own_last_capture[r * sensors + s]) as usize;
                            }
                        }
                    }
                    fill_probs(prob, t, s, sensors, cap_m, &level, &states, &mut probs);
                    for r in 0..reps {
                        let i = r * sensors + s;
                        let p = probs[r];
                        debug_assert!((0.0..=1.0).contains(&p), "policy returned {p}");
                        let wanted = coin_wants(p, &mut rngs[r]);
                        let feasible = level[i] >= threshold_m;
                        let is_active = wanted && feasible;
                        forced_idle[i] += u64::from(wanted && !feasible);
                        if is_active {
                            level[i] -= d1_m;
                            consumed[i] = consumed[i].saturating_add(d1_m);
                            activations[i] += 1;
                            active[i] = true;
                        }
                        if s == 0 && tracing {
                            trace_pending[r] = Some(TraceRecord {
                                slot: t,
                                owner: 0,
                                state: states[r],
                                wanted_active: wanted,
                                active: is_active,
                                event: false,
                                captured: false,
                            });
                        }
                    }
                }
            }
        }
        if let Some(w) = decide_watch.as_mut() {
            w.stop();
        }

        // 3. Events arrive after the decisions; captures update the
        //    renewal anchors exactly as the scalar engine does.
        if let Some(w) = events_watch.as_mut() {
            w.start();
        }
        let measured = t > sim.warmup_slots;
        for r in 0..reps {
            let schedule = schedules.for_replication(r).event_slots();
            let event = event_occurs(schedule, &mut next_event[r], t);
            let mut captured_by_any = false;
            if event {
                events[r] += u64::from(measured);
                let base = r * sensors;
                for s in 0..sensors {
                    let i = base + s;
                    if active[i] {
                        level[i] -= d2_m;
                        consumed[i] = consumed[i].saturating_add(d2_m);
                        sensor_captures[i] += u64::from(measured);
                        own_last_capture[i] = t;
                        captured_by_any = true;
                    }
                }
                if captured_by_any {
                    captures[r] += u64::from(measured);
                    shared_last_capture[r] = t;
                }
                last_event[r] = t;
            }
            // Age of information once the slot resolves, mirroring the
            // scalar engine's integer accumulation bit for bit.
            if measured {
                let age = t - shared_last_capture[r];
                age_sum[r] += age;
                if age > peak_age[r] {
                    peak_age[r] = age;
                }
            }
            if tracing {
                if let Some(mut record) = trace_pending[r].take() {
                    record.event = event;
                    record.captured = event && record.active && captured_by_any;
                    traces[r].push(record);
                }
            }
        }
        if let Some(w) = events_watch.as_mut() {
            w.stop();
        }

        if let Some(every) = sim.battery_sample_every {
            if t % every == 0 {
                for (r, trace) in battery_traces.iter_mut().enumerate() {
                    let base = r * sensors;
                    trace.push(BatterySample {
                        slot: t,
                        levels: level[base..base + sensors]
                            .iter()
                            .map(|&m| Energy::from_millis(m))
                            .collect(),
                    });
                }
            }
        }
    }

    drop(run_span);
    timing::add_count("sim.slots", sim.slots * reps as u64);
    if let Some(w) = recharge_watch {
        w.record("sim.batch.phase.recharge");
    }
    if let Some(w) = decide_watch {
        w.record("sim.batch.phase.decide");
    }
    if let Some(w) = events_watch {
        w.record("sim.batch.phase.events");
    }

    let mut reports = Vec::with_capacity(reps);
    for r in 0..reps {
        let base = r * sensors;
        let stats = (0..sensors)
            .map(|s| {
                let i = base + s;
                SensorStats {
                    activations: activations[i],
                    captures: sensor_captures[i],
                    forced_idle: forced_idle[i],
                    outage_slots: outage_slots[i],
                    consumed: Energy::from_millis(consumed[i]),
                    recharged: Energy::from_millis(recharged[i]),
                    overflow: Energy::from_millis(overflow[i]),
                    initial_level: Energy::from_millis(init_m),
                    final_level: Energy::from_millis(level[i]),
                }
            })
            .collect();
        reports.push(SimReport {
            slots: sim.slots,
            events: events[r],
            captures: captures[r],
            sensors: stats,
            measured_slots: sim.slots - sim.warmup_slots,
            age_sum: age_sum[r],
            peak_age: peak_age[r],
            trace: std::mem::take(&mut traces[r]),
            battery_trace: std::mem::take(&mut battery_traces[r]),
        });
    }
    Ok(reports)
}

/// Fills the per-replication activation probabilities for `sensor`'s
/// decision this slot. Table-driven sources take the state-only lane fill;
/// context-reading policies get a faithfully assembled [`DecisionContext`]
/// per lane (slot, state, battery fraction), exactly as the scalar engine
/// builds it.
#[allow(clippy::too_many_arguments)]
#[inline]
fn fill_probs<P: ProbSource>(
    prob: &P,
    t: u64,
    sensor: usize,
    sensors: usize,
    cap_m: i64,
    level: &[i64],
    states: &[usize],
    probs: &mut [f64],
) {
    if P::STATE_ONLY {
        prob.fill_state_probs(states, probs);
    } else {
        for (r, out) in probs.iter_mut().enumerate() {
            let i = r * sensors + sensor;
            let battery_fraction = if cap_m == 0 {
                1.0
            } else {
                level[i] as f64 / cap_m as f64
            };
            *out = prob.probability(&DecisionContext {
                slot: t,
                state: states[r],
                battery_fraction,
            });
        }
    }
}
