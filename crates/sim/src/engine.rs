//! The slotted simulation engine.

use evcap_core::{ActivationPolicy, DecisionContext, InfoModel, PolicyTable, SlotAssignment};
use evcap_dist::SlotPmf;
use evcap_energy::{Battery, ConsumptionModel, Energy, RechargeProcess};
use evcap_obs::{timing, NullObserver, Observer, SlotOutcome};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::events::EventSchedule;
use crate::metrics::{BatterySample, SensorStats, SimReport, TraceRecord};
use crate::outage::OutagePlan;
use crate::{Result, SimError};

/// Factory producing one recharge process per sensor index.
pub type RechargeFactory<'f> = dyn FnMut(usize) -> Box<dyn RechargeProcess> + 'f;

/// Where the per-slot activation probability comes from.
///
/// Stationary policies compile to a [`PolicyTable`] once per run
/// ([`TableProb`]): the hot loop pays one bounds check and an array load
/// instead of a virtual call into the policy object. Policies that
/// condition on more than the renewal state fall back to dynamic dispatch
/// ([`DynProb`]). The engine is monomorphized over the source, so the table
/// path carries no dispatch residue.
pub(crate) trait ProbSource {
    /// Whether the source reads only the renewal state — ignoring the slot
    /// and battery fraction. State-only sources let the batched engine fill
    /// a whole lane of probabilities per slot ([`ProbSource::fill_state_probs`])
    /// without assembling a [`DecisionContext`] per replication.
    const STATE_ONLY: bool;

    fn probability(&self, ctx: &DecisionContext) -> f64;

    /// Batched lookup: `out[i] = probability` for `states[i]`. Only called
    /// when [`ProbSource::STATE_ONLY`] is `true`.
    fn fill_state_probs(&self, states: &[usize], out: &mut [f64]);
}

pub(crate) struct TableProb<'p>(pub &'p PolicyTable);

impl ProbSource for TableProb<'_> {
    const STATE_ONLY: bool = true;

    #[inline]
    fn probability(&self, ctx: &DecisionContext) -> f64 {
        self.0.probability(ctx.state)
    }

    #[inline]
    fn fill_state_probs(&self, states: &[usize], out: &mut [f64]) {
        self.0.fill_probabilities(states, out);
    }
}

pub(crate) struct DynProb<'p>(pub &'p dyn ActivationPolicy);

impl ProbSource for DynProb<'_> {
    const STATE_ONLY: bool = false;

    #[inline]
    fn probability(&self, ctx: &DecisionContext) -> f64 {
        self.0.probability(ctx)
    }

    fn fill_state_probs(&self, _states: &[usize], _out: &mut [f64]) {
        unreachable!("a context-reading policy has no state-only batch lookup");
    }
}

/// The activation coin, shared verbatim by the scalar and SoA engines: no
/// RNG draw at the boundary probabilities, exactly one `f64` draw strictly
/// inside `(0, 1)`. Both engines must consume the decision stream through
/// this function — the conditional draw is what keeps their per-seed RNG
/// streams aligned.
#[inline]
pub(crate) fn coin_wants(p: f64, rng: &mut SmallRng) -> bool {
    p > 0.0 && (p >= 1.0 || rng.random::<f64>() < p)
}

/// Forward event-cursor step shared by the scalar and SoA engines: advances
/// `next_event` past stale entries and reports whether an event lands on
/// `t`. Slots must be queried in non-decreasing order.
#[inline]
pub(crate) fn event_occurs(event_slots: &[u64], next_event: &mut usize, t: u64) -> bool {
    while *next_event < event_slots.len() && event_slots[*next_event] < t {
        *next_event += 1;
    }
    if *next_event < event_slots.len() && event_slots[*next_event] == t {
        *next_event += 1;
        true
    } else {
        false
    }
}

/// How the sensors share the monitoring work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Coordination {
    /// Exactly one sensor (per the assignment) is in charge of each slot —
    /// the paper's Section V schemes. Captures are broadcast, so all sensors
    /// share the partial-information state.
    Rotating(SlotAssignment),
    /// No coordination: every sensor decides every slot from its *own*
    /// observation history (the paper's "work independently without any
    /// coordination or information exchange" strawman). Redundant
    /// activations duplicate effort.
    Independent,
}

/// Builder-style configuration of a simulation run.
///
/// Defaults follow the paper's Section VI setup: `δ1 = 1`, `δ2 = 6`,
/// `K = 1000` with a half-full initial battery, one sensor, round-robin slot
/// assignment, no outages, and a `10^6`-slot horizon.
///
/// See the [crate-level example](crate) for typical usage.
#[derive(Debug, Clone)]
pub struct Simulation<'a> {
    pub(crate) pmf: &'a SlotPmf,
    pub(crate) slots: u64,
    pub(crate) seed: u64,
    pub(crate) consumption: ConsumptionModel,
    pub(crate) sensors: usize,
    pub(crate) battery_capacity: Energy,
    pub(crate) initial_level: Option<Energy>,
    pub(crate) coordination: Coordination,
    pub(crate) outages: OutagePlan,
    pub(crate) trace_slots: usize,
    pub(crate) battery_sample_every: Option<u64>,
    pub(crate) warmup_slots: u64,
}

impl<'a> Simulation<'a> {
    /// Starts a builder for the given event process.
    pub fn builder(pmf: &'a SlotPmf) -> Self {
        Self {
            pmf,
            slots: 1_000_000,
            seed: 0,
            consumption: ConsumptionModel::paper_defaults(),
            sensors: 1,
            battery_capacity: Energy::from_units(1000.0),
            initial_level: None,
            coordination: Coordination::Rotating(SlotAssignment::RoundRobin),
            outages: OutagePlan::none(),
            trace_slots: 0,
            battery_sample_every: None,
            warmup_slots: 0,
        }
    }

    /// Sets the simulated horizon in slots.
    #[must_use]
    pub fn slots(mut self, slots: u64) -> Self {
        self.slots = slots;
        self
    }

    /// Seeds both the decision RNG and the event schedule.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the consumption model (`δ1`, `δ2`).
    #[must_use]
    pub fn consumption(mut self, consumption: ConsumptionModel) -> Self {
        self.consumption = consumption;
        self
    }

    /// Sets the number of collaborating sensors.
    #[must_use]
    pub fn sensors(mut self, sensors: usize) -> Self {
        self.sensors = sensors;
        self
    }

    /// Sets every sensor's battery capacity `K`.
    #[must_use]
    pub fn battery(mut self, capacity: Energy) -> Self {
        self.battery_capacity = capacity;
        self
    }

    /// Overrides the initial battery level (default: half of `K`, the
    /// paper's convention).
    #[must_use]
    pub fn initial_level(mut self, level: Energy) -> Self {
        self.initial_level = Some(level);
        self
    }

    /// Sets the multi-sensor slot assignment scheme (rotating coordination).
    #[must_use]
    pub fn assignment(mut self, assignment: SlotAssignment) -> Self {
        self.coordination = Coordination::Rotating(assignment);
        self
    }

    /// Switches to fully uncoordinated operation: every sensor decides every
    /// slot from its own observations.
    #[must_use]
    pub fn independent(mut self) -> Self {
        self.coordination = Coordination::Independent;
        self
    }

    /// Injects sensor outages.
    #[must_use]
    pub fn outages(mut self, plan: OutagePlan) -> Self {
        self.outages = plan;
        self
    }

    /// Discards the first `n` slots from the QoM statistics: events that
    /// occur during warm-up are neither counted nor credited (the sensors
    /// still run — states evolve and energy flows — so the measured portion
    /// starts from a realistic mid-deployment condition). `run` rejects a
    /// warm-up that swallows the whole horizon.
    #[must_use]
    pub fn warmup_slots(mut self, n: u64) -> Self {
        self.warmup_slots = n;
        self
    }

    /// Records a [`TraceRecord`] for each of the first `n` slots (for the
    /// sensor in charge; in independent mode, for sensor 0).
    #[must_use]
    pub fn trace_slots(mut self, n: usize) -> Self {
        self.trace_slots = n;
        self
    }

    /// Samples every sensor's battery level every `every` slots into
    /// [`SimReport::battery_trace`].
    #[must_use]
    pub fn record_battery_every(mut self, every: u64) -> Self {
        self.battery_sample_every = Some(every.max(1));
        self
    }

    /// Samples an event schedule and runs the policy on it.
    ///
    /// `make_recharge` is called once per sensor index to build its recharge
    /// process.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] for invalid configuration (zero slots, zero
    /// sensors, battery/energy validation failures).
    pub fn run(
        &self,
        policy: &dyn ActivationPolicy,
        make_recharge: &mut RechargeFactory<'_>,
    ) -> Result<SimReport> {
        self.run_observed(policy, make_recharge, &mut NullObserver)
    }

    /// Like [`Simulation::run`], but reports slot-level progress into an
    /// [`Observer`]. The engine is monomorphized over the observer type, so
    /// `run` (which passes [`NullObserver`]) pays nothing for the hooks.
    ///
    /// # Errors
    ///
    /// Same as [`Simulation::run`].
    pub fn run_observed<O: Observer>(
        &self,
        policy: &dyn ActivationPolicy,
        make_recharge: &mut RechargeFactory<'_>,
        observer: &mut O,
    ) -> Result<SimReport> {
        let schedule = EventSchedule::generate(self.pmf, self.slots, self.seed)?;
        self.run_on_observed(&schedule, policy, make_recharge, observer)
    }

    /// Runs the policy on a pre-sampled event schedule (so multiple policies
    /// can be compared on identical events).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ScheduleTooShort`] if the schedule does not cover
    /// the configured horizon, plus the configuration errors of
    /// [`Simulation::run`].
    pub fn run_on(
        &self,
        schedule: &EventSchedule,
        policy: &dyn ActivationPolicy,
        make_recharge: &mut RechargeFactory<'_>,
    ) -> Result<SimReport> {
        self.run_on_observed(schedule, policy, make_recharge, &mut NullObserver)
    }

    /// Like [`Simulation::run_on`], but with an [`Observer`] attached.
    ///
    /// # Errors
    ///
    /// Same as [`Simulation::run_on`].
    pub fn run_on_observed<O: Observer>(
        &self,
        schedule: &EventSchedule,
        policy: &dyn ActivationPolicy,
        make_recharge: &mut RechargeFactory<'_>,
        observer: &mut O,
    ) -> Result<SimReport> {
        // Stationary policies precompile to a flat probability table; the
        // `table()` contract guarantees bit-identical probabilities, so both
        // paths produce byte-identical reports for the same seed.
        let info = policy.info_model();
        match policy.table() {
            Some(table) => {
                self.run_core(schedule, info, &TableProb(&table), make_recharge, observer)
            }
            None => self.run_core(schedule, info, &DynProb(policy), make_recharge, observer),
        }
    }

    pub(crate) fn run_core<P: ProbSource, O: Observer>(
        &self,
        schedule: &EventSchedule,
        info: InfoModel,
        prob: &P,
        make_recharge: &mut RechargeFactory<'_>,
        observer: &mut O,
    ) -> Result<SimReport> {
        if self.slots == 0 {
            return Err(SimError::ZeroSlots);
        }
        if self.sensors == 0 {
            return Err(SimError::NoSensors);
        }
        if schedule.slots() < self.slots {
            return Err(SimError::ScheduleTooShort {
                schedule_slots: schedule.slots(),
                needed: self.slots,
            });
        }
        if self.warmup_slots >= self.slots {
            return Err(SimError::ZeroSlots);
        }

        let threshold = self.consumption.activation_threshold();
        let d1 = self.consumption.sensing_cost();
        let d2 = self.consumption.capture_cost();

        let mut batteries = Vec::with_capacity(self.sensors);
        let mut recharges = Vec::with_capacity(self.sensors);
        let mut stats = vec![SensorStats::default(); self.sensors];
        for (s, stat) in stats.iter_mut().enumerate() {
            let battery = match self.initial_level {
                Some(level) => Battery::new(self.battery_capacity, level)?,
                None => Battery::half_full(self.battery_capacity)?,
            };
            stat.initial_level = battery.level();
            batteries.push(battery);
            recharges.push(make_recharge(s));
        }

        let mut rng = SmallRng::seed_from_u64(self.seed);
        // Hoisted next-event pointer: the schedule is pre-sampled and sorted
        // and `t` only moves forward, so the per-slot event query is one
        // comparison against `event_slots[next_event]` — no sampling, no
        // cursor indirection, inside the loop.
        let event_slots = schedule.event_slots();
        let mut next_event = 0usize;
        let mut trace = Vec::with_capacity(self.trace_slots.min(4096));
        let mut battery_trace = Vec::new();

        // The paper anchors the process with an event at slot 0; all
        // information states start there.
        let mut last_event: u64 = 0; // full-information renewal point
        let mut shared_last_capture: u64 = 0; // broadcast PI renewal point
        let mut own_last_capture = vec![0u64; self.sensors]; // independent PI
        let mut events: u64 = 0;
        let mut captures: u64 = 0;
        let mut measured_slots: u64 = 0;
        let mut age_sum: u64 = 0;
        let mut peak_age: u64 = 0;
        // Reused per slot; indices of sensors that are active this slot.
        let mut active_sensors: Vec<usize> = Vec::with_capacity(self.sensors);
        // Battery snapshots are the one observer hook with a non-trivial
        // argument to assemble, so it is gated on the observer asking.
        let wants_levels = observer.wants_battery_levels();
        let mut levels_buf: Vec<f64> =
            Vec::with_capacity(if wants_levels { self.sensors } else { 0 });
        let run_span = timing::span("sim.run");

        for t in 1..=self.slots {
            // 1. Recharge every sensor (harvesting continues through
            //    outages, as a supercapacitor's would).
            for s in 0..self.sensors {
                let amount = recharges[s].next(&mut rng);
                let overflow = batteries[s].recharge(amount);
                stats[s].recharged += amount - overflow;
                stats[s].overflow += overflow;
                if overflow > Energy::ZERO {
                    observer.on_recharge_overflow(t, s, overflow.as_units());
                }
            }

            // 2. The deciding sensor(s) act.
            active_sensors.clear();
            let mut trace_slot: Option<TraceRecord> = None;
            let decide = |s: usize,
                          batteries: &mut [Battery],
                          stats: &mut [SensorStats],
                          rng: &mut SmallRng,
                          own_last_capture: &[u64],
                          observer: &mut O|
             -> (bool, bool, usize) {
                let state = match info {
                    InfoModel::Full => (t - last_event) as usize,
                    InfoModel::Partial => match self.coordination {
                        Coordination::Rotating(_) => (t - shared_last_capture) as usize,
                        Coordination::Independent => (t - own_last_capture[s]) as usize,
                    },
                };
                let ctx = DecisionContext {
                    slot: t,
                    state,
                    battery_fraction: batteries[s].fill_fraction(),
                };
                let p = prob.probability(&ctx);
                debug_assert!((0.0..=1.0).contains(&p), "policy returned {p}");
                let wanted = coin_wants(p, rng);
                let feasible = batteries[s].can_afford(threshold);
                let active = wanted && feasible;
                if wanted && !feasible {
                    stats[s].forced_idle += 1;
                    observer.on_forced_idle(t, s, ctx.battery_fraction);
                }
                if active {
                    let ok = batteries[s].try_consume(d1);
                    debug_assert!(ok, "activation threshold guarantees δ1");
                    stats[s].consumed += d1;
                    stats[s].activations += 1;
                }
                (wanted, active, state)
            };

            // Slot-level aggregates reported to the observer: the owning
            // sensor and the state it decided from, plus whether anyone
            // wanted to / did activate.
            let mut slot_owner = 0usize;
            let mut slot_state = 0usize;
            let mut slot_wanted = false;
            let mut slot_active = false;

            match self.coordination {
                Coordination::Rotating(assignment) => {
                    let owner = assignment.owner(t, self.sensors);
                    slot_owner = owner;
                    if self.outages.is_down(owner, t) {
                        stats[owner].outage_slots += 1;
                        observer.on_outage(t, owner);
                        if (t as usize) <= self.trace_slots {
                            trace_slot = Some(TraceRecord {
                                slot: t,
                                owner,
                                state: 0,
                                wanted_active: false,
                                active: false,
                                event: false,
                                captured: false,
                            });
                        }
                    } else {
                        let (wanted, active, state) = decide(
                            owner,
                            &mut batteries,
                            &mut stats,
                            &mut rng,
                            &own_last_capture,
                            observer,
                        );
                        slot_state = state;
                        slot_wanted = wanted;
                        slot_active = active;
                        if active {
                            active_sensors.push(owner);
                        }
                        if (t as usize) <= self.trace_slots {
                            trace_slot = Some(TraceRecord {
                                slot: t,
                                owner,
                                state,
                                wanted_active: wanted,
                                active,
                                event: false,
                                captured: false,
                            });
                        }
                    }
                }
                Coordination::Independent => {
                    for s in 0..self.sensors {
                        if self.outages.is_down(s, t) {
                            stats[s].outage_slots += 1;
                            observer.on_outage(t, s);
                            continue;
                        }
                        let (wanted, active, state) = decide(
                            s,
                            &mut batteries,
                            &mut stats,
                            &mut rng,
                            &own_last_capture,
                            observer,
                        );
                        slot_wanted |= wanted;
                        if active && !slot_active {
                            // Report the lowest-indexed activating sensor.
                            slot_owner = s;
                            slot_state = state;
                            slot_active = true;
                        }
                        if active {
                            active_sensors.push(s);
                        }
                        if s == 0 && (t as usize) <= self.trace_slots {
                            trace_slot = Some(TraceRecord {
                                slot: t,
                                owner: 0,
                                state,
                                wanted_active: wanted,
                                active,
                                event: false,
                                captured: false,
                            });
                        }
                    }
                }
            }

            // 3. The event (if any) arrives after the decisions.
            let event = event_occurs(event_slots, &mut next_event, t);
            let measured = t > self.warmup_slots;
            let mut captured_by_any = false;
            if event {
                if measured {
                    events += 1;
                }
                for &s in &active_sensors {
                    let ok = batteries[s].try_consume(d2);
                    debug_assert!(ok, "activation threshold guarantees δ1 + δ2");
                    stats[s].consumed += d2;
                    if measured {
                        stats[s].captures += 1;
                    }
                    own_last_capture[s] = t;
                    captured_by_any = true;
                }
                if captured_by_any && measured {
                    captures += 1;
                    // Gap since the previous fleet-wide capture (the paper's
                    // renewal-cycle length), measured before the update.
                    observer.on_capture(t, active_sensors[0], t - shared_last_capture);
                } else if !captured_by_any && measured {
                    observer.on_miss(t);
                }
                if captured_by_any {
                    shared_last_capture = t;
                }
                last_event = t;
            }

            // 4. Age of information once the slot resolves: slots since the
            //    last fleet-wide capture (0 in a capture slot). Integer
            //    accumulation keeps the SoA engine bit-identical.
            if measured {
                let age = t - shared_last_capture;
                age_sum += age;
                if age > peak_age {
                    peak_age = age;
                }
                measured_slots += 1;
            }

            if let Some(mut record) = trace_slot {
                record.event = event;
                record.captured = event && record.active && captured_by_any;
                trace.push(record);
            }
            if let Some(every) = self.battery_sample_every {
                if t % every == 0 {
                    battery_trace.push(BatterySample {
                        slot: t,
                        levels: batteries.iter().map(|b| b.level()).collect(),
                    });
                }
            }
            if wants_levels {
                levels_buf.clear();
                levels_buf.extend(batteries.iter().map(Battery::fill_fraction));
                observer.on_battery_levels(t, &levels_buf);
            }
            observer.on_slot(&SlotOutcome {
                slot: t,
                owner: slot_owner,
                state: slot_state,
                wanted: slot_wanted,
                active: slot_active,
                event,
                captured: captured_by_any,
                measured,
            });
        }

        drop(run_span);
        timing::add_count("sim.slots", self.slots);

        for (s, stat) in stats.iter_mut().enumerate() {
            stat.final_level = batteries[s].level();
        }

        Ok(SimReport {
            slots: self.slots,
            events,
            captures,
            sensors: stats,
            measured_slots,
            age_sum,
            peak_age,
            trace,
            battery_trace,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outage::OutageWindow;
    use evcap_core::{AggressivePolicy, PeriodicPolicy};
    use evcap_dist::{Discretizer, Weibull};
    use evcap_energy::{BernoulliRecharge, ConstantRecharge};

    fn weibull_pmf() -> SlotPmf {
        Discretizer::new()
            .discretize(&Weibull::new(40.0, 3.0).unwrap())
            .unwrap()
    }

    fn bernoulli(q: f64, c: f64) -> impl FnMut(usize) -> Box<dyn RechargeProcess> {
        move |_| Box::new(BernoulliRecharge::new(q, Energy::from_units(c)).unwrap())
    }

    #[test]
    fn aggressive_with_abundant_energy_captures_everything() {
        let pmf = weibull_pmf();
        let report = Simulation::builder(&pmf)
            .slots(50_000)
            .seed(3)
            .run(&AggressivePolicy::new(), &mut |_| {
                Box::new(ConstantRecharge::new(Energy::from_units(10.0)).unwrap())
            })
            .unwrap();
        assert_eq!(report.captures, report.events);
        assert_eq!(report.qom(), 1.0);
        assert_eq!(report.total_forced_idle(), 0);
    }

    #[test]
    fn energy_conservation_holds_exactly() {
        let pmf = weibull_pmf();
        let report = Simulation::builder(&pmf)
            .slots(100_000)
            .seed(5)
            .sensors(3)
            .run(&AggressivePolicy::new(), &mut bernoulli(0.5, 1.0))
            .unwrap();
        for (i, s) in report.sensors.iter().enumerate() {
            assert!(s.conserves_energy(), "sensor {i}: {s:?}");
        }
    }

    #[test]
    fn starved_sensor_is_forced_idle() {
        let pmf = weibull_pmf();
        // Zero recharge and a near-empty battery: after a few activations
        // the sensor is pinned below the threshold.
        let report = Simulation::builder(&pmf)
            .slots(10_000)
            .seed(7)
            .battery(Energy::from_units(10.0))
            .run(&AggressivePolicy::new(), &mut |_| {
                Box::new(ConstantRecharge::new(Energy::ZERO).unwrap())
            })
            .unwrap();
        assert!(report.total_forced_idle() > 9_000);
        assert!(report.total_activations() < 10);
    }

    #[test]
    fn discharge_rate_tracks_recharge_rate_for_aggressive() {
        // The aggressive policy spends everything that arrives (modulo the
        // battery's final content), so its discharge rate ≈ e.
        let pmf = weibull_pmf();
        let report = Simulation::builder(&pmf)
            .slots(200_000)
            .seed(11)
            .run(&AggressivePolicy::new(), &mut bernoulli(0.5, 1.0))
            .unwrap();
        assert!(
            (report.discharge_rate() - 0.5).abs() < 0.02,
            "{}",
            report.discharge_rate()
        );
    }

    #[test]
    fn same_seed_is_reproducible() {
        let pmf = weibull_pmf();
        let sim = Simulation::builder(&pmf).slots(20_000).seed(13);
        let a = sim
            .clone()
            .run(&AggressivePolicy::new(), &mut bernoulli(0.5, 1.0))
            .unwrap();
        let b = sim
            .run(&AggressivePolicy::new(), &mut bernoulli(0.5, 1.0))
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn shared_schedule_compares_policies_on_same_events() {
        let pmf = weibull_pmf();
        let schedule = EventSchedule::generate(&pmf, 20_000, 17).unwrap();
        let sim = Simulation::builder(&pmf).slots(20_000).seed(17);
        let agg = sim
            .clone()
            .run_on(
                &schedule,
                &AggressivePolicy::new(),
                &mut bernoulli(0.5, 1.0),
            )
            .unwrap();
        let per = PeriodicPolicy::new(3, 30).unwrap();
        let perr = sim
            .run_on(&schedule, &per, &mut bernoulli(0.5, 1.0))
            .unwrap();
        assert_eq!(agg.events, perr.events);
    }

    #[test]
    fn round_robin_splits_load_across_sensors() {
        let pmf = weibull_pmf();
        let report = Simulation::builder(&pmf)
            .slots(90_000)
            .seed(19)
            .sensors(3)
            .run(&AggressivePolicy::new(), &mut bernoulli(0.5, 1.0))
            .unwrap();
        // Every sensor gets a third of the slots; with identical recharge,
        // activations should be closely balanced.
        assert!(report.load_balance() > 0.95, "{}", report.load_balance());
    }

    #[test]
    fn trace_records_first_slots() {
        let pmf = weibull_pmf();
        let report = Simulation::builder(&pmf)
            .slots(1_000)
            .seed(23)
            .trace_slots(50)
            .run(&AggressivePolicy::new(), &mut bernoulli(0.5, 1.0))
            .unwrap();
        assert_eq!(report.trace.len(), 50);
        assert_eq!(report.trace[0].slot, 1);
        // Captured implies event and active.
        for r in &report.trace {
            if r.captured {
                assert!(r.event && r.active);
            }
        }
    }

    #[test]
    fn configuration_errors() {
        let pmf = weibull_pmf();
        assert!(matches!(
            Simulation::builder(&pmf)
                .slots(0)
                .run(&AggressivePolicy::new(), &mut bernoulli(0.5, 1.0)),
            Err(SimError::ZeroSlots)
        ));
        assert!(matches!(
            Simulation::builder(&pmf)
                .sensors(0)
                .run(&AggressivePolicy::new(), &mut bernoulli(0.5, 1.0)),
            Err(SimError::NoSensors)
        ));
        let short = EventSchedule::from_slots(vec![1], 10);
        assert!(matches!(
            Simulation::builder(&pmf).slots(100).run_on(
                &short,
                &AggressivePolicy::new(),
                &mut bernoulli(0.5, 1.0)
            ),
            Err(SimError::ScheduleTooShort { .. })
        ));
    }

    #[test]
    fn periodic_policy_duty_cycle_is_respected() {
        let pmf = weibull_pmf();
        let per = PeriodicPolicy::new(3, 30).unwrap();
        let report = Simulation::builder(&pmf)
            .slots(300_000)
            .seed(29)
            .run(&per, &mut |_| {
                Box::new(ConstantRecharge::new(Energy::from_units(10.0)).unwrap())
            })
            .unwrap();
        let duty = report.total_activations() as f64 / report.slots as f64;
        assert!((duty - 0.1).abs() < 1e-3, "{duty}");
    }

    #[test]
    fn independent_sensors_duplicate_effort() {
        // Uncoordinated aggressive sensors with abundant energy all fire in
        // every slot: per-sensor captures are each equal to the event count,
        // but the union QoM counts each event once.
        let pmf = weibull_pmf();
        let report = Simulation::builder(&pmf)
            .slots(30_000)
            .seed(31)
            .sensors(3)
            .independent()
            .run(&AggressivePolicy::new(), &mut |_| {
                Box::new(ConstantRecharge::new(Energy::from_units(10.0)).unwrap())
            })
            .unwrap();
        assert_eq!(report.qom(), 1.0);
        for s in &report.sensors {
            assert_eq!(s.captures, report.events, "{s:?}");
        }
        // Total energy burned is ~3× the single-sensor cost: pure waste.
        let per_sensor: Vec<u64> = report.sensors.iter().map(|s| s.activations).collect();
        assert!(per_sensor.iter().all(|&a| a == report.slots));
    }

    #[test]
    fn outage_blocks_decisions_but_not_recharge() {
        let pmf = weibull_pmf();
        let plan = OutagePlan::from_windows(vec![OutageWindow {
            sensor: 0,
            from: 1,
            to: 10_000,
        }]);
        let report = Simulation::builder(&pmf)
            .slots(10_000)
            .seed(37)
            .outages(plan)
            .run(&AggressivePolicy::new(), &mut bernoulli(0.5, 1.0))
            .unwrap();
        let s = &report.sensors[0];
        assert_eq!(s.outage_slots, 10_000);
        assert_eq!(s.activations, 0);
        assert_eq!(report.captures, 0);
        // Harvesting continued: the battery filled up (modulo overflow).
        assert!(s.recharged > Energy::ZERO);
        assert!(s.conserves_energy());
    }

    #[test]
    fn partial_outage_degrades_gracefully() {
        let pmf = weibull_pmf();
        let clean = Simulation::builder(&pmf)
            .slots(100_000)
            .seed(41)
            .sensors(2)
            .run(&AggressivePolicy::new(), &mut bernoulli(0.5, 1.0))
            .unwrap();
        let plan = OutagePlan::from_windows(vec![OutageWindow {
            sensor: 1,
            from: 20_000,
            to: 40_000,
        }]);
        let degraded = Simulation::builder(&pmf)
            .slots(100_000)
            .seed(41)
            .sensors(2)
            .outages(plan)
            .run(&AggressivePolicy::new(), &mut bernoulli(0.5, 1.0))
            .unwrap();
        assert!(degraded.qom() < clean.qom());
        assert!(
            degraded.qom() > 0.5 * clean.qom(),
            "degrades, not collapses"
        );
    }

    #[test]
    fn warmup_excludes_early_events_from_qom() {
        let pmf = weibull_pmf();
        let schedule = EventSchedule::generate(&pmf, 60_000, 47).unwrap();
        let full = Simulation::builder(&pmf)
            .slots(60_000)
            .seed(47)
            .run_on(
                &schedule,
                &AggressivePolicy::new(),
                &mut bernoulli(0.5, 1.0),
            )
            .unwrap();
        let warmed = Simulation::builder(&pmf)
            .slots(60_000)
            .seed(47)
            .warmup_slots(30_000)
            .run_on(
                &schedule,
                &AggressivePolicy::new(),
                &mut bernoulli(0.5, 1.0),
            )
            .unwrap();
        assert!(warmed.events < full.events);
        // Roughly half the events fall after warm-up.
        let ratio = warmed.events as f64 / full.events as f64;
        assert!((ratio - 0.5).abs() < 0.05, "{ratio}");
        // Energy accounting still covers the whole run and conserves.
        for s in &warmed.sensors {
            assert!(s.conserves_energy());
        }
        // A warm-up at least as long as the horizon is rejected.
        assert!(Simulation::builder(&pmf)
            .slots(100)
            .warmup_slots(100)
            .run(&AggressivePolicy::new(), &mut bernoulli(0.5, 1.0))
            .is_err());
    }

    #[test]
    fn stationary_schedule_runs_unchanged() {
        let pmf = weibull_pmf();
        let schedule = EventSchedule::generate_stationary(&pmf, 50_000, 49).unwrap();
        let report = Simulation::builder(&pmf)
            .slots(50_000)
            .seed(49)
            .run_on(
                &schedule,
                &AggressivePolicy::new(),
                &mut bernoulli(0.5, 1.0),
            )
            .unwrap();
        assert_eq!(report.events, schedule.count());
    }

    #[test]
    fn observer_sees_the_same_run_as_the_report() {
        use evcap_obs::{ObsConfig, ObsSuite};
        let pmf = weibull_pmf();
        let sim = Simulation::builder(&pmf).slots(30_000).seed(53).sensors(2);
        let plain = sim
            .clone()
            .run(&AggressivePolicy::new(), &mut bernoulli(0.3, 1.0))
            .unwrap();
        let mut suite = ObsSuite::new(ObsConfig {
            qom_window: 1_000,
            ..ObsConfig::default()
        });
        let observed = sim
            .run_observed(
                &AggressivePolicy::new(),
                &mut bernoulli(0.3, 1.0),
                &mut suite,
            )
            .unwrap();
        suite.seal();

        // Attaching an observer must not perturb the simulation.
        assert_eq!(plain, observed);

        // The suite's counters agree with the report.
        let c = suite.counters();
        assert_eq!(c.slots, observed.slots);
        assert_eq!(c.events, observed.events);
        assert_eq!(c.captures, observed.captures);
        assert_eq!(c.misses, observed.events - observed.captures);

        // The convergence series covers the horizon and sums to the totals.
        let windows = suite.convergence().series();
        assert_eq!(windows.len(), 30);
        let last = windows.last().unwrap();
        assert_eq!(last.cumulative_events, observed.events);
        assert_eq!(last.cumulative_captures, observed.captures);

        // Gap samples: one per fleet-wide capture, gaps spanning the run.
        assert_eq!(suite.gaps().samples(), observed.captures);
        // Battery histogram sampled on its period.
        assert!(suite.battery().histogram().samples() > 0);
    }

    #[test]
    fn observer_counts_forced_idle_and_overflow() {
        use evcap_obs::{ObsConfig, ObsSuite};
        let pmf = weibull_pmf();

        // A starved aggressive sensor is forced idle most slots; the observer
        // must agree exactly with the report.
        let mut suite = ObsSuite::new(ObsConfig::default());
        let report = Simulation::builder(&pmf)
            .slots(20_000)
            .seed(59)
            .battery(Energy::from_units(8.0))
            .run_observed(
                &AggressivePolicy::new(),
                &mut |_| Box::new(ConstantRecharge::new(Energy::from_units(0.25)).unwrap()),
                &mut suite,
            )
            .unwrap();
        suite.seal();
        assert_eq!(suite.streaks().total(), report.total_forced_idle());
        assert!(suite.streaks().total() > 0);

        // A lazy duty cycle with generous harvesting pins the battery at
        // capacity: recharge overflows, and the observer sums the losses.
        let mut suite = ObsSuite::new(ObsConfig::default());
        let per = PeriodicPolicy::new(1, 50).unwrap();
        let report = Simulation::builder(&pmf)
            .slots(20_000)
            .seed(59)
            .battery(Energy::from_units(20.0))
            .run_observed(
                &per,
                &mut |_| Box::new(ConstantRecharge::new(Energy::from_units(1.0)).unwrap()),
                &mut suite,
            )
            .unwrap();
        suite.seal();
        let report_overflow: f64 = report.sensors.iter().map(|s| s.overflow.as_units()).sum();
        assert!(report_overflow > 0.0);
        assert!((suite.counters().overflow_lost_units - report_overflow).abs() < 1e-9);
    }

    #[test]
    fn energy_conserves_with_observer_and_outages() {
        use evcap_obs::{ObsConfig, ObsSuite};
        let pmf = weibull_pmf();
        let plan = OutagePlan::from_windows(vec![
            OutageWindow {
                sensor: 0,
                from: 5_000,
                to: 15_000,
            },
            OutageWindow {
                sensor: 1,
                from: 30_000,
                to: 35_000,
            },
        ]);
        let mut suite = ObsSuite::new(ObsConfig::default());
        let report = Simulation::builder(&pmf)
            .slots(50_000)
            .seed(61)
            .sensors(3)
            .outages(plan)
            .run_observed(
                &AggressivePolicy::new(),
                &mut bernoulli(0.5, 1.0),
                &mut suite,
            )
            .unwrap();
        suite.seal();
        for (i, s) in report.sensors.iter().enumerate() {
            assert!(s.conserves_energy(), "sensor {i}: {s:?}");
        }
        // Rotating coordination: only slots the down sensor *owned* count,
        // so roughly a third of each window lands in the statistics.
        let outage_total: u64 = report.sensors.iter().map(|s| s.outage_slots).sum();
        assert_eq!(suite.counters().outage_slots, outage_total);
        assert!(
            outage_total > 4_000 && outage_total < 6_000,
            "{outage_total}"
        );
    }

    #[test]
    fn independent_mode_reports_slot_outcomes() {
        use evcap_obs::{Observer, SlotOutcome};
        #[derive(Default)]
        struct Collect {
            active_slots: u64,
            owners: Vec<usize>,
        }
        impl Observer for Collect {
            fn on_slot(&mut self, o: &SlotOutcome) {
                if o.active {
                    self.active_slots += 1;
                    self.owners.push(o.owner);
                }
            }
        }
        let pmf = weibull_pmf();
        let mut collect = Collect::default();
        let report = Simulation::builder(&pmf)
            .slots(5_000)
            .seed(67)
            .sensors(3)
            .independent()
            .run_observed(
                &AggressivePolicy::new(),
                &mut |_| Box::new(ConstantRecharge::new(Energy::from_units(10.0)).unwrap()),
                &mut collect,
            )
            .unwrap();
        // Aggressive + abundant energy: every sensor activates every slot, so
        // every slot is active and the reported owner is sensor 0.
        assert_eq!(collect.active_slots, report.slots);
        assert!(collect.owners.iter().all(|&o| o == 0));
    }

    #[test]
    fn table_path_is_bit_identical_to_dyn_dispatch() {
        use evcap_core::{ClusteringPolicy, EnergyBudget, GreedyPolicy};
        // Wrapper that hides the inner policy's table, forcing the engine
        // down the virtual-dispatch path; the outputs must still match the
        // table-driven run byte for byte.
        struct NoTable<'p>(&'p dyn ActivationPolicy);
        impl ActivationPolicy for NoTable<'_> {
            fn probability(&self, ctx: &DecisionContext) -> f64 {
                self.0.probability(ctx)
            }
            fn info_model(&self) -> InfoModel {
                self.0.info_model()
            }
            fn label(&self) -> String {
                self.0.label()
            }
        }

        let pmf = weibull_pmf();
        let greedy = GreedyPolicy::optimize(
            &pmf,
            EnergyBudget::per_slot(0.5),
            &ConsumptionModel::paper_defaults(),
        )
        .unwrap();
        let clustering = ClusteringPolicy::new(20, 45, 80, 0.5, 0.5, 1.0).unwrap();
        for policy in [&greedy as &dyn ActivationPolicy, &clustering] {
            assert!(policy.table().is_some());
            let sim = Simulation::builder(&pmf).slots(60_000).seed(71).sensors(2);
            let fast = sim.clone().run(policy, &mut bernoulli(0.4, 1.0)).unwrap();
            let slow = sim.run(&NoTable(policy), &mut bernoulli(0.4, 1.0)).unwrap();
            assert_eq!(fast, slow, "{}", policy.label());
        }
    }

    #[test]
    fn battery_trace_sampling() {
        let pmf = weibull_pmf();
        let report = Simulation::builder(&pmf)
            .slots(1_000)
            .seed(43)
            .sensors(2)
            .record_battery_every(100)
            .run(&AggressivePolicy::new(), &mut bernoulli(0.5, 1.0))
            .unwrap();
        assert_eq!(report.battery_trace.len(), 10);
        for sample in &report.battery_trace {
            assert_eq!(sample.levels.len(), 2);
            assert_eq!(sample.slot % 100, 0);
            for &level in &sample.levels {
                assert!(level >= Energy::ZERO);
                assert!(level <= Energy::from_units(1000.0));
            }
        }
    }
}
