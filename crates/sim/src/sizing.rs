//! Battery provisioning: the inverse of the paper's Fig. 3.
//!
//! Fig. 3 shows the achieved QoM climbing toward the energy-assumption
//! optimum as the battery capacity `K` grows. A deployment engineer asks the
//! inverse question: *how small a battery still achieves a target QoM?*
//! [`recommend_capacity`] answers it by bisecting `K` over replicated
//! simulations (the QoM is monotone in `K` up to sampling noise, which the
//! replication averages out). Each probe runs its replications through a
//! [`ReplicationBatch`], so probes parallelize across worker threads.

use evcap_core::ActivationPolicy;
use evcap_dist::SlotPmf;
use evcap_energy::Energy;

use crate::batch::{ReplicationBatch, SyncRechargeFactory};
use crate::engine::Simulation;
use crate::stats::Summary;
use crate::{Result, SimError};

/// Controls for [`recommend_capacity`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SizingOptions {
    /// Slots per probe simulation.
    pub slots: u64,
    /// Replications per probe (averaged).
    pub replications: usize,
    /// Base seed.
    pub seed: u64,
    /// Upper bound on the searched capacity (energy units).
    pub max_capacity: f64,
    /// Bisection resolution (energy units).
    pub resolution: f64,
}

impl Default for SizingOptions {
    fn default() -> Self {
        Self {
            slots: 200_000,
            replications: 3,
            seed: 1,
            max_capacity: 4_096.0,
            resolution: 1.0,
        }
    }
}

/// The outcome of a capacity search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CapacityRecommendation {
    /// The smallest probed capacity that met the target.
    pub capacity: Energy,
    /// Replicated QoM at that capacity.
    pub achieved: Summary,
    /// The QoM target that was requested.
    pub target: f64,
}

/// Finds the smallest battery capacity whose replicated mean QoM reaches
/// `target_qom`, for the given policy and recharge process.
///
/// # Errors
///
/// * [`SimError::ZeroSlots`] for a zero-slot probe configuration and
///   [`SimError::ZeroReplications`] for a zero-replication one; other
///   simulation configuration errors propagate unchanged.
/// * [`SimError::TargetUnreachable`] if even `max_capacity` misses the
///   target — the target exceeds what the policy can achieve under this
///   energy supply (compare against the analytic optimum first).
pub fn recommend_capacity(
    pmf: &SlotPmf,
    policy: &(dyn ActivationPolicy + Sync),
    make_recharge: &SyncRechargeFactory<'_>,
    target_qom: f64,
    opts: SizingOptions,
) -> Result<CapacityRecommendation> {
    if opts.slots == 0 {
        return Err(SimError::ZeroSlots);
    }
    let probe = |capacity: f64| -> Result<Summary> {
        let sim = Simulation::builder(pmf)
            .slots(opts.slots)
            .seed(opts.seed)
            .battery(Energy::from_units(capacity));
        let report = ReplicationBatch::new(sim, opts.replications)?.run(policy, make_recharge)?;
        Ok(report.qom)
    };

    // Check feasibility at the cap first.
    let at_max = probe(opts.max_capacity)?;
    if at_max.mean < target_qom {
        return Err(SimError::TargetUnreachable {
            target: target_qom,
            best: at_max.mean,
        });
    }
    let mut lo = 0.0f64;
    let mut hi = opts.max_capacity;
    let mut best = (opts.max_capacity, at_max);
    while hi - lo > opts.resolution.max(1e-6) {
        let mid = 0.5 * (lo + hi);
        let summary = probe(mid)?;
        if summary.mean >= target_qom {
            best = (mid, summary);
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Ok(CapacityRecommendation {
        capacity: Energy::from_units(best.0),
        achieved: best.1,
        target: target_qom,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use evcap_core::{EnergyBudget, GreedyPolicy};
    use evcap_dist::{Discretizer, Weibull};
    use evcap_energy::{BernoulliRecharge, ConsumptionModel, RechargeProcess};

    fn setup() -> (SlotPmf, GreedyPolicy) {
        let pmf = Discretizer::new()
            .discretize(&Weibull::new(40.0, 3.0).unwrap())
            .unwrap();
        let policy = GreedyPolicy::optimize(
            &pmf,
            EnergyBudget::per_slot(0.5),
            &ConsumptionModel::paper_defaults(),
        )
        .unwrap();
        (pmf, policy)
    }

    fn bernoulli() -> impl Fn(usize) -> Box<dyn RechargeProcess> + Sync {
        |_| Box::new(BernoulliRecharge::new(0.5, Energy::from_units(1.0)).unwrap())
    }

    #[test]
    fn finds_a_modest_battery_for_a_modest_target() {
        let (pmf, policy) = setup();
        let target = 0.7; // ideal is ≈ 0.80
        let rec = recommend_capacity(
            &pmf,
            &policy,
            &bernoulli(),
            target,
            SizingOptions {
                slots: 60_000,
                replications: 2,
                resolution: 2.0,
                ..SizingOptions::default()
            },
        )
        .unwrap();
        assert!(rec.achieved.mean >= target);
        // Fig. 3 says a few dozen units suffice for this gap.
        let k = rec.capacity.as_units();
        assert!(k < 200.0, "recommended {k}");
        assert!(k > 7.0, "below the activation threshold: {k}");
    }

    #[test]
    fn tighter_target_needs_bigger_battery() {
        let (pmf, policy) = setup();
        let opts = SizingOptions {
            slots: 60_000,
            replications: 2,
            resolution: 2.0,
            ..SizingOptions::default()
        };
        let loose = recommend_capacity(&pmf, &policy, &bernoulli(), 0.6, opts).unwrap();
        let tight = recommend_capacity(&pmf, &policy, &bernoulli(), 0.78, opts).unwrap();
        assert!(
            tight.capacity > loose.capacity,
            "{} vs {}",
            tight.capacity,
            loose.capacity
        );
    }

    #[test]
    fn unreachable_target_is_reported() {
        let (pmf, policy) = setup();
        let err = recommend_capacity(
            &pmf,
            &policy,
            &bernoulli(),
            0.999, // the analytic optimum is ≈ 0.80: impossible
            SizingOptions {
                slots: 30_000,
                replications: 2,
                max_capacity: 256.0,
                ..SizingOptions::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, SimError::TargetUnreachable { .. }));
    }

    #[test]
    fn zero_replications_is_an_error_not_a_panic() {
        let (pmf, policy) = setup();
        let err = recommend_capacity(
            &pmf,
            &policy,
            &bernoulli(),
            0.5,
            SizingOptions {
                replications: 0,
                ..SizingOptions::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, SimError::ZeroReplications));
    }
}
