use std::fmt;

/// Errors produced while configuring or running a simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The simulation horizon was zero slots.
    ZeroSlots,
    /// No sensors were configured.
    NoSensors,
    /// A battery or energy parameter failed validation.
    Energy(evcap_energy::EnergyError),
    /// The event sampler failed to construct.
    Dist(evcap_dist::DistError),
    /// A policy (re)optimization failed (adaptive/provisioning drivers).
    Policy(evcap_core::PolicyError),
    /// A replication batch was configured with zero replications.
    ZeroReplications,
    /// A provided event schedule was shorter than the simulation horizon.
    ScheduleTooShort {
        /// Number of slots the schedule covers.
        schedule_slots: u64,
        /// Number of slots the simulation needs.
        needed: u64,
    },
    /// A provisioning search could not reach the requested QoM even at its
    /// capacity cap.
    TargetUnreachable {
        /// The QoM that was requested.
        target: f64,
        /// The best replicated mean QoM observed at the capacity cap.
        best: f64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::ZeroSlots => write!(f, "simulation horizon must be at least one slot"),
            SimError::ZeroReplications => {
                write!(f, "a replication batch needs at least one replication")
            }
            SimError::NoSensors => write!(f, "at least one sensor is required"),
            SimError::Energy(e) => write!(f, "energy configuration error: {e}"),
            SimError::Dist(e) => write!(f, "event process error: {e}"),
            SimError::Policy(e) => write!(f, "policy optimization error: {e}"),
            SimError::ScheduleTooShort {
                schedule_slots,
                needed,
            } => write!(
                f,
                "event schedule covers {schedule_slots} slots but {needed} are needed"
            ),
            SimError::TargetUnreachable { target, best } => {
                write!(
                    f,
                    "target qom {target} is unreachable; best observed was {best}"
                )
            }
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Energy(e) => Some(e),
            SimError::Dist(e) => Some(e),
            SimError::Policy(e) => Some(e),
            _ => None,
        }
    }
}

impl From<evcap_energy::EnergyError> for SimError {
    fn from(e: evcap_energy::EnergyError) -> Self {
        SimError::Energy(e)
    }
}

impl From<evcap_dist::DistError> for SimError {
    fn from(e: evcap_dist::DistError) -> Self {
        SimError::Dist(e)
    }
}

impl From<evcap_core::PolicyError> for SimError {
    fn from(e: evcap_core::PolicyError) -> Self {
        SimError::Policy(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty() {
        let errors = [
            SimError::ZeroSlots,
            SimError::NoSensors,
            SimError::ZeroReplications,
            SimError::Energy(evcap_energy::EnergyError::ZeroPeriod),
            SimError::Dist(evcap_dist::DistError::EmptyPmf),
            SimError::Policy(evcap_core::PolicyError::NoFeasibleCandidate),
            SimError::ScheduleTooShort {
                schedule_slots: 10,
                needed: 20,
            },
            SimError::TargetUnreachable {
                target: 0.99,
                best: 0.8,
            },
        ];
        for err in errors {
            assert!(!err.to_string().is_empty());
        }
    }
}
