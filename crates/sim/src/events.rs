//! Pre-sampled event timelines.

use evcap_dist::{SlotPmf, SlotSampler};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::{Result, SimError};

/// A sampled realization of the renewal event process over a fixed horizon.
///
/// Pre-sampling the events (rather than drawing them inside the policy loop)
/// lets several policies be compared on the *identical* event sequence,
/// removing one source of variance from A/B comparisons — all of the paper's
/// figure benches do this.
///
/// Following the paper's convention, an implicit event occurs at slot 0 (it
/// anchors the first gap) but is not counted in [`EventSchedule::count`].
///
/// # Example
///
/// ```
/// use evcap_dist::SlotPmf;
/// use evcap_sim::EventSchedule;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let pmf = SlotPmf::from_pmf(vec![0.5, 0.5])?;
/// let schedule = EventSchedule::generate(&pmf, 1_000, 42)?;
/// // Gaps of 1 or 2 ⇒ between 500 and 1000 events.
/// assert!(schedule.count() >= 500 && schedule.count() <= 1_000);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EventSchedule {
    /// Sorted slots (1-based) at which events occur.
    event_slots: Vec<u64>,
    slots: u64,
}

impl EventSchedule {
    /// Samples a schedule of `slots` slots from the inter-arrival pmf, using
    /// a dedicated RNG stream seeded by `seed`. The process is anchored on
    /// an event at slot 0 (the paper's convention).
    ///
    /// # Errors
    ///
    /// Propagates sampler-construction failures as [`SimError::Dist`].
    pub fn generate(pmf: &SlotPmf, slots: u64, seed: u64) -> Result<Self> {
        Self::generate_inner(pmf, slots, seed, false)
    }

    /// Samples a schedule with the renewal process started **in
    /// equilibrium**: the wait to the first event is drawn from the limiting
    /// forward-recurrence law `P(Ψ = k) = (1 − F(k−1))/μ` instead of the
    /// full gap distribution. This removes the slot-0 anchoring transient,
    /// which matters for short horizons or strongly periodic processes.
    ///
    /// # Errors
    ///
    /// Propagates sampler-construction failures as [`SimError::Dist`].
    pub fn generate_stationary(pmf: &SlotPmf, slots: u64, seed: u64) -> Result<Self> {
        Self::generate_inner(pmf, slots, seed, true)
    }

    /// Samples a schedule through a caller-provided [`SlotSampler`],
    /// producing exactly the schedule [`EventSchedule::generate`] would for
    /// the same pmf/slots/seed.
    ///
    /// [`SlotSampler::new`] builds alias tables in `O(horizon)`; a batch of
    /// N replications shares one sampler across all N schedules instead of
    /// rebuilding it per seed. The sampler is immutable and `Sync`, so the
    /// per-seed generation can run on worker threads.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ZeroSlots`] for an empty horizon.
    pub fn generate_shared(
        sampler: &SlotSampler,
        mean_gap: f64,
        slots: u64,
        seed: u64,
    ) -> Result<Self> {
        if slots == 0 {
            return Err(SimError::ZeroSlots);
        }
        let mut rng = Self::schedule_rng(seed);
        let first = sampler.sample(&mut rng) as u64;
        Ok(Self::fill(sampler, mean_gap, slots, first, rng))
    }

    fn generate_inner(pmf: &SlotPmf, slots: u64, seed: u64, stationary: bool) -> Result<Self> {
        if slots == 0 {
            return Err(SimError::ZeroSlots);
        }
        let sampler = SlotSampler::new(pmf)?;
        let mut rng = Self::schedule_rng(seed);
        let first: u64 = if stationary {
            sample_equilibrium_wait(pmf, &mut rng)? as u64
        } else {
            sampler.sample(&mut rng) as u64
        };
        Ok(Self::fill(&sampler, pmf.mean(), slots, first, rng))
    }

    /// The schedule RNG stream, decorrelated from the decision RNG (which is
    /// seeded with the raw seed).
    fn schedule_rng(seed: u64) -> SmallRng {
        SmallRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xE57)
    }

    fn fill(
        sampler: &SlotSampler,
        mean_gap: f64,
        slots: u64,
        first: u64,
        mut rng: SmallRng,
    ) -> Self {
        let mut event_slots = Vec::with_capacity((slots as f64 / mean_gap) as usize + 16);
        let mut t = first;
        while t <= slots {
            event_slots.push(t);
            t += sampler.sample(&mut rng) as u64;
        }
        Self { event_slots, slots }
    }

    /// Builds a schedule from explicit event slots (must be strictly
    /// increasing, 1-based, and within `slots`). Useful for deterministic
    /// tests and traces.
    ///
    /// # Panics
    ///
    /// Panics if the slots are not strictly increasing, contain 0, or exceed
    /// `slots`.
    pub fn from_slots(event_slots: Vec<u64>, slots: u64) -> Self {
        let mut prev = 0;
        for &s in &event_slots {
            assert!(
                s > prev,
                "event slots must be strictly increasing and 1-based"
            );
            assert!(s <= slots, "event slot {s} exceeds horizon {slots}");
            prev = s;
        }
        Self { event_slots, slots }
    }

    /// Number of events in the schedule.
    pub fn count(&self) -> u64 {
        self.event_slots.len() as u64
    }

    /// The horizon this schedule covers.
    pub fn slots(&self) -> u64 {
        self.slots
    }

    /// The sorted event slots.
    pub fn event_slots(&self) -> &[u64] {
        &self.event_slots
    }

    /// A cursor for O(1) per-slot queries while scanning forward in time.
    pub fn cursor(&self) -> EventCursor<'_> {
        EventCursor {
            schedule: self,
            next: 0,
        }
    }

    /// The empirical mean gap, for sanity checks against the pmf mean.
    pub fn empirical_mean_gap(&self) -> Option<f64> {
        let last = *self.event_slots.last()?;
        Some(last as f64 / self.event_slots.len() as f64)
    }
}

/// Draws the equilibrium forward-recurrence wait `Ψ`:
/// `P(Ψ = k) = (1 − F(k−1))/μ` over the stored head, with the geometric
/// tail's contribution (`Σ_{j≥H} (1−F(j)) = tail_mass/h`) handled
/// analytically.
fn sample_equilibrium_wait(pmf: &SlotPmf, rng: &mut SmallRng) -> Result<usize> {
    use evcap_dist::AliasTable;
    let h = pmf.horizon();
    // Weight for Ψ = k (k = 1..=H) is survival(k−1); one extra bucket
    // carries the entire tail Σ_{k>H} survival(k−1) = tail_mass / hazard.
    let mut weights: Vec<f64> = (1..=h).map(|k| pmf.survival(k - 1)).collect();
    let tail_bucket = if pmf.tail_mass() > 0.0 {
        weights.push(pmf.tail_mass() / pmf.tail_hazard());
        true
    } else {
        false
    };
    let table = AliasTable::new(&weights)?;
    let idx = table.sample(rng);
    if tail_bucket && idx == h {
        // Conditional on the tail, Ψ − H is geometric with the tail hazard.
        use rand::Rng as _;
        let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
        let extra = (u.ln() / (1.0 - pmf.tail_hazard()).ln()).ceil().max(1.0);
        Ok(h + extra.min(1e15) as usize)
    } else {
        Ok(idx + 1)
    }
}

/// Forward-scanning cursor over an [`EventSchedule`].
#[derive(Debug, Clone)]
pub struct EventCursor<'a> {
    schedule: &'a EventSchedule,
    next: usize,
}

impl EventCursor<'_> {
    /// Returns whether an event occurs in `slot`, which must be queried in
    /// non-decreasing order.
    pub fn occurs(&mut self, slot: u64) -> bool {
        while self.next < self.schedule.event_slots.len()
            && self.schedule.event_slots[self.next] < slot
        {
            self.next += 1;
        }
        self.next < self.schedule.event_slots.len() && self.schedule.event_slots[self.next] == slot
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evcap_dist::{Discretizer, Weibull};

    #[test]
    fn empirical_gap_matches_pmf_mean() {
        let pmf = Discretizer::new()
            .discretize(&Weibull::new(40.0, 3.0).unwrap())
            .unwrap();
        let schedule = EventSchedule::generate(&pmf, 1_000_000, 1).unwrap();
        let mean = schedule.empirical_mean_gap().unwrap();
        assert!((mean - pmf.mean()).abs() < 0.5, "{mean} vs {}", pmf.mean());
    }

    #[test]
    fn different_seeds_give_different_schedules() {
        let pmf = Discretizer::new()
            .discretize(&Weibull::new(40.0, 3.0).unwrap())
            .unwrap();
        let a = EventSchedule::generate(&pmf, 10_000, 1).unwrap();
        let b = EventSchedule::generate(&pmf, 10_000, 2).unwrap();
        assert_ne!(a.event_slots(), b.event_slots());
        // Same seed reproduces exactly.
        let a2 = EventSchedule::generate(&pmf, 10_000, 1).unwrap();
        assert_eq!(a, a2);
    }

    #[test]
    fn shared_sampler_reproduces_generate_exactly() {
        use evcap_dist::SlotSampler;
        let pmf = Discretizer::new()
            .discretize(&Weibull::new(40.0, 3.0).unwrap())
            .unwrap();
        let sampler = SlotSampler::new(&pmf).unwrap();
        for seed in [0, 1, 2, 42, u64::MAX] {
            let direct = EventSchedule::generate(&pmf, 50_000, seed).unwrap();
            let shared =
                EventSchedule::generate_shared(&sampler, pmf.mean(), 50_000, seed).unwrap();
            assert_eq!(direct, shared, "seed {seed}");
        }
        assert!(matches!(
            EventSchedule::generate_shared(&sampler, pmf.mean(), 0, 1),
            Err(SimError::ZeroSlots)
        ));
    }

    #[test]
    fn cursor_matches_slots() {
        let schedule = EventSchedule::from_slots(vec![3, 5, 9], 10);
        let mut cursor = schedule.cursor();
        let hits: Vec<u64> = (1..=10).filter(|&t| cursor.occurs(t)).collect();
        assert_eq!(hits, vec![3, 5, 9]);
    }

    #[test]
    fn stationary_start_breaks_phase_lock() {
        // Deterministic gaps of 10: anchored schedules always fire at
        // multiples of 10; equilibrium-started ones are uniformly phased.
        let pmf = evcap_dist::SlotPmf::from_pmf(
            (0..10).map(|i| if i == 9 { 1.0 } else { 0.0 }).collect(),
        )
        .unwrap();
        let anchored = EventSchedule::generate(&pmf, 100, 3).unwrap();
        assert!(anchored.event_slots().iter().all(|s| s % 10 == 0));
        let mut phases = std::collections::BTreeSet::new();
        for seed in 0..60 {
            let s = EventSchedule::generate_stationary(&pmf, 100, seed).unwrap();
            phases.insert(s.event_slots()[0] % 10);
        }
        assert!(phases.len() >= 8, "phases observed: {phases:?}");
    }

    #[test]
    fn stationary_rate_matches_mean() {
        let pmf = Discretizer::new()
            .discretize(&Weibull::new(40.0, 3.0).unwrap())
            .unwrap();
        let schedule = EventSchedule::generate_stationary(&pmf, 500_000, 5).unwrap();
        let rate = schedule.count() as f64 / 500_000.0;
        assert!((rate - 1.0 / pmf.mean()).abs() < 0.001, "{rate}");
    }

    #[test]
    fn stationary_start_with_geometric_tail() {
        // Markov-style pmf whose equilibrium wait must account for the tail.
        let pmf = evcap_dist::SlotPmf::with_tail(vec![0.4], 0.6, 0.2, "tailed".into()).unwrap();
        let schedule = EventSchedule::generate_stationary(&pmf, 200_000, 7).unwrap();
        let rate = schedule.count() as f64 / 200_000.0;
        assert!((rate - 1.0 / pmf.mean()).abs() < 0.005, "{rate}");
    }

    #[test]
    fn zero_slots_rejected() {
        let pmf = evcap_dist::SlotPmf::from_pmf(vec![1.0]).unwrap();
        assert!(matches!(
            EventSchedule::generate(&pmf, 0, 1),
            Err(SimError::ZeroSlots)
        ));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn from_slots_rejects_disorder() {
        EventSchedule::from_slots(vec![5, 3], 10);
    }

    #[test]
    #[should_panic(expected = "exceeds horizon")]
    fn from_slots_rejects_out_of_range() {
        EventSchedule::from_slots(vec![11], 10);
    }
}
