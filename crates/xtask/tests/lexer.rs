//! Fixture tests for the deepcheck lexer: the literal grammar must never
//! let string or comment contents masquerade as code, and the
//! disambiguation cases (lifetimes vs. chars, raw identifiers, nested
//! generics) must tokenize the way the downstream analyses assume.

use xtask::lexer::{lex, Tok, TokKind};

fn kinds(toks: &[Tok]) -> Vec<TokKind> {
    toks.iter().map(|t| t.kind).collect()
}

fn texts(toks: &[Tok]) -> Vec<&str> {
    toks.iter().map(|t| t.text.as_str()).collect()
}

#[test]
fn raw_strings_swallow_their_contents() {
    // A `.lock()` call and a `panic!` inside raw strings must be a single
    // Str token each — the rules would otherwise see phantom sites.
    let toks = lex(r####"let a = r"x.lock()"; let b = r#"panic!("no")"#;"####);
    let strs: Vec<&Tok> = toks.iter().filter(|t| t.kind == TokKind::Str).collect();
    assert_eq!(strs.len(), 2);
    assert_eq!(strs[0].text, r#"r"x.lock()""#);
    assert_eq!(strs[1].text, r##"r#"panic!("no")"#"##);
    assert!(!toks
        .iter()
        .any(|t| t.is_ident("lock") || t.is_ident("panic")));
}

#[test]
fn raw_string_hash_fences_nest_correctly() {
    // The closing delimiter must match the opening fence depth: `"#` inside
    // an `r##"…"##` literal does not terminate it.
    let toks = lex(r###"r##"inner "# still inside"##"###);
    assert_eq!(kinds(&toks), vec![TokKind::Str]);
    assert_eq!(toks[0].text, r###"r##"inner "# still inside"##"###);
}

#[test]
fn byte_strings_and_byte_chars() {
    let toks = lex(r#"let x = b"bytes"; let y = b'\0';"#);
    assert!(toks
        .iter()
        .any(|t| t.kind == TokKind::Str && t.text == "b\"bytes\""));
    assert!(toks
        .iter()
        .any(|t| t.kind == TokKind::Char && t.text == r"b'\0'"));
}

#[test]
fn lifetimes_are_not_char_literals() {
    let toks = lex("fn f<'a>(x: &'a str) -> &'static str { 'q' ; x }");
    let lifetimes: Vec<&str> = toks
        .iter()
        .filter(|t| t.kind == TokKind::Lifetime)
        .map(|t| t.text.as_str())
        .collect();
    assert_eq!(lifetimes, vec!["a", "a", "static"]);
    let chars: Vec<&str> = toks
        .iter()
        .filter(|t| t.kind == TokKind::Char)
        .map(|t| t.text.as_str())
        .collect();
    assert_eq!(chars, vec!["'q'"]);
}

#[test]
fn labeled_loops_lex_as_lifetimes() {
    let toks = lex("'outer: loop { break 'outer; }");
    let lifetimes: Vec<&str> = toks
        .iter()
        .filter(|t| t.kind == TokKind::Lifetime)
        .map(|t| t.text.as_str())
        .collect();
    assert_eq!(lifetimes, vec!["outer", "outer"]);
}

#[test]
fn raw_identifiers_keep_their_name() {
    let toks = lex("fn r#match(r#type: u32) -> u32 { r#type }");
    let raws: Vec<&Tok> = toks
        .iter()
        .filter(|t| t.kind == TokKind::RawIdent)
        .collect();
    assert_eq!(raws.len(), 3);
    assert_eq!(raws[0].text, "match");
    assert_eq!(raws[1].text, "type");
    // `is_ident` treats raw and plain identifiers alike, which is what the
    // item extractor relies on.
    assert!(raws[0].is_ident("match"));
}

#[test]
fn nested_generics_are_plain_punctuation() {
    // `BTreeMap<String, Vec<Option<u32>>>` — the `>>>` run must come out
    // as three separate Punct tokens, never a shift operator or a string.
    let toks = lex("let m: BTreeMap<String, Vec<Option<u32>>> = Default::default();");
    let close: Vec<&Tok> = toks.iter().filter(|t| t.is_punct('>')).collect();
    assert_eq!(close.len(), 3);
    assert!(toks.iter().any(|t| t.is_ident("Option")));
}

#[test]
fn comments_are_invisible() {
    let toks = lex(concat!(
        "// line: x.lock()\n",
        "/* block panic!(\"no\") /* nested */ still comment */\n",
        "/// doc .unwrap()\n",
        "fn ok() {}\n",
    ));
    assert_eq!(texts(&toks), vec!["fn", "ok", "(", ")", "{", "}"]);
}

#[test]
fn line_numbers_survive_multiline_literals() {
    let toks = lex("let a = \"one\nstring\";\nfn g() {}");
    let g = toks.iter().find(|t| t.is_ident("g")).expect("fn g lexed");
    assert_eq!(g.line, 3);
}

#[test]
fn unterminated_literals_degrade_without_panicking() {
    // The lexer must tolerate broken input (it runs over arbitrary trees).
    let toks = lex("let s = \"never closed");
    assert!(toks.iter().any(|t| t.kind == TokKind::Str));
    let toks = lex("let s = r#\"never closed");
    assert!(toks.iter().any(|t| t.kind == TokKind::Str));
    let _ = lex("/* never closed");
}

#[test]
fn numeric_literals_with_suffixes_and_bases() {
    let toks = lex("let x = 0xFF_u32 + 1_000 + 2.5e3_f64 + 0b1010;");
    let nums: Vec<&str> = toks
        .iter()
        .filter(|t| t.kind == TokKind::Num)
        .map(|t| t.text.as_str())
        .collect();
    assert_eq!(nums.len(), 4, "got {nums:?}");
}
