//! Tests pinning down the call-graph resolution rules — including the
//! *approximations*. The analyzer's soundness story depends on exactly
//! which edges exist: precise resolutions (self methods, `Type::method`
//! paths, crate-qualified free functions) carry lock-order information,
//! while name-based fallback edges are marked approximate and only feed
//! reachability. These tests assert both the edges and the marks.

use xtask::callgraph::Graph;
use xtask::syntax::parse_file;

/// Builds a graph over `(crate, file, src)` fixtures.
fn graph(files: &[(&str, &str, &str)]) -> Graph {
    let mut fns = Vec::new();
    for (krate, file, src) in files {
        fns.extend(parse_file(krate, file, src));
    }
    Graph::build(fns)
}

/// `crate::Type::name` / `crate::name` — [`FnDef::qualified`] with the
/// crate prefixed, so same-named fns in different crates stay distinct.
fn label(g: &Graph, i: usize) -> String {
    format!("{}::{}", g.fns[i].crate_name, g.fns[i].qualified())
}

fn idx(g: &Graph, name: &str) -> usize {
    (0..g.fns.len())
        .find(|&i| label(g, i) == name)
        .unwrap_or_else(|| {
            let known: Vec<String> = (0..g.fns.len()).map(|i| label(g, i)).collect();
            panic!("no fn {name}; have {known:?}")
        })
}

fn callees(g: &Graph, caller: &str) -> Vec<(String, bool)> {
    let i = idx(g, caller);
    let mut out: Vec<(String, bool)> = g.edges[i]
        .iter()
        .map(|e| (label(g, e.callee), e.approx))
        .collect();
    out.sort();
    out.dedup();
    out
}

#[test]
fn self_method_calls_resolve_precisely() {
    let g = graph(&[(
        "app",
        "crates/app/src/lib.rs",
        r#"
pub struct S;
impl S {
    pub fn outer(&self) { self.inner(); }
    fn inner(&self) {}
}
pub struct T;
impl T {
    // Same method name on another type: a self call must not reach it.
    fn inner(&self) {}
}
"#,
    )]);
    assert_eq!(
        callees(&g, "app::S::outer"),
        vec![("app::S::inner".to_owned(), false)]
    );
}

#[test]
fn type_qualified_paths_resolve_precisely() {
    let g = graph(&[(
        "app",
        "crates/app/src/lib.rs",
        r#"
pub struct S;
impl S { pub fn make() -> S { S } }
pub fn build() -> S { S::make() }
"#,
    )]);
    assert_eq!(
        callees(&g, "app::build"),
        vec![("app::S::make".to_owned(), false)]
    );
}

#[test]
fn method_calls_on_unknown_receivers_over_approximate() {
    // `h.handle()` could be either impl — the graph keeps both edges and
    // marks them approximate (trait objects erase the concrete type).
    let g = graph(&[(
        "app",
        "crates/app/src/lib.rs",
        r#"
pub trait Handler { fn handle(&self); }
pub struct A;
impl Handler for A { fn handle(&self) {} }
pub struct B;
impl Handler for B { fn handle(&self) {} }
pub fn dispatch(h: &dyn Handler) { h.handle(); }
"#,
    )]);
    let edges = callees(&g, "app::dispatch");
    assert!(
        edges.contains(&("app::A::handle".to_owned(), true)),
        "edges: {edges:?}"
    );
    assert!(
        edges.contains(&("app::B::handle".to_owned(), true)),
        "edges: {edges:?}"
    );
    assert!(
        edges.iter().all(|(_, approx)| *approx),
        "fallback edges are approximate"
    );
}

#[test]
fn std_qualified_paths_are_cut() {
    // `fs::write` must not alias a workspace fn named `write`.
    let g = graph(&[(
        "app",
        "crates/app/src/lib.rs",
        r#"
use std::fs;
pub fn persist() { fs::write("/tmp/x", b"x").ok(); }
pub fn write(bytes: &[u8]) -> usize { bytes.len() }
"#,
    )]);
    assert_eq!(callees(&g, "app::persist"), vec![]);
}

#[test]
fn crate_qualified_free_calls_narrow_to_that_crate() {
    let g = graph(&[
        (
            "app",
            "crates/app/src/lib.rs",
            "pub fn root() -> u32 { evcap_spec::solve() }\n",
        ),
        (
            "spec",
            "crates/spec/src/lib.rs",
            "pub fn solve() -> u32 { 1 }\n",
        ),
        (
            "other",
            "crates/other/src/lib.rs",
            "pub fn solve() -> u32 { 2 }\n",
        ),
    ]);
    assert_eq!(
        callees(&g, "app::root"),
        vec![("spec::solve".to_owned(), false)]
    );
}

#[test]
fn unqualified_free_calls_keep_every_candidate() {
    let g = graph(&[
        (
            "app",
            "crates/app/src/lib.rs",
            "pub fn root() -> u32 { helper() }\n",
        ),
        (
            "app",
            "crates/app/src/util.rs",
            "pub fn helper() -> u32 { 1 }\n",
        ),
        (
            "other",
            "crates/other/src/lib.rs",
            "pub fn helper() -> u32 { 2 }\n",
        ),
    ]);
    let edges = callees(&g, "app::root");
    assert_eq!(
        edges.len(),
        2,
        "unqualified free calls over-approximate: {edges:?}"
    );
}

#[test]
fn option_adapters_produce_no_edges() {
    // `.unwrap()` / `.expect(…)` on a non-self receiver are panic
    // *sources*, not calls — even when the workspace defines a method of
    // the same name on some type.
    let g = graph(&[(
        "app",
        "crates/app/src/lib.rs",
        r#"
pub struct Parser;
impl Parser { pub fn expect(&self, _n: u32) -> u32 { 0 } }
pub fn root(v: Option<u32>) -> u32 { v.unwrap() + v.expect("set") }
"#,
    )]);
    assert_eq!(callees(&g, "app::root"), vec![]);
}

#[test]
fn own_expect_method_on_self_is_a_real_edge() {
    let g = graph(&[(
        "app",
        "crates/app/src/lib.rs",
        r#"
pub struct Parser;
impl Parser {
    pub fn root(&self) -> u32 { self.expect(1) }
    fn expect(&self, n: u32) -> u32 { n }
}
"#,
    )]);
    assert_eq!(
        callees(&g, "app::Parser::root"),
        vec![("app::Parser::expect".to_owned(), false)]
    );
}

#[test]
fn atomic_ops_with_an_ordering_argument_are_cut() {
    // `hits.load(Ordering::Relaxed)` must not alias `Store::load`; a
    // `store.load(key)` call (no Ordering token) must keep the edge.
    let g = graph(&[(
        "app",
        "crates/app/src/lib.rs",
        r#"
use std::sync::atomic::{AtomicU64, Ordering};
pub struct Store;
impl Store { pub fn load(&self, _key: &str) -> u32 { 0 } }
pub fn counter(hits: &AtomicU64) -> u64 { hits.load(Ordering::Relaxed) }
pub fn lookup(store: &Store, key: &str) -> u32 { store.load(key) }
"#,
    )]);
    assert_eq!(callees(&g, "app::counter"), vec![]);
    assert_eq!(
        callees(&g, "app::lookup"),
        vec![("app::Store::load".to_owned(), true)]
    );
}

#[test]
fn reachability_reports_the_full_chain() {
    let g = graph(&[(
        "app",
        "crates/app/src/lib.rs",
        r#"
pub fn a() { b() }
fn b() { c() }
fn c() {}
"#,
    )]);
    let roots = g.find_roots("app::a");
    assert_eq!(roots.len(), 1);
    let parent = g.reach(&roots, |_, _| false);
    let target = idx(&g, "app::c");
    assert!(parent[target].is_some());
    let chain = g.chain(&parent, target);
    assert_eq!(chain.len(), 3, "chain: {chain:?}");
    assert!(chain[0].starts_with("a ("), "chain: {chain:?}");
    assert!(chain[2].starts_with("c ("), "chain: {chain:?}");
}
