//! End-to-end analyzer tests over source fixtures, driving the same
//! [`xtask::deepcheck::analyze`] entry point the CLI uses. The
//! intentionally-deadlockable fixture here is the shared one the
//! self-test corpus uses, so the two suites can never drift apart on
//! what "a deadlock the analyzer must catch" looks like.

use xtask::deepcheck::{analyze, Config, Report, SourceUnit, DEADLOCK_FIXTURE};

fn run(files: &[(&str, &str, &str)], cfg: Config) -> Report {
    let units: Vec<SourceUnit> = files
        .iter()
        .map(|(krate, file, src)| SourceUnit {
            crate_name: (*krate).to_owned(),
            file: (*file).to_owned(),
            src: (*src).to_owned(),
        })
        .collect();
    analyze(&units, &cfg)
}

fn strings(cfg_fields: &[&str]) -> Vec<String> {
    cfg_fields.iter().map(|s| (*s).to_owned()).collect()
}

#[test]
fn the_deadlock_fixture_is_flagged_with_both_order_edges() {
    let report = run(
        &[("app", "crates/app/src/lib.rs", DEADLOCK_FIXTURE)],
        Config {
            panic_roots: Vec::new(),
            alloc_roots: Vec::new(),
            lock_crates: strings(&["app"]),
            index_crates: Vec::new(),
        },
    );
    assert_eq!(report.findings.len(), 1, "{:?}", rendered(&report));
    let f = &report.findings[0];
    assert_eq!(f.rule, "lock-order");
    let text = f.rendered();
    assert!(text.contains("cycle"), "{text}");
    assert!(text.contains("`a` then `b`"), "{text}");
    assert!(text.contains("`b` then `a`"), "{text}");
}

#[test]
fn a_reachable_unwrap_in_a_request_path_reports_the_full_chain() {
    let report = run(
        &[(
            "app",
            "crates/app/src/lib.rs",
            r#"
pub fn handle() -> u32 { route() }
fn route() -> u32 { lookup().unwrap() }
fn lookup() -> Option<u32> { None }
"#,
        )],
        Config {
            panic_roots: strings(&["app::handle"]),
            alloc_roots: Vec::new(),
            lock_crates: Vec::new(),
            index_crates: Vec::new(),
        },
    );
    assert_eq!(report.findings.len(), 1, "{:?}", rendered(&report));
    let text = report.findings[0].rendered();
    assert!(text.contains("panic-path"), "{text}");
    // The chain walks root -> intermediate -> site.
    assert!(text.contains("handle ("), "{text}");
    assert!(text.contains("route ("), "{text}");
    assert!(text.contains("`.unwrap()`"), "{text}");
}

#[test]
fn a_waiver_suppresses_and_counts_and_a_stale_one_is_flagged() {
    let src_waived = r#"
pub fn handle() -> u32 {
    // deepcheck:allow(panic-path): fixture — value is always present
    lookup().unwrap()
}
fn lookup() -> Option<u32> { Some(1) }
"#;
    let report = run(
        &[("app", "crates/app/src/lib.rs", src_waived)],
        Config {
            panic_roots: strings(&["app::handle"]),
            alloc_roots: Vec::new(),
            lock_crates: Vec::new(),
            index_crates: Vec::new(),
        },
    );
    assert!(report.clean(), "{:?}", rendered(&report));
    assert_eq!((report.waivers, report.waivers_used), (1, 1));

    // The same waiver with nothing to suppress is itself a finding.
    let src_stale = r#"
pub fn handle() -> u32 {
    // deepcheck:allow(panic-path): fixture — value is always present
    1
}
"#;
    let report = run(
        &[("app", "crates/app/src/lib.rs", src_stale)],
        Config {
            panic_roots: strings(&["app::handle"]),
            alloc_roots: Vec::new(),
            lock_crates: Vec::new(),
            index_crates: Vec::new(),
        },
    );
    assert_eq!(report.findings.len(), 1, "{:?}", rendered(&report));
    assert_eq!(report.findings[0].rule, "stale-waiver");
}

#[test]
fn hot_path_allocations_are_flagged_and_cold_paths_are_not() {
    let report = run(
        &[(
            "app",
            "crates/app/src/lib.rs",
            r#"
pub fn hot(n: u32) -> usize { render(n) }
fn render(n: u32) -> usize { format!("{n}").len() }
pub fn cold() -> String { String::from("fine here") }
"#,
        )],
        Config {
            panic_roots: Vec::new(),
            alloc_roots: strings(&["app::hot"]),
            lock_crates: Vec::new(),
            index_crates: Vec::new(),
        },
    );
    assert_eq!(report.findings.len(), 1, "{:?}", rendered(&report));
    let text = report.findings[0].rendered();
    assert!(text.contains("alloc-hot"), "{text}");
    assert!(text.contains("`format!`"), "{text}");
}

#[test]
fn a_root_that_matches_nothing_is_config_drift() {
    let report = run(
        &[("app", "crates/app/src/lib.rs", "pub fn handle() {}\n")],
        Config {
            panic_roots: strings(&["app::renamed_handle"]),
            alloc_roots: Vec::new(),
            lock_crates: Vec::new(),
            index_crates: Vec::new(),
        },
    );
    assert_eq!(report.findings.len(), 1, "{:?}", rendered(&report));
    let text = report.findings[0].rendered();
    assert!(text.contains("matches no function"), "{text}");
}

fn rendered(report: &Report) -> Vec<String> {
    report.findings.iter().map(|f| f.rendered()).collect()
}
