//! `xtask tidy`: the token-level architecture lint.
//!
//! Enforces repo conventions the compiler cannot see — which crate is
//! allowed to construct policies, where wall-clock reads may happen, who
//! spawns threads, and who formats JSON by hand. A finding can be waived
//! at the site with an inline escape comment on the offending line or the
//! line directly above it:
//!
//! ```text
//! // tidy:allow(rule-name): one-line justification
//! ```
//!
//! Escapes are themselves checked: one that names an unknown rule, or
//! that never actually suppresses a finding, is reported under the
//! `stale-allow` rule so waivers cannot rot silently as the code under
//! them improves.
//!
//! The lint is deliberately token-level, not syntactic: it reads lines,
//! not ASTs, so it stays fast and obvious. The cost of that choice is a
//! small set of documented blind spots — needles split across lines, or
//! aliased constructors. `xtask deepcheck` is the semantic counterpart
//! that reasons over the call graph.

use std::cell::RefCell;
use std::collections::BTreeSet;
use std::fmt;
use std::fs;
use std::process::ExitCode;

use crate::files::{collect_sources, workspace_root};

/// Every rule `tidy` knows about. Printed by `tidy --list` and used to
/// validate `tidy:allow(...)` escapes in self-test snippets.
pub const RULES: &[(&str, &str)] = &[
    (
        "solve-site",
        "policy construction (GreedyPolicy::optimize, ClusteringOptimizer, ...) belongs in \
         crates/spec's solve(); other call sites need an escape explaining why they bypass \
         the Scenario -> SolvedPolicy artifact layer",
    ),
    (
        "serve-unwrap",
        "no .unwrap()/.expect( on evcap-serve request paths: a worker panic silently drops \
         the connection instead of answering with a structured error",
    ),
    (
        "instant-now",
        "Instant::now outside evcap-obs bypasses the instrumentation layer's timing spans",
    ),
    (
        "thread-spawn",
        "threads are spawned only by evcap_sim::parallel and the server accept pool; ad-hoc \
         threads escape the shutdown and panic-propagation story",
    ),
    (
        "json-fmt",
        "hand-rolled JSON (a `{\\\"` literal) outside the shared writers (evcap-obs jsonl, \
         cli json) drifts from the escaping rules the parsers expect",
    ),
    (
        "print",
        "println!/eprintln! belongs to the CLI (crates/cli/src) — library crates report \
         through evcap-obs records or return values; deliberate stderr diagnostics carry \
         an escape",
    ),
    (
        "unsafe",
        "unsafe code lives only in the serve signal shim, where every block carries a \
         SAFETY: comment; everywhere else the crate root forbids it",
    ),
    (
        "store-certify",
        "a policy artifact deserialized on an evcap-serve path (Store::load / rehydrate) must \
         pass evcap_audit::certify before being served — a stale, corrupt, or tampered record \
         must fall back to a fresh solve, never reach a client",
    ),
    (
        "batch-soa",
        "crates/sim/src/batch.rs must route replications through the lockstep SoA engine \
         (soa::run_chunk); calling back into the scalar per-replication entry points \
         (run_core / run_on_observed) forfeits the batching speedup one seed at a time",
    ),
    (
        "forbid-unsafe",
        "every crate root carries #![forbid(unsafe_code)] (or #![deny] when a module must \
         opt out, as the signal shim does)",
    ),
    (
        "crate-docs",
        "every crate root opens with //! documentation",
    ),
    (
        "objective-score",
        "ranking candidates by raw capture_probability outside crates/core hard-codes the \
         QoM objective; score through Objective::utility / greedy_utility so age objectives \
         see the same candidate machinery",
    ),
    (
        "stale-allow",
        "a tidy:allow(...) escape that names an unknown rule or no longer suppresses any \
         finding is dead weight — remove it so real waivers stay auditable",
    ),
];

/// Prints the rule list (`tidy --list`).
pub fn list() -> ExitCode {
    for (name, what) in RULES {
        println!("{name}: {what}");
    }
    ExitCode::SUCCESS
}

// ---------------------------------------------------------------------------
// Violations
// ---------------------------------------------------------------------------

struct Violation {
    file: String,
    line: usize,
    rule: &'static str,
    message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

// ---------------------------------------------------------------------------
// Per-file model
// ---------------------------------------------------------------------------

/// A source file reduced to what the rules need: its workspace-relative
/// path (forward slashes) and its lines, with the index of the first
/// column-0 `#[cfg(test)]` marking where inline test code begins.
struct SourceFile {
    path: String,
    lines: Vec<String>,
    /// Line index (0-based) of the first column-0 `#[cfg(test)]`; lines at
    /// or beyond this are test code. `usize::MAX` when the file has none.
    test_cutoff: usize,
    /// `(escape line, rule)` pairs that actually waived a finding; the
    /// stale-allow pass reports every escape not recorded here.
    used_escapes: RefCell<BTreeSet<(usize, String)>>,
}

impl SourceFile {
    fn new(path: &str, content: &str) -> Self {
        let lines: Vec<String> = content.lines().map(str::to_owned).collect();
        let test_cutoff = lines
            .iter()
            .position(|l| l.starts_with("#[cfg(test)]"))
            .unwrap_or(usize::MAX);
        SourceFile {
            path: path.to_owned(),
            lines,
            test_cutoff,
            used_escapes: RefCell::new(BTreeSet::new()),
        }
    }

    /// True when the whole file is test-or-example support: integration
    /// tests, benches, examples, and generated fixtures.
    fn is_test_file(&self) -> bool {
        ["/tests/", "/benches/", "/examples/"]
            .iter()
            .any(|seg| self.path.contains(seg))
            || self.path.starts_with("examples/")
    }

    /// Content rules do not apply to the lint itself or to the compat
    /// shims (which exist precisely to mirror external crates' APIs,
    /// clocks and all).
    fn is_content_exempt(&self) -> bool {
        self.path.starts_with("crates/xtask/") || self.path.starts_with("compat/")
    }

    /// True when `idx` (0-based) is exempt from content rules: inside the
    /// inline test module, a comment line, or carrying/following a
    /// `tidy:allow(rule)` escape. A matching escape is recorded as used.
    fn line_waived(&self, idx: usize, rule: &str) -> bool {
        if idx >= self.test_cutoff {
            return true;
        }
        let trimmed = self.lines[idx].trim_start();
        if trimmed.starts_with("//") {
            return true;
        }
        let escape = format!("tidy:allow({rule})");
        if self.lines[idx].contains(&escape) {
            self.mark_used(idx, rule);
            return true;
        }
        if idx > 0 && self.lines[idx - 1].contains(&escape) {
            self.mark_used(idx - 1, rule);
            return true;
        }
        false
    }

    fn mark_used(&self, escape_idx: usize, rule: &str) {
        self.used_escapes
            .borrow_mut()
            .insert((escape_idx, rule.to_owned()));
    }
}

/// Crate roots get two extra structural rules. A root is any `src/lib.rs`
/// or `src/main.rs`, plus the workspace's own `src/lib.rs`.
fn is_crate_root(path: &str) -> bool {
    path == "src/lib.rs" || path.ends_with("/src/lib.rs") || path.ends_with("/src/main.rs")
}

// ---------------------------------------------------------------------------
// Content rules
// ---------------------------------------------------------------------------

/// Constructor calls that produce a policy. Building one of these outside
/// crates/spec bypasses the artifact layer (and its debug certification).
const SOLVE_NEEDLES: &[&str] = &[
    "GreedyPolicy::optimize(",
    "ClusteringOptimizer::new(",
    "ClusteringPolicy::new(",
    "MyopicPolicy::derive(",
    "PeriodicPolicy::energy_balanced(",
    "AggressivePolicy::new(",
];

/// Comparison spellings that rank candidates by raw capture probability.
/// Outside crates/core — where the `Objective` abstraction owns scoring —
/// such a comparison silently re-hard-codes the QoM objective.
const OBJECTIVE_SCORE_NEEDLES: &[&str] = &[
    "capture_probability >",
    "capture_probability <",
    "capture_probability.partial_cmp",
];

fn content_violations(file: &SourceFile) -> Vec<Violation> {
    let mut out = Vec::new();
    if file.is_test_file() || file.is_content_exempt() {
        return out;
    }
    let mut push = |idx: usize, rule: &'static str, message: String| {
        out.push(Violation {
            file: file.path.clone(),
            line: idx + 1,
            rule,
            message,
        });
    };

    let in_serve_src = file.path.starts_with("crates/serve/src/");
    let in_spec_or_core =
        file.path.starts_with("crates/spec/") || file.path.starts_with("crates/core/");
    let is_signal_shim = file.path == "crates/serve/src/signal.rs";

    for (idx, line) in file.lines.iter().enumerate() {
        // solve-site
        if !in_spec_or_core {
            for needle in SOLVE_NEEDLES {
                if line.contains(needle) && !file.line_waived(idx, "solve-site") {
                    push(
                        idx,
                        "solve-site",
                        format!("`{needle}..)` outside crates/spec — go through Scenario::solve()"),
                    );
                }
            }
        }

        // objective-score
        if !file.path.starts_with("crates/core/") {
            for needle in OBJECTIVE_SCORE_NEEDLES {
                if line.contains(needle) && !file.line_waived(idx, "objective-score") {
                    push(
                        idx,
                        "objective-score",
                        format!(
                            "`{needle}` outside crates/core re-hard-codes QoM — rank through \
                             Objective::utility"
                        ),
                    );
                }
            }
        }

        // serve-unwrap
        if in_serve_src
            && (line.contains(".unwrap()") || line.contains(".expect("))
            && !file.line_waived(idx, "serve-unwrap")
        {
            push(
                idx,
                "serve-unwrap",
                "unwrap/expect on a serve request path — answer a structured error instead"
                    .to_owned(),
            );
        }

        // instant-now
        if !file.path.starts_with("crates/obs/src/")
            && line.contains("Instant::now")
            && !file.line_waived(idx, "instant-now")
        {
            push(
                idx,
                "instant-now",
                "Instant::now outside evcap-obs — use an obs timing span".to_owned(),
            );
        }

        // thread-spawn
        if file.path != "crates/sim/src/parallel.rs"
            && file.path != "crates/serve/src/server.rs"
            && (line.contains("thread::spawn") || line.contains("thread::Builder"))
            && !file.line_waived(idx, "thread-spawn")
        {
            push(
                idx,
                "thread-spawn",
                "thread spawn outside evcap_sim::parallel / the server pool".to_owned(),
            );
        }

        // json-fmt: a `{\"` literal is the tell-tale of hand-assembled JSON.
        if file.path != "crates/obs/src/jsonl.rs"
            && file.path != "crates/cli/src/json.rs"
            && line.contains("{\\\"")
            && !file.line_waived(idx, "json-fmt")
        {
            push(
                idx,
                "json-fmt",
                "hand-rolled JSON literal — use the shared writers (evcap-obs jsonl / cli json)"
                    .to_owned(),
            );
        }

        // print: stdout/stderr belongs to the CLI binary; a library that
        // prints bypasses the JSONL observability pipeline and pollutes
        // output that tests and scripts scrape.
        if !file.path.starts_with("crates/cli/src/")
            && (line.contains("println!") || line.contains("eprintln!"))
            && !file.line_waived(idx, "print")
        {
            push(
                idx,
                "print",
                "println!/eprintln! outside crates/cli — emit an obs record or return the text"
                    .to_owned(),
            );
        }

        // store-certify: a disk-loaded artifact on a serve path must be
        // certified before reuse. Token-level: a `.load(` / `rehydrate(`
        // line (atomic `Ordering` loads excluded) must have
        // `evcap_audit::certify` on the same or one of the following 8
        // lines — the pairing the three-tier cache relies on.
        if in_serve_src {
            let artifact_load = (line.contains(".load(") && !line.contains("Ordering"))
                || line.contains("rehydrate(");
            if artifact_load && !file.line_waived(idx, "store-certify") {
                let end = (idx + 9).min(file.lines.len());
                let certified = file.lines[idx..end]
                    .iter()
                    .any(|l| l.contains("evcap_audit::certify"));
                if !certified {
                    push(
                        idx,
                        "store-certify",
                        "deserialized artifact served without an evcap_audit::certify gate"
                            .to_owned(),
                    );
                }
            }
        }

        // batch-soa: the batch layer went per-seed once and it cost 16× the
        // setup work; keep it on the lockstep chunk engine.
        if file.path == "crates/sim/src/batch.rs"
            && (line.contains("run_core(") || line.contains("run_on_observed("))
            && !file.line_waived(idx, "batch-soa")
        {
            push(
                idx,
                "batch-soa",
                "scalar engine entry point in the batch layer — route through soa::run_chunk"
                    .to_owned(),
            );
        }

        // unsafe: token-level word match so `unsafe_code` in attributes
        // doesn't trip it, but `unsafe {`, `unsafe fn`, `unsafe impl` do.
        if has_unsafe_token(line) && !file.line_waived(idx, "unsafe") {
            if is_signal_shim {
                // The shim is the one sanctioned home for unsafe — but each
                // block must carry a SAFETY: comment within the 4 preceding
                // lines (or inline).
                let start = idx.saturating_sub(4);
                let documented = file.lines[start..=idx]
                    .iter()
                    .any(|l| l.contains("SAFETY:"));
                if !documented {
                    push(
                        idx,
                        "unsafe",
                        "unsafe in the signal shim without a SAFETY: comment".to_owned(),
                    );
                }
            } else {
                push(
                    idx,
                    "unsafe",
                    "unsafe outside the serve signal shim".to_owned(),
                );
            }
        }
    }
    out
}

/// True when the line contains `unsafe` as a standalone token (followed by
/// whitespace, `{`, or end of line) rather than as part of an identifier
/// like `unsafe_code` or `forbid(unsafe_code)`.
fn has_unsafe_token(line: &str) -> bool {
    let bytes = line.as_bytes();
    let mut from = 0;
    while let Some(pos) = line[from..].find("unsafe") {
        let at = from + pos;
        let end = at + "unsafe".len();
        let before_ok = at == 0 || !is_ident_byte(bytes[at - 1]);
        let after_ok = end >= bytes.len() || !is_ident_byte(bytes[end]);
        if before_ok && after_ok {
            return true;
        }
        from = end;
    }
    false
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

// ---------------------------------------------------------------------------
// Crate-root rules
// ---------------------------------------------------------------------------

fn root_violations(file: &SourceFile) -> Vec<Violation> {
    let mut out = Vec::new();
    if !is_crate_root(&file.path) {
        return out;
    }

    // forbid-unsafe: the root must pin down unsafe_code at deny or forbid.
    let has_lint = file
        .lines
        .iter()
        .any(|l| l.contains("#![forbid(unsafe_code)]") || l.contains("#![deny(unsafe_code)]"));
    if !has_lint {
        match find_escape(file, "forbid-unsafe") {
            Some(idx) => file.mark_used(idx, "forbid-unsafe"),
            None => out.push(Violation {
                file: file.path.clone(),
                line: 1,
                rule: "forbid-unsafe",
                message: "crate root lacks #![forbid(unsafe_code)] (or #![deny] + module opt-out)"
                    .to_owned(),
            }),
        }
    }

    // crate-docs: the first non-empty line must be a `//!` doc line.
    let first = file
        .lines
        .iter()
        .find(|l| !l.trim().is_empty())
        .map(|l| l.trim_start());
    let documented = matches!(first, Some(l) if l.starts_with("//!"));
    if !documented {
        match find_escape(file, "crate-docs") {
            Some(idx) => file.mark_used(idx, "crate-docs"),
            None => out.push(Violation {
                file: file.path.clone(),
                line: 1,
                rule: "crate-docs",
                message: "crate root does not open with //! documentation".to_owned(),
            }),
        }
    }
    out
}

/// Index of the first line carrying a `tidy:allow(rule)` escape.
fn find_escape(file: &SourceFile, rule: &str) -> Option<usize> {
    let escape = format!("tidy:allow({rule})");
    file.lines.iter().position(|l| l.contains(&escape))
}

// ---------------------------------------------------------------------------
// Stale-allow: escapes must earn their keep
// ---------------------------------------------------------------------------

/// Reports every `tidy:allow(...)` escape that names an unknown rule or
/// was never consulted while a finding was being suppressed. Must run
/// after the content and root rules so `used_escapes` is populated.
fn stale_violations(file: &SourceFile) -> Vec<Violation> {
    let mut out = Vec::new();
    if file.is_test_file() || file.is_content_exempt() {
        return out;
    }
    let used = file.used_escapes.borrow();
    for (idx, line) in file.lines.iter().enumerate() {
        if idx >= file.test_cutoff {
            break;
        }
        let mut from = 0;
        while let Some(pos) = line[from..].find("tidy:allow(") {
            let at = from + pos + "tidy:allow(".len();
            let Some(close) = line[at..].find(')') else {
                break;
            };
            let rule = &line[at..at + close];
            from = at + close;
            if !RULES.iter().any(|(name, _)| name == &rule) {
                out.push(Violation {
                    file: file.path.clone(),
                    line: idx + 1,
                    rule: "stale-allow",
                    message: format!("escape names unknown rule `{rule}` (see `tidy --list`)"),
                });
            } else if !used.contains(&(idx, rule.to_owned())) {
                out.push(Violation {
                    file: file.path.clone(),
                    line: idx + 1,
                    rule: "stale-allow",
                    message: format!(
                        "tidy:allow({rule}) no longer suppresses any finding — remove it"
                    ),
                });
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// The tidy run
// ---------------------------------------------------------------------------

fn check_source(file: &SourceFile) -> Vec<Violation> {
    let mut v = content_violations(file);
    v.extend(root_violations(file));
    // Stale detection last: it reads the used-escape set the rules above
    // populate.
    v.extend(stale_violations(file));
    v
}

/// Lints the workspace (`xtask tidy`).
pub fn run() -> ExitCode {
    let root = workspace_root();
    let sources = collect_sources(&root);
    assert!(
        sources.len() >= 20,
        "tidy walked only {} files — is the workspace layout intact?",
        sources.len()
    );

    let mut violations = Vec::new();
    let mut roots_seen = 0usize;
    for rel in &sources {
        let path = rel.to_string_lossy().replace('\\', "/");
        let content = match fs::read_to_string(root.join(rel)) {
            Ok(c) => c,
            Err(err) => {
                eprintln!("tidy: cannot read {path}: {err}");
                return ExitCode::FAILURE;
            }
        };
        let file = SourceFile::new(&path, &content);
        if is_crate_root(&file.path) {
            roots_seen += 1;
        }
        violations.extend(check_source(&file));
    }
    // The workspace has a dozen-plus crate roots; seeing almost none means
    // the structural rules silently checked nothing.
    assert!(
        roots_seen >= 10,
        "tidy matched only {roots_seen} crate roots — path heuristics broken?"
    );

    if violations.is_empty() {
        println!(
            "tidy: {} files, {roots_seen} crate roots, {} rules — clean",
            sources.len(),
            RULES.len()
        );
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            println!("{v}");
        }
        println!(
            "tidy: {} violation(s) across {} files (escape with `// tidy:allow(rule): why`)",
            violations.len(),
            sources.len()
        );
        ExitCode::FAILURE
    }
}

// ---------------------------------------------------------------------------
// Self-test: every rule must be able to fire, and every waiver mechanism
// must be able to suppress it.
// ---------------------------------------------------------------------------

struct Case {
    label: &'static str,
    path: &'static str,
    content: &'static str,
    /// Rules expected to fire, in any order, one entry per violation.
    expect: &'static [&'static str],
}

const CASES: &[Case] = &[
    Case {
        label: "solve-site fires outside spec",
        path: "crates/bench/src/seeded.rs",
        content: "fn f() {\n    let p = GreedyPolicy::optimize(&pmf, budget, &model);\n}\n",
        expect: &["solve-site"],
    },
    Case {
        label: "solve-site is legal inside crates/spec",
        path: "crates/spec/src/seeded.rs",
        content: "fn f() {\n    let p = GreedyPolicy::optimize(&pmf, budget, &model);\n}\n",
        expect: &[],
    },
    Case {
        label: "serve-unwrap fires on request paths",
        path: "crates/serve/src/seeded.rs",
        content: "fn f() {\n    let v = body.parse().unwrap();\n}\n",
        expect: &["serve-unwrap"],
    },
    Case {
        label: "serve-unwrap ignores other crates",
        path: "crates/sim/src/seeded.rs",
        content: "fn f() {\n    let v = body.parse().unwrap();\n}\n",
        expect: &[],
    },
    Case {
        label: "instant-now fires outside evcap-obs",
        path: "crates/cli/src/seeded.rs",
        content: "fn f() {\n    let t = Instant::now();\n}\n",
        expect: &["instant-now"],
    },
    Case {
        label: "instant-now is legal inside evcap-obs",
        path: "crates/obs/src/seeded.rs",
        content: "fn f() {\n    let t = Instant::now();\n}\n",
        expect: &[],
    },
    Case {
        label: "thread-spawn fires outside the sanctioned files",
        path: "crates/cli/src/seeded.rs",
        content: "fn f() {\n    std::thread::spawn(|| {});\n}\n",
        expect: &["thread-spawn"],
    },
    Case {
        label: "json-fmt fires on hand-rolled JSON",
        path: "crates/serve/src/seeded.rs",
        content: "fn f() {\n    let s = format!(\"{{\\\"a\\\":{n}}}\");\n}\n",
        expect: &["json-fmt"],
    },
    Case {
        label: "print fires in library crates",
        path: "crates/serve/src/seeded.rs",
        content: "fn f() {\n    eprintln!(\"draining\");\n}\n",
        expect: &["print"],
    },
    Case {
        label: "print is legal inside the CLI",
        path: "crates/cli/src/seeded.rs",
        content: "fn f() {\n    println!(\"listening\");\n}\n",
        expect: &[],
    },
    Case {
        label: "print with an escape passes",
        path: "crates/bench/src/seeded.rs",
        content: "fn f() {\n    eprintln!(\"# perf\"); // tidy:allow(print): stderr report by design\n}\n",
        expect: &[],
    },
    Case {
        label: "store-certify fires on an uncertified store load in serve",
        path: "crates/serve/src/seeded.rs",
        content: "fn f() {\n    let loaded = store.lock().ok()?.load(key);\n    serve(loaded);\n}\n",
        expect: &["store-certify"],
    },
    Case {
        label: "store-certify passes when certify gates the load",
        path: "crates/serve/src/seeded.rs",
        content: "fn f() {\n    let loaded = store.lock().ok()?.load(key);\n    match loaded {\n        Ok(solved) => match evcap_audit::certify(scenario, &solved) {\n            Ok(_) => keep(solved),\n            Err(_) => reject(),\n        },\n        Err(_) => miss(),\n    }\n}\n",
        expect: &[],
    },
    Case {
        label: "store-certify fires on a bare rehydrate in serve",
        path: "crates/serve/src/seeded.rs",
        content: "fn f() {\n    let solved = evcap_spec::rehydrate(&scenario, &params)?;\n}\n",
        expect: &["store-certify"],
    },
    Case {
        label: "store-certify ignores atomic loads",
        path: "crates/serve/src/seeded.rs",
        content: "fn f() {\n    let stop = shared.shutdown.load(Ordering::SeqCst);\n}\n",
        expect: &[],
    },
    Case {
        label: "store-certify ignores loads outside serve",
        path: "crates/cli/src/seeded.rs",
        content: "fn f() {\n    let rec = store.load(key);\n}\n",
        expect: &[],
    },
    Case {
        label: "store-certify with an escape passes",
        path: "crates/serve/src/seeded.rs",
        content: "fn f() {\n    // tidy:allow(store-certify): debug endpoint, never served to clients\n    let rec = store.lock().ok()?.load(key);\n}\n",
        expect: &[],
    },
    Case {
        label: "batch-soa fires on a scalar engine call in the batch layer",
        path: "crates/sim/src/batch.rs",
        content: "fn f() {\n    let report = sim.run_core(schedule, info, &prob, &mut mk, &mut obs);\n}\n",
        expect: &["batch-soa"],
    },
    Case {
        label: "batch-soa ignores scalar engine calls elsewhere",
        path: "crates/sim/src/engine.rs",
        content: "fn f() {\n    let report = self.run_on_observed(schedule, policy, mk, observer);\n}\n",
        expect: &[],
    },
    Case {
        label: "batch-soa with an escape passes",
        path: "crates/sim/src/batch.rs",
        content: "fn f() {\n    // tidy:allow(batch-soa): equivalence check against the scalar engine\n    let report = sim.run_core(schedule, info, &prob, &mut mk, &mut obs);\n}\n",
        expect: &[],
    },
    Case {
        label: "objective-score fires on raw QoM ranking outside core",
        path: "crates/spec/src/seeded.rs",
        content: "fn f() {\n    if eval.capture_probability > best.capture_probability {\n        best = eval;\n    }\n}\n",
        expect: &["objective-score"],
    },
    Case {
        label: "objective-score is legal inside crates/core",
        path: "crates/core/src/seeded.rs",
        content: "fn f() {\n    if eval.capture_probability > best.capture_probability {\n        best = eval;\n    }\n}\n",
        expect: &[],
    },
    Case {
        label: "objective-score with an escape passes",
        path: "crates/serve/src/seeded.rs",
        content: "fn f() {\n    // tidy:allow(objective-score): feasibility floor, not a ranking\n    let ok = eval.capture_probability > 0.0;\n}\n",
        expect: &[],
    },
    Case {
        label: "unsafe fires outside the signal shim",
        path: "crates/sim/src/seeded.rs",
        content: "fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n",
        expect: &["unsafe"],
    },
    Case {
        label: "unsafe in the shim without SAFETY still fires",
        path: "crates/serve/src/signal.rs",
        content: "fn f() {\n    unsafe { libc_signal(2, handler as usize) };\n}\n",
        expect: &["unsafe"],
    },
    Case {
        label: "unsafe in the shim with SAFETY passes",
        path: "crates/serve/src/signal.rs",
        content: "fn f() {\n    // SAFETY: handler is async-signal-safe and 'static.\n    unsafe { libc_signal(2, handler as usize) };\n}\n",
        expect: &[],
    },
    Case {
        label: "unsafe_code in an attribute is not the unsafe token",
        path: "crates/sim/src/seeded.rs",
        content: "#![forbid(unsafe_code)]\nfn f() {}\n",
        expect: &[],
    },
    Case {
        label: "forbid-unsafe + crate-docs fire on a bare crate root",
        path: "crates/seeded/src/lib.rs",
        content: "pub fn f() {}\n",
        expect: &["forbid-unsafe", "crate-docs"],
    },
    Case {
        label: "a documented, forbidding crate root passes",
        path: "crates/seeded/src/lib.rs",
        content: "//! Seeded crate.\n#![forbid(unsafe_code)]\npub fn f() {}\n",
        expect: &[],
    },
    Case {
        label: "tidy:allow on the same line waives the finding",
        path: "crates/cli/src/seeded.rs",
        content: "fn f() {\n    let t = Instant::now(); // tidy:allow(instant-now): wall clock for a banner\n}\n",
        expect: &[],
    },
    Case {
        label: "tidy:allow on the preceding line waives the finding",
        path: "crates/bench/src/seeded.rs",
        content: "fn f() {\n    // tidy:allow(solve-site): ablation needs a raw policy\n    let p = GreedyPolicy::optimize(&pmf, budget, &model);\n}\n",
        expect: &[],
    },
    Case {
        label: "a mismatched tidy:allow fails twice: finding plus stale escape",
        path: "crates/cli/src/seeded.rs",
        content: "fn f() {\n    let t = Instant::now(); // tidy:allow(json-fmt): wrong rule\n}\n",
        expect: &["instant-now", "stale-allow"],
    },
    Case {
        label: "stale-allow fires on an escape with nothing to suppress",
        path: "crates/cli/src/seeded.rs",
        content: "fn f() {\n    // tidy:allow(print): removed the debug print, forgot the escape\n    let n = 1;\n}\n",
        expect: &["stale-allow"],
    },
    Case {
        label: "stale-allow fires on an unknown rule name",
        path: "crates/cli/src/seeded.rs",
        content: "fn f() {\n    let t = Instant::now(); // tidy:allow(instant-nao): typo\n}\n",
        expect: &["instant-now", "stale-allow"],
    },
    Case {
        label: "a crate-root escape that still suppresses is not stale",
        path: "crates/seeded/src/lib.rs",
        content: "//! Seeded crate.\n// tidy:allow(forbid-unsafe): proc-macro crate, lint inapplicable\npub fn f() {}\n",
        expect: &[],
    },
    Case {
        label: "code below a column-0 #[cfg(test)] is exempt",
        path: "crates/cli/src/seeded.rs",
        content: "fn f() {}\n\n#[cfg(test)]\nmod tests {\n    fn g() {\n        let t = Instant::now();\n    }\n}\n",
        expect: &[],
    },
    Case {
        label: "files under tests/ are exempt",
        path: "crates/serve/tests/seeded.rs",
        content: "fn f() {\n    let v = body.parse().unwrap();\n    let t = Instant::now();\n}\n",
        expect: &[],
    },
    Case {
        label: "compat shims are exempt from content rules",
        path: "compat/criterion/src/seeded.rs",
        content: "fn f() {\n    let t = Instant::now();\n}\n",
        expect: &[],
    },
    Case {
        label: "comment lines do not trip content rules",
        path: "crates/cli/src/seeded.rs",
        content: "fn f() {\n    // e.g. Instant::now() would be wrong here\n}\n",
        expect: &[],
    },
];

/// Runs the fixture corpus (`xtask tidy --self-test`).
pub fn self_test() -> ExitCode {
    // Every expectation must name a real rule, or the test proves nothing.
    for case in CASES {
        for rule in case.expect {
            assert!(
                RULES.iter().any(|(name, _)| name == rule),
                "self-test case `{}` expects unknown rule `{rule}`",
                case.label
            );
        }
    }

    let mut failures = 0usize;
    for case in CASES {
        let file = SourceFile::new(case.path, case.content);
        let got: Vec<&str> = check_source(&file).iter().map(|v| v.rule).collect();
        let mut want: Vec<&str> = case.expect.to_vec();
        let mut sorted = got.clone();
        sorted.sort_unstable();
        want.sort_unstable();
        if sorted == want {
            println!("ok   {}", case.label);
        } else {
            failures += 1;
            println!(
                "FAIL {} — expected {:?}, got {:?}",
                case.label, case.expect, got
            );
        }
    }

    // Each rule must fire in at least one case; a rule no case can trigger
    // is dead weight (or silently broken).
    for (name, _) in RULES {
        let fired = CASES.iter().any(|c| c.expect.contains(name));
        if !fired {
            failures += 1;
            println!("FAIL rule `{name}` is never exercised by any self-test case");
        }
    }

    if failures == 0 {
        println!("tidy self-test: {} cases, all rules fire — ok", CASES.len());
        ExitCode::SUCCESS
    } else {
        println!("tidy self-test: {failures} failure(s)");
        ExitCode::FAILURE
    }
}
