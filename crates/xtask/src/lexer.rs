//! A std-only Rust lexer for the deepcheck analyzer.
//!
//! This is not a compiler front end: it produces a flat token stream that
//! is *sufficient* for the syntactic analyses in `deepcheck` — item
//! boundaries, call sites, lock acquisitions, indexing expressions. The
//! hard part of lexing Rust at this depth is making sure *strings and
//! comments can never masquerade as code*: a `panic!` inside a doc
//! comment, a `".lock()"` inside a string literal, or a `#` inside a raw
//! string must all be invisible to the rules. The lexer therefore handles
//! the full literal grammar (raw strings with arbitrary hash fences, byte
//! strings, char vs. lifetime disambiguation, nested block comments,
//! `r#ident` raw identifiers) and treats everything else as single-char
//! punctuation — multi-char operators like `::` and `->` are recognized
//! downstream by looking at adjacent tokens.

/// What a token is, at the granularity the analyses need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`fn`, `impl`, `lock`, …). Keywords are
    /// not distinguished here; consumers match on the text.
    Ident,
    /// A raw identifier (`r#type`); `text` holds the part after `r#`.
    RawIdent,
    /// A lifetime (`'a`, `'static`); `text` holds the name without `'`.
    Lifetime,
    /// Any string-ish literal: `"…"`, `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`.
    /// `text` is the raw source slice including delimiters.
    Str,
    /// A char or byte literal: `'x'`, `'\n'`, `b'\0'`.
    Char,
    /// A numeric literal (integer or float, any base, with suffix).
    Num,
    /// A single punctuation character: `{ } ( ) [ ] . , ; : ! # …`.
    Punct,
}

/// One lexed token: kind, source text, and the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

impl Tok {
    /// True when this token is punctuation equal to `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.as_bytes()[0] == c as u8
    }

    /// True when this token is an identifier (raw or plain) equal to `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        matches!(self.kind, TokKind::Ident | TokKind::RawIdent) && self.text == s
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lexes Rust source into tokens, dropping comments and whitespace.
///
/// Unterminated literals and comments are tolerated (the rest of the file
/// is swallowed into the pending token): the analyzer must never panic on
/// weird input, merely degrade.
pub fn lex(src: &str) -> Vec<Tok> {
    Lexer {
        bytes: src.as_bytes(),
        src,
        pos: 0,
        line: 1,
        out: Vec::with_capacity(src.len() / 6),
    }
    .run()
}

struct Lexer<'a> {
    bytes: &'a [u8],
    src: &'a str,
    pos: usize,
    line: u32,
    out: Vec<Tok>,
}

impl Lexer<'_> {
    fn run(mut self) -> Vec<Tok> {
        while self.pos < self.bytes.len() {
            let b = self.bytes[self.pos];
            match b {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                b' ' | b'\t' | b'\r' => self.pos += 1,
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'r' | b'b' if self.raw_or_byte_string() => {}
                b'"' => self.string(self.pos),
                b'\'' => self.char_or_lifetime(),
                _ if b.is_ascii_digit() => self.number(),
                _ if is_ident_start(b) => self.ident(),
                _ => {
                    self.push(TokKind::Punct, self.pos, self.pos + 1, self.line);
                    self.pos += 1;
                }
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn push(&mut self, kind: TokKind, start: usize, end: usize, line: u32) {
        self.out.push(Tok {
            kind,
            text: self.src[start..end].to_owned(),
            line,
        });
    }

    fn line_comment(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
            self.pos += 1;
        }
    }

    fn block_comment(&mut self) {
        // Rust block comments nest.
        let mut depth = 0usize;
        while self.pos < self.bytes.len() {
            if self.bytes[self.pos] == b'\n' {
                self.line += 1;
                self.pos += 1;
            } else if self.bytes[self.pos] == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.pos += 2;
            } else if self.bytes[self.pos] == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.pos += 2;
                if depth == 0 {
                    return;
                }
            } else {
                self.pos += 1;
            }
        }
    }

    /// Handles `r"…"`, `r#"…"#`, `r#ident`, `b"…"`, `b'…'`, `br#"…"#`.
    /// Returns false when the `r`/`b` turns out to start a plain
    /// identifier, leaving `pos` untouched.
    fn raw_or_byte_string(&mut self) -> bool {
        let start = self.pos;
        let first = self.bytes[start];
        let mut i = start + 1;
        let mut is_raw = first == b'r';
        if first == b'b' && self.bytes.get(i) == Some(&b'r') {
            is_raw = true;
            i += 1;
        }
        let mut hashes = 0usize;
        if is_raw {
            while self.bytes.get(i) == Some(&b'#') {
                hashes += 1;
                i += 1;
            }
        }
        match self.bytes.get(i) {
            Some(b'"') if is_raw => {
                self.raw_string_body(start, i + 1, hashes);
                true
            }
            Some(b'"') if first == b'b' => {
                self.string(start);
                true
            }
            Some(b'\'') if first == b'b' && !is_raw => {
                // Byte char b'…': reuse char lexing, keep the prefix.
                self.pos = i;
                self.byte_char(start);
                true
            }
            Some(&c) if first == b'r' && hashes == 1 && is_ident_start(c) => {
                // Raw identifier r#ident.
                let mut j = i;
                while self.bytes.get(j).copied().is_some_and(is_ident_continue) {
                    j += 1;
                }
                let line = self.line;
                self.out.push(Tok {
                    kind: TokKind::RawIdent,
                    text: self.src[i..j].to_owned(),
                    line,
                });
                self.pos = j;
                true
            }
            // Plain identifier starting with r/b (`rate`, `bytes`, …).
            _ => false,
        }
    }

    /// Consumes a raw string whose body starts at `body` with `hashes`
    /// fence hashes; the token spans from `start`.
    fn raw_string_body(&mut self, start: usize, body: usize, hashes: usize) {
        let line = self.line;
        let mut i = body;
        while i < self.bytes.len() {
            if self.bytes[i] == b'\n' {
                self.line += 1;
                i += 1;
                continue;
            }
            if self.bytes[i] == b'"' {
                let mut ok = true;
                for k in 0..hashes {
                    if self.bytes.get(i + 1 + k) != Some(&b'#') {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    i += 1 + hashes;
                    self.push(TokKind::Str, start, i, line);
                    self.pos = i;
                    return;
                }
            }
            i += 1;
        }
        self.push(TokKind::Str, start, i, line);
        self.pos = i;
    }

    /// Consumes a normal (escaped) string literal; `start` may sit before
    /// a `b` prefix, `self.pos`-relative quote discovery is not needed —
    /// the opening quote is the last byte before the body.
    fn string(&mut self, start: usize) {
        let line = self.line;
        // Find the opening quote (start, start+1 for b"…").
        let mut i = start;
        while self.bytes[i] != b'"' {
            i += 1;
        }
        i += 1;
        while i < self.bytes.len() {
            match self.bytes[i] {
                b'\\' => i += 2,
                b'\n' => {
                    self.line += 1;
                    i += 1;
                }
                b'"' => {
                    i += 1;
                    self.push(TokKind::Str, start, i, line);
                    self.pos = i;
                    return;
                }
                _ => i += 1,
            }
        }
        self.push(TokKind::Str, start, i.min(self.bytes.len()), line);
        self.pos = i;
    }

    /// After a `'`: a lifetime (`'a`, `'_`, `'static`) or a char literal
    /// (`'x'`, `'\n'`, `'\''`). A lifetime is an identifier not followed
    /// by a closing quote.
    fn char_or_lifetime(&mut self) {
        let start = self.pos;
        let line = self.line;
        let next = self.peek(1);
        if next.is_some_and(is_ident_start) {
            // Scan the identifier; decide by the byte after it.
            let mut j = self.pos + 1;
            while self.bytes.get(j).copied().is_some_and(is_ident_continue) {
                j += 1;
            }
            if self.bytes.get(j) != Some(&b'\'') {
                // Lifetime.
                self.out.push(Tok {
                    kind: TokKind::Lifetime,
                    text: self.src[start + 1..j].to_owned(),
                    line,
                });
                self.pos = j;
                return;
            }
        }
        self.byte_char(start);
    }

    /// Consumes a char literal starting at the `'` at `self.pos` (the
    /// token spans from `start`, which may include a `b` prefix).
    fn byte_char(&mut self, start: usize) {
        let line = self.line;
        let mut i = self.pos + 1; // past the opening '
        if self.bytes.get(i) == Some(&b'\\') {
            i += 2; // escape + escaped byte ('\n', '\'', '\\', '\u{…}' handled below)
            if self.bytes.get(i - 1) == Some(&b'u') {
                while i < self.bytes.len() && self.bytes[i] != b'\'' {
                    i += 1;
                }
            }
        } else if i < self.bytes.len() {
            // Advance one UTF-8 scalar.
            i += 1;
            while i < self.bytes.len() && (self.bytes[i] & 0xC0) == 0x80 {
                i += 1;
            }
        }
        if self.bytes.get(i) == Some(&b'\'') {
            i += 1;
        }
        self.push(TokKind::Char, start, i, line);
        self.pos = i;
    }

    fn number(&mut self) {
        let start = self.pos;
        let line = self.line;
        let mut i = self.pos;
        // Integer part (covers 0x/0b/0o digits and `_` separators and any
        // alphanumeric suffix like u64 / f32).
        while self
            .bytes
            .get(i)
            .copied()
            .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_')
        {
            i += 1;
        }
        // Fractional part: a dot followed by a digit (leaves `0..n` ranges
        // and method calls like `1.max(…)` alone).
        if self.bytes.get(i) == Some(&b'.')
            && self
                .bytes
                .get(i + 1)
                .copied()
                .is_some_and(|b| b.is_ascii_digit())
        {
            i += 1;
            while self
                .bytes
                .get(i)
                .copied()
                .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_')
            {
                i += 1;
            }
        }
        self.push(TokKind::Num, start, i, line);
        self.pos = i;
    }

    fn ident(&mut self) {
        let start = self.pos;
        let line = self.line;
        let mut i = self.pos;
        while self.bytes.get(i).copied().is_some_and(is_ident_continue) {
            i += 1;
        }
        self.push(TokKind::Ident, start, i, line);
        self.pos = i;
    }
}
