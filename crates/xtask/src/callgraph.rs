//! Approximate workspace call graph.
//!
//! Nodes are the [`FnDef`]s extracted by [`crate::syntax`]; edges are call
//! sites resolved by name. Resolution is deliberately an
//! *over-approximation* — when a call could reach several functions it
//! gets an edge to all of them, so reachability analyses (panic, lock,
//! allocation) can miss nothing that static names permit. The price is
//! false edges; the waiver mechanism exists for exactly those.
//!
//! ## Resolution rules (documented and asserted by tests)
//!
//! 1. `Type::name(…)` — resolved precisely to methods of `Type` when the
//!    workspace defines any; otherwise falls through to rule 3 with the
//!    qualifier treated as a module/crate path.
//! 2. `self.name(…)` — resolved precisely to the enclosing impl type's
//!    own method when it defines one; otherwise rule 4.
//! 3. `name(…)` / `path::to::name(…)` — every free function named `name`;
//!    when a path segment matches a crate name (`evcap_spec::solve`), only
//!    that crate's free functions.
//! 4. `recv.name(…)` — every method named `name` anywhere in the
//!    workspace (trait objects and generic receivers make the true target
//!    undecidable without type inference; this is the documented
//!    trait-object approximation). Two carve-outs keep the noise down:
//!    `.unwrap(…)` / `.expect(…)` on a non-`self` receiver produce no
//!    edges — they are overwhelmingly `Option`/`Result` adapters and the
//!    panic analysis models them as sources, so aliasing them onto a
//!    workspace type's own `expect` would fabricate paths; and atomic
//!    operations (`.load(…)`, `.store(…)`, `.fetch_add(…)`, …) whose
//!    arguments mention a memory `Ordering` are cut — without that,
//!    `hits.load(Ordering::Relaxed)` would alias `Store::load`.
//! 5. Macro invocations produce no edges — analyses treat the relevant
//!    ones (`panic!`, `format!`, …) as sources directly.

use std::collections::{BTreeMap, VecDeque};

/// Path qualifiers that belong to the standard library: calls through
/// them are cut rather than over-approximated onto same-named workspace
/// functions. (A workspace module shadowing one of these names would
/// lose edges — none does, and the fixture tests assert the policy.)
fn is_std_qualifier(q: &str) -> bool {
    matches!(
        q,
        // modules
        "std" | "core" | "alloc" | "fs" | "io" | "mem" | "process" | "thread" | "time"
            | "cmp" | "fmt" | "str" | "slice" | "iter" | "env" | "net" | "path" | "ffi"
            | "hint" | "ptr" | "sync" | "atomic" | "collections" | "array" | "char" | "ops"
            // common std types
            | "File" | "OpenOptions" | "TcpStream" | "TcpListener" | "UdpSocket" | "Instant"
            | "Duration" | "SystemTime" | "PathBuf" | "Path" | "String" | "Vec" | "Box"
            | "Arc" | "Rc" | "Mutex" | "RwLock" | "Condvar" | "HashMap" | "HashSet"
            | "BTreeMap" | "BTreeSet" | "VecDeque" | "Option" | "Result" | "Ordering"
            | "AtomicBool" | "AtomicU64" | "AtomicUsize" | "AtomicU32" | "NonZeroUsize"
            | "Cell" | "RefCell" | "PoisonError" | "Cow" | "Ipv4Addr" | "SocketAddr"
    )
}

use crate::lexer::{Tok, TokKind};
use crate::syntax::{body_facts, BodyFacts, Call, CallKind, FnDef};

/// Method names that exist on the std atomics; a call to one whose
/// arguments mention a memory `Ordering` is an atomic op, not a
/// workspace method.
fn is_atomic_method(name: &str) -> bool {
    matches!(
        name,
        "load"
            | "store"
            | "swap"
            | "fetch_add"
            | "fetch_sub"
            | "fetch_and"
            | "fetch_or"
            | "fetch_xor"
            | "fetch_update"
            | "compare_exchange"
            | "compare_exchange_weak"
    )
}

/// True when any token inside the call's argument parens is a memory
/// `Ordering` path (`Ordering::Relaxed`, a bare `Relaxed`, …).
fn args_mention_ordering(body: &[Tok], call_tok: usize) -> bool {
    let open = call_tok + 1;
    if !body.get(open).is_some_and(|t| t.is_punct('(')) {
        return false;
    }
    let mut depth = 0i32;
    for t in &body[open..] {
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return false;
            }
        } else if matches!(t.kind, TokKind::Ident)
            && matches!(
                t.text.as_str(),
                "Ordering" | "Relaxed" | "SeqCst" | "Acquire" | "Release" | "AcqRel"
            )
        {
            return true;
        }
    }
    false
}

/// One resolved call edge.
#[derive(Debug, Clone, Copy)]
pub struct Edge {
    /// Index into [`Graph::fns`].
    pub callee: usize,
    /// 1-based source line of the call site in the caller's file.
    pub line: u32,
    /// Token index of the callee name in the caller's body stream.
    pub tok: usize,
    /// True when this edge came from the name-based method fallback
    /// (rule 4) rather than a precise resolution. Reachability analyses
    /// follow approximate edges (missing nothing); the lock-*order*
    /// analysis does not propagate acquisition sets across them, because
    /// lock identity is receiver-name-based and an aliased receiver makes
    /// that identity meaningless.
    pub approx: bool,
}

/// The workspace call graph.
pub struct Graph {
    pub fns: Vec<FnDef>,
    /// Per-function syntactic facts (call sites, indexing sites).
    pub facts: Vec<BodyFacts>,
    /// Per-function resolved outgoing edges, parallel to `fns`.
    pub edges: Vec<Vec<Edge>>,
    /// Free functions by name.
    free_by_name: BTreeMap<String, Vec<usize>>,
    /// Methods (fns with a `self_ty` or defined in a trait) by name.
    methods_by_name: BTreeMap<String, Vec<usize>>,
    /// Methods by (type, name).
    by_ty_method: BTreeMap<(String, String), Vec<usize>>,
}

impl Graph {
    /// Builds the graph over a set of function definitions.
    pub fn build(fns: Vec<FnDef>) -> Graph {
        let mut free_by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut methods_by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut by_ty_method: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
        for (i, f) in fns.iter().enumerate() {
            if f.self_ty.is_some() || f.trait_name.is_some() {
                methods_by_name.entry(f.name.clone()).or_default().push(i);
                if let Some(ty) = &f.self_ty {
                    by_ty_method
                        .entry((ty.clone(), f.name.clone()))
                        .or_default()
                        .push(i);
                }
                if let Some(tr) = &f.trait_name {
                    // `Trait::method(x)` UFCS calls resolve through the
                    // trait name too.
                    by_ty_method
                        .entry((tr.clone(), f.name.clone()))
                        .or_default()
                        .push(i);
                }
            } else {
                free_by_name.entry(f.name.clone()).or_default().push(i);
            }
        }
        let facts: Vec<BodyFacts> = fns.iter().map(|f| body_facts(&f.body)).collect();
        let mut g = Graph {
            fns,
            facts,
            edges: Vec::new(),
            free_by_name,
            methods_by_name,
            by_ty_method,
        };
        g.edges = (0..g.fns.len()).map(|i| g.resolve_fn(i)).collect();
        g
    }

    fn resolve_fn(&self, i: usize) -> Vec<Edge> {
        let mut out = Vec::new();
        for call in &self.facts[i].calls {
            let (targets, approx) = self.resolve_call(i, call);
            for t in targets {
                out.push(Edge {
                    callee: t,
                    line: call.line,
                    tok: call.tok,
                    approx,
                });
            }
        }
        out
    }

    /// All functions a call of this shape could reach (empty for calls
    /// into std / closures / macros). The second value is true when the
    /// targets came from the name-based method fallback — an approximate
    /// resolution (see [`Edge::approx`]).
    pub fn resolve_call(&self, caller: usize, call: &Call) -> (Vec<usize>, bool) {
        match &call.kind {
            CallKind::Macro { .. } => (Vec::new(), false),
            CallKind::Free { name } => (
                self.free_by_name.get(name).cloned().unwrap_or_default(),
                false,
            ),
            CallKind::Path { segments } => {
                let name = match segments.last() {
                    Some(n) => n.clone(),
                    None => return (Vec::new(), false),
                };
                let qual = segments
                    .iter()
                    .rev()
                    .nth(1)
                    .filter(|q| !matches!(q.as_str(), "self" | "super" | "crate"));
                if let Some(q) = qual {
                    if let Some(v) = self.by_ty_method.get(&(q.clone(), name.clone())) {
                        return (v.clone(), false);
                    }
                    // A std qualifier (`std::fs::write`, `String::from`,
                    // `Instant::now`) never resolves into the workspace;
                    // without this cut, `fs::write` would alias any
                    // workspace function named `write`.
                    if is_std_qualifier(q) {
                        return (Vec::new(), false);
                    }
                    // A crate-ish qualifier (`evcap_spec::solve`) narrows
                    // the free-function candidates to that crate.
                    let crate_q = q.trim_start_matches("evcap_").replace('-', "_");
                    if let Some(v) = self.free_by_name.get(&name) {
                        let narrowed: Vec<usize> = v
                            .iter()
                            .copied()
                            .filter(|&i| {
                                let c = &self.fns[i].crate_name;
                                c == q || c.trim_start_matches("evcap_") == crate_q
                            })
                            .collect();
                        if !narrowed.is_empty() {
                            return (narrowed, false);
                        }
                        // Unknown qualifier (a module path): keep every
                        // candidate rather than dropping the edge.
                        return (v.clone(), false);
                    }
                }
                (
                    self.free_by_name.get(&name).cloned().unwrap_or_default(),
                    false,
                )
            }
            CallKind::Method { name, recv } => {
                if recv.as_deref() == Some("self") {
                    if let Some(ty) = &self.fns[caller].self_ty {
                        if let Some(v) = self.by_ty_method.get(&(ty.clone(), name.clone())) {
                            return (v.clone(), false);
                        }
                    }
                }
                // `Option`/`Result` adapters: the panic analysis models
                // these as sources; aliasing them onto a workspace type's
                // own `expect` would fabricate paths into it.
                if matches!(name.as_str(), "unwrap" | "expect") {
                    return (Vec::new(), false);
                }
                // Atomic ops: `hits.load(Ordering::Relaxed)` must not
                // alias `Store::load`.
                if is_atomic_method(name) && args_mention_ordering(&self.fns[caller].body, call.tok)
                {
                    return (Vec::new(), false);
                }
                (
                    self.methods_by_name.get(name).cloned().unwrap_or_default(),
                    true,
                )
            }
        }
    }

    /// True when a `.unwrap()` / `.expect(…)` call site resolves to a
    /// method the workspace itself defines on the enclosing type (e.g. a
    /// parser's own `fn expect`) — then it is an ordinary call edge, not a
    /// panic source.
    pub fn is_own_method(&self, caller: usize, name: &str, recv: Option<&str>) -> bool {
        if recv != Some("self") {
            return false;
        }
        match &self.fns[caller].self_ty {
            Some(ty) => self
                .by_ty_method
                .contains_key(&(ty.clone(), name.to_owned())),
            None => false,
        }
    }

    /// Finds functions matching a `crate::name` or `crate::Type::name`
    /// root spec. Returns indices (possibly several — e.g. one name
    /// implemented for two types).
    pub fn find_roots(&self, spec: &str) -> Vec<usize> {
        let parts: Vec<&str> = spec.split("::").collect();
        let mut out = Vec::new();
        for (i, f) in self.fns.iter().enumerate() {
            let matches = match parts.as_slice() {
                [krate, name] => f.crate_name == *krate && f.name == *name,
                [krate, ty, name] => {
                    f.crate_name == *krate && f.name == *name && f.self_ty.as_deref() == Some(*ty)
                }
                _ => false,
            };
            if matches {
                out.push(i);
            }
        }
        out
    }

    /// Breadth-first reachability from `roots`, skipping edges for which
    /// `skip_edge(caller, edge)` returns true (waived call lines).
    /// Returns a parent map: `reached[i] = Some(caller)` for non-roots,
    /// `Some(i)` (self) for roots, `None` for unreached.
    pub fn reach(
        &self,
        roots: &[usize],
        mut skip_edge: impl FnMut(usize, &Edge) -> bool,
    ) -> Vec<Option<usize>> {
        let mut parent: Vec<Option<usize>> = vec![None; self.fns.len()];
        let mut q = VecDeque::new();
        for &r in roots {
            if parent[r].is_none() {
                parent[r] = Some(r);
                q.push_back(r);
            }
        }
        while let Some(i) = q.pop_front() {
            for e in &self.edges[i] {
                if parent[e.callee].is_some() {
                    continue;
                }
                if skip_edge(i, e) {
                    continue;
                }
                parent[e.callee] = Some(i);
                q.push_back(e.callee);
            }
        }
        parent
    }

    /// Reconstructs the call chain `root → … → target` from a parent map,
    /// as `name (file:line)` strings.
    pub fn chain(&self, parent: &[Option<usize>], target: usize) -> Vec<String> {
        let mut rev = Vec::new();
        let mut cur = target;
        loop {
            let f = &self.fns[cur];
            rev.push(format!("{} ({}:{})", f.qualified(), f.file, f.line));
            match parent[cur] {
                Some(p) if p != cur => cur = p,
                _ => break,
            }
            if rev.len() > self.fns.len() {
                break; // defensive: malformed parent map
            }
        }
        rev.reverse();
        rev
    }
}
