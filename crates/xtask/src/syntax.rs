//! Item extraction: functions, impl blocks, and per-body syntactic facts.
//!
//! Sits on top of [`crate::lexer`] and produces the units the call-graph
//! builder consumes: every `fn` in a file, qualified by its impl type and
//! trait (when inside an `impl`), with its body token stream captured and
//! its test-ness recorded (`#[test]` / `#[cfg(test)]` subtrees are parsed
//! but excluded from analysis by the callers).
//!
//! ## Approximation boundaries (deliberate, documented)
//!
//! - Items nested *inside* function bodies (local `fn`, local `impl`) are
//!   not indexed separately: their tokens belong to the enclosing
//!   function, so their calls and panic sites are attributed to it. This
//!   over-approximates reachability, never under-approximates it.
//! - The impl type is the last plain path segment of the impl header
//!   (`impl<K, V> ShardedCache<K, V>` → `ShardedCache`); blanket impls on
//!   references or `Box<dyn T>` collapse to the outermost nominal
//!   segment.
//! - Any attribute containing the token `test` (`#[test]`,
//!   `#[cfg(test)]`, `#[cfg(any(test, feature = "x"))]`) marks the item —
//!   and, for modules, the whole subtree — as test code.

use crate::lexer::{lex, Tok, TokKind};

/// One function definition with its captured body.
#[derive(Debug)]
pub struct FnDef {
    /// The crate this function lives in (the directory name under
    /// `crates/`, or `evcap` for the workspace facade in `src/`).
    pub crate_name: String,
    /// Workspace-relative path, forward slashes.
    pub file: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// The function's bare name.
    pub name: String,
    /// `Some(Type)` when defined in an `impl Type` / `impl Trait for Type`.
    pub self_ty: Option<String>,
    /// `Some(Trait)` for `impl Trait for Type` methods and trait-default
    /// bodies.
    pub trait_name: Option<String>,
    /// Inside a `#[cfg(test)]` subtree or carrying a test attribute.
    pub is_test: bool,
    /// Body tokens (exclusive of the outer braces); empty for bodyless
    /// trait declarations.
    pub body: Vec<Tok>,
}

impl FnDef {
    /// `Type::name` or plain `name`, for display.
    pub fn qualified(&self) -> String {
        match &self.self_ty {
            Some(ty) => format!("{ty}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// Extracts every function from one file's source.
pub fn parse_file(crate_name: &str, file: &str, src: &str) -> Vec<FnDef> {
    let toks = lex(src);
    let mut out = Vec::new();
    let mut scopes: Vec<Scope> = Vec::new();
    let mut pending_test = false; // attribute seen since the last item
    let mut i = 0usize;

    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct('#') && toks.get(i + 1).is_some_and(|n| n.is_punct('[')) {
            let (end, has_test) = scan_attribute(&toks, i + 1);
            pending_test |= has_test;
            i = end;
            continue;
        }
        if t.is_punct('{') {
            scopes.push(Scope {
                kind: ScopeKind::Other,
                cfg_test: in_test(&scopes) || pending_test,
            });
            pending_test = false;
            i += 1;
            continue;
        }
        if t.is_punct('}') {
            scopes.pop();
            i += 1;
            continue;
        }
        if t.is_punct(';') {
            pending_test = false;
            i += 1;
            continue;
        }
        if t.kind == TokKind::Ident {
            match t.text.as_str() {
                "impl" => {
                    let (next, scope) =
                        scan_impl_header(&toks, i, in_test(&scopes) || pending_test);
                    scopes.push(scope);
                    pending_test = false;
                    i = next;
                    continue;
                }
                "trait" => {
                    let name = toks
                        .get(i + 1)
                        .filter(|n| n.kind == TokKind::Ident)
                        .map(|n| n.text.clone());
                    let j = seek_punct(&toks, i + 1, '{');
                    scopes.push(Scope {
                        kind: ScopeKind::Trait {
                            name: name.unwrap_or_default(),
                        },
                        cfg_test: in_test(&scopes) || pending_test,
                    });
                    pending_test = false;
                    i = j + 1;
                    continue;
                }
                "fn" => {
                    let (next, def) = scan_fn(
                        &toks,
                        i,
                        crate_name,
                        file,
                        &scopes,
                        in_test(&scopes) || pending_test,
                    );
                    if let Some(def) = def {
                        out.push(def);
                    }
                    pending_test = false;
                    i = next;
                    continue;
                }
                _ => {}
            }
        }
        i += 1;
    }
    out
}

#[derive(Debug)]
enum ScopeKind {
    Other,
    Impl {
        ty: Option<String>,
        trait_name: Option<String>,
    },
    Trait {
        name: String,
    },
}

#[derive(Debug)]
struct Scope {
    kind: ScopeKind,
    cfg_test: bool,
}

fn in_test(scopes: &[Scope]) -> bool {
    scopes.last().is_some_and(|s| s.cfg_test)
}

/// Scans `#[…]` starting at the `[` index; returns (index past `]`,
/// whether the attribute mentions the `test` token).
fn scan_attribute(toks: &[Tok], open: usize) -> (usize, bool) {
    let mut depth = 0usize;
    let mut has_test = false;
    let mut i = open;
    while i < toks.len() {
        if toks[i].is_punct('[') {
            depth += 1;
        } else if toks[i].is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return (i + 1, has_test);
            }
        } else if toks[i].is_ident("test") {
            has_test = true;
        }
        i += 1;
    }
    (i, has_test)
}

/// First index at or after `from` whose token is punctuation `c`.
fn seek_punct(toks: &[Tok], from: usize, c: char) -> usize {
    let mut i = from;
    while i < toks.len() && !toks[i].is_punct(c) {
        i += 1;
    }
    i
}

/// Parses an `impl` header starting at the `impl` token. Returns the index
/// just past the opening `{` and the scope to push.
fn scan_impl_header(toks: &[Tok], at: usize, cfg_test: bool) -> (usize, Scope) {
    let mut i = at + 1;
    // Generic parameters on the impl itself.
    if toks.get(i).is_some_and(|t| t.is_punct('<')) {
        i = skip_angles(toks, i);
    }
    // First path: the trait (if `for` follows) or the self type.
    let (j, first) = scan_type_path(toks, i);
    i = j;
    let (ty, trait_name) = if toks.get(i).is_some_and(|t| t.is_ident("for")) {
        let (k, second) = scan_type_path(toks, i + 1);
        i = k;
        (second, first)
    } else {
        (first, None)
    };
    let open = seek_punct(toks, i, '{');
    (
        open + 1,
        Scope {
            kind: ScopeKind::Impl { ty, trait_name },
            cfg_test,
        },
    )
}

/// Reads a type path (idents, `::`, generic groups, leading `&`/`mut`/
/// `dyn`), returning the index of the terminator (`for`, `where`, `{`) and
/// the last plain identifier seen at angle depth 0.
fn scan_type_path(toks: &[Tok], from: usize) -> (usize, Option<String>) {
    let mut i = from;
    let mut last: Option<String> = None;
    while let Some(t) = toks.get(i) {
        if t.is_punct('{') || t.is_ident("for") || t.is_ident("where") {
            break;
        }
        if t.is_punct('<') {
            i = skip_angles(toks, i);
            continue;
        }
        if t.kind == TokKind::Ident && !matches!(t.text.as_str(), "dyn" | "mut" | "crate") {
            last = Some(t.text.clone());
        }
        i += 1;
    }
    (i, last)
}

/// Skips a balanced `<…>` group starting at the `<` index.
fn skip_angles(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < toks.len() {
        if toks[i].is_punct('<') {
            depth += 1;
        } else if toks[i].is_punct('>') {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    i
}

/// Parses one `fn` starting at the `fn` token: name, signature skip, body
/// capture. Returns the index to resume scanning from and the definition
/// (None for `fn`-pointer types and other non-definitions).
fn scan_fn(
    toks: &[Tok],
    at: usize,
    crate_name: &str,
    file: &str,
    scopes: &[Scope],
    is_test: bool,
) -> (usize, Option<FnDef>) {
    let Some(name_tok) = toks.get(at + 1) else {
        return (at + 1, None);
    };
    if !matches!(name_tok.kind, TokKind::Ident | TokKind::RawIdent) {
        // `fn(…)` function-pointer type — not a definition.
        return (at + 1, None);
    }
    let name = name_tok.text.clone();
    let line = toks[at].line;

    // Find the body `{` (or `;` for a bodyless declaration), skipping the
    // parameter list and anything parenthesized/bracketed in the return
    // type and where clause.
    let mut i = at + 2;
    let mut paren = 0i32;
    let mut bracket = 0i32;
    let body_open = loop {
        let Some(t) = toks.get(i) else {
            return (i, None);
        };
        if t.is_punct('(') {
            paren += 1;
        } else if t.is_punct(')') {
            paren -= 1;
        } else if t.is_punct('[') {
            bracket += 1;
        } else if t.is_punct(']') {
            bracket -= 1;
        } else if paren == 0 && bracket == 0 {
            if t.is_punct(';') {
                // Trait/extern declaration without a body.
                return (
                    i + 1,
                    Some(make_def(
                        crate_name,
                        file,
                        line,
                        name,
                        scopes,
                        is_test,
                        Vec::new(),
                    )),
                );
            }
            if t.is_punct('{') {
                break i;
            }
        }
        i += 1;
    };

    // Capture the body: everything inside the balanced braces.
    let mut depth = 0i32;
    let mut j = body_open;
    while j < toks.len() {
        if toks[j].is_punct('{') {
            depth += 1;
        } else if toks[j].is_punct('}') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        }
        j += 1;
    }
    let body: Vec<Tok> = toks[body_open + 1..j.min(toks.len())].to_vec();
    (
        (j + 1).min(toks.len()),
        Some(make_def(
            crate_name, file, line, name, scopes, is_test, body,
        )),
    )
}

fn make_def(
    crate_name: &str,
    file: &str,
    line: u32,
    name: String,
    scopes: &[Scope],
    is_test: bool,
    body: Vec<Tok>,
) -> FnDef {
    let (self_ty, trait_name) = match scopes.last().map(|s| &s.kind) {
        Some(ScopeKind::Impl { ty, trait_name }) => (ty.clone(), trait_name.clone()),
        Some(ScopeKind::Trait { name }) => (None, Some(name.clone())),
        _ => (None, None),
    };
    FnDef {
        crate_name: crate_name.to_owned(),
        file: file.to_owned(),
        line,
        name,
        self_ty,
        trait_name,
        is_test,
        body,
    }
}

// ---------------------------------------------------------------------------
// Body facts: calls, macro uses, indexing sites
// ---------------------------------------------------------------------------

/// How a call site spells its callee.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallKind {
    /// `name(…)` — a free function (or local closure, unresolvable).
    Free { name: String },
    /// `a::b::name(…)` — segments include the final name.
    Path { segments: Vec<String> },
    /// `.name(…)` — with the receiver identifier when it is a simple
    /// `recv.name(…)` chain tail (`shard.lru.lock()` → recv `lru`).
    Method { name: String, recv: Option<String> },
    /// `name!(…)` / `name![…]` / `name!{…}`.
    Macro { name: String },
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct Call {
    pub kind: CallKind,
    /// 1-based source line.
    pub line: u32,
    /// Index of the callee-name token in the body token stream.
    pub tok: usize,
    /// Number of argument tokens between the call's parentheses (0 for
    /// `lock()`; used to split `RwLock::read()` from `io::Read::read(buf)`).
    pub arg_tokens: usize,
}

/// One `expr[…]` indexing site.
#[derive(Debug, Clone)]
pub struct IndexSite {
    pub line: u32,
    pub tok: usize,
    /// The bracket content is only numeric literals and `.` range dots —
    /// overwhelmingly a fixed-size-array access, which the compiler
    /// bounds-checks; these are skipped by the panic rule (documented
    /// blind spot: a literal index into a runtime-sized slice).
    pub literal_only: bool,
}

/// Everything the analyses need from one body.
#[derive(Debug, Default)]
pub struct BodyFacts {
    pub calls: Vec<Call>,
    pub indexes: Vec<IndexSite>,
}

/// Keywords that can directly precede `[` or `(` without forming a call
/// or index expression.
fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "as" | "break"
            | "const"
            | "continue"
            | "crate"
            | "dyn"
            | "else"
            | "enum"
            | "extern"
            | "fn"
            | "for"
            | "if"
            | "impl"
            | "in"
            | "let"
            | "loop"
            | "match"
            | "mod"
            | "move"
            | "mut"
            | "pub"
            | "ref"
            | "return"
            | "self"
            | "static"
            | "struct"
            | "super"
            | "trait"
            | "type"
            | "unsafe"
            | "use"
            | "where"
            | "while"
            | "yield"
    )
}

/// Extracts call sites and indexing sites from a body token stream.
pub fn body_facts(body: &[Tok]) -> BodyFacts {
    let mut facts = BodyFacts::default();
    for i in 0..body.len() {
        let t = &body[i];
        if matches!(t.kind, TokKind::Ident | TokKind::RawIdent) && !is_keyword(&t.text) {
            // Macro use: name ! ( / [ / {
            if body.get(i + 1).is_some_and(|n| n.is_punct('!'))
                && body
                    .get(i + 2)
                    .is_some_and(|n| n.is_punct('(') || n.is_punct('[') || n.is_punct('{'))
            {
                facts.calls.push(Call {
                    kind: CallKind::Macro {
                        name: t.text.clone(),
                    },
                    line: t.line,
                    tok: i,
                    arg_tokens: 0,
                });
                continue;
            }
            // Call: name (
            if body.get(i + 1).is_some_and(|n| n.is_punct('(')) {
                let arg_tokens = count_arg_tokens(body, i + 1);
                let kind = classify_call(body, i);
                if let Some(kind) = kind {
                    facts.calls.push(Call {
                        kind,
                        line: t.line,
                        tok: i,
                        arg_tokens,
                    });
                }
                continue;
            }
        }
        // Indexing: `[` after an ident, `)` or `]` (but not a macro's
        // `name![…]`, caught above since the prev token would be `!`).
        if t.is_punct('[') && i > 0 {
            let prev = &body[i - 1];
            let indexable = (matches!(prev.kind, TokKind::Ident | TokKind::RawIdent)
                && !is_keyword(&prev.text))
                || prev.is_punct(')')
                || prev.is_punct(']');
            if indexable {
                facts.indexes.push(IndexSite {
                    line: t.line,
                    tok: i,
                    literal_only: bracket_is_literal_only(body, i),
                });
            }
        }
    }
    facts
}

/// Counts tokens between the balanced parens opening at `open`.
fn count_arg_tokens(body: &[Tok], open: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    let mut count = 0usize;
    while i < body.len() {
        if body[i].is_punct('(') {
            depth += 1;
        } else if body[i].is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return count;
            }
        } else if depth >= 1 {
            count += 1;
        }
        i += 1;
    }
    count
}

/// True when every token inside the bracket group at `open` is a numeric
/// literal or a `.` (range dot).
fn bracket_is_literal_only(body: &[Tok], open: usize) -> bool {
    let mut depth = 0i32;
    let mut i = open;
    let mut any = false;
    while i < body.len() {
        let t = &body[i];
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return any;
            }
        } else if depth >= 1 {
            if t.kind == TokKind::Num || t.is_punct('.') {
                any = true;
            } else {
                return false;
            }
        }
        i += 1;
    }
    false
}

/// Classifies the call whose name token sits at `i`. Returns `None` for
/// definitions (`fn name(`).
fn classify_call(body: &[Tok], i: usize) -> Option<CallKind> {
    let name = body[i].text.clone();
    if i == 0 {
        return Some(CallKind::Free { name });
    }
    let prev = &body[i - 1];
    if prev.is_ident("fn") {
        return None;
    }
    if prev.is_punct('.') {
        let recv = body.get(i.wrapping_sub(2)).and_then(|r| {
            (matches!(r.kind, TokKind::Ident | TokKind::RawIdent)).then(|| r.text.clone())
        });
        return Some(CallKind::Method { name, recv });
    }
    if prev.is_punct(':') && i >= 2 && body[i - 2].is_punct(':') {
        let mut segments = vec![name];
        let mut j = i as i64 - 2;
        loop {
            // j points at the second ':' of a `::`; step past it.
            let before = j - 1;
            if before < 0 {
                break;
            }
            let mut k = before;
            // Skip a turbofish group `::<…>` backwards.
            if body[k as usize].is_punct('>') {
                let mut depth = 0i32;
                while k >= 0 {
                    if body[k as usize].is_punct('>') {
                        depth += 1;
                    } else if body[k as usize].is_punct('<') {
                        depth -= 1;
                        if depth == 0 {
                            k -= 1;
                            break;
                        }
                    }
                    k -= 1;
                }
                // A turbofish is itself preceded by `::`.
                if k >= 1 && body[k as usize].is_punct(':') && body[(k - 1) as usize].is_punct(':')
                {
                    k -= 2;
                } else {
                    break;
                }
            }
            if k >= 0 && matches!(body[k as usize].kind, TokKind::Ident | TokKind::RawIdent) {
                segments.push(body[k as usize].text.clone());
                // Continue if another `::` precedes this segment.
                if k >= 2
                    && body[(k - 1) as usize].is_punct(':')
                    && body[(k - 2) as usize].is_punct(':')
                {
                    j = k - 1;
                    continue;
                }
            }
            break;
        }
        segments.reverse();
        return Some(CallKind::Path { segments });
    }
    Some(CallKind::Free { name })
}
