//! `xtask deepcheck`: call-graph-aware workspace analyses.
//!
//! Where `tidy` scans lines, deepcheck reasons over an approximate call
//! graph (lexer → item extractor → resolution by name) and proves three
//! reachability properties:
//!
//! - **panic-path** — no serve request-path root reaches `panic!` /
//!   `unwrap` / `expect` / `unreachable!` / runtime slice indexing.
//! - **lock-order / lock-blocking** — the lock-acquisition graph of
//!   `crates/serve` + `crates/store` is cycle-free, and no lock is held
//!   across solver calls, file I/O, or socket writes.
//! - **alloc-hot** — the per-request bookkeeping paths (cache-hit
//!   recording, `/metrics` counters) reach no allocating constructor.
//!
//! A finding carries the full call chain. It can be waived at the site
//! (or at a call line, cutting traversal through it) with
//!
//! ```text
//! // deepcheck:allow(rule): one-line justification
//! ```
//!
//! Waivers are tracked: one that is never consulted by an analysis is
//! itself reported (`stale-waiver`), and a malformed or unknown-rule
//! waiver is reported (`waiver`) — so the escape ledger stays honest.

pub mod alloc;
pub mod locks;
pub mod panics;
mod selftest;

pub use selftest::DEADLOCK_FIXTURE;

use std::cell::Cell;
use std::collections::BTreeMap;
use std::fs;
use std::process::ExitCode;

use crate::callgraph::Graph;
use crate::files::{collect_sources, crate_of, workspace_root};
use crate::syntax::parse_file;

/// Every rule deepcheck knows about.
pub const RULES: &[(&str, &str)] = &[
    (
        "panic-path",
        "a panic site (panic!/unwrap/expect/unreachable!/runtime indexing) is reachable \
         from a serve request-path root — convert to a structured error or waive with a \
         SAFETY-style justification",
    ),
    (
        "lock-order",
        "two locks are acquired in opposite orders on some pair of paths (potential \
         deadlock) — pick one global order",
    ),
    (
        "lock-blocking",
        "a lock is held across a blocking operation (spec::solve, file I/O, socket \
         write) — shrink the critical section or waive with the design rationale",
    ),
    (
        "alloc-hot",
        "an allocating constructor (Vec::new, format!, String::from, Box::new, collect, \
         ...) is reachable from an allocation-free hot-path root",
    ),
    (
        "waiver",
        "a deepcheck:allow escape is malformed: unknown rule name or missing `: why` \
         justification",
    ),
    (
        "stale-waiver",
        "a deepcheck:allow escape was never consulted by any analysis — the code it \
         excused is gone or unreachable; remove it",
    ),
];

/// The crates whose `src/` trees enter the call graph. `cli`, `bench`,
/// the `evcap` facade and `xtask` itself stay out: nothing on a serve
/// request path can reach them, and their method names would only inflate
/// the name-based resolution over-approximation.
const GRAPH_CRATES: &[&str] = &[
    "audit", "core", "dist", "energy", "lp", "obs", "renewal", "serve", "sim", "spec", "store",
];

/// One source file fed to the analyzer.
pub struct SourceUnit {
    pub crate_name: String,
    pub file: String,
    pub src: String,
}

/// What to analyze and from where.
pub struct Config {
    /// Panic-reachability roots, as `crate::fn` or `crate::Type::fn`.
    pub panic_roots: Vec<String>,
    /// Allocation-analysis roots, same syntax.
    pub alloc_roots: Vec<String>,
    /// Crates whose lock acquisitions are modeled.
    pub lock_crates: Vec<String>,
    /// Crates where runtime slice indexing counts as a panic source.
    pub index_crates: Vec<String>,
}

/// One confirmed finding.
pub struct Finding {
    pub rule: &'static str,
    pub file: String,
    pub line: u32,
    pub message: String,
    /// `root (file:line) → … → site`, empty for non-reachability findings.
    pub chain: Vec<String>,
}

impl Finding {
    /// The finding plus its chain, flattened — used by the self-test
    /// substring assertions and the human renderer.
    pub fn rendered(&self) -> String {
        let mut s = format!(
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        );
        for (i, link) in self.chain.iter().enumerate() {
            s.push_str(if i == 0 { "\n    " } else { "\n    -> " });
            s.push_str(link);
        }
        s
    }
}

// ---------------------------------------------------------------------------
// Waivers
// ---------------------------------------------------------------------------

struct Waiver {
    /// 1-based line the escape comment sits on.
    line: u32,
    rule: String,
    used: Cell<bool>,
}

/// All valid `deepcheck:allow(rule): why` escapes, indexed by file, with
/// use tracking for stale detection.
pub struct Waivers {
    by_file: BTreeMap<String, Vec<Waiver>>,
}

impl Waivers {
    /// Parses escapes out of the raw sources. Malformed escapes (unknown
    /// rule, missing justification) become `waiver` findings immediately
    /// and do not enter the valid set, so they cannot suppress anything.
    pub fn parse(units: &[SourceUnit]) -> (Waivers, Vec<Finding>) {
        let mut by_file: BTreeMap<String, Vec<Waiver>> = BTreeMap::new();
        let mut findings = Vec::new();
        for u in units {
            for (idx, line) in u.src.lines().enumerate() {
                let mut from = 0;
                while let Some(pos) = line[from..].find("deepcheck:allow(") {
                    let at = from + pos + "deepcheck:allow(".len();
                    let Some(close) = line[at..].find(')') else {
                        break;
                    };
                    let rule = &line[at..at + close];
                    let rest = &line[at + close + 1..];
                    from = at + close;
                    if !RULES.iter().any(|(name, _)| name == &rule) {
                        findings.push(Finding {
                            rule: "waiver",
                            file: u.file.clone(),
                            line: idx as u32 + 1,
                            message: format!("escape names unknown rule `{rule}`"),
                            chain: Vec::new(),
                        });
                        continue;
                    }
                    let justification = rest.strip_prefix(':').map(str::trim).unwrap_or("");
                    if justification.is_empty() {
                        findings.push(Finding {
                            rule: "waiver",
                            file: u.file.clone(),
                            line: idx as u32 + 1,
                            message: format!(
                                "deepcheck:allow({rule}) lacks a `: why` justification"
                            ),
                            chain: Vec::new(),
                        });
                        continue;
                    }
                    by_file.entry(u.file.clone()).or_default().push(Waiver {
                        line: idx as u32 + 1,
                        rule: rule.to_owned(),
                        used: Cell::new(false),
                    });
                }
            }
        }
        (Waivers { by_file }, findings)
    }

    /// True when a valid waiver for `rule` sits on `line` or the line
    /// above it in `file`; marks the waiver used.
    pub fn covers(&self, file: &str, line: u32, rule: &str) -> bool {
        let Some(ws) = self.by_file.get(file) else {
            return false;
        };
        for w in ws {
            if w.rule == rule && (w.line == line || w.line + 1 == line) {
                w.used.set(true);
                return true;
            }
        }
        false
    }

    fn total(&self) -> usize {
        self.by_file.values().map(Vec::len).sum()
    }

    fn used(&self) -> usize {
        self.by_file
            .values()
            .flatten()
            .filter(|w| w.used.get())
            .count()
    }

    /// `stale-waiver` findings for every valid escape no analysis
    /// consulted.
    fn stale_findings(&self) -> Vec<Finding> {
        let mut out = Vec::new();
        for (file, ws) in &self.by_file {
            for w in ws {
                if !w.used.get() {
                    out.push(Finding {
                        rule: "stale-waiver",
                        file: file.clone(),
                        line: w.line,
                        message: format!(
                            "deepcheck:allow({}) was never consulted — the code it excused is \
                             gone or unreachable; remove it",
                            w.rule
                        ),
                        chain: Vec::new(),
                    });
                }
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// The analysis pipeline
// ---------------------------------------------------------------------------

/// A full analysis pass over a source set.
pub struct Report {
    pub files: usize,
    pub functions: usize,
    pub findings: Vec<Finding>,
    pub waivers: usize,
    pub waivers_used: usize,
}

impl Report {
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Runs every analysis over the given sources. This is the single entry
/// point the CLI, the self-test corpus, and the integration tests share —
/// the fixture corpora are just alternative source sets.
pub fn analyze(units: &[SourceUnit], cfg: &Config) -> Report {
    let (waivers, mut findings) = Waivers::parse(units);
    let mut fns = Vec::new();
    for u in units {
        fns.extend(
            parse_file(&u.crate_name, &u.file, &u.src)
                .into_iter()
                .filter(|f| !f.is_test),
        );
    }
    let functions = fns.len();
    let graph = Graph::build(fns);

    findings.extend(panics::check(&graph, cfg, &waivers));
    findings.extend(alloc::check(&graph, cfg, &waivers));
    findings.extend(locks::check(&graph, cfg, &waivers));
    findings.extend(waivers.stale_findings());

    Report {
        files: units.len(),
        functions,
        findings,
        waivers: waivers.total(),
        waivers_used: waivers.used(),
    }
}

/// The production configuration: serve request-path roots, hot-path
/// allocation roots, and the lock scope. Every root must resolve to a
/// real function — a rename that orphans one surfaces as a finding, not
/// as a silently weakened analysis.
fn workspace_config() -> Config {
    Config {
        panic_roots: vec![
            // The connection loop and router.
            "serve::handle_connection".into(),
            // The /v1/* handlers (reachable from the router; listed
            // explicitly so a routing refactor cannot silently orphan
            // them).
            "serve::solve_artifact".into(),
            "serve::simulate".into(),
            // The store tier: disk loads and rehydration on a miss.
            "serve::store_load".into(),
            "serve::store_append".into(),
            "serve::store_snapshot".into(),
            "store::Store::load".into(),
        ],
        alloc_roots: vec![
            // Per-request bookkeeping: counters, histogram, trace marks.
            "serve::Metrics::request".into(),
            "serve::Metrics::objective_request".into(),
            // The cache-hit lookup machinery.
            "serve::Lru::get".into(),
            "serve::Lru::peek".into(),
            "serve::ShardedCache::shard_of".into(),
        ],
        lock_crates: vec!["serve".into(), "store".into()],
        index_crates: vec!["serve".into(), "store".into()],
    }
}

/// Loads the workspace source set for the call graph.
fn workspace_units() -> Vec<SourceUnit> {
    let root = workspace_root();
    let mut units = Vec::new();
    for rel in collect_sources(&root) {
        let path = rel.to_string_lossy().replace('\\', "/");
        let Some(crate_name) = crate_of(&path) else {
            continue;
        };
        if !GRAPH_CRATES.contains(&crate_name.as_str()) {
            continue;
        }
        let Ok(src) = fs::read_to_string(root.join(&rel)) else {
            continue;
        };
        units.push(SourceUnit {
            crate_name,
            file: path,
            src,
        });
    }
    units
}

/// `xtask deepcheck [--json]`.
pub fn run(json: bool) -> ExitCode {
    let units = workspace_units();
    assert!(
        units.len() >= 20,
        "deepcheck walked only {} graph files — is the workspace layout intact?",
        units.len()
    );
    let report = analyze(&units, &workspace_config());
    if json {
        println!("{}", render_json(&report));
    } else {
        for f in &report.findings {
            println!("deepcheck: {}", f.rendered());
        }
        println!(
            "deepcheck: {} files, {} functions, {} waiver(s) ({} used) — {}",
            report.files,
            report.functions,
            report.waivers,
            report.waivers_used,
            if report.clean() {
                "clean".to_owned()
            } else {
                format!("{} finding(s)", report.findings.len())
            }
        );
    }
    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// `xtask deepcheck --self-test`.
pub fn self_test() -> ExitCode {
    selftest::run()
}

// ---------------------------------------------------------------------------
// JSON rendering (hand-rolled: xtask is std-only by design)
// ---------------------------------------------------------------------------

fn render_json(r: &Report) -> String {
    let mut s = String::with_capacity(1024);
    s.push_str("{\"type\":\"deepcheck\"");
    s.push_str(&format!(",\"files\":{}", r.files));
    s.push_str(&format!(",\"functions\":{}", r.functions));
    s.push_str(",\"findings\":[");
    for (i, f) in r.findings.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "{{\"rule\":{},\"file\":{},\"line\":{},\"message\":{},\"chain\":[",
            json_str(f.rule),
            json_str(&f.file),
            f.line,
            json_str(&f.message)
        ));
        for (j, link) in f.chain.iter().enumerate() {
            if j > 0 {
                s.push(',');
            }
            s.push_str(&json_str(link));
        }
        s.push_str("]}");
    }
    s.push(']');
    s.push_str(&format!(
        ",\"waivers\":{{\"total\":{},\"used\":{}}}",
        r.waivers, r.waivers_used
    ));
    s.push_str(&format!(",\"clean\":{}}}", r.clean()));
    s
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
