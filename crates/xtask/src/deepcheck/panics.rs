//! Panic reachability: from the serve request-path roots, no path may
//! reach a panic site.
//!
//! Panic sources per function body:
//! - `panic!` / `unreachable!` / `todo!` / `unimplemented!` macro uses.
//!   (`assert!` family is deliberately *not* a source: asserts state
//!   invariants the code relies on and tidy polices their style; turning
//!   every assert into a finding would bury the real signal.)
//! - `.unwrap()` / `.expect(…)` method calls — unless the call resolves
//!   to a method the enclosing type itself defines (a parser's own
//!   `fn expect` is an ordinary call, not `Option::expect`).
//! - Runtime slice/array indexing, in the crates listed in
//!   [`Config::index_crates`] only: the numeric kernels index tightly in
//!   loops with shapes proved at construction, and flagging all of them
//!   would drown the serve/store findings this analysis exists for.
//!   Bracket groups containing only numeric literals / range dots are
//!   skipped (fixed-size array accesses the compiler checks; the blind
//!   spot — a literal index into a runtime-sized slice — is documented).
//!
//! A `deepcheck:allow(panic-path)` waiver on a source line suppresses the
//! site; on a call line it cuts traversal through that call.

use crate::callgraph::Graph;
use crate::syntax::CallKind;

use super::{Config, Finding, Waivers};

/// A panic source inside one function.
struct Site {
    line: u32,
    what: String,
}

pub(super) fn check(g: &Graph, cfg: &Config, w: &Waivers) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut roots = Vec::new();
    for spec in &cfg.panic_roots {
        let m = g.find_roots(spec);
        if m.is_empty() {
            findings.push(Finding {
                rule: "panic-path",
                file: String::new(),
                line: 0,
                message: format!(
                    "root `{spec}` matches no function — the analysis config has drifted \
                     from the code; update the root list"
                ),
                chain: Vec::new(),
            });
        }
        roots.extend(m);
    }

    let parent = g.reach(&roots, |caller, e| {
        w.covers(&g.fns[caller].file, e.line, "panic-path")
    });

    for i in 0..g.fns.len() {
        if parent[i].is_none() {
            continue;
        }
        let f = &g.fns[i];
        for site in sites(g, i, cfg) {
            if w.covers(&f.file, site.line, "panic-path") {
                continue;
            }
            let mut chain = g.chain(&parent, i);
            chain.push(format!("{} at {}:{}", site.what, f.file, site.line));
            findings.push(Finding {
                rule: "panic-path",
                file: f.file.clone(),
                line: site.line,
                message: format!("{} reachable from a request-path root", site.what),
                chain,
            });
        }
    }
    findings
}

fn sites(g: &Graph, i: usize, cfg: &Config) -> Vec<Site> {
    let mut out = Vec::new();
    let f = &g.fns[i];
    for call in &g.facts[i].calls {
        match &call.kind {
            CallKind::Macro { name }
                if matches!(
                    name.as_str(),
                    "panic" | "unreachable" | "todo" | "unimplemented"
                ) =>
            {
                out.push(Site {
                    line: call.line,
                    what: format!("`{name}!`"),
                });
            }
            CallKind::Method { name, recv }
                if matches!(name.as_str(), "unwrap" | "expect")
                    && !g.is_own_method(i, name, recv.as_deref()) =>
            {
                out.push(Site {
                    line: call.line,
                    what: format!("`.{name}()`"),
                });
            }
            _ => {}
        }
    }
    if cfg.index_crates.contains(&f.crate_name) {
        for idx in &g.facts[i].indexes {
            if !idx.literal_only {
                out.push(Site {
                    line: idx.line,
                    what: "slice indexing".to_owned(),
                });
            }
        }
    }
    out
}
