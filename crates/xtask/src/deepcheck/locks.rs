//! Lock-order and lock-held-across-blocking analysis over `crates/serve`
//! and `crates/store`.
//!
//! Acquisition sites are `.lock()` calls plus zero-argument `.read()` /
//! `.write()` (the `RwLock` spellings; `io::Read::read(buf)` always takes
//! an argument, which is how the two are told apart). A lock's identity
//! is the receiver identifier at the call (`shard.lru.lock()` → `lru`) —
//! two different mutexes that happen to share a field name are conflated,
//! which over-approximates (may report a false cycle, waivable) and never
//! under-approximates within a file's naming discipline.
//!
//! Guard hold regions follow Rust's drop rules closely enough to be
//! useful:
//! - `let g = m.lock()…;` — held to the end of the enclosing block,
//!   shortened by an explicit `drop(g)`;
//! - `if let` / `while let` / `match` / `for` over a lock call — held to
//!   the end of the following brace block (scrutinee temporaries);
//! - any other expression-position acquisition — held to the end of the
//!   statement.
//!
//! Within a hold region, another acquisition (directly, or transitively
//! inside any callee) adds an order edge; a cycle in the resulting graph
//! is a potential deadlock. Acquisition sets propagate only across
//! *precisely* resolved call edges ([`crate::callgraph::Edge::approx`]
//! is false): lock
//! identity is receiver-name-based, so following a name-aliased method
//! edge (`buf.len()` landing on a sharded cache's lock-taking `len`)
//! would manufacture order edges between unrelated mutexes. Blocking
//! summaries still flow across every edge — a blocking callee blocks no
//! matter which receiver the call was aliased from, and the alias edges
//! are what catch `guard.append(…)`-style calls on a locked-up handle.
//! A blocking operation inside a hold region —
//! file I/O, socket writes (`write_all`/`flush`/…), or any call that
//! reaches `crates/spec` (solver compute) — is reported as
//! `lock-blocking`. `Condvar::wait*` is deliberately *not* blocking here:
//! it releases its guard while parked, which is the whole point of the
//! single-flight protocol.

use std::collections::{BTreeMap, BTreeSet};

use crate::callgraph::Graph;
use crate::lexer::{Tok, TokKind};
use crate::syntax::CallKind;

use super::{Config, Finding, Waivers};

/// One lock acquisition with its computed hold region.
struct Acq {
    fn_idx: usize,
    name: String,
    line: u32,
    /// Token index of the `lock`/`read`/`write` name in the body stream.
    tok: usize,
    /// Exclusive token bound of the guard's live range.
    hold_end: usize,
}

/// Why a function is considered blocking.
enum Blk {
    /// A direct needle in this function's body.
    Direct { op: String, line: u32 },
    /// A call at `line` into a blocking callee.
    Via { callee: usize, line: u32 },
}

pub(super) fn check(g: &Graph, cfg: &Config, w: &Waivers) -> Vec<Finding> {
    let scoped: Vec<usize> = (0..g.fns.len())
        .filter(|&i| cfg.lock_crates.contains(&g.fns[i].crate_name))
        .collect();
    if scoped.is_empty() {
        return Vec::new();
    }

    // 1. Acquisition sites + hold regions, per scoped function.
    let mut acqs: Vec<Acq> = Vec::new();
    for &i in &scoped {
        let body = &g.fns[i].body;
        for call in &g.facts[i].calls {
            let CallKind::Method { name, recv } = &call.kind else {
                continue;
            };
            let is_acq =
                name == "lock" || ((name == "read" || name == "write") && call.arg_tokens == 0);
            if !is_acq || call.arg_tokens != 0 {
                continue;
            }
            acqs.push(Acq {
                fn_idx: i,
                name: recv.clone().unwrap_or_else(|| "<expr>".to_owned()),
                line: call.line,
                tok: call.tok,
                hold_end: hold_region(body, call.tok),
            });
        }
    }

    // 2. Transitive lock-acquisition sets per function (names).
    let mut acq_sets: Vec<BTreeSet<String>> = vec![BTreeSet::new(); g.fns.len()];
    for a in &acqs {
        acq_sets[a.fn_idx].insert(a.name.clone());
    }
    loop {
        let mut changed = false;
        for i in 0..g.fns.len() {
            for e in &g.edges[i] {
                if e.callee == i || e.approx {
                    continue;
                }
                let add: Vec<String> = acq_sets[e.callee]
                    .iter()
                    .filter(|n| !acq_sets[i].contains(*n))
                    .cloned()
                    .collect();
                if !add.is_empty() {
                    acq_sets[i].extend(add);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    // 3. Blocking summaries (monotone fixpoint with evidence).
    let mut blocking: Vec<Option<Blk>> = (0..g.fns.len()).map(|i| direct_blocking(g, i)).collect();
    loop {
        let mut changed = false;
        for i in 0..g.fns.len() {
            if blocking[i].is_some() {
                continue;
            }
            for e in &g.edges[i] {
                if e.callee != i && blocking[e.callee].is_some() {
                    blocking[i] = Some(Blk::Via {
                        callee: e.callee,
                        line: e.line,
                    });
                    changed = true;
                    break;
                }
            }
        }
        if !changed {
            break;
        }
    }

    let mut findings = Vec::new();

    // 4. Per-acquisition: order edges and blocking findings.
    let mut order: BTreeMap<(String, String), Vec<(usize, u32)>> = BTreeMap::new();
    let mut seen_blocking: BTreeSet<(usize, u32, String)> = BTreeSet::new();
    for a in &acqs {
        let f = &g.fns[a.fn_idx];
        let waived_order = |line: u32| {
            w.covers(&f.file, a.line, "lock-order") || w.covers(&f.file, line, "lock-order")
        };
        let waived_blocking = |line: u32| {
            w.covers(&f.file, a.line, "lock-blocking") || w.covers(&f.file, line, "lock-blocking")
        };

        // Nested acquisitions in the same body.
        for b in &acqs {
            if b.fn_idx == a.fn_idx && b.tok > a.tok && b.tok < a.hold_end && !waived_order(b.line)
            {
                order
                    .entry((a.name.clone(), b.name.clone()))
                    .or_default()
                    .push((a.fn_idx, b.line));
            }
        }

        // Calls made while the guard is live.
        for e in &g.edges[a.fn_idx] {
            if e.tok <= a.tok || e.tok >= a.hold_end {
                continue;
            }
            // Locks the callee (transitively) acquires. Name-aliased
            // edges are skipped: receiver-based lock identity is
            // meaningless across an aliased receiver.
            if !e.approx {
                for l in &acq_sets[e.callee] {
                    if !waived_order(e.line) {
                        order
                            .entry((a.name.clone(), l.clone()))
                            .or_default()
                            .push((a.fn_idx, e.line));
                    }
                }
            }
            // Blocking callees.
            if blocking[e.callee].is_some()
                && seen_blocking.insert((a.fn_idx, a.line, g.fns[e.callee].qualified()))
                && !waived_blocking(e.line)
            {
                let mut chain = vec![
                    format!("{} ({}:{})", f.qualified(), f.file, f.line),
                    format!("acquires `{}` at {}:{}", a.name, f.file, a.line),
                    format!(
                        "calls {} ({}:{}) while holding it",
                        g.fns[e.callee].qualified(),
                        f.file,
                        e.line
                    ),
                ];
                push_blocking_evidence(g, &blocking, e.callee, &mut chain);
                findings.push(Finding {
                    rule: "lock-blocking",
                    file: f.file.clone(),
                    line: a.line,
                    message: format!(
                        "lock `{}` held across blocking call `{}`",
                        a.name,
                        g.fns[e.callee].qualified()
                    ),
                    chain,
                });
            }
        }

        // Direct blocking needles in the same body while the guard is live.
        for call in &g.facts[a.fn_idx].calls {
            if call.tok <= a.tok || call.tok >= a.hold_end {
                continue;
            }
            let Some(op) = needle(&call.kind) else {
                continue;
            };
            if seen_blocking.insert((a.fn_idx, a.line, op.clone())) && !waived_blocking(call.line) {
                findings.push(Finding {
                    rule: "lock-blocking",
                    file: f.file.clone(),
                    line: a.line,
                    message: format!("lock `{}` held across blocking op `{op}`", a.name),
                    chain: vec![
                        format!("{} ({}:{})", f.qualified(), f.file, f.line),
                        format!("acquires `{}` at {}:{}", a.name, f.file, a.line),
                        format!("blocking op `{op}` at {}:{}", f.file, call.line),
                    ],
                });
            }
        }
    }

    // 5. Cycles in the order graph (self-loops are re-entrant deadlocks).
    findings.extend(report_cycles(g, &order));
    findings
}

/// Renders the `Via → … → Direct` evidence trail into the chain.
fn push_blocking_evidence(
    g: &Graph,
    blocking: &[Option<Blk>],
    mut cur: usize,
    chain: &mut Vec<String>,
) {
    for _ in 0..blocking.len() {
        match &blocking[cur] {
            Some(Blk::Direct { op, line }) => {
                chain.push(format!("blocking op `{op}` at {}:{line}", g.fns[cur].file));
                return;
            }
            Some(Blk::Via { callee, line }) => {
                chain.push(format!(
                    "-> {} (called at {}:{line})",
                    g.fns[*callee].qualified(),
                    g.fns[cur].file
                ));
                cur = *callee;
            }
            None => return,
        }
    }
}

/// Blocking needles a body can contain directly. `Condvar::wait*` is
/// excluded: it atomically releases the guard it is given.
fn needle(kind: &CallKind) -> Option<String> {
    match kind {
        CallKind::Method { name, .. } => {
            let blocking = matches!(
                name.as_str(),
                "write_all"
                    | "flush"
                    | "sync_all"
                    | "sync_data"
                    | "read_exact"
                    | "read_to_end"
                    | "read_to_string"
                    | "read_line"
                    | "write_fmt"
            );
            blocking.then(|| format!(".{name}()"))
        }
        CallKind::Path { segments } => {
            let last = segments.last()?.as_str();
            let qual = segments.iter().rev().nth(1).map(String::as_str);
            if segments.iter().any(|s| s == "fs") {
                return Some(segments.join("::"));
            }
            match (qual, last) {
                (Some("File"), "open" | "create" | "options") => Some(segments.join("::")),
                (Some("OpenOptions"), "new") => Some(segments.join("::")),
                (Some("TcpStream"), "connect") => Some(segments.join("::")),
                _ => None,
            }
        }
        _ => None,
    }
}

/// A function is directly blocking if its body contains a needle, or if
/// it lives in `crates/spec` at all — holding a lock across solver
/// compute is as bad as holding it across I/O, so every entry into the
/// solver crate counts and propagates to transitive callers.
fn direct_blocking(g: &Graph, i: usize) -> Option<Blk> {
    if g.fns[i].crate_name == "spec" {
        return Some(Blk::Direct {
            op: "solver compute (crates/spec)".to_owned(),
            line: g.fns[i].line,
        });
    }
    for call in &g.facts[i].calls {
        if let Some(op) = needle(&call.kind) {
            return Some(Blk::Direct {
                op,
                line: call.line,
            });
        }
    }
    None
}

// ---------------------------------------------------------------------------
// Hold regions
// ---------------------------------------------------------------------------

/// Computes the exclusive token bound to which the guard produced at
/// `tok` (the `lock`/`read`/`write` name token) stays live.
fn hold_region(body: &[Tok], tok: usize) -> usize {
    let start = stmt_start(body, tok);
    match body.get(start) {
        Some(t) if t.is_ident("let") => let_bound_end(body, start, tok),
        Some(t)
            if (t.is_ident("if") || t.is_ident("while"))
                && body.get(start + 1).is_some_and(|n| n.is_ident("let")) =>
        {
            block_scoped_end(body, tok)
        }
        Some(t) if t.is_ident("match") || t.is_ident("for") => block_scoped_end(body, tok),
        _ => temp_end(body, tok),
    }
}

/// Walks backward to the start of the statement containing `tok`.
fn stmt_start(body: &[Tok], tok: usize) -> usize {
    let mut depth = 0i32;
    let mut k = tok as i64 - 1;
    while k >= 0 {
        let t = &body[k as usize];
        if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth += 1;
        } else if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth -= 1;
            if depth < 0 {
                return (k + 1) as usize;
            }
        } else if t.is_punct(';') && depth == 0 {
            return (k + 1) as usize;
        }
        k -= 1;
    }
    0
}

/// `let g = …lock()…;` — held to the end of the enclosing block, or an
/// explicit `drop(g)`.
fn let_bound_end(body: &[Tok], stmt: usize, tok: usize) -> usize {
    // Names bound by the pattern (idents before the `=`; includes enum
    // constructors like `Ok`, which are harmless — nobody drops `Ok`).
    let mut names: BTreeSet<&str> = BTreeSet::new();
    let mut j = stmt + 1;
    while j < tok {
        let t = &body[j];
        if t.is_punct('=') {
            break;
        }
        if matches!(t.kind, TokKind::Ident | TokKind::RawIdent)
            && !matches!(t.text.as_str(), "mut" | "ref")
        {
            names.insert(&t.text);
        }
        j += 1;
    }
    let mut depth = 0i32;
    let mut k = tok + 1;
    while k < body.len() {
        let t = &body[k];
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth < 0 {
                return k;
            }
        } else if t.is_ident("drop")
            && body.get(k + 1).is_some_and(|n| n.is_punct('('))
            && body
                .get(k + 2)
                .is_some_and(|n| names.contains(n.text.as_str()))
            && body.get(k + 3).is_some_and(|n| n.is_punct(')'))
        {
            return k;
        }
        k += 1;
    }
    body.len()
}

/// `if let` / `while let` / `match` / `for` — the guard (or scrutinee
/// temporary) lives to the end of the brace block that follows.
fn block_scoped_end(body: &[Tok], tok: usize) -> usize {
    let mut paren = 0i32;
    let mut k = tok + 1;
    // Find the block opener at paren depth 0.
    while k < body.len() {
        let t = &body[k];
        if t.is_punct('(') {
            paren += 1;
        } else if t.is_punct(')') {
            paren -= 1;
        } else if t.is_punct('{') && paren <= 0 {
            break;
        }
        k += 1;
    }
    // Its matching close.
    let mut depth = 0i32;
    while k < body.len() {
        let t = &body[k];
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return k;
            }
        }
        k += 1;
    }
    body.len()
}

/// Expression-position acquisition — the temporary guard drops at the end
/// of the statement.
fn temp_end(body: &[Tok], tok: usize) -> usize {
    let mut paren = 0i32;
    let mut brace = 0i32;
    let mut k = tok + 1;
    while k < body.len() {
        let t = &body[k];
        if t.is_punct('(') {
            paren += 1;
        } else if t.is_punct(')') {
            paren -= 1;
        } else if t.is_punct('{') {
            brace += 1;
        } else if t.is_punct('}') {
            brace -= 1;
            if brace < 0 {
                return k;
            }
        } else if t.is_punct(';') && paren <= 0 && brace == 0 {
            return k;
        }
        k += 1;
    }
    body.len()
}

// ---------------------------------------------------------------------------
// Cycle detection
// ---------------------------------------------------------------------------

fn report_cycles(g: &Graph, order: &BTreeMap<(String, String), Vec<(usize, u32)>>) -> Vec<Finding> {
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for (a, b) in order.keys() {
        adj.entry(a).or_default().insert(b);
        adj.entry(b).or_default();
    }

    let witness = |a: &str, b: &str| -> String {
        match order
            .get(&(a.to_owned(), b.to_owned()))
            .and_then(|v| v.first())
        {
            Some((fi, line)) => {
                let f = &g.fns[*fi];
                format!("`{a}` then `{b}` in {} ({}:{line})", f.qualified(), f.file)
            }
            None => format!("`{a}` then `{b}`"),
        }
    };

    let mut findings = Vec::new();
    let mut reported: BTreeSet<Vec<&str>> = BTreeSet::new();

    // DFS with an explicit path stack; a back edge onto the stack closes a
    // cycle. The graph is tiny (lock names), so recursion depth is safe.
    fn dfs<'a>(
        node: &'a str,
        adj: &BTreeMap<&'a str, BTreeSet<&'a str>>,
        path: &mut Vec<&'a str>,
        on_path: &mut BTreeSet<&'a str>,
        done: &mut BTreeSet<&'a str>,
        cycles: &mut Vec<Vec<&'a str>>,
    ) {
        path.push(node);
        on_path.insert(node);
        if let Some(next) = adj.get(node) {
            for &n in next {
                if on_path.contains(n) {
                    let from = path.iter().position(|&p| p == n).unwrap_or(0);
                    let mut cyc: Vec<&str> = path[from..].to_vec();
                    cyc.push(n);
                    cycles.push(cyc);
                } else if !done.contains(n) {
                    dfs(n, adj, path, on_path, done, cycles);
                }
            }
        }
        on_path.remove(node);
        path.pop();
        done.insert(node);
    }

    let mut cycles = Vec::new();
    let mut done = BTreeSet::new();
    for &start in adj.keys() {
        if !done.contains(start) {
            dfs(
                start,
                &adj,
                &mut Vec::new(),
                &mut BTreeSet::new(),
                &mut done,
                &mut cycles,
            );
        }
    }

    for cyc in cycles {
        let mut key: Vec<&str> = cyc[..cyc.len() - 1].to_vec();
        key.sort_unstable();
        if !reported.insert(key) {
            continue;
        }
        let chain: Vec<String> = cyc.windows(2).map(|w2| witness(w2[0], w2[1])).collect();
        let (file, line) = cyc
            .windows(2)
            .find_map(|w2| {
                order
                    .get(&(w2[0].to_owned(), w2[1].to_owned()))
                    .and_then(|v| v.first())
                    .map(|(fi, line)| (g.fns[*fi].file.clone(), *line))
            })
            .unwrap_or_default();
        let message = if cyc.len() == 2 && cyc[0] == cyc[1] {
            format!(
                "lock `{}` acquired while already held — re-entrant deadlock",
                cyc[0]
            )
        } else {
            format!("lock-order cycle: {}", cyc.join(" -> "))
        };
        findings.push(Finding {
            rule: "lock-order",
            file,
            line,
            message,
            chain,
        });
    }
    findings
}
