//! Hot-path allocation analysis: from the allocation-free roots (cache
//! lookup, per-request metrics recording), no path may reach an
//! allocating constructor.
//!
//! Needles: `format!`/`vec!`, the owning conversions (`to_string`,
//! `to_owned`, `to_vec`, `collect`, `join`, `into_owned`), and the
//! constructor paths (`Vec::new`, `String::from`, `Box::new`, …).
//! `Vec::new`/`String::new` do not themselves allocate but are flagged
//! conservatively — an empty container on a hot path exists to be pushed
//! into. `.clone()` is deliberately *not* a needle: `Copy` types clone
//! freely and the counting-allocator tests catch deep clones at runtime;
//! flagging every clone statically would be all noise.
//!
//! The response *renderers* (`/metrics` exposition, JSON bodies) are not
//! roots: building a response body allocates by design. The roots are the
//! bookkeeping paths that run on every request including cache hits.

use crate::callgraph::Graph;
use crate::syntax::CallKind;

use super::{Config, Finding, Waivers};

const MACROS: &[&str] = &["format", "vec"];

const METHODS: &[&str] = &[
    "to_string",
    "to_owned",
    "to_vec",
    "collect",
    "join",
    "into_owned",
    "to_uppercase",
    "to_lowercase",
    "repeat",
];

const CTOR_TYPES: &[&str] = &[
    "Vec", "String", "Box", "Arc", "Rc", "HashMap", "HashSet", "BTreeMap", "BTreeSet", "VecDeque",
];

const CTOR_FNS: &[&str] = &["new", "with_capacity", "from", "from_iter"];

pub(super) fn check(g: &Graph, cfg: &Config, w: &Waivers) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut roots = Vec::new();
    for spec in &cfg.alloc_roots {
        let m = g.find_roots(spec);
        if m.is_empty() {
            findings.push(Finding {
                rule: "alloc-hot",
                file: String::new(),
                line: 0,
                message: format!(
                    "root `{spec}` matches no function — the analysis config has drifted \
                     from the code; update the root list"
                ),
                chain: Vec::new(),
            });
        }
        roots.extend(m);
    }

    let parent = g.reach(&roots, |caller, e| {
        w.covers(&g.fns[caller].file, e.line, "alloc-hot")
    });

    for i in 0..g.fns.len() {
        if parent[i].is_none() {
            continue;
        }
        let f = &g.fns[i];
        for call in &g.facts[i].calls {
            let what = match &call.kind {
                CallKind::Macro { name } if MACROS.contains(&name.as_str()) => {
                    format!("`{name}!`")
                }
                CallKind::Method { name, recv }
                    if METHODS.contains(&name.as_str())
                        && !g.is_own_method(i, name, recv.as_deref()) =>
                {
                    format!("`.{name}()`")
                }
                CallKind::Path { segments }
                    if segments.len() >= 2
                        && CTOR_FNS.contains(&segments[segments.len() - 1].as_str())
                        && CTOR_TYPES.contains(&segments[segments.len() - 2].as_str()) =>
                {
                    format!(
                        "`{}::{}`",
                        segments[segments.len() - 2],
                        segments[segments.len() - 1]
                    )
                }
                _ => continue,
            };
            if w.covers(&f.file, call.line, "alloc-hot") {
                continue;
            }
            let mut chain = g.chain(&parent, i);
            chain.push(format!("{} at {}:{}", what, f.file, call.line));
            findings.push(Finding {
                rule: "alloc-hot",
                file: f.file.clone(),
                line: call.line,
                message: format!("allocating {} reachable from a hot-path root", what),
                chain,
            });
        }
    }
    findings
}
