//! `deepcheck --self-test`: a fixture corpus proving every analysis can
//! fire — and stay quiet when it should.
//!
//! Each case is a miniature workspace (a few files with real paths) plus
//! an analysis config; expectations are (rule, substrings) pairs that
//! must match distinct findings, with no findings left over. A rule no
//! case can trigger fails the self-test, exactly like `tidy`'s corpus.

use std::process::ExitCode;

use crate::files::crate_of;

use super::{analyze, Config, SourceUnit, RULES};

struct Case {
    label: &'static str,
    files: &'static [(&'static str, &'static str)],
    panic_roots: &'static [&'static str],
    alloc_roots: &'static [&'static str],
    lock_crates: &'static [&'static str],
    index_crates: &'static [&'static str],
    /// Expected findings: each entry must match one distinct finding by
    /// rule and by every substring appearing in its rendered form.
    expect: &'static [(&'static str, &'static [&'static str])],
}

const CASES: &[Case] = &[
    Case {
        label: "panic two calls deep fires with the full chain",
        files: &[(
            "crates/app/src/lib.rs",
            r#"
pub fn root() { helper(); }
fn helper() { deeper(); }
fn deeper() { maybe().unwrap(); }
fn maybe() -> Option<u32> { None }
"#,
        )],
        panic_roots: &["app::root"],
        alloc_roots: &[],
        lock_crates: &[],
        index_crates: &[],
        expect: &[(
            "panic-path",
            &["`.unwrap()`", "root (", "helper (", "deeper ("],
        )],
    },
    Case {
        label: "a justified waiver suppresses the site and is not stale",
        files: &[(
            "crates/app/src/lib.rs",
            r#"
pub fn root() { helper(); }
fn helper() {
    // deepcheck:allow(panic-path): fixture-justified invariant
    maybe().unwrap();
}
fn maybe() -> Option<u32> { None }
"#,
        )],
        panic_roots: &["app::root"],
        alloc_roots: &[],
        lock_crates: &[],
        index_crates: &[],
        expect: &[],
    },
    Case {
        label: "a waiver in unreachable code is reported stale",
        files: &[(
            "crates/app/src/lib.rs",
            r#"
pub fn root() {}
fn dead() {
    // deepcheck:allow(panic-path): nothing ever consults this
    maybe().unwrap();
}
fn maybe() -> Option<u32> { None }
"#,
        )],
        panic_roots: &["app::root"],
        alloc_roots: &[],
        lock_crates: &[],
        index_crates: &[],
        expect: &[("stale-waiver", &["never consulted"])],
    },
    Case {
        label: "a waiver naming an unknown rule is reported",
        files: &[(
            "crates/app/src/lib.rs",
            r#"
// deepcheck:allow(panic-free): no such rule
pub fn root() {}
"#,
        )],
        panic_roots: &["app::root"],
        alloc_roots: &[],
        lock_crates: &[],
        index_crates: &[],
        expect: &[("waiver", &["unknown rule", "panic-free"])],
    },
    Case {
        label: "a waiver without a justification is reported",
        files: &[(
            "crates/app/src/lib.rs",
            r#"
// deepcheck:allow(panic-path)
pub fn root() {}
"#,
        )],
        panic_roots: &["app::root"],
        alloc_roots: &[],
        lock_crates: &[],
        index_crates: &[],
        expect: &[("waiver", &["justification"])],
    },
    Case {
        label: "runtime slice indexing fires in an index-scoped crate",
        files: &[(
            "crates/app/src/lib.rs",
            r#"
pub fn root(xs: &[u64], i: usize) -> u64 { xs[i] }
"#,
        )],
        panic_roots: &["app::root"],
        alloc_roots: &[],
        lock_crates: &[],
        index_crates: &["app"],
        expect: &[("panic-path", &["slice indexing"])],
    },
    Case {
        label: "literal-only array indexing is not a panic source",
        files: &[(
            "crates/app/src/lib.rs",
            r#"
pub fn root(xs: [u64; 3]) -> u64 { xs[0] + xs[1] }
"#,
        )],
        panic_roots: &["app::root"],
        alloc_roots: &[],
        lock_crates: &[],
        index_crates: &["app"],
        expect: &[],
    },
    Case {
        label: "a type's own `expect` method is a call, not a panic",
        files: &[(
            "crates/app/src/lib.rs",
            r#"
pub struct Parser { n: u32 }
impl Parser {
    pub fn root(&self) -> u32 { self.expect(1) }
    fn expect(&self, n: u32) -> u32 { self.n + n }
}
"#,
        )],
        panic_roots: &["app::Parser::root"],
        alloc_roots: &[],
        lock_crates: &[],
        index_crates: &[],
        expect: &[],
    },
    Case {
        label: "inverted lock orders across two functions form a cycle",
        files: &[("crates/app/src/lib.rs", DEADLOCK_FIXTURE)],
        panic_roots: &[],
        alloc_roots: &[],
        lock_crates: &["app"],
        index_crates: &[],
        expect: &[("lock-order", &["cycle", "`a` then `b`", "`b` then `a`"])],
    },
    Case {
        label: "a consistent lock order is clean",
        files: &[(
            "crates/app/src/lib.rs",
            r#"
use std::sync::Mutex;
pub struct S { pub a: Mutex<u32>, pub b: Mutex<u32> }
pub fn one(s: &S) {
    let ga = s.a.lock().unwrap_or_else(|e| e.into_inner());
    let gb = s.b.lock().unwrap_or_else(|e| e.into_inner());
    drop(gb);
    drop(ga);
}
pub fn two(s: &S) {
    let ga = s.a.lock().unwrap_or_else(|e| e.into_inner());
    let gb = s.b.lock().unwrap_or_else(|e| e.into_inner());
    drop(gb);
    drop(ga);
}
"#,
        )],
        panic_roots: &[],
        alloc_roots: &[],
        lock_crates: &["app"],
        index_crates: &[],
        expect: &[],
    },
    Case {
        label: "an inverted order through a precise self-method call is a cycle",
        files: &[(
            "crates/app/src/lib.rs",
            r#"
use std::sync::Mutex;
pub struct S { pub a: Mutex<u32>, pub b: Mutex<u32> }
impl S {
    pub fn outer(&self) {
        let ga = self.a.lock().unwrap_or_else(|e| e.into_inner());
        self.inner();
        drop(ga);
    }
    fn inner(&self) {
        let gb = self.b.lock().unwrap_or_else(|e| e.into_inner());
        drop(gb);
    }
    pub fn other(&self) {
        let gb = self.b.lock().unwrap_or_else(|e| e.into_inner());
        let ga = self.a.lock().unwrap_or_else(|e| e.into_inner());
        drop(ga);
        drop(gb);
    }
}
"#,
        )],
        panic_roots: &[],
        alloc_roots: &[],
        lock_crates: &["app"],
        index_crates: &[],
        expect: &[("lock-order", &["cycle", "`a` then `b`", "`b` then `a`"])],
    },
    Case {
        label: "a name-aliased method edge does not smuggle lock order",
        // `v.len()` on a Vec aliases `Registry::len`, which locks `a`. If
        // alias edges propagated acquisition sets, `tick` would appear to
        // take `b` then `a` and close a cycle against `snapshot`'s real
        // `a` then `b`. They must not.
        files: &[(
            "crates/app/src/lib.rs",
            r#"
use std::sync::Mutex;
pub struct Registry { pub a: Mutex<Vec<u8>>, pub b: Mutex<u32> }
impl Registry {
    pub fn len(&self) -> usize {
        self.a.lock().unwrap_or_else(|e| e.into_inner()).len()
    }
    pub fn snapshot(&self) -> usize {
        let ga = self.a.lock().unwrap_or_else(|e| e.into_inner());
        let gb = self.b.lock().unwrap_or_else(|e| e.into_inner());
        let n = ga.len() + *gb as usize;
        drop(gb);
        drop(ga);
        n
    }
}
pub fn tick(r: &Registry, v: &Vec<u8>) -> usize {
    let gb = r.b.lock().unwrap_or_else(|e| e.into_inner());
    let n = v.len();
    drop(gb);
    n
}
"#,
        )],
        panic_roots: &[],
        alloc_roots: &[],
        lock_crates: &["app"],
        index_crates: &[],
        expect: &[],
    },
    Case {
        label: "a lock held across file I/O is flagged",
        files: &[(
            "crates/app/src/lib.rs",
            r#"
use std::sync::Mutex;
pub struct S { pub a: Mutex<Vec<u8>> }
pub fn flush_all(s: &S) {
    let g = s.a.lock().unwrap_or_else(|e| e.into_inner());
    std::fs::write("/tmp/evcap-fixture", b"x").ok();
    drop(g);
}
"#,
        )],
        panic_roots: &[],
        alloc_roots: &[],
        lock_crates: &["app"],
        index_crates: &[],
        expect: &[("lock-blocking", &["`a`", "fs::write"])],
    },
    Case {
        label: "a temporary guard dropped at the statement end is clean",
        files: &[(
            "crates/app/src/lib.rs",
            r#"
use std::sync::Mutex;
pub struct S { pub a: Mutex<Vec<u8>> }
pub fn bump(s: &S) {
    s.a.lock().unwrap_or_else(|e| e.into_inner()).push(1);
    std::fs::write("/tmp/evcap-fixture", b"x").ok();
}
"#,
        )],
        panic_roots: &[],
        alloc_roots: &[],
        lock_crates: &["app"],
        index_crates: &[],
        expect: &[],
    },
    Case {
        label: "a lock held across a transitively-blocking callee is flagged",
        files: &[(
            "crates/app/src/lib.rs",
            r#"
use std::sync::Mutex;
pub struct S { pub a: Mutex<u32> }
pub fn root(s: &S) {
    let g = s.a.lock().unwrap_or_else(|e| e.into_inner());
    persist();
    drop(g);
}
fn persist() { std::fs::write("/tmp/evcap-fixture", b"x").ok(); }
"#,
        )],
        panic_roots: &[],
        alloc_roots: &[],
        lock_crates: &["app"],
        index_crates: &[],
        expect: &[("lock-blocking", &["persist", "fs::write"])],
    },
    Case {
        label: "a lock held across a solver call is flagged",
        files: &[
            (
                "crates/app/src/lib.rs",
                r#"
use std::sync::Mutex;
pub struct S { pub a: Mutex<u32> }
pub fn root(s: &S) {
    let g = s.a.lock().unwrap_or_else(|e| e.into_inner());
    let _p = evcap_spec::solve();
    drop(g);
}
"#,
            ),
            ("crates/spec/src/lib.rs", "pub fn solve() -> u32 { 7 }\n"),
        ],
        panic_roots: &[],
        alloc_roots: &[],
        lock_crates: &["app"],
        index_crates: &[],
        expect: &[("lock-blocking", &["solve", "solver compute"])],
    },
    Case {
        label: "an allocation one call deep fires with the chain",
        files: &[(
            "crates/app/src/lib.rs",
            r#"
pub fn hot() -> u32 { warm() }
fn warm() -> u32 { let s = format!("x{}", 1); s.len() as u32 }
"#,
        )],
        panic_roots: &[],
        alloc_roots: &["app::hot"],
        lock_crates: &[],
        index_crates: &[],
        expect: &[("alloc-hot", &["`format!`", "hot (", "warm ("])],
    },
    Case {
        label: "an allocating constructor path fires",
        files: &[(
            "crates/app/src/lib.rs",
            r#"
pub fn hot() -> Vec<u8> { Vec::new() }
"#,
        )],
        panic_roots: &[],
        alloc_roots: &["app::hot"],
        lock_crates: &[],
        index_crates: &[],
        expect: &[("alloc-hot", &["Vec::new"])],
    },
    Case {
        label: "a waiver on a call line cuts traversal through it",
        files: &[(
            "crates/app/src/lib.rs",
            r#"
pub fn hot() -> u32 {
    // deepcheck:allow(alloc-hot): cold-start fill, allocation-free afterwards
    warm()
}
fn warm() -> u32 { let s = format!("x{}", 1); s.len() as u32 }
"#,
        )],
        panic_roots: &[],
        alloc_roots: &["app::hot"],
        lock_crates: &[],
        index_crates: &[],
        expect: &[],
    },
    Case {
        label: "trait-object calls over-approximate onto every impl",
        files: &[(
            "crates/app/src/lib.rs",
            r#"
pub trait Step { fn go(&self) -> u32; }
pub struct A;
impl Step for A { fn go(&self) -> u32 { 1 } }
pub struct B;
impl Step for B { fn go(&self) -> u32 { maybe().unwrap() } }
pub fn root(t: &dyn Step) -> u32 { t.go() }
fn maybe() -> Option<u32> { None }
"#,
        )],
        panic_roots: &["app::root"],
        alloc_roots: &[],
        lock_crates: &[],
        index_crates: &[],
        expect: &[("panic-path", &["`.unwrap()`", "B::go"])],
    },
    Case {
        label: "a root that matches no function is config drift",
        files: &[("crates/app/src/lib.rs", "pub fn root() {}\n")],
        panic_roots: &["app::missing"],
        alloc_roots: &[],
        lock_crates: &[],
        index_crates: &[],
        expect: &[("panic-path", &["matches no function"])],
    },
    Case {
        label: "test code is outside the graph",
        files: &[(
            "crates/app/src/lib.rs",
            r#"
pub fn root() { helper(); }
fn helper() -> u32 { 1 }

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        super::helper();
        maybe().unwrap();
    }
}
"#,
        )],
        panic_roots: &["app::root"],
        alloc_roots: &[],
        lock_crates: &[],
        index_crates: &[],
        expect: &[],
    },
];

/// The intentionally-deadlockable fixture: two functions taking the same
/// pair of mutexes in opposite orders. Shared with the integration tests
/// so the lock-order rule is proved against the exact canonical shape.
pub const DEADLOCK_FIXTURE: &str = r#"
use std::sync::Mutex;
pub struct S { pub a: Mutex<u32>, pub b: Mutex<u32> }
pub fn ab(s: &S) {
    let ga = s.a.lock().unwrap_or_else(|e| e.into_inner());
    let gb = s.b.lock().unwrap_or_else(|e| e.into_inner());
    drop(gb);
    drop(ga);
}
pub fn ba(s: &S) {
    let gb = s.b.lock().unwrap_or_else(|e| e.into_inner());
    let ga = s.a.lock().unwrap_or_else(|e| e.into_inner());
    drop(ga);
    drop(gb);
}
"#;

fn case_units(case: &Case) -> Vec<SourceUnit> {
    case.files
        .iter()
        .map(|(path, src)| SourceUnit {
            crate_name: crate_of(path).unwrap_or_else(|| "app".to_owned()),
            file: (*path).to_owned(),
            src: (*src).to_owned(),
        })
        .collect()
}

fn case_config(case: &Case) -> Config {
    Config {
        panic_roots: case.panic_roots.iter().map(|s| (*s).to_owned()).collect(),
        alloc_roots: case.alloc_roots.iter().map(|s| (*s).to_owned()).collect(),
        lock_crates: case.lock_crates.iter().map(|s| (*s).to_owned()).collect(),
        index_crates: case.index_crates.iter().map(|s| (*s).to_owned()).collect(),
    }
}

pub(super) fn run() -> ExitCode {
    for case in CASES {
        for (rule, _) in case.expect {
            assert!(
                RULES.iter().any(|(name, _)| name == rule),
                "self-test case `{}` expects unknown rule `{rule}`",
                case.label
            );
        }
    }

    let mut failures = 0usize;
    for case in CASES {
        let report = analyze(&case_units(case), &case_config(case));
        let mut rendered: Vec<(&'static str, String)> = report
            .findings
            .iter()
            .map(|f| (f.rule, f.rendered()))
            .collect();
        let mut ok = true;
        for (rule, subs) in case.expect {
            let hit = rendered
                .iter()
                .position(|(r, text)| r == rule && subs.iter().all(|s| text.contains(s)));
            match hit {
                Some(i) => {
                    rendered.remove(i);
                }
                None => ok = false,
            }
        }
        if !rendered.is_empty() {
            ok = false;
        }
        if ok {
            println!("ok   {}", case.label);
        } else {
            failures += 1;
            println!("FAIL {} — expected {:?}", case.label, case.expect);
            for f in &report.findings {
                println!("     got: {}", f.rendered().replace('\n', "\n     "));
            }
        }
    }

    for (name, _) in RULES {
        let fired = CASES
            .iter()
            .any(|c| c.expect.iter().any(|(r, _)| r == name));
        if !fired {
            failures += 1;
            println!("FAIL rule `{name}` is never exercised by any self-test case");
        }
    }

    if failures == 0 {
        println!(
            "deepcheck self-test: {} cases, all rules fire — ok",
            CASES.len()
        );
        ExitCode::SUCCESS
    } else {
        println!("deepcheck self-test: {failures} failure(s)");
        ExitCode::FAILURE
    }
}
