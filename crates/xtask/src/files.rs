//! Workspace discovery shared by `tidy` and `deepcheck`: locating the
//! root, walking the source tree, and mapping paths to crate names.

use std::fs;
use std::path::{Path, PathBuf};

/// Locate the workspace root: walk up from the current directory until a
/// directory containing both `Cargo.toml` and `crates/` appears.
pub fn workspace_root() -> PathBuf {
    let mut dir = std::env::current_dir().expect("cwd");
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return dir;
        }
        if !dir.pop() {
            panic!("could not locate the workspace root (no Cargo.toml + crates/ above cwd)");
        }
    }
}

/// Collect every `.rs` file under the roots the lints care about, relative
/// to the workspace root, in sorted order for deterministic output.
pub fn collect_sources(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    for top in ["crates", "compat", "src", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(&dir, &mut files);
        }
    }
    for f in &mut files {
        *f = f.strip_prefix(root).expect("under root").to_path_buf();
    }
    files.sort();
    files
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return,
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == ".git" {
                continue;
            }
            walk(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// The crate a workspace-relative path belongs to: `crates/<name>/src/…`
/// maps to `<name>`, the facade sources in `src/` map to `evcap`. Returns
/// `None` for paths outside any crate's `src/` tree (integration tests,
/// benches, examples, compat shims) — those are not part of the shipped
/// call graph.
pub fn crate_of(path: &str) -> Option<String> {
    if let Some(rest) = path.strip_prefix("crates/") {
        let (name, tail) = rest.split_once('/')?;
        if tail.starts_with("src/") {
            return Some(name.to_owned());
        }
        return None;
    }
    if path.starts_with("src/") {
        return Some("evcap".to_owned());
    }
    None
}
