//! The `xtask` binary: dispatches to the in-tree lints.
//!
//! ```text
//! cargo run -p xtask -- tidy                   # token-level line lint
//! cargo run -p xtask -- tidy --self-test       # prove every tidy rule fires
//! cargo run -p xtask -- tidy --list            # list tidy rules
//! cargo run -p xtask -- deepcheck              # call-graph analyses
//! cargo run -p xtask -- deepcheck --json       # machine-readable report
//! cargo run -p xtask -- deepcheck --self-test  # prove every analysis fires
//! ```
#![forbid(unsafe_code)]

use std::process::ExitCode;

use xtask::{deepcheck, tidy};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("tidy") => match args.get(1).map(String::as_str) {
            None => tidy::run(),
            Some("--self-test") => tidy::self_test(),
            Some("--list") => tidy::list(),
            Some(other) => {
                eprintln!("xtask tidy: unknown flag `{other}` (try --self-test or --list)");
                ExitCode::FAILURE
            }
        },
        Some("deepcheck") => {
            let mut json = false;
            let mut self_test = false;
            for flag in &args[1..] {
                match flag.as_str() {
                    "--json" => json = true,
                    "--self-test" => self_test = true,
                    other => {
                        eprintln!(
                            "xtask deepcheck: unknown flag `{other}` (try --json or --self-test)"
                        );
                        return ExitCode::FAILURE;
                    }
                }
            }
            if self_test {
                deepcheck::self_test()
            } else {
                deepcheck::run(json)
            }
        }
        _ => {
            eprintln!(
                "usage: cargo run -p xtask -- tidy [--self-test | --list]\n       \
                 cargo run -p xtask -- deepcheck [--json] [--self-test]"
            );
            ExitCode::FAILURE
        }
    }
}
