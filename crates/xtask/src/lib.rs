//! In-tree repo tooling, following the cargo-xtask pattern.
//!
//! Two lint layers share this crate, both std-only so the workspace stays
//! offline-buildable:
//!
//! - [`tidy`] — a token-level line scan enforcing repo conventions
//!   (construction sites, clocks, threads, JSON, unsafe, crate docs) with
//!   inline `// tidy:allow(rule): why` escapes, plus stale-escape
//!   detection so waivers cannot rot.
//! - [`deepcheck`] — a syntax-aware analyzer built from a real Rust
//!   lexer ([`lexer`]), an item/impl/fn extractor ([`syntax`]) and an
//!   approximate call graph ([`callgraph`]). It proves reachability
//!   properties a line scan cannot: panic-free serve request paths,
//!   cycle-free lock acquisition orders, and allocation-free hot paths,
//!   each with a `// deepcheck:allow(rule): why` waiver mechanism and
//!   stale-waiver detection.
//!
//! Run as `cargo run -p xtask -- tidy` / `-- deepcheck`; both support
//! `--self-test` fixture corpora proving every rule can fire.
#![forbid(unsafe_code)]

pub mod callgraph;
pub mod deepcheck;
pub mod files;
pub mod lexer;
pub mod syntax;
pub mod tidy;
