//! The slotted probability mass function of an inter-arrival distribution.

use crate::{DistError, Result};

/// Tolerance within which a user-supplied pmf is silently renormalized.
const NORMALIZE_TOL: f64 = 1e-6;

/// A discrete inter-arrival distribution over slots `1, 2, 3, …` with an
/// explicit geometric tail.
///
/// A `SlotPmf` stores `α_i = P(X = i)` for `i = 1..=horizon` exactly, plus a
/// *tail model*: the residual mass `P(X > horizon)` is distributed
/// geometrically with per-slot hazard [`tail_hazard`](Self::tail_hazard).
/// This keeps heavy-tailed distributions (Pareto) representable with a finite
/// vector while preserving a proper, fully specified distribution whose mean,
/// hazard, and sampler are all mutually consistent — the analytic policies
/// and the simulator therefore agree on the *same* event process.
///
/// Slots are 1-based throughout, matching the paper: `pmf(1)` is the
/// probability that the next event arrives in the slot immediately after a
/// renewal.
///
/// # Example
///
/// ```
/// use evcap_dist::SlotPmf;
///
/// # fn main() -> Result<(), evcap_dist::DistError> {
/// // The two-slot example from Section IV-A of the paper:
/// // α1 = 0.6, α2 = 0.4 ⇒ β1 = 0.6, β2 = 1.
/// let pmf = SlotPmf::from_pmf(vec![0.6, 0.4])?;
/// assert!((pmf.hazard(1) - 0.6).abs() < 1e-12);
/// assert!((pmf.hazard(2) - 1.0).abs() < 1e-12);
/// assert!((pmf.mean() - 1.4).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SlotPmf {
    /// `pmf[i]` is `α_{i+1}`, the probability the gap is exactly `i + 1`.
    pmf: Vec<f64>,
    /// `cdf[i] = Σ_{j<=i} pmf[j]` (so `cdf[i] = F(i+1)`).
    cdf: Vec<f64>,
    /// Residual mass `P(X > horizon)`.
    tail_mass: f64,
    /// Geometric hazard applied to slots beyond the horizon; `1.0` when the
    /// tail mass is zero.
    tail_hazard: f64,
    /// Discrete mean `Σ i α_i`, including the tail contribution.
    mean: f64,
    /// Human-readable provenance label.
    label: String,
}

impl SlotPmf {
    /// Builds a `SlotPmf` from explicit per-slot masses `α_1, α_2, …`
    /// (no tail: all mass must be inside the vector).
    ///
    /// The masses may sum to anything within `1e-6` of 1 and are
    /// renormalized.
    ///
    /// # Errors
    ///
    /// * [`DistError::EmptyPmf`] if `masses` is empty or all-zero.
    /// * [`DistError::InvalidMass`] if any entry is negative or non-finite.
    /// * [`DistError::NotNormalizable`] if the sum is not within `1e-6`
    ///   of 1.
    pub fn from_pmf(masses: Vec<f64>) -> Result<Self> {
        Self::with_tail(masses, 0.0, 1.0, "custom pmf".to_owned())
    }

    /// Builds a `SlotPmf` from per-slot *hazards* `β_1, β_2, …`.
    ///
    /// The final hazard is reused as the geometric tail hazard, so the result
    /// is a proper distribution even if the supplied hazards do not reach 1.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::EmptyPmf`] if `hazards` is empty, or
    /// [`DistError::InvalidMass`] if any hazard is outside `[0, 1]`.
    pub fn from_hazards(hazards: &[f64]) -> Result<Self> {
        if hazards.is_empty() {
            return Err(DistError::EmptyPmf);
        }
        for (index, &h) in hazards.iter().enumerate() {
            if !h.is_finite() || !(0.0..=1.0).contains(&h) {
                return Err(DistError::InvalidMass { index, value: h });
            }
        }
        let mut pmf = Vec::with_capacity(hazards.len());
        let mut survival = 1.0;
        for &h in hazards {
            pmf.push(survival * h);
            survival *= 1.0 - h;
        }
        let tail_hazard = *hazards.last().expect("non-empty");
        let tail_hazard = if survival > 0.0 && tail_hazard <= 0.0 {
            // Freeze a tiny hazard to keep the distribution proper.
            1e-9
        } else {
            tail_hazard.max(f64::MIN_POSITIVE)
        };
        Self::with_tail(
            pmf,
            survival,
            tail_hazard,
            "hazard-specified pmf".to_owned(),
        )
    }

    /// Builds a `SlotPmf` with an explicit geometric tail.
    ///
    /// `masses` carries `α_1..=α_H`; `tail_mass` is `P(X > H)`; slots beyond
    /// `H` have constant hazard `tail_hazard`.
    ///
    /// # Errors
    ///
    /// See [`SlotPmf::from_pmf`]; additionally requires
    /// `tail_mass ∈ [0, 1]` and, when `tail_mass > 0`,
    /// `tail_hazard ∈ (0, 1]`.
    pub fn with_tail(
        masses: Vec<f64>,
        tail_mass: f64,
        tail_hazard: f64,
        label: String,
    ) -> Result<Self> {
        if masses.is_empty() {
            return Err(DistError::EmptyPmf);
        }
        for (index, &value) in masses.iter().enumerate() {
            if !value.is_finite() || value < 0.0 {
                return Err(DistError::InvalidMass { index, value });
            }
        }
        if !(0.0..=1.0).contains(&tail_mass) || !tail_mass.is_finite() {
            return Err(DistError::InvalidParameter {
                name: "tail_mass",
                value: tail_mass,
                expected: "a probability in [0, 1]",
            });
        }
        if tail_mass > 0.0 && (tail_hazard <= 0.0 || tail_hazard > 1.0 || tail_hazard.is_nan()) {
            return Err(DistError::InvalidParameter {
                name: "tail_hazard",
                value: tail_hazard,
                expected: "a value in (0, 1] when tail mass is positive",
            });
        }
        let sum: f64 = masses.iter().sum::<f64>() + tail_mass;
        if sum <= 0.0 {
            return Err(DistError::EmptyPmf);
        }
        if (sum - 1.0).abs() > NORMALIZE_TOL {
            return Err(DistError::NotNormalizable { sum });
        }
        let scale = 1.0 / sum;
        let pmf: Vec<f64> = masses.into_iter().map(|m| m * scale).collect();
        let tail_mass = tail_mass * scale;
        let tail_hazard = if tail_mass > 0.0 { tail_hazard } else { 1.0 };

        let mut cdf = Vec::with_capacity(pmf.len());
        let mut acc = 0.0;
        for &m in &pmf {
            acc += m;
            cdf.push(acc.min(1.0));
        }
        let horizon = pmf.len() as f64;
        let mut mean: f64 = pmf
            .iter()
            .enumerate()
            .map(|(i, &m)| (i as f64 + 1.0) * m)
            .sum();
        if tail_mass > 0.0 {
            // Conditional on exceeding the horizon, the gap is
            // H + Geometric(tail_hazard) with mean H + 1/h.
            mean += tail_mass * (horizon + 1.0 / tail_hazard);
        }
        Ok(Self {
            pmf,
            cdf,
            tail_mass,
            tail_hazard,
            mean,
            label,
        })
    }

    /// Probability `α_i = P(X = i)` that the gap is exactly `i` slots
    /// (`i ≥ 1`).
    ///
    /// # Panics
    ///
    /// Panics if `slot == 0`; slot indices are 1-based.
    pub fn pmf(&self, slot: usize) -> f64 {
        assert!(slot >= 1, "slot indices are 1-based");
        let i = slot - 1;
        if i < self.pmf.len() {
            self.pmf[i]
        } else if self.tail_mass > 0.0 {
            let k = (slot - self.pmf.len()) as i32;
            self.tail_mass * self.tail_hazard * (1.0 - self.tail_hazard).powi(k - 1)
        } else {
            0.0
        }
    }

    /// Cumulative distribution `F(i) = P(X ≤ i)`; `F(0) = 0`.
    pub fn cdf(&self, slot: usize) -> f64 {
        if slot == 0 {
            return 0.0;
        }
        let i = slot - 1;
        if i < self.cdf.len() {
            self.cdf[i]
        } else if self.tail_mass > 0.0 {
            let k = (slot - self.pmf.len()) as i32;
            1.0 - self.tail_mass * (1.0 - self.tail_hazard).powi(k)
        } else {
            1.0
        }
    }

    /// Survival `1 − F(i) = P(X > i)`.
    pub fn survival(&self, slot: usize) -> f64 {
        if slot == 0 {
            return 1.0;
        }
        let i = slot - 1;
        if i < self.cdf.len() {
            let head = 1.0 - self.cdf[i];
            // Guard rounding: survival at the horizon must equal tail mass.
            if i + 1 == self.cdf.len() {
                self.tail_mass
            } else {
                head.max(0.0)
            }
        } else if self.tail_mass > 0.0 {
            let k = (slot - self.pmf.len()) as i32;
            self.tail_mass * (1.0 - self.tail_hazard).powi(k)
        } else {
            0.0
        }
    }

    /// The per-slot conditional probability (hazard)
    /// `β_i = P(X = i | X > i − 1)` — Eq. (3) in the paper.
    ///
    /// When the support is exhausted (`P(X > i−1) = 0`), returns `1.0`: the
    /// event must already have occurred, so an active sensor captures with
    /// certainty in any reachable continuation.
    ///
    /// # Panics
    ///
    /// Panics if `slot == 0`; slot indices are 1-based.
    pub fn hazard(&self, slot: usize) -> f64 {
        assert!(slot >= 1, "slot indices are 1-based");
        if slot > self.pmf.len() {
            return if self.tail_mass > 0.0 {
                self.tail_hazard
            } else {
                1.0
            };
        }
        let prior = self.survival(slot - 1);
        if prior <= 0.0 {
            1.0
        } else {
            (self.pmf(slot) / prior).clamp(0.0, 1.0)
        }
    }

    /// The discrete mean `μ = Σ i α_i`, including the geometric tail.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Number of slots stored explicitly; slots beyond this use the
    /// geometric tail model.
    pub fn horizon(&self) -> usize {
        self.pmf.len()
    }

    /// Residual mass `P(X > horizon)` carried by the geometric tail.
    pub fn tail_mass(&self) -> f64 {
        self.tail_mass
    }

    /// Per-slot hazard of the geometric tail.
    pub fn tail_hazard(&self) -> f64 {
        self.tail_hazard
    }

    /// Human-readable provenance of this pmf (e.g. `"Weibull(40, 3)"`).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The explicitly stored masses `α_1..=α_horizon`.
    pub fn masses(&self) -> &[f64] {
        &self.pmf
    }

    /// Collects the first `n` hazards `β_1..=β_n` into a vector.
    pub fn hazards(&self, n: usize) -> Vec<f64> {
        (1..=n).map(|i| self.hazard(i)).collect()
    }

    /// The smallest slot with positive arrival probability.
    pub fn min_support(&self) -> usize {
        self.pmf
            .iter()
            .position(|&m| m > 0.0)
            .map(|i| i + 1)
            .unwrap_or(self.pmf.len() + 1)
    }

    /// Overrides the provenance label (builder-style).
    #[must_use]
    pub fn labeled(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_pmf_normalizes_and_computes_mean() {
        let pmf = SlotPmf::from_pmf(vec![0.6, 0.4]).unwrap();
        assert!((pmf.pmf(1) - 0.6).abs() < 1e-12);
        assert!((pmf.pmf(2) - 0.4).abs() < 1e-12);
        assert_eq!(pmf.pmf(3), 0.0);
        assert!((pmf.mean() - 1.4).abs() < 1e-12);
        assert_eq!(pmf.horizon(), 2);
    }

    #[test]
    fn from_pmf_rejects_bad_inputs() {
        assert!(matches!(
            SlotPmf::from_pmf(vec![]),
            Err(DistError::EmptyPmf)
        ));
        assert!(matches!(
            SlotPmf::from_pmf(vec![0.5, -0.1]),
            Err(DistError::InvalidMass { index: 1, .. })
        ));
        assert!(matches!(
            SlotPmf::from_pmf(vec![0.5, 0.2]),
            Err(DistError::NotNormalizable { .. })
        ));
        assert!(matches!(
            SlotPmf::from_pmf(vec![0.0, 0.0]),
            Err(DistError::EmptyPmf)
        ));
    }

    #[test]
    fn hazard_matches_definition() {
        let pmf = SlotPmf::from_pmf(vec![0.2, 0.3, 0.5]).unwrap();
        // β1 = 0.2; β2 = 0.3/0.8; β3 = 0.5/0.5 = 1.
        assert!((pmf.hazard(1) - 0.2).abs() < 1e-12);
        assert!((pmf.hazard(2) - 0.375).abs() < 1e-12);
        assert!((pmf.hazard(3) - 1.0).abs() < 1e-12);
        // Exhausted support → hazard 1.
        assert_eq!(pmf.hazard(4), 1.0);
    }

    #[test]
    fn survival_and_cdf_are_complementary() {
        let pmf = SlotPmf::from_pmf(vec![0.25, 0.25, 0.25, 0.25]).unwrap();
        for slot in 0..8 {
            assert!((pmf.cdf(slot) + pmf.survival(slot) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn geometric_tail_is_consistent() {
        // Head of 0.5 at slot 1, tail mass 0.5 with hazard 0.25.
        let pmf = SlotPmf::with_tail(vec![0.5], 0.5, 0.25, "test".into()).unwrap();
        assert!((pmf.pmf(2) - 0.5 * 0.25).abs() < 1e-12);
        assert!((pmf.pmf(3) - 0.5 * 0.25 * 0.75).abs() < 1e-12);
        assert!((pmf.survival(3) - 0.5 * 0.75 * 0.75).abs() < 1e-12);
        assert!((pmf.hazard(2) - 0.25).abs() < 1e-12);
        assert!((pmf.hazard(100) - 0.25).abs() < 1e-12);
        // Mean = 1·0.5 + 0.5·(1 + 1/0.25) = 0.5 + 2.5 = 3.
        assert!((pmf.mean() - 3.0).abs() < 1e-12);
        // The mass in the pmf plus the tail telescopes to 1.
        let head: f64 = (1..=200).map(|i| pmf.pmf(i)).sum();
        assert!((head + pmf.survival(200) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn with_tail_validates_tail_parameters() {
        assert!(SlotPmf::with_tail(vec![0.5], 0.5, 0.0, "bad".into()).is_err());
        assert!(SlotPmf::with_tail(vec![0.5], 0.5, 1.5, "bad".into()).is_err());
        assert!(SlotPmf::with_tail(vec![0.5], -0.1, 0.5, "bad".into()).is_err());
        // Zero tail mass ignores the hazard.
        assert!(SlotPmf::with_tail(vec![1.0], 0.0, 0.7, "ok".into()).is_ok());
    }

    #[test]
    fn from_hazards_round_trips() {
        let hazards = [0.1, 0.5, 0.9, 1.0];
        let pmf = SlotPmf::from_hazards(&hazards).unwrap();
        for (i, &h) in hazards.iter().enumerate() {
            assert!((pmf.hazard(i + 1) - h).abs() < 1e-12, "slot {}", i + 1);
        }
        // All mass is inside: survival(4) = 0.
        assert!(pmf.survival(4).abs() < 1e-12);
    }

    #[test]
    fn from_hazards_keeps_tail_when_hazards_stop_short() {
        let pmf = SlotPmf::from_hazards(&[0.0, 0.0, 0.25]).unwrap();
        // Tail continues with hazard 0.25 forever.
        assert!((pmf.hazard(10) - 0.25).abs() < 1e-12);
        // μ = 2 + 1/0.25 = 6 (first arrival ≥ 3, geometric thereafter).
        assert!((pmf.mean() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn from_hazards_rejects_out_of_range() {
        assert!(SlotPmf::from_hazards(&[]).is_err());
        assert!(SlotPmf::from_hazards(&[0.5, 1.2]).is_err());
        assert!(SlotPmf::from_hazards(&[-0.5]).is_err());
    }

    #[test]
    fn min_support_skips_leading_zeros() {
        let pmf = SlotPmf::from_pmf(vec![0.0, 0.0, 1.0]).unwrap();
        assert_eq!(pmf.min_support(), 3);
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn pmf_slot_zero_panics() {
        let pmf = SlotPmf::from_pmf(vec![1.0]).unwrap();
        let _ = pmf.pmf(0);
    }

    #[test]
    fn labeled_overrides_label() {
        let pmf = SlotPmf::from_pmf(vec![1.0]).unwrap().labeled("unit gap");
        assert_eq!(pmf.label(), "unit gap");
    }
}
