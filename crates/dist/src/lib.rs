//! Inter-arrival-time distributions and their slotted discretizations.
//!
//! The paper models events at a point of interest (PoI) as a *general renewal
//! process*: the times `X` between consecutive events are i.i.d. draws from an
//! arbitrary distribution. Time is slotted, so every continuous distribution
//! is ultimately consumed through its **slot pmf**
//! `α_i = F(i) − F(i−1)` and the **per-slot conditional probability (hazard)**
//! `β_i = α_i / (1 − F(i−1))` — the probability that the first event after a
//! renewal lands in slot `i` given that it has not occurred in slots
//! `1..=i−1`.
//!
//! This crate provides:
//!
//! * the [`InterArrival`] trait for continuous inter-arrival distributions,
//!   with implementations for the distributions used in the paper
//!   ([`Weibull`], [`Pareto`], [`Exponential`]) plus several more that are
//!   useful for testing and ablations ([`Erlang`], [`UniformArrival`],
//!   [`Deterministic`], [`HyperExponential`]);
//! * [`SlotPmf`], the discretized representation with explicit tail handling,
//!   produced by [`Discretizer`];
//! * exact samplers over slot gaps ([`SlotSampler`], backed by a Walker
//!   [`AliasTable`]);
//! * [`MarkovEvents`], the two-state Markov event chain of Jaggi et al.
//!   re-expressed as a renewal process (used by the paper's Fig. 5).
//!
//! # Example
//!
//! ```
//! use evcap_dist::{Discretizer, Weibull};
//!
//! # fn main() -> Result<(), evcap_dist::DistError> {
//! let weibull = Weibull::new(40.0, 3.0)?;
//! let pmf = Discretizer::new().discretize(&weibull)?;
//! // The hazard of a Weibull with shape > 1 is increasing.
//! assert!(pmf.hazard(20) < pmf.hazard(40));
//! // The discrete mean is close to the continuous mean 40·Γ(4/3) ≈ 35.7.
//! assert!((pmf.mean() - 35.7).abs() < 1.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

mod alias;
mod continuous;
mod discretize;
mod empirical;
mod error;
mod markov;
mod sampler;
mod slot_pmf;

pub use alias::AliasTable;
pub use continuous::{
    Deterministic, Erlang, Exponential, HyperExponential, InterArrival, LogNormal, Pareto,
    UniformArrival, Weibull,
};
pub use discretize::Discretizer;
pub use empirical::EmpiricalGaps;
pub use error::DistError;
pub use markov::MarkovEvents;
pub use sampler::SlotSampler;
pub use slot_pmf::SlotPmf;

/// Convenience alias for results in this crate.
pub type Result<T, E = DistError> = std::result::Result<T, E>;
