//! Continuous inter-arrival-time distributions.
//!
//! All distributions here describe a positive random variable `X`, the time
//! between two consecutive events of the renewal process. They are consumed
//! through [`InterArrival::cdf`] by the [`Discretizer`](crate::Discretizer),
//! which turns them into a slotted pmf.

use std::fmt;

use crate::error::{require_positive, require_probability};
use crate::{DistError, Result};

/// A continuous distribution of inter-arrival times on `(0, ∞)`.
///
/// Implementors must provide a valid cumulative distribution function:
/// non-decreasing, with `cdf(x) = 0` for `x ≤ 0` and `cdf(x) → 1` as
/// `x → ∞`.
///
/// # Example
///
/// ```
/// use evcap_dist::{Exponential, InterArrival};
///
/// # fn main() -> Result<(), evcap_dist::DistError> {
/// let exp = Exponential::new(0.1)?;
/// assert!((exp.cdf(10.0) - (1.0 - (-1.0f64).exp())).abs() < 1e-12);
/// assert_eq!(exp.continuous_mean(), Some(10.0));
/// # Ok(())
/// # }
/// ```
pub trait InterArrival: fmt::Debug {
    /// Cumulative distribution function `P(X ≤ x)`.
    fn cdf(&self, x: f64) -> f64;

    /// The distribution's mean, when it exists in closed form.
    ///
    /// Returns `None` when the mean is infinite or has no closed form; the
    /// discrete mean of the [`SlotPmf`](crate::SlotPmf) is always available
    /// and is what the activation policies use.
    fn continuous_mean(&self) -> Option<f64> {
        None
    }

    /// A short human-readable label for reports and plots.
    fn label(&self) -> String;
}

/// Weibull distribution `W(scale η1, shape η2)` with pdf
/// `f(x) = (η2/η1)(x/η1)^{η2−1} exp(−(x/η1)^{η2})`.
///
/// The paper's reference workload is `W(40, 3)`: an increasing-hazard
/// distribution whose events concentrate around 36 slots apart, which makes a
/// clearly identifiable "hot region" for the activation policies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Weibull {
    scale: f64,
    shape: f64,
}

impl Weibull {
    /// Creates a Weibull distribution with the given scale `η1 > 0` and shape
    /// `η2 > 0`.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::InvalidParameter`] if either parameter is not a
    /// finite positive number.
    pub fn new(scale: f64, shape: f64) -> Result<Self> {
        Ok(Self {
            scale: require_positive("scale", scale)?,
            shape: require_positive("shape", shape)?,
        })
    }

    /// The scale parameter `η1`.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// The shape parameter `η2`.
    pub fn shape(&self) -> f64 {
        self.shape
    }
}

impl InterArrival for Weibull {
    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            -(-(x / self.scale).powf(self.shape)).exp_m1()
        }
    }

    fn continuous_mean(&self) -> Option<f64> {
        Some(self.scale * gamma(1.0 + 1.0 / self.shape))
    }

    fn label(&self) -> String {
        format!("Weibull({}, {})", self.scale, self.shape)
    }
}

/// Pareto distribution `P(shape γ1, scale γ2)` with pdf
/// `f(x) = γ1 γ2^{γ1} / x^{γ1+1}` for `x ≥ γ2`.
///
/// The paper's heavy-tailed workload is `P(2, 10)`: no event can arrive within
/// `γ2 = 10` slots of the previous one (a natural "cooling region"), after
/// which the hazard *decreases* — the opposite memory structure from Weibull.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pareto {
    shape: f64,
    scale: f64,
}

impl Pareto {
    /// Creates a Pareto distribution with tail exponent `γ1 > 0` and minimum
    /// value `γ2 > 0`.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::InvalidParameter`] if either parameter is not a
    /// finite positive number.
    pub fn new(shape: f64, scale: f64) -> Result<Self> {
        Ok(Self {
            shape: require_positive("shape", shape)?,
            scale: require_positive("scale", scale)?,
        })
    }

    /// The tail exponent `γ1`.
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// The minimum value `γ2`.
    pub fn scale(&self) -> f64 {
        self.scale
    }
}

impl InterArrival for Pareto {
    fn cdf(&self, x: f64) -> f64 {
        if x <= self.scale {
            0.0
        } else {
            1.0 - (self.scale / x).powf(self.shape)
        }
    }

    fn continuous_mean(&self) -> Option<f64> {
        if self.shape > 1.0 {
            Some(self.shape * self.scale / (self.shape - 1.0))
        } else {
            None
        }
    }

    fn label(&self) -> String {
        format!("Pareto({}, {})", self.shape, self.scale)
    }
}

/// Exponential distribution with rate `λ`; the discretized renewal process is
/// the memoryless (geometric) arrival process: every `β_i` is identical, so no
/// activation policy can exploit memory. Used as a control in tests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Creates an exponential distribution with rate `λ > 0`.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::InvalidParameter`] if `rate` is not a finite
    /// positive number.
    pub fn new(rate: f64) -> Result<Self> {
        Ok(Self {
            rate: require_positive("rate", rate)?,
        })
    }

    /// The rate parameter `λ`.
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

impl InterArrival for Exponential {
    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            -(-self.rate * x).exp_m1()
        }
    }

    fn continuous_mean(&self) -> Option<f64> {
        Some(1.0 / self.rate)
    }

    fn label(&self) -> String {
        format!("Exponential({})", self.rate)
    }
}

/// Erlang distribution: the sum of `k` i.i.d. exponentials of rate `λ`.
///
/// An increasing-hazard alternative to Weibull with an exactly computable CDF
/// (a finite Poisson sum), useful for cross-checking discretization accuracy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Erlang {
    stages: u32,
    rate: f64,
}

impl Erlang {
    /// Creates an Erlang distribution with `stages ≥ 1` exponential stages of
    /// rate `λ > 0`.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::InvalidParameter`] if `stages` is zero or `rate`
    /// is not a finite positive number.
    pub fn new(stages: u32, rate: f64) -> Result<Self> {
        if stages == 0 {
            return Err(DistError::InvalidParameter {
                name: "stages",
                value: 0.0,
                expected: "an integer >= 1",
            });
        }
        Ok(Self {
            stages,
            rate: require_positive("rate", rate)?,
        })
    }

    /// The number of exponential stages `k`.
    pub fn stages(&self) -> u32 {
        self.stages
    }

    /// The per-stage rate `λ`.
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

impl InterArrival for Erlang {
    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        // P(X <= x) = 1 − Σ_{n=0}^{k−1} e^{−λx} (λx)^n / n!
        let lx = self.rate * x;
        let mut term = (-lx).exp();
        let mut sum = term;
        for n in 1..self.stages {
            term *= lx / n as f64;
            sum += term;
        }
        (1.0 - sum).clamp(0.0, 1.0)
    }

    fn continuous_mean(&self) -> Option<f64> {
        Some(self.stages as f64 / self.rate)
    }

    fn label(&self) -> String {
        format!("Erlang({}, {})", self.stages, self.rate)
    }
}

/// Uniform inter-arrival times on `[lo, hi]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UniformArrival {
    lo: f64,
    hi: f64,
}

impl UniformArrival {
    /// Creates a uniform distribution on `[lo, hi]` with `0 ≤ lo < hi`.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::InvalidParameter`] if the interval is empty or
    /// not finite, or if `lo` is negative.
    pub fn new(lo: f64, hi: f64) -> Result<Self> {
        if !lo.is_finite() || lo < 0.0 {
            return Err(DistError::InvalidParameter {
                name: "lo",
                value: lo,
                expected: "a finite value >= 0",
            });
        }
        if !hi.is_finite() || hi <= lo {
            return Err(DistError::InvalidParameter {
                name: "hi",
                value: hi,
                expected: "a finite value > lo",
            });
        }
        Ok(Self { lo, hi })
    }
}

impl InterArrival for UniformArrival {
    fn cdf(&self, x: f64) -> f64 {
        ((x - self.lo) / (self.hi - self.lo)).clamp(0.0, 1.0)
    }

    fn continuous_mean(&self) -> Option<f64> {
        Some(0.5 * (self.lo + self.hi))
    }

    fn label(&self) -> String {
        format!("Uniform({}, {})", self.lo, self.hi)
    }
}

/// Deterministic inter-arrival times: the next event is always exactly
/// `period` after the previous one. The extreme of exploitable memory: an
/// optimal sensor activates only in the arrival slot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Deterministic {
    period: f64,
}

impl Deterministic {
    /// Creates a deterministic inter-arrival time of `period > 0`.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::InvalidParameter`] if `period` is not a finite
    /// positive number.
    pub fn new(period: f64) -> Result<Self> {
        Ok(Self {
            period: require_positive("period", period)?,
        })
    }

    /// The fixed inter-arrival time.
    pub fn period(&self) -> f64 {
        self.period
    }
}

impl InterArrival for Deterministic {
    fn cdf(&self, x: f64) -> f64 {
        if x >= self.period {
            1.0
        } else {
            0.0
        }
    }

    fn continuous_mean(&self) -> Option<f64> {
        Some(self.period)
    }

    fn label(&self) -> String {
        format!("Deterministic({})", self.period)
    }
}

/// Two-phase hyper-exponential distribution: with probability `p` the arrival
/// is `Exponential(rate1)`, otherwise `Exponential(rate2)`.
///
/// A decreasing-hazard (DFR) distribution with a light implementation, useful
/// for exercising the hazard-sorting branch of the greedy policy (Remark 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HyperExponential {
    p: f64,
    rate1: f64,
    rate2: f64,
}

impl HyperExponential {
    /// Creates a two-phase hyper-exponential distribution.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::InvalidParameter`] if `p` is not a probability or
    /// either rate is not a finite positive number.
    pub fn new(p: f64, rate1: f64, rate2: f64) -> Result<Self> {
        Ok(Self {
            p: require_probability("p", p)?,
            rate1: require_positive("rate1", rate1)?,
            rate2: require_positive("rate2", rate2)?,
        })
    }
}

impl InterArrival for HyperExponential {
    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            self.p * -(-self.rate1 * x).exp_m1() + (1.0 - self.p) * -(-self.rate2 * x).exp_m1()
        }
    }

    fn continuous_mean(&self) -> Option<f64> {
        Some(self.p / self.rate1 + (1.0 - self.p) / self.rate2)
    }

    fn label(&self) -> String {
        format!("HyperExp({}, {}, {})", self.p, self.rate1, self.rate2)
    }
}

/// Log-normal inter-arrival times: `ln X ~ N(mu, sigma²)`.
///
/// A right-skewed, non-monotone-hazard distribution common in empirical
/// event logs (e.g. human activity gaps); its hazard rises to a peak and
/// then decays, exercising both branches of the greedy allocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a log-normal distribution with log-mean `mu` (any finite
    /// value) and log-standard-deviation `sigma > 0`.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::InvalidParameter`] if `mu` is not finite or
    /// `sigma` is not a finite positive number.
    pub fn new(mu: f64, sigma: f64) -> Result<Self> {
        if !mu.is_finite() {
            return Err(DistError::InvalidParameter {
                name: "mu",
                value: mu,
                expected: "a finite log-mean",
            });
        }
        Ok(Self {
            mu,
            sigma: require_positive("sigma", sigma)?,
        })
    }

    /// Constructs from the desired *linear* mean and coefficient of
    /// variation (`cv = std/mean`), a more intuitive parameterization.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::InvalidParameter`] if either argument is not a
    /// finite positive number.
    pub fn from_mean_cv(mean: f64, cv: f64) -> Result<Self> {
        let mean = require_positive("mean", mean)?;
        let cv = require_positive("cv", cv)?;
        let sigma2 = (1.0 + cv * cv).ln();
        Self::new(mean.ln() - 0.5 * sigma2, sigma2.sqrt())
    }
}

impl InterArrival for LogNormal {
    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            let z = (x.ln() - self.mu) / (self.sigma * std::f64::consts::SQRT_2);
            (0.5 * (1.0 + erf(z))).clamp(0.0, 1.0)
        }
    }

    fn continuous_mean(&self) -> Option<f64> {
        Some((self.mu + 0.5 * self.sigma * self.sigma).exp())
    }

    fn label(&self) -> String {
        format!("LogNormal(μ={}, σ={})", self.mu, self.sigma)
    }
}

/// Error function via the Abramowitz–Stegun 7.1.26 rational approximation
/// (absolute error < 1.5e-7 — ample for slot-level discretization).
fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    const A1: f64 = 0.254_829_592;
    const A2: f64 = -0.284_496_736;
    const A3: f64 = 1.421_413_741;
    const A4: f64 = -1.453_152_027;
    const A5: f64 = 1.061_405_429;
    const P: f64 = 0.327_591_1;
    let t = 1.0 / (1.0 + P * x);
    let poly = ((((A5 * t + A4) * t + A3) * t + A2) * t + A1) * t;
    sign * (1.0 - poly * (-x * x).exp())
}

/// Lanczos approximation of the gamma function, accurate to ~1e-13 on the
/// positive reals we use (shape parameters near 1).
fn gamma(x: f64) -> f64 {
    // g = 7, n = 9 Lanczos coefficients.
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_81,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        std::f64::consts::PI / ((std::f64::consts::PI * x).sin() * gamma(1.0 - x))
    } else {
        let x = x - 1.0;
        let mut a = COEF[0];
        let t = x + G + 0.5;
        for (i, &c) in COEF.iter().enumerate().skip(1) {
            a += c / (x + i as f64);
        }
        (2.0 * std::f64::consts::PI).sqrt() * t.powf(x + 0.5) * (-t).exp() * a
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn gamma_matches_known_values() {
        assert_close(gamma(1.0), 1.0, 1e-10);
        assert_close(gamma(2.0), 1.0, 1e-10);
        assert_close(gamma(5.0), 24.0, 1e-8);
        assert_close(gamma(0.5), std::f64::consts::PI.sqrt(), 1e-10);
    }

    #[test]
    fn weibull_cdf_and_mean() {
        let w = Weibull::new(40.0, 3.0).unwrap();
        assert_eq!(w.cdf(0.0), 0.0);
        assert_eq!(w.cdf(-1.0), 0.0);
        assert_close(w.cdf(40.0), 1.0 - (-1.0f64).exp(), 1e-12);
        // 40 * Γ(4/3) ≈ 35.7192.
        assert_close(w.continuous_mean().unwrap(), 35.7192, 1e-3);
    }

    #[test]
    fn weibull_shape_one_is_exponential() {
        let w = Weibull::new(10.0, 1.0).unwrap();
        let e = Exponential::new(0.1).unwrap();
        for x in [0.5, 1.0, 5.0, 20.0, 100.0] {
            assert_close(w.cdf(x), e.cdf(x), 1e-12);
        }
    }

    #[test]
    fn weibull_rejects_bad_parameters() {
        assert!(Weibull::new(0.0, 3.0).is_err());
        assert!(Weibull::new(40.0, -1.0).is_err());
        assert!(Weibull::new(f64::NAN, 3.0).is_err());
    }

    #[test]
    fn pareto_cdf_and_mean() {
        let p = Pareto::new(2.0, 10.0).unwrap();
        assert_eq!(p.cdf(10.0), 0.0);
        assert_eq!(p.cdf(5.0), 0.0);
        assert_close(p.cdf(20.0), 0.75, 1e-12);
        assert_close(p.continuous_mean().unwrap(), 20.0, 1e-12);
    }

    #[test]
    fn pareto_heavy_tail_has_no_mean() {
        let p = Pareto::new(1.0, 10.0).unwrap();
        assert_eq!(p.continuous_mean(), None);
    }

    #[test]
    fn erlang_one_stage_is_exponential() {
        let er = Erlang::new(1, 0.25).unwrap();
        let ex = Exponential::new(0.25).unwrap();
        for x in [0.1, 1.0, 4.0, 10.0] {
            assert_close(er.cdf(x), ex.cdf(x), 1e-12);
        }
    }

    #[test]
    fn erlang_mean_and_monotone_cdf() {
        let er = Erlang::new(4, 0.1).unwrap();
        assert_close(er.continuous_mean().unwrap(), 40.0, 1e-12);
        let mut last = 0.0;
        for i in 1..200 {
            let c = er.cdf(i as f64);
            assert!(c >= last);
            last = c;
        }
        assert!(last > 0.99);
    }

    #[test]
    fn erlang_rejects_zero_stages() {
        assert!(Erlang::new(0, 1.0).is_err());
    }

    #[test]
    fn uniform_cdf() {
        let u = UniformArrival::new(10.0, 20.0).unwrap();
        assert_eq!(u.cdf(5.0), 0.0);
        assert_close(u.cdf(15.0), 0.5, 1e-12);
        assert_eq!(u.cdf(25.0), 1.0);
        assert_close(u.continuous_mean().unwrap(), 15.0, 1e-12);
    }

    #[test]
    fn uniform_rejects_empty_interval() {
        assert!(UniformArrival::new(5.0, 5.0).is_err());
        assert!(UniformArrival::new(-1.0, 5.0).is_err());
    }

    #[test]
    fn deterministic_is_a_step() {
        let d = Deterministic::new(7.0).unwrap();
        assert_eq!(d.cdf(6.999), 0.0);
        assert_eq!(d.cdf(7.0), 1.0);
        assert_close(d.continuous_mean().unwrap(), 7.0, 1e-12);
    }

    #[test]
    fn hyperexp_mixes_cdfs() {
        let h = HyperExponential::new(0.3, 1.0, 0.01).unwrap();
        let e1 = Exponential::new(1.0).unwrap();
        let e2 = Exponential::new(0.01).unwrap();
        for x in [0.5, 2.0, 50.0] {
            assert_close(h.cdf(x), 0.3 * e1.cdf(x) + 0.7 * e2.cdf(x), 1e-12);
        }
        assert_close(h.continuous_mean().unwrap(), 0.3 + 70.0, 1e-12);
    }

    #[test]
    fn erf_matches_known_values() {
        assert_close(erf(0.0), 0.0, 1e-8);
        assert_close(erf(1.0), 0.842_700_79, 2e-7);
        assert_close(erf(-1.0), -0.842_700_79, 2e-7);
        assert_close(erf(2.0), 0.995_322_27, 2e-7);
        assert!(erf(6.0) > 0.999_999);
    }

    #[test]
    fn lognormal_cdf_and_mean() {
        let ln = LogNormal::new(0.0, 1.0).unwrap();
        // Median of LogNormal(0, 1) is e^0 = 1.
        assert_close(ln.cdf(1.0), 0.5, 1e-7);
        assert_eq!(ln.cdf(0.0), 0.0);
        assert_close(ln.continuous_mean().unwrap(), (0.5f64).exp(), 1e-12);
    }

    #[test]
    fn lognormal_from_mean_cv_round_trips() {
        let ln = LogNormal::from_mean_cv(30.0, 0.5).unwrap();
        assert_close(ln.continuous_mean().unwrap(), 30.0, 1e-9);
    }

    #[test]
    fn lognormal_rejects_bad_parameters() {
        assert!(LogNormal::new(f64::NAN, 1.0).is_err());
        assert!(LogNormal::new(0.0, 0.0).is_err());
        assert!(LogNormal::from_mean_cv(-1.0, 0.5).is_err());
    }

    #[test]
    fn labels_are_descriptive() {
        assert_eq!(Weibull::new(40.0, 3.0).unwrap().label(), "Weibull(40, 3)");
        assert_eq!(Pareto::new(2.0, 10.0).unwrap().label(), "Pareto(2, 10)");
    }
}
