//! The two-state Markov event chain of Jaggi et al., as a renewal process.
//!
//! The paper's Fig. 5 compares the clustering policy against π_EBCW on events
//! driven by a two-state Markov chain with `a = P(event | event)` and
//! `b = P(no event | no event)`. Section VI observes that such a chain is a
//! renewal process when viewed from the last event: the gap `X` to the next
//! event satisfies
//!
//! * `P(X = 1) = a`,
//! * `P(X = k) = (1 − a)·b^{k−2}·(1 − b)` for `k ≥ 2`,
//!
//! i.e. one Bernoulli(a) trial followed, on failure, by a geometric wait with
//! hazard `1 − b`. This module performs that transform exactly (the geometric
//! tail of [`SlotPmf`] represents the `k ≥ 2` branch with *zero* truncation
//! error).

use crate::error::require_probability;
use crate::slot_pmf::SlotPmf;
use crate::{DistError, Result};

/// A two-state Markov event chain, parameterized as in Jaggi et al.:
/// `a = P(1|1)` (event follows event) and `b = P(0|0)` (gap follows gap).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MarkovEvents {
    a: f64,
    b: f64,
}

impl MarkovEvents {
    /// Creates the chain with transition probabilities `a = P(1|1)` and
    /// `b = P(0|0)`.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::InvalidParameter`] if either parameter is outside
    /// `[0, 1]`, or if `a < 1` and `b = 1` (the chain would then get absorbed
    /// in the no-event state and the inter-arrival time would be improper).
    pub fn new(a: f64, b: f64) -> Result<Self> {
        let a = require_probability("a", a)?;
        let b = require_probability("b", b)?;
        if a < 1.0 && b >= 1.0 {
            return Err(DistError::InvalidParameter {
                name: "b",
                value: b,
                expected: "a value < 1 whenever a < 1 (otherwise events die out)",
            });
        }
        Ok(Self { a, b })
    }

    /// `P(event in slot t+1 | event in slot t)`.
    pub fn a(&self) -> f64 {
        self.a
    }

    /// `P(no event in slot t+1 | no event in slot t)`.
    pub fn b(&self) -> f64 {
        self.b
    }

    /// Long-run fraction of slots containing an event:
    /// `(1 − b) / (2 − a − b)` (or 1 for the degenerate all-events chain).
    pub fn stationary_event_rate(&self) -> f64 {
        let denom = 2.0 - self.a - self.b;
        if denom <= 0.0 {
            // a = b = 1: the chain freezes in its initial state; by the
            // paper's convention an event occurred at slot 0, so every slot
            // has an event.
            1.0
        } else {
            (1.0 - self.b) / denom
        }
    }

    /// Mean inter-arrival time `μ = a + (1 − a)(1 + 1/(1 − b))`.
    pub fn mean_gap(&self) -> f64 {
        if self.a >= 1.0 {
            1.0
        } else {
            self.a + (1.0 - self.a) * (1.0 + 1.0 / (1.0 - self.b))
        }
    }

    /// The exact renewal representation: `α_1 = a` with a geometric tail of
    /// hazard `1 − b` for `k ≥ 2`.
    ///
    /// # Errors
    ///
    /// Construction of the underlying [`SlotPmf`] cannot fail for validated
    /// parameters; the `Result` is kept for API uniformity.
    pub fn to_slot_pmf(&self) -> Result<SlotPmf> {
        let label = format!("Markov(a={}, b={})", self.a, self.b);
        if self.a >= 1.0 {
            return Ok(SlotPmf::from_pmf(vec![1.0])?.labeled(label));
        }
        // Head stores α_1 = a; tail mass (1 − a) has hazard (1 − b) starting
        // at slot 2 — exactly the geometric branch.
        SlotPmf::with_tail(vec![self.a], 1.0 - self.a, 1.0 - self.b, label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validates_parameters() {
        assert!(MarkovEvents::new(0.5, 0.5).is_ok());
        assert!(MarkovEvents::new(1.1, 0.5).is_err());
        assert!(MarkovEvents::new(0.5, -0.1).is_err());
        // b = 1 with a < 1 is improper…
        assert!(MarkovEvents::new(0.5, 1.0).is_err());
        // …but fine when a = 1 (gap state unreachable).
        assert!(MarkovEvents::new(1.0, 1.0).is_ok());
    }

    #[test]
    fn renewal_pmf_matches_chain_probabilities() {
        let chain = MarkovEvents::new(0.3, 0.6).unwrap();
        let pmf = chain.to_slot_pmf().unwrap();
        assert!((pmf.pmf(1) - 0.3).abs() < 1e-12);
        // α_2 = (1 − a)(1 − b).
        assert!((pmf.pmf(2) - 0.7 * 0.4).abs() < 1e-12);
        // α_3 = (1 − a)·b·(1 − b).
        assert!((pmf.pmf(3) - 0.7 * 0.6 * 0.4).abs() < 1e-12);
        // Hazards: β_1 = a, β_k = 1 − b for k ≥ 2.
        assert!((pmf.hazard(1) - 0.3).abs() < 1e-12);
        assert!((pmf.hazard(2) - 0.4).abs() < 1e-12);
        assert!((pmf.hazard(17) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn mean_gap_matches_pmf_mean() {
        for (a, b) in [(0.3, 0.6), (0.8, 0.8), (0.1, 0.2), (0.9, 0.1)] {
            let chain = MarkovEvents::new(a, b).unwrap();
            let pmf = chain.to_slot_pmf().unwrap();
            assert!(
                (chain.mean_gap() - pmf.mean()).abs() < 1e-9,
                "a={a} b={b}: {} vs {}",
                chain.mean_gap(),
                pmf.mean()
            );
        }
    }

    #[test]
    fn stationary_rate_is_reciprocal_of_mean_gap() {
        for (a, b) in [(0.3, 0.6), (0.8, 0.8), (0.55, 0.2)] {
            let chain = MarkovEvents::new(a, b).unwrap();
            assert!(
                (chain.stationary_event_rate() - 1.0 / chain.mean_gap()).abs() < 1e-12,
                "a={a} b={b}"
            );
        }
    }

    #[test]
    fn degenerate_always_event_chain() {
        let chain = MarkovEvents::new(1.0, 1.0).unwrap();
        assert_eq!(chain.mean_gap(), 1.0);
        assert_eq!(chain.stationary_event_rate(), 1.0);
        let pmf = chain.to_slot_pmf().unwrap();
        assert!((pmf.pmf(1) - 1.0).abs() < 1e-12);
    }
}
