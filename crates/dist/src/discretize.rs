//! Slotting a continuous inter-arrival distribution.

use crate::continuous::InterArrival;
use crate::slot_pmf::SlotPmf;
use crate::{DistError, Result};

/// Default survival mass below which the head of the pmf is truncated.
pub const DEFAULT_TAIL_EPS: f64 = 1e-9;

/// Default cap on the number of explicitly stored slots.
pub const DEFAULT_MAX_HORIZON: usize = 65_536;

/// Builder that turns an [`InterArrival`] distribution into a [`SlotPmf`].
///
/// The head of the distribution is stored exactly: `α_i = F(i) − F(i−1)` for
/// `i = 1..=H`, where the horizon `H` is the first slot at which the survival
/// `1 − F(H)` drops below [`tail_eps`](Self::tail_eps) (or
/// [`max_horizon`](Self::max_horizon), whichever comes first). The residual
/// mass is modeled as a geometric tail whose hazard is the distribution's
/// conditional per-slot arrival probability at the horizon, so heavy-tailed
/// distributions like Pareto remain proper and sampleable.
///
/// # Example
///
/// ```
/// use evcap_dist::{Discretizer, Pareto};
///
/// # fn main() -> Result<(), evcap_dist::DistError> {
/// let pareto = Pareto::new(2.0, 10.0)?;
/// let pmf = Discretizer::new().tail_eps(1e-6).discretize(&pareto)?;
/// // No arrival can happen within the scale parameter.
/// assert_eq!(pmf.min_support(), 11);
/// // Discrete mean is close to the continuous mean of 20.
/// assert!((pmf.mean() - 20.0).abs() < 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Discretizer {
    tail_eps: f64,
    max_horizon: usize,
}

impl Default for Discretizer {
    fn default() -> Self {
        Self::new()
    }
}

impl Discretizer {
    /// Creates a discretizer with the default tail tolerance (`1e-9`) and
    /// horizon cap (`65 536` slots).
    pub fn new() -> Self {
        Self {
            tail_eps: DEFAULT_TAIL_EPS,
            max_horizon: DEFAULT_MAX_HORIZON,
        }
    }

    /// Sets the survival mass below which the explicit head is cut off.
    #[must_use]
    pub fn tail_eps(mut self, eps: f64) -> Self {
        self.tail_eps = eps.max(0.0);
        self
    }

    /// Sets the maximum number of explicitly stored slots.
    #[must_use]
    pub fn max_horizon(mut self, horizon: usize) -> Self {
        self.max_horizon = horizon.max(1);
        self
    }

    /// Discretizes `dist` into a [`SlotPmf`].
    ///
    /// # Errors
    ///
    /// Returns [`DistError::DegenerateDiscretization`] if the CDF accumulates
    /// essentially no mass within the horizon budget (e.g. a distribution
    /// whose support starts beyond `max_horizon`).
    pub fn discretize(&self, dist: &dyn InterArrival) -> Result<SlotPmf> {
        let mut masses = Vec::new();
        let mut prev_cdf = 0.0;
        let mut horizon = 0usize;
        while horizon < self.max_horizon {
            horizon += 1;
            let c = dist.cdf(horizon as f64).clamp(0.0, 1.0);
            // Monotonicity guard: a numerically noisy CDF must not produce
            // negative masses.
            let c = c.max(prev_cdf);
            masses.push(c - prev_cdf);
            prev_cdf = c;
            if 1.0 - c <= self.tail_eps {
                break;
            }
        }
        let tail_mass = 1.0 - prev_cdf;
        if prev_cdf <= self.tail_eps.max(1e-12) {
            return Err(DistError::DegenerateDiscretization { horizon });
        }
        let tail_hazard = if tail_mass > 0.0 {
            // Conditional arrival probability in the first slot past the
            // horizon; clamped away from zero so the tail stays proper.
            let next = dist.cdf((horizon + 1) as f64).clamp(prev_cdf, 1.0);
            (((next - prev_cdf) / tail_mass).clamp(0.0, 1.0)).max(1e-12)
        } else {
            1.0
        };
        SlotPmf::with_tail(masses, tail_mass, tail_hazard, dist.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::continuous::{Deterministic, Exponential, Pareto, Weibull};

    #[test]
    fn weibull_discretization_is_tight() {
        let w = Weibull::new(40.0, 3.0).unwrap();
        let pmf = Discretizer::new().discretize(&w).unwrap();
        // All mass is inside the head for this light tail.
        assert!(pmf.tail_mass() <= 1e-9);
        // Discrete mean within half a slot of the continuous mean (the
        // ceil-discretization biases upward by < 1 slot).
        let continuous = w.continuous_mean().unwrap();
        assert!(pmf.mean() > continuous && pmf.mean() < continuous + 1.0);
        // Hazard is increasing over the bulk of the support.
        let h = pmf.hazards(60);
        for i in 1..55 {
            assert!(
                h[i] >= h[i - 1] - 1e-12,
                "hazard must increase at slot {i}: {} vs {}",
                h[i],
                h[i - 1]
            );
        }
    }

    #[test]
    fn exponential_discretizes_to_constant_hazard() {
        let e = Exponential::new(0.05).unwrap();
        let pmf = Discretizer::new().discretize(&e).unwrap();
        let beta = 1.0 - (-0.05f64).exp();
        for slot in [1, 5, 50, 200] {
            assert!((pmf.hazard(slot) - beta).abs() < 1e-9, "slot {slot}");
        }
    }

    #[test]
    fn pareto_keeps_analytic_tail() {
        let p = Pareto::new(2.0, 10.0).unwrap();
        let pmf = Discretizer::new()
            .max_horizon(2_000)
            .discretize(&p)
            .unwrap();
        assert_eq!(pmf.horizon(), 2_000);
        assert!(pmf.tail_mass() > 0.0);
        // Tail hazard matches the analytic conditional probability at H.
        let expected = (p.cdf(2_001.0) - p.cdf(2_000.0)) / (1.0 - p.cdf(2_000.0));
        assert!((pmf.tail_hazard() - expected).abs() < 1e-9);
        // Pareto(2, 10) has mean 20; the discrete mean is within a slot.
        assert!((pmf.mean() - 20.0).abs() < 1.0, "mean {}", pmf.mean());
    }

    #[test]
    fn deterministic_discretizes_to_point_mass() {
        let d = Deterministic::new(7.0).unwrap();
        let pmf = Discretizer::new().discretize(&d).unwrap();
        assert_eq!(pmf.min_support(), 7);
        assert!((pmf.pmf(7) - 1.0).abs() < 1e-12);
        assert!((pmf.mean() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_support_is_rejected() {
        let d = Deterministic::new(100.0).unwrap();
        let result = Discretizer::new().max_horizon(10).discretize(&d);
        assert!(matches!(
            result,
            Err(DistError::DegenerateDiscretization { .. })
        ));
    }

    #[test]
    fn tail_eps_controls_horizon() {
        let w = Weibull::new(40.0, 3.0).unwrap();
        let tight = Discretizer::new().tail_eps(1e-12).discretize(&w).unwrap();
        let loose = Discretizer::new().tail_eps(1e-3).discretize(&w).unwrap();
        assert!(loose.horizon() < tight.horizon());
        // Means still agree closely because the loose tail is modeled.
        assert!((tight.mean() - loose.mean()).abs() < 0.5);
    }
}
