//! Walker's alias method for O(1) sampling from a discrete distribution.

use rand::Rng;

use crate::{DistError, Result};

/// An alias table: samples an index `0..n` proportionally to the weights it
/// was built from, in constant time per draw.
///
/// # Example
///
/// ```
/// use evcap_dist::AliasTable;
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// # fn main() -> Result<(), evcap_dist::DistError> {
/// let table = AliasTable::new(&[1.0, 3.0])?;
/// let mut rng = SmallRng::seed_from_u64(7);
/// let ones = (0..10_000).filter(|_| table.sample(&mut rng) == 1).count();
/// assert!((ones as f64 / 10_000.0 - 0.75).abs() < 0.02);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AliasTable {
    /// Acceptance threshold for each bucket, scaled to [0, 1].
    prob: Vec<f64>,
    /// Alias index used when the threshold test fails.
    alias: Vec<usize>,
}

impl AliasTable {
    /// Builds an alias table from non-negative `weights` (not necessarily
    /// normalized).
    ///
    /// # Errors
    ///
    /// * [`DistError::EmptyPmf`] if `weights` is empty or sums to zero.
    /// * [`DistError::InvalidMass`] if any weight is negative or non-finite.
    pub fn new(weights: &[f64]) -> Result<Self> {
        if weights.is_empty() {
            return Err(DistError::EmptyPmf);
        }
        for (index, &value) in weights.iter().enumerate() {
            if !value.is_finite() || value < 0.0 {
                return Err(DistError::InvalidMass { index, value });
            }
        }
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return Err(DistError::EmptyPmf);
        }
        let n = weights.len();
        let scale = n as f64 / total;
        let mut prob: Vec<f64> = weights.iter().map(|w| w * scale).collect();
        let mut alias = vec![0usize; n];
        let mut small: Vec<usize> = Vec::new();
        let mut large: Vec<usize> = Vec::new();
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            alias[s] = l;
            // Move the excess of the large bucket into the small one.
            prob[l] = (prob[l] + prob[s]) - 1.0;
            if prob[l] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Leftovers are numerically 1.
        for i in small.into_iter().chain(large) {
            prob[i] = 1.0;
        }
        Ok(Self { prob, alias })
    }

    /// Number of buckets in the table.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Returns `true` if the table has no buckets (never constructible via
    /// [`AliasTable::new`], but provided for completeness).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws an index `0..len()` with probability proportional to the
    /// original weights.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let i = rng.random_range(0..self.prob.len());
        if rng.random::<f64>() < self.prob[i] {
            i
        } else {
            self.alias[i]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_invalid_weights() {
        assert!(matches!(AliasTable::new(&[]), Err(DistError::EmptyPmf)));
        assert!(matches!(
            AliasTable::new(&[0.0, 0.0]),
            Err(DistError::EmptyPmf)
        ));
        assert!(matches!(
            AliasTable::new(&[1.0, -1.0]),
            Err(DistError::InvalidMass { index: 1, .. })
        ));
        assert!(AliasTable::new(&[1.0, f64::NAN]).is_err());
    }

    #[test]
    fn single_bucket_always_sampled() {
        let table = AliasTable::new(&[42.0]).unwrap();
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(table.sample(&mut rng), 0);
        }
    }

    #[test]
    fn zero_weight_bucket_never_sampled() {
        let table = AliasTable::new(&[1.0, 0.0, 1.0]).unwrap();
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..10_000 {
            assert_ne!(table.sample(&mut rng), 1);
        }
    }

    #[test]
    fn empirical_frequencies_match_weights() {
        let weights = [0.1, 0.2, 0.3, 0.4];
        let table = AliasTable::new(&weights).unwrap();
        let mut rng = SmallRng::seed_from_u64(3);
        let n = 200_000;
        let mut counts = [0usize; 4];
        for _ in 0..n {
            counts[table.sample(&mut rng)] += 1;
        }
        for (i, &w) in weights.iter().enumerate() {
            let freq = counts[i] as f64 / n as f64;
            assert!((freq - w).abs() < 0.01, "bucket {i}: {freq} vs {w}");
        }
    }
}
