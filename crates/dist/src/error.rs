use std::fmt;

/// Errors produced while constructing or discretizing a distribution.
#[derive(Debug, Clone, PartialEq)]
pub enum DistError {
    /// A distribution parameter was outside its valid domain.
    InvalidParameter {
        /// The offending parameter's name, e.g. `"shape"`.
        name: &'static str,
        /// The value that was supplied.
        value: f64,
        /// Human-readable description of the valid domain.
        expected: &'static str,
    },
    /// A user-supplied pmf was empty.
    EmptyPmf,
    /// A user-supplied pmf contained a negative or non-finite entry.
    InvalidMass {
        /// Zero-based index of the offending entry.
        index: usize,
        /// The offending value.
        value: f64,
    },
    /// A user-supplied pmf did not sum close enough to one to normalize.
    NotNormalizable {
        /// The sum that was observed.
        sum: f64,
    },
    /// Discretization could not make progress (e.g. the CDF never increased
    /// within the horizon budget).
    DegenerateDiscretization {
        /// Horizon at which discretization gave up.
        horizon: usize,
    },
}

impl fmt::Display for DistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistError::InvalidParameter {
                name,
                value,
                expected,
            } => write!(
                f,
                "invalid parameter `{name}` = {value}; expected {expected}"
            ),
            DistError::EmptyPmf => write!(f, "pmf must contain at least one slot"),
            DistError::InvalidMass { index, value } => {
                write!(
                    f,
                    "pmf entry {index} is {value}; expected a finite non-negative value"
                )
            }
            DistError::NotNormalizable { sum } => {
                write!(f, "pmf sums to {sum}; expected a total mass near 1")
            }
            DistError::DegenerateDiscretization { horizon } => {
                write!(
                    f,
                    "cdf accumulated no probability mass within {horizon} slots"
                )
            }
        }
    }
}

impl std::error::Error for DistError {}

/// Validates that `value` is finite and strictly positive.
pub(crate) fn require_positive(name: &'static str, value: f64) -> Result<f64, DistError> {
    if value.is_finite() && value > 0.0 {
        Ok(value)
    } else {
        Err(DistError::InvalidParameter {
            name,
            value,
            expected: "a finite value > 0",
        })
    }
}

/// Validates that `value` lies in the closed unit interval.
pub(crate) fn require_probability(name: &'static str, value: f64) -> Result<f64, DistError> {
    if value.is_finite() && (0.0..=1.0).contains(&value) {
        Ok(value)
    } else {
        Err(DistError::InvalidParameter {
            name,
            value,
            expected: "a probability in [0, 1]",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errors = [
            DistError::InvalidParameter {
                name: "shape",
                value: -1.0,
                expected: "a finite value > 0",
            },
            DistError::EmptyPmf,
            DistError::InvalidMass {
                index: 3,
                value: f64::NAN,
            },
            DistError::NotNormalizable { sum: 0.2 },
            DistError::DegenerateDiscretization { horizon: 10 },
        ];
        for err in errors {
            let text = err.to_string();
            assert!(!text.is_empty());
            assert!(text.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn require_positive_rejects_bad_values() {
        assert!(require_positive("x", 1.0).is_ok());
        assert!(require_positive("x", 0.0).is_err());
        assert!(require_positive("x", -3.0).is_err());
        assert!(require_positive("x", f64::NAN).is_err());
        assert!(require_positive("x", f64::INFINITY).is_err());
    }

    #[test]
    fn require_probability_rejects_bad_values() {
        assert!(require_probability("p", 0.0).is_ok());
        assert!(require_probability("p", 1.0).is_ok());
        assert!(require_probability("p", 1.5).is_err());
        assert!(require_probability("p", -0.1).is_err());
        assert!(require_probability("p", f64::NAN).is_err());
    }
}
