//! Sampling slot gaps from a [`SlotPmf`].

use rand::Rng;

use crate::alias::AliasTable;
use crate::slot_pmf::SlotPmf;
use crate::Result;

/// A sampler of inter-arrival slot gaps, exactly consistent with the
/// [`SlotPmf`] it was built from (head via an alias table, tail via a
/// geometric draw).
///
/// # Example
///
/// ```
/// use evcap_dist::{SlotPmf, SlotSampler};
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// # fn main() -> Result<(), evcap_dist::DistError> {
/// let pmf = SlotPmf::from_pmf(vec![0.6, 0.4])?;
/// let sampler = SlotSampler::new(&pmf)?;
/// let mut rng = SmallRng::seed_from_u64(42);
/// let gap = sampler.sample(&mut rng);
/// assert!(gap == 1 || gap == 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SlotSampler {
    head: AliasTable,
    /// Index in the alias table reserved for the geometric tail, if any.
    tail_bucket: Option<usize>,
    horizon: usize,
    tail_hazard: f64,
}

impl SlotSampler {
    /// Builds a sampler from the pmf.
    ///
    /// # Errors
    ///
    /// Propagates alias-table construction failures (which can only occur if
    /// the pmf was built by bypassing [`SlotPmf`]'s validation).
    pub fn new(pmf: &SlotPmf) -> Result<Self> {
        let mut weights = pmf.masses().to_vec();
        let tail_bucket = if pmf.tail_mass() > 0.0 {
            weights.push(pmf.tail_mass());
            Some(weights.len() - 1)
        } else {
            None
        };
        Ok(Self {
            head: AliasTable::new(&weights)?,
            tail_bucket,
            horizon: pmf.horizon(),
            tail_hazard: pmf.tail_hazard(),
        })
    }

    /// Draws one inter-arrival gap, in slots (`≥ 1`).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let bucket = self.head.sample(rng);
        match self.tail_bucket {
            Some(tail) if bucket == tail => self.horizon + sample_geometric(rng, self.tail_hazard),
            _ => bucket + 1,
        }
    }
}

/// Draws from the geometric distribution on `{1, 2, …}` with success
/// probability `p` via inversion.
fn sample_geometric<R: Rng + ?Sized>(rng: &mut R, p: f64) -> usize {
    if p >= 1.0 {
        return 1;
    }
    // Inversion: k = ceil(ln(U) / ln(1 − p)).
    let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    let k = (u.ln() / (1.0 - p).ln()).ceil();
    if k.is_finite() && k >= 1.0 {
        // Saturate to avoid overflow on astronomically unlikely draws.
        k.min(usize::MAX as f64 / 2.0) as usize
    } else {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::continuous::{Pareto, Weibull};
    use crate::discretize::Discretizer;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn sample_mean(pmf: &SlotPmf, n: usize, seed: u64) -> f64 {
        let sampler = SlotSampler::new(pmf).unwrap();
        let mut rng = SmallRng::seed_from_u64(seed);
        let total: usize = (0..n).map(|_| sampler.sample(&mut rng)).sum();
        total as f64 / n as f64
    }

    #[test]
    fn sample_mean_matches_pmf_mean_weibull() {
        let pmf = Discretizer::new()
            .discretize(&Weibull::new(40.0, 3.0).unwrap())
            .unwrap();
        let mean = sample_mean(&pmf, 100_000, 11);
        assert!((mean - pmf.mean()).abs() < 0.2, "{mean} vs {}", pmf.mean());
    }

    #[test]
    fn sample_mean_matches_pmf_mean_pareto_with_tail() {
        let pmf = Discretizer::new()
            .max_horizon(500)
            .discretize(&Pareto::new(2.0, 10.0).unwrap())
            .unwrap();
        assert!(pmf.tail_mass() > 0.0);
        let mean = sample_mean(&pmf, 300_000, 13);
        assert!((mean - pmf.mean()).abs() < 0.5, "{mean} vs {}", pmf.mean());
    }

    #[test]
    fn samples_respect_min_support() {
        let pmf = Discretizer::new()
            .discretize(&Pareto::new(2.0, 10.0).unwrap())
            .unwrap();
        let sampler = SlotSampler::new(&pmf).unwrap();
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..10_000 {
            assert!(sampler.sample(&mut rng) >= pmf.min_support());
        }
    }

    #[test]
    fn geometric_sampler_mean() {
        let mut rng = SmallRng::seed_from_u64(17);
        let p = 0.2;
        let n = 200_000;
        let total: usize = (0..n).map(|_| sample_geometric(&mut rng, p)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 5.0).abs() < 0.05, "{mean}");
    }

    #[test]
    fn geometric_with_p_one_is_always_one() {
        let mut rng = SmallRng::seed_from_u64(19);
        for _ in 0..100 {
            assert_eq!(sample_geometric(&mut rng, 1.0), 1);
        }
    }
}
