//! Trace-driven inter-arrival distributions.
//!
//! Real deployments rarely know the closed-form law of their events; they
//! have *logs*. [`EmpiricalGaps`] turns a list of observed inter-arrival
//! times into a [`SlotPmf`] so every policy in the workspace can be
//! optimized directly against measured behavior, optionally with a geometric
//! tail fitted past the observed support (observations are always finite;
//! the true distribution may not be).

use crate::slot_pmf::SlotPmf;
use crate::{DistError, Result};

/// A collection of observed inter-arrival times, in slots (fractions are
/// rounded up: an event `2.3` slot-lengths after the previous one lands in
/// slot 3).
#[derive(Debug, Clone, PartialEq)]
pub struct EmpiricalGaps {
    /// Observed gap lengths in slots, each ≥ 1.
    gaps: Vec<usize>,
}

impl EmpiricalGaps {
    /// Collects continuous gap observations (e.g. from timestamps), rounding
    /// each up to a whole slot.
    ///
    /// # Errors
    ///
    /// * [`DistError::EmptyPmf`] if `samples` is empty.
    /// * [`DistError::InvalidMass`] if any sample is non-positive or not
    ///   finite.
    pub fn from_samples(samples: &[f64]) -> Result<Self> {
        if samples.is_empty() {
            return Err(DistError::EmptyPmf);
        }
        let mut gaps = Vec::with_capacity(samples.len());
        for (index, &value) in samples.iter().enumerate() {
            if !value.is_finite() || value <= 0.0 {
                return Err(DistError::InvalidMass { index, value });
            }
            gaps.push(value.ceil() as usize);
        }
        Ok(Self { gaps })
    }

    /// Collects already-slotted gap observations.
    ///
    /// # Errors
    ///
    /// * [`DistError::EmptyPmf`] if `gaps` is empty.
    /// * [`DistError::InvalidMass`] if any gap is zero.
    pub fn from_slot_gaps(gaps: Vec<usize>) -> Result<Self> {
        if gaps.is_empty() {
            return Err(DistError::EmptyPmf);
        }
        if let Some(index) = gaps.iter().position(|&g| g == 0) {
            return Err(DistError::InvalidMass { index, value: 0.0 });
        }
        Ok(Self { gaps })
    }

    /// Derives gaps from a sorted sequence of event slots (the first gap is
    /// measured from slot 0, matching the paper's "an event occurs in
    /// slot 0" convention).
    ///
    /// # Errors
    ///
    /// * [`DistError::EmptyPmf`] if `event_slots` is empty.
    /// * [`DistError::InvalidMass`] if the slots are not strictly
    ///   increasing and ≥ 1.
    pub fn from_event_slots(event_slots: &[u64]) -> Result<Self> {
        if event_slots.is_empty() {
            return Err(DistError::EmptyPmf);
        }
        let mut gaps = Vec::with_capacity(event_slots.len());
        let mut prev = 0u64;
        for (index, &slot) in event_slots.iter().enumerate() {
            if slot <= prev {
                return Err(DistError::InvalidMass {
                    index,
                    value: slot as f64,
                });
            }
            gaps.push((slot - prev) as usize);
            prev = slot;
        }
        Ok(Self { gaps })
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.gaps.len()
    }

    /// Returns `true` if there are no observations (never constructible via
    /// the public constructors; provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.gaps.is_empty()
    }

    /// Sample mean gap, in slots.
    pub fn mean(&self) -> f64 {
        self.gaps.iter().sum::<usize>() as f64 / self.gaps.len() as f64
    }

    /// The largest observed gap.
    pub fn max_gap(&self) -> usize {
        self.gaps.iter().copied().max().unwrap_or(0)
    }

    /// Builds the empirical slot pmf, with `tail_smoothing` controlling what
    /// happens past the largest observation:
    ///
    /// * `None` — the pmf is exactly the histogram (zero mass beyond the
    ///   max observed gap);
    /// * `Some(w)` — a fraction `w ∈ (0, 1)` of one observation's worth of
    ///   mass is moved into a geometric tail whose hazard matches the
    ///   empirical hazard at the largest gap, acknowledging that longer gaps
    ///   than observed are possible.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::InvalidParameter`] if `tail_smoothing` is not in
    /// `(0, 1)`.
    pub fn to_slot_pmf(&self, tail_smoothing: Option<f64>) -> Result<SlotPmf> {
        let n = self.gaps.len() as f64;
        let max = self.max_gap();
        let mut counts = vec![0.0f64; max];
        for &g in &self.gaps {
            counts[g - 1] += 1.0;
        }
        let label = format!("Empirical({} samples)", self.gaps.len());
        match tail_smoothing {
            None => {
                for c in &mut counts {
                    *c /= n;
                }
                SlotPmf::with_tail(counts, 0.0, 1.0, label)
            }
            Some(w) => {
                if !(0.0..1.0).contains(&w) || w <= 0.0 {
                    return Err(DistError::InvalidParameter {
                        name: "tail_smoothing",
                        value: w,
                        expected: "a weight in (0, 1)",
                    });
                }
                // Reserve w observations' worth of probability for the tail.
                let tail_mass = w / n;
                let scale = (1.0 - tail_mass) / n;
                for c in &mut counts {
                    *c *= scale;
                }
                // Tail hazard: empirical conditional arrival probability at
                // the largest gap (at least one observation sits there).
                let at_max = self.gaps.iter().filter(|&&g| g == max).count() as f64;
                let reaching_max = self.gaps.iter().filter(|&&g| g >= max).count() as f64;
                let hazard = (at_max / reaching_max).clamp(1e-6, 1.0 - 1e-6);
                SlotPmf::with_tail(counts, tail_mass, hazard, label)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_pmf_matches_counts() {
        let emp = EmpiricalGaps::from_slot_gaps(vec![2, 2, 3, 5]).unwrap();
        let pmf = emp.to_slot_pmf(None).unwrap();
        assert!((pmf.pmf(2) - 0.5).abs() < 1e-12);
        assert!((pmf.pmf(3) - 0.25).abs() < 1e-12);
        assert!((pmf.pmf(5) - 0.25).abs() < 1e-12);
        assert_eq!(pmf.pmf(4), 0.0);
        assert!((pmf.mean() - 3.0).abs() < 1e-12);
        assert!((emp.mean() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn continuous_samples_round_up() {
        let emp = EmpiricalGaps::from_samples(&[0.2, 1.0, 2.5]).unwrap();
        let pmf = emp.to_slot_pmf(None).unwrap();
        // 0.2 → slot 1, 1.0 → slot 1, 2.5 → slot 3.
        assert!((pmf.pmf(1) - 2.0 / 3.0).abs() < 1e-12);
        assert!((pmf.pmf(3) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn event_slots_to_gaps() {
        let emp = EmpiricalGaps::from_event_slots(&[3, 5, 10]).unwrap();
        // Gaps: 3 (from slot 0), 2, 5.
        assert_eq!(emp.len(), 3);
        assert!((emp.mean() - 10.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn smoothing_adds_a_proper_tail() {
        let emp = EmpiricalGaps::from_slot_gaps(vec![4; 99]).unwrap();
        let pmf = emp.to_slot_pmf(Some(0.5)).unwrap();
        assert!(pmf.tail_mass() > 0.0);
        // The tail holds half an observation's mass.
        assert!((pmf.tail_mass() - 0.5 / 99.0).abs() < 1e-12);
        // Mass still sums to one.
        let head: f64 = (1..=200).map(|i| pmf.pmf(i)).sum();
        assert!((head + pmf.survival(200) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn validation() {
        assert!(matches!(
            EmpiricalGaps::from_samples(&[]),
            Err(DistError::EmptyPmf)
        ));
        assert!(matches!(
            EmpiricalGaps::from_samples(&[1.0, -2.0]),
            Err(DistError::InvalidMass { index: 1, .. })
        ));
        assert!(EmpiricalGaps::from_slot_gaps(vec![0]).is_err());
        assert!(EmpiricalGaps::from_event_slots(&[5, 5]).is_err());
        let emp = EmpiricalGaps::from_slot_gaps(vec![3]).unwrap();
        assert!(emp.to_slot_pmf(Some(1.5)).is_err());
        assert!(emp.to_slot_pmf(Some(0.0)).is_err());
    }

    #[test]
    fn round_trip_through_sampling() {
        use crate::sampler::SlotSampler;
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        // Sample a known pmf, rebuild empirically, and compare hazards.
        let truth = SlotPmf::from_pmf(vec![0.1, 0.4, 0.3, 0.2]).unwrap();
        let sampler = SlotSampler::new(&truth).unwrap();
        let mut rng = SmallRng::seed_from_u64(9);
        let gaps: Vec<usize> = (0..200_000).map(|_| sampler.sample(&mut rng)).collect();
        let emp = EmpiricalGaps::from_slot_gaps(gaps).unwrap();
        let rebuilt = emp.to_slot_pmf(None).unwrap();
        for i in 1..=4 {
            assert!(
                (rebuilt.pmf(i) - truth.pmf(i)).abs() < 0.005,
                "slot {i}: {} vs {}",
                rebuilt.pmf(i),
                truth.pmf(i)
            );
        }
    }
}
