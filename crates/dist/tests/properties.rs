//! Property-based tests of distribution identities.

use evcap_dist::{
    Discretizer, Erlang, Exponential, HyperExponential, InterArrival, LogNormal, MarkovEvents,
    Pareto, SlotPmf, SlotSampler, UniformArrival, Weibull,
};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Checks the identities every proper `SlotPmf` must satisfy.
fn assert_proper(pmf: &SlotPmf, probe_slots: usize) {
    // Mass + tail telescopes to 1.
    let head: f64 = (1..=probe_slots).map(|i| pmf.pmf(i)).sum();
    assert!(
        (head + pmf.survival(probe_slots) - 1.0).abs() < 1e-9,
        "{}: mass {head} + survival {}",
        pmf.label(),
        pmf.survival(probe_slots)
    );
    // CDF is monotone, complements survival, bounds are respected.
    let mut last = 0.0;
    for i in 0..probe_slots {
        let c = pmf.cdf(i);
        assert!(
            c >= last - 1e-12,
            "{}: cdf not monotone at {i}",
            pmf.label()
        );
        assert!((c + pmf.survival(i) - 1.0).abs() < 1e-9);
        last = c;
    }
    // Hazards are probabilities and consistent with pmf/survival.
    for i in 1..=probe_slots {
        let h = pmf.hazard(i);
        assert!(
            (0.0..=1.0).contains(&h),
            "{}: hazard {h} at {i}",
            pmf.label()
        );
        // Below ~1e-6 survival the cdf complement loses relative
        // precision (catastrophic cancellation), so only check the identity
        // where it is numerically meaningful.
        let prior = pmf.survival(i - 1);
        if prior > 1e-6 {
            assert!(
                (h - pmf.pmf(i) / prior).abs() < 1e-7,
                "{}: hazard identity at {i}",
                pmf.label()
            );
        }
    }
    // The mean is at least 1 (gaps are ≥ 1 slot).
    assert!(pmf.mean() >= 1.0 - 1e-9);
}

/// A strategy over heterogeneous continuous distributions.
fn arb_dist() -> impl Strategy<Value = Box<dyn InterArrival>> {
    prop_oneof![
        (1.0f64..80.0, 0.5f64..5.0)
            .prop_map(|(s, k)| Box::new(Weibull::new(s, k).unwrap()) as Box<dyn InterArrival>),
        (1.1f64..4.0, 1.0f64..30.0)
            .prop_map(|(a, s)| Box::new(Pareto::new(a, s).unwrap()) as Box<dyn InterArrival>),
        (0.01f64..1.0)
            .prop_map(|r| Box::new(Exponential::new(r).unwrap()) as Box<dyn InterArrival>),
        (1u32..6, 0.05f64..1.0)
            .prop_map(|(k, r)| Box::new(Erlang::new(k, r).unwrap()) as Box<dyn InterArrival>),
        (1.0f64..20.0, 21.0f64..60.0).prop_map(|(lo, hi)| {
            Box::new(UniformArrival::new(lo, hi).unwrap()) as Box<dyn InterArrival>
        }),
        (0.1f64..0.9, 0.1f64..1.0, 0.01f64..0.1).prop_map(|(p, r1, r2)| {
            Box::new(HyperExponential::new(p, r1, r2).unwrap()) as Box<dyn InterArrival>
        }),
        (0.5f64..4.0, 0.2f64..1.2)
            .prop_map(|(m, s)| Box::new(LogNormal::new(m, s).unwrap()) as Box<dyn InterArrival>),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn discretized_distributions_are_proper(dist in arb_dist()) {
        let pmf = Discretizer::new()
            .max_horizon(4_096)
            .discretize(dist.as_ref())
            .expect("discretizes");
        assert_proper(&pmf, pmf.horizon().min(512) + 8);
    }

    #[test]
    fn markov_renewal_transform_is_proper(a in 0.0f64..=1.0, b in 0.0f64..0.999) {
        let chain = MarkovEvents::new(a, b).expect("valid");
        let pmf = chain.to_slot_pmf().expect("proper");
        assert_proper(&pmf, 64);
        prop_assert!((pmf.mean() - chain.mean_gap()).abs() < 1e-9);
    }

    #[test]
    fn from_hazards_round_trips(hazards in proptest::collection::vec(0.0f64..=1.0, 1..12)) {
        // Guarantee the distribution is proper by ending at 1.
        let mut hazards = hazards;
        *hazards.last_mut().unwrap() = 1.0;
        let pmf = SlotPmf::from_hazards(&hazards).expect("valid");
        for (i, &h) in hazards.iter().enumerate() {
            let slot = i + 1;
            if pmf.survival(slot - 1) > 1e-6 {
                prop_assert!((pmf.hazard(slot) - h).abs() < 1e-7, "slot {slot}");
            }
        }
        assert_proper(&pmf, hazards.len() + 4);
    }

    #[test]
    fn sample_mean_tracks_pmf_mean(
        raw in proptest::collection::vec(0.01f64..1.0, 1..10),
        seed in 0u64..1000,
    ) {
        let total: f64 = raw.iter().sum();
        let pmf = SlotPmf::from_pmf(raw.iter().map(|w| w / total).collect()).expect("valid");
        let sampler = SlotSampler::new(&pmf).expect("valid");
        let mut rng = SmallRng::seed_from_u64(seed);
        let n = 20_000;
        let sum: usize = (0..n).map(|_| sampler.sample(&mut rng)).sum();
        let mean = sum as f64 / n as f64;
        // 20k samples of a bounded variable: generous 5-sigma-ish bound.
        let bound = 0.05 * pmf.mean().max(1.0);
        prop_assert!((mean - pmf.mean()).abs() < bound, "{mean} vs {}", pmf.mean());
    }

    #[test]
    fn samples_always_in_support(
        raw in proptest::collection::vec(0.0f64..1.0, 2..10),
        seed in 0u64..1000,
    ) {
        // Force at least one positive mass.
        let mut raw = raw;
        raw[0] += 0.5;
        let total: f64 = raw.iter().sum();
        let pmf = SlotPmf::from_pmf(raw.iter().map(|w| w / total).collect()).expect("valid");
        let sampler = SlotSampler::new(&pmf).expect("valid");
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..2_000 {
            let gap = sampler.sample(&mut rng);
            prop_assert!(gap >= 1 && gap <= pmf.horizon());
            prop_assert!(pmf.pmf(gap) > 0.0, "sampled zero-mass slot {gap}");
        }
    }
}
