//! A small, dependency-free linear-program solver.
//!
//! The paper's full-information optimization (Section IV-A) is the linear
//! program (7)–(8):
//!
//! ```text
//! maximize    Σ α_i · c_i
//! subject to  Σ ξ_i · c_i = e·μ,    0 ≤ c_i ≤ 1
//! ```
//!
//! Theorem 1 shows the optimum has a greedy water-filling structure. This
//! crate exists to *certify* that claim numerically: `evcap-core` solves the
//! truncated LP with this simplex implementation and asserts that the greedy
//! policy attains the same objective.
//!
//! No LP solver is available in the offline dependency set, so this is a
//! classic dense **two-phase tableau simplex** with Bland's anti-cycling
//! rule. It is intended for the small/medium problems that arise here
//! (hundreds of variables), not as a general-purpose production solver.
//!
//! # Example
//!
//! ```
//! use evcap_lp::{Problem, Relation};
//!
//! # fn main() -> Result<(), evcap_lp::LpError> {
//! // maximize 3x + 2y s.t. x + y ≤ 4, x ≤ 2, x,y ≥ 0.
//! let mut problem = Problem::maximize(vec![3.0, 2.0]);
//! problem.constraint(vec![1.0, 1.0], Relation::Le, 4.0)?;
//! problem.constraint(vec![1.0, 0.0], Relation::Le, 2.0)?;
//! let solution = problem.solve()?;
//! assert!((solution.objective - 10.0).abs() < 1e-9);
//! assert!((solution.x[0] - 2.0).abs() < 1e-9);
//! assert!((solution.x[1] - 2.0).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

mod simplex;

pub use simplex::{LpError, Problem, Relation, Solution};
