//! Two-phase dense tableau simplex with Bland's rule.

use std::fmt;

/// Feasibility/pivot tolerance.
const EPS: f64 = 1e-9;

/// Relation of a linear constraint to its right-hand side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// `a·x ≤ b`
    Le,
    /// `a·x = b`
    Eq,
    /// `a·x ≥ b`
    Ge,
}

/// Errors reported by the solver.
#[derive(Debug, Clone, PartialEq)]
pub enum LpError {
    /// A constraint row's length did not match the number of variables.
    DimensionMismatch {
        /// Number of variables in the problem.
        expected: usize,
        /// Length of the offending row.
        found: usize,
    },
    /// A coefficient was NaN or infinite.
    NonFiniteCoefficient,
    /// The constraint set admits no feasible point.
    Infeasible,
    /// The objective is unbounded above on the feasible region.
    Unbounded,
    /// The pivot loop exceeded its iteration budget (numerical trouble).
    IterationLimit,
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::DimensionMismatch { expected, found } => {
                write!(
                    f,
                    "constraint has {found} coefficients; expected {expected}"
                )
            }
            LpError::NonFiniteCoefficient => write!(f, "coefficients must be finite"),
            LpError::Infeasible => write!(f, "problem is infeasible"),
            LpError::Unbounded => write!(f, "objective is unbounded"),
            LpError::IterationLimit => write!(f, "simplex exceeded its iteration budget"),
        }
    }
}

impl std::error::Error for LpError {}

/// An optimal solution.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// Optimal variable assignment.
    pub x: Vec<f64>,
    /// Optimal objective value.
    pub objective: f64,
}

/// A linear program `maximize c·x s.t. constraints, x ≥ 0`.
///
/// Build with [`Problem::maximize`], add rows with
/// [`constraint`](Problem::constraint) (and box constraints with
/// [`upper_bound`](Problem::upper_bound)), then call
/// [`solve`](Problem::solve).
#[derive(Debug, Clone, PartialEq)]
pub struct Problem {
    objective: Vec<f64>,
    rows: Vec<Vec<f64>>,
    relations: Vec<Relation>,
    rhs: Vec<f64>,
}

impl Problem {
    /// Starts a maximization problem over `objective.len()` non-negative
    /// variables.
    pub fn maximize(objective: Vec<f64>) -> Self {
        Self {
            objective,
            rows: Vec::new(),
            relations: Vec::new(),
            rhs: Vec::new(),
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.objective.len()
    }

    /// Number of constraint rows added so far.
    pub fn num_constraints(&self) -> usize {
        self.rows.len()
    }

    /// Adds the constraint `coeffs · x <relation> rhs`.
    ///
    /// # Errors
    ///
    /// * [`LpError::DimensionMismatch`] if `coeffs.len() != num_vars()`.
    /// * [`LpError::NonFiniteCoefficient`] if any value is NaN/∞.
    pub fn constraint(
        &mut self,
        coeffs: Vec<f64>,
        relation: Relation,
        rhs: f64,
    ) -> Result<&mut Self, LpError> {
        if coeffs.len() != self.objective.len() {
            return Err(LpError::DimensionMismatch {
                expected: self.objective.len(),
                found: coeffs.len(),
            });
        }
        if !rhs.is_finite() || coeffs.iter().any(|v| !v.is_finite()) {
            return Err(LpError::NonFiniteCoefficient);
        }
        self.rows.push(coeffs);
        self.relations.push(relation);
        self.rhs.push(rhs);
        Ok(self)
    }

    /// Adds the box constraint `x_i ≤ bound`.
    ///
    /// # Errors
    ///
    /// Same as [`constraint`](Problem::constraint); additionally
    /// `DimensionMismatch` if `var` is out of range.
    pub fn upper_bound(&mut self, var: usize, bound: f64) -> Result<&mut Self, LpError> {
        if var >= self.objective.len() {
            return Err(LpError::DimensionMismatch {
                expected: self.objective.len(),
                found: var + 1,
            });
        }
        let mut row = vec![0.0; self.objective.len()];
        row[var] = 1.0;
        self.constraint(row, Relation::Le, bound)
    }

    /// Solves the program with the two-phase simplex method.
    ///
    /// # Errors
    ///
    /// * [`LpError::Infeasible`] if the constraints admit no point.
    /// * [`LpError::Unbounded`] if the maximum is `+∞`.
    /// * [`LpError::IterationLimit`] on pathological numerical behavior.
    pub fn solve(&self) -> Result<Solution, LpError> {
        let _span = evcap_obs::timing::span("lp.solve");
        evcap_obs::timing::add_count("lp.solves", 1);
        if self.objective.iter().any(|v| !v.is_finite()) {
            return Err(LpError::NonFiniteCoefficient);
        }
        let n = self.objective.len();
        let m = self.rows.len();

        // Normalize rows so rhs ≥ 0 (flip Ge/Le when negating).
        let mut rows = self.rows.clone();
        let mut relations = self.relations.clone();
        let mut rhs = self.rhs.clone();
        for i in 0..m {
            if rhs[i] < 0.0 {
                rhs[i] = -rhs[i];
                for v in rows[i].iter_mut() {
                    *v = -*v;
                }
                relations[i] = match relations[i] {
                    Relation::Le => Relation::Ge,
                    Relation::Ge => Relation::Le,
                    Relation::Eq => Relation::Eq,
                };
            }
        }

        // Column layout: [vars | slacks/surplus | artificials | rhs].
        let num_slack = relations
            .iter()
            .filter(|r| matches!(r, Relation::Le | Relation::Ge))
            .count();
        let num_art = relations
            .iter()
            .filter(|r| matches!(r, Relation::Eq | Relation::Ge))
            .count();
        let total = n + num_slack + num_art;
        let mut tableau = vec![vec![0.0; total + 1]; m];
        let mut basis = vec![usize::MAX; m];
        let mut slack_idx = n;
        let mut art_idx = n + num_slack;
        let mut art_cols = Vec::with_capacity(num_art);
        for i in 0..m {
            tableau[i][..n].copy_from_slice(&rows[i]);
            tableau[i][total] = rhs[i];
            match relations[i] {
                Relation::Le => {
                    tableau[i][slack_idx] = 1.0;
                    basis[i] = slack_idx;
                    slack_idx += 1;
                }
                Relation::Ge => {
                    tableau[i][slack_idx] = -1.0;
                    slack_idx += 1;
                    tableau[i][art_idx] = 1.0;
                    basis[i] = art_idx;
                    art_cols.push(art_idx);
                    art_idx += 1;
                }
                Relation::Eq => {
                    tableau[i][art_idx] = 1.0;
                    basis[i] = art_idx;
                    art_cols.push(art_idx);
                    art_idx += 1;
                }
            }
        }

        // Phase 1: minimize the sum of artificials (maximize its negative).
        if num_art > 0 {
            let mut cost = vec![0.0; total];
            for &a in &art_cols {
                cost[a] = -1.0;
            }
            let value = run_simplex(&mut tableau, &mut basis, &cost, total)?;
            if value < -1e-7 {
                return Err(LpError::Infeasible);
            }
            // Drive any artificial still in the basis out (degenerate rows).
            for i in 0..m {
                if basis[i] >= n + num_slack {
                    // Find a non-artificial column with a nonzero pivot.
                    let pivot_col = (0..n + num_slack).find(|&j| tableau[i][j].abs() > EPS);
                    // A row of all zeros is a redundant constraint and can
                    // simply stay basic-artificial at value zero.
                    if let Some(j) = pivot_col {
                        pivot(&mut tableau, &mut basis, i, j);
                    }
                }
            }
        }

        // Phase 2: the real objective (zero on slack/artificial columns;
        // artificials are forbidden from re-entering by the column cutoff).
        let mut cost = vec![0.0; total];
        cost[..n].copy_from_slice(&self.objective);
        let value = run_simplex(&mut tableau, &mut basis, &cost, n + num_slack)?;

        let mut x = vec![0.0; n];
        for i in 0..m {
            if basis[i] < n {
                x[basis[i]] = tableau[i][total];
            }
        }
        Ok(Solution {
            x,
            objective: value,
        })
    }
}

/// Runs primal simplex on the tableau, maximizing `cost·x`, allowing only
/// columns `< allowed_cols` to enter. Returns the optimal objective value.
fn run_simplex(
    tableau: &mut [Vec<f64>],
    basis: &mut [usize],
    cost: &[f64],
    allowed_cols: usize,
) -> Result<f64, LpError> {
    let m = tableau.len();
    let total = cost.len();
    let max_iters = 200 * (total + m + 16);
    for iter in 0..max_iters {
        // Reduced costs: r_j = c_j − c_B · B⁻¹ A_j (computed row-wise).
        let mut entering = None;
        for j in 0..allowed_cols {
            if basis.contains(&j) {
                continue;
            }
            let mut reduced = cost[j];
            for i in 0..m {
                reduced -= cost[basis[i]] * tableau[i][j];
            }
            if reduced > EPS {
                // Bland's rule: pick the lowest-index improving column.
                entering = Some(j);
                break;
            }
        }
        let Some(j) = entering else {
            let mut value = 0.0;
            for i in 0..m {
                value += cost[basis[i]] * tableau[i][total];
            }
            evcap_obs::timing::add_count("lp.pivots", iter as u64);
            return Ok(value);
        };
        // Ratio test (Bland: lowest basis index breaks ties).
        let mut leave: Option<(usize, f64)> = None;
        for i in 0..m {
            if tableau[i][j] > EPS {
                let ratio = tableau[i][total] / tableau[i][j];
                match leave {
                    None => leave = Some((i, ratio)),
                    Some((li, lr)) => {
                        if ratio < lr - EPS || (ratio < lr + EPS && basis[i] < basis[li]) {
                            leave = Some((i, ratio));
                        }
                    }
                }
            }
        }
        let Some((row, _)) = leave else {
            return Err(LpError::Unbounded);
        };
        pivot(tableau, basis, row, j);
    }
    Err(LpError::IterationLimit)
}

/// Pivots the tableau on `(row, col)`.
fn pivot(tableau: &mut [Vec<f64>], basis: &mut [usize], row: usize, col: usize) {
    let m = tableau.len();
    let p = tableau[row][col];
    debug_assert!(p.abs() > 0.0, "pivot on zero element");
    for v in tableau[row].iter_mut() {
        *v /= p;
    }
    for i in 0..m {
        if i != row {
            let factor = tableau[i][col];
            if factor != 0.0 {
                let pivot_row = tableau[row].clone();
                for (v, &pv) in tableau[i].iter_mut().zip(pivot_row.iter()) {
                    *v -= factor * pv;
                }
            }
        }
    }
    basis[row] = col;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-7
    }

    #[test]
    fn textbook_le_problem() {
        // max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 → 36 at (2, 6).
        let mut p = Problem::maximize(vec![3.0, 5.0]);
        p.constraint(vec![1.0, 0.0], Relation::Le, 4.0).unwrap();
        p.constraint(vec![0.0, 2.0], Relation::Le, 12.0).unwrap();
        p.constraint(vec![3.0, 2.0], Relation::Le, 18.0).unwrap();
        let s = p.solve().unwrap();
        assert!(close(s.objective, 36.0), "{}", s.objective);
        assert!(close(s.x[0], 2.0) && close(s.x[1], 6.0));
    }

    #[test]
    fn equality_constraint() {
        // max x + y s.t. x + y = 3, x ≤ 1 → 3 at (1, 2) or any split; obj 3.
        let mut p = Problem::maximize(vec![1.0, 1.0]);
        p.constraint(vec![1.0, 1.0], Relation::Eq, 3.0).unwrap();
        p.upper_bound(0, 1.0).unwrap();
        let s = p.solve().unwrap();
        assert!(close(s.objective, 3.0));
        assert!(close(s.x[0] + s.x[1], 3.0));
        assert!(s.x[0] <= 1.0 + 1e-9);
    }

    #[test]
    fn ge_constraint() {
        // max −x (i.e. minimize x) s.t. x ≥ 2 → obj −2 at x = 2.
        let mut p = Problem::maximize(vec![-1.0]);
        p.constraint(vec![1.0], Relation::Ge, 2.0).unwrap();
        let s = p.solve().unwrap();
        assert!(close(s.objective, -2.0));
        assert!(close(s.x[0], 2.0));
    }

    #[test]
    fn negative_rhs_is_normalized() {
        // x ≥ 0, −x ≥ −5 ⇔ x ≤ 5; max x → 5.
        let mut p = Problem::maximize(vec![1.0]);
        p.constraint(vec![-1.0], Relation::Ge, -5.0).unwrap();
        let s = p.solve().unwrap();
        assert!(close(s.objective, 5.0));
    }

    #[test]
    fn detects_infeasible() {
        let mut p = Problem::maximize(vec![1.0]);
        p.constraint(vec![1.0], Relation::Le, 1.0).unwrap();
        p.constraint(vec![1.0], Relation::Ge, 2.0).unwrap();
        assert_eq!(p.solve(), Err(LpError::Infeasible));
    }

    #[test]
    fn detects_unbounded() {
        let mut p = Problem::maximize(vec![1.0, 0.0]);
        p.constraint(vec![0.0, 1.0], Relation::Le, 1.0).unwrap();
        assert_eq!(p.solve(), Err(LpError::Unbounded));
    }

    #[test]
    fn rejects_dimension_mismatch_and_nan() {
        let mut p = Problem::maximize(vec![1.0, 2.0]);
        assert!(matches!(
            p.constraint(vec![1.0], Relation::Le, 1.0),
            Err(LpError::DimensionMismatch {
                expected: 2,
                found: 1
            })
        ));
        assert_eq!(
            p.constraint(vec![f64::NAN, 1.0], Relation::Le, 1.0),
            Err(LpError::NonFiniteCoefficient)
        );
        assert!(p.upper_bound(5, 1.0).is_err());
    }

    #[test]
    fn degenerate_redundant_equalities() {
        // x + y = 2 stated twice; max x + 2y → 4 at (0, 2).
        let mut p = Problem::maximize(vec![1.0, 2.0]);
        p.constraint(vec![1.0, 1.0], Relation::Eq, 2.0).unwrap();
        p.constraint(vec![1.0, 1.0], Relation::Eq, 2.0).unwrap();
        let s = p.solve().unwrap();
        assert!(close(s.objective, 4.0), "{}", s.objective);
    }

    #[test]
    fn fractional_knapsack_structure() {
        // max Σ v_i x_i s.t. Σ w_i x_i = W, 0 ≤ x ≤ 1: optimal fills by
        // value density — the structure of the paper's LP (7)–(8).
        let values = [0.9, 0.5, 0.8, 0.1];
        let weights = [1.0, 1.0, 2.0, 1.0];
        let budget = 2.5;
        let mut p = Problem::maximize(values.to_vec());
        p.constraint(weights.to_vec(), Relation::Eq, budget)
            .unwrap();
        for i in 0..4 {
            p.upper_bound(i, 1.0).unwrap();
        }
        let s = p.solve().unwrap();
        // Densities: 0.9, 0.5, 0.4, 0.1 → x0 = 1, x1 = 1, then 0.5/2 of x2.
        assert!(
            close(s.objective, 0.9 + 0.5 + 0.8 * 0.25),
            "{}",
            s.objective
        );
        assert!(close(s.x[0], 1.0) && close(s.x[1], 1.0) && close(s.x[2], 0.25));
    }

    #[test]
    fn zero_variable_problem() {
        let p = Problem::maximize(vec![]);
        let s = p.solve().unwrap();
        assert_eq!(s.objective, 0.0);
        assert!(s.x.is_empty());
    }
}
