//! Property-based tests of the simplex solver.

use evcap_lp::{Problem, Relation};
use proptest::prelude::*;

/// Reference solution of the fractional knapsack
/// `max Σ v_i x_i  s.t. Σ w_i x_i = B, 0 ≤ x ≤ 1` (B ≤ Σ w).
fn greedy_knapsack(values: &[f64], weights: &[f64], budget: f64) -> f64 {
    let mut order: Vec<usize> = (0..values.len()).collect();
    order.sort_by(|&a, &b| {
        (values[b] / weights[b])
            .partial_cmp(&(values[a] / weights[a]))
            .unwrap()
    });
    let mut remaining = budget;
    let mut total = 0.0;
    for i in order {
        if remaining <= 0.0 {
            break;
        }
        let take = (remaining / weights[i]).min(1.0);
        total += take * values[i];
        remaining -= take * weights[i];
    }
    total
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The simplex optimum of a random fractional knapsack equals the greedy
    /// closed form — the exact structure of the paper's LP (7)–(8).
    #[test]
    fn knapsack_matches_greedy(
        values in proptest::collection::vec(0.01f64..1.0, 1..9),
        weights in proptest::collection::vec(0.1f64..2.0, 1..9),
        frac in 0.05f64..0.95,
    ) {
        let n = values.len().min(weights.len());
        let values = &values[..n];
        let weights = &weights[..n];
        let budget = frac * weights.iter().sum::<f64>();

        let mut p = Problem::maximize(values.to_vec());
        p.constraint(weights.to_vec(), Relation::Eq, budget).unwrap();
        for i in 0..n {
            p.upper_bound(i, 1.0).unwrap();
        }
        let solution = p.solve().expect("feasible by construction");
        let reference = greedy_knapsack(values, weights, budget);
        prop_assert!(
            (solution.objective - reference).abs() < 1e-6,
            "simplex {} vs greedy {reference}",
            solution.objective
        );
        // The solution is feasible.
        let spent: f64 = solution.x.iter().zip(weights).map(|(x, w)| x * w).sum();
        prop_assert!((spent - budget).abs() < 1e-6);
        for &x in &solution.x {
            prop_assert!((-1e-9..=1.0 + 1e-9).contains(&x));
        }
    }

    /// On random bounded LPs with ≤ constraints, the returned point is
    /// feasible and no random feasible point beats it.
    #[test]
    fn optimum_dominates_random_feasible_points(
        objective in proptest::collection::vec(-1.0f64..1.0, 2..6),
        rows in proptest::collection::vec(
            (proptest::collection::vec(0.0f64..1.0, 2..6), 0.5f64..4.0),
            1..5
        ),
        trial in proptest::collection::vec(0.0f64..1.0, 2..6),
    ) {
        let n = objective.len();
        let mut p = Problem::maximize(objective.clone());
        let mut clipped_rows = Vec::new();
        for (coeffs, rhs) in &rows {
            let mut row = coeffs.clone();
            row.resize(n, 0.0);
            p.constraint(row.clone(), Relation::Le, *rhs).unwrap();
            clipped_rows.push((row, *rhs));
        }
        for i in 0..n {
            p.upper_bound(i, 1.0).unwrap();
        }
        let solution = p.solve().expect("origin is feasible");

        // Feasibility of the returned point.
        for (row, rhs) in &clipped_rows {
            let lhs: f64 = solution.x.iter().zip(row).map(|(x, a)| x * a).sum();
            prop_assert!(lhs <= rhs + 1e-6, "constraint violated: {lhs} > {rhs}");
        }
        // Scale a random candidate into the feasible region and compare.
        let mut candidate: Vec<f64> = trial.clone();
        candidate.resize(n, 0.0);
        let mut scale = 1.0f64;
        for (row, rhs) in &clipped_rows {
            let lhs: f64 = candidate.iter().zip(row).map(|(x, a)| x * a).sum();
            if lhs > *rhs {
                scale = scale.min(rhs / lhs);
            }
        }
        let candidate_value: f64 = candidate
            .iter()
            .zip(&objective)
            .map(|(x, c)| scale * x * c)
            .sum();
        prop_assert!(
            solution.objective >= candidate_value - 1e-6,
            "candidate {candidate_value} beats simplex {}",
            solution.objective
        );
    }
}
