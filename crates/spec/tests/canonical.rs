//! Property tests for spec canonicalization (satellite of the pipeline
//! unification): for every distribution and recharge family,
//! canonicalization must be idempotent, and parsing the canonical spelling
//! must produce a bit-identical artifact to parsing the original. These are
//! the invariants the serve cache keys and `Scenario::canonical_key` lean
//! on — two spellings of one scenario must never solve twice.

use evcap_spec::{canonical_dist, canonical_recharge, parse_dist, parse_recharge};
use proptest::prelude::*;

const HORIZON: usize = 4096;

/// Spec strings for one distribution across the spellings the parsers
/// accept: plain, fixed-precision floats, and (for `exp`) the long alias.
fn dist_spellings() -> impl Strategy<Value = String> {
    prop_oneof![
        (1.0..100.0f64, 0.5..5.0f64).prop_map(|(scale, shape)| format!("weibull:{scale},{shape}")),
        (1.1..4.0f64, 1.0..50.0f64).prop_map(|(shape, scale)| format!("pareto:{shape},{scale}")),
        (0.001..1.0f64).prop_map(|rate| format!("exp:{rate}")),
        (0.001..1.0f64).prop_map(|rate| format!("exponential:{rate}")),
        (0.001..1.0f64).prop_map(|rate| format!("exp:{rate:.6}")),
        (0.05..0.95f64, 0.05..0.95f64).prop_map(|(a, b)| format!("markov:{a},{b}")),
        (1.0..60.0f64, 2.0..90.0f64).prop_map(|(lo, hi)| format!("uniform:{lo},{}", lo + hi)),
    ]
}

/// A superset of [`dist_spellings`] with whitespace padding — accepted by
/// `canonical_dist` (which trims) though not by `parse_dist` directly, so
/// only the idempotence property uses it.
fn padded_dist_spellings() -> impl Strategy<Value = String> {
    prop_oneof![
        dist_spellings(),
        (0.05..0.95f64, 0.05..0.95f64).prop_map(|(a, b)| format!(" markov: {a} , {b} ")),
        (1.0..100.0f64, 0.5..5.0f64)
            .prop_map(|(scale, shape)| format!("  weibull: {scale} ,{shape}")),
    ]
}

fn recharge_spellings() -> impl Strategy<Value = String> {
    prop_oneof![
        (0.05..0.95f64, 0.1..5.0f64).prop_map(|(q, c)| format!("bernoulli:{q},{c}")),
        (0.05..0.95f64, 0.1..5.0f64).prop_map(|(q, c)| format!("bernoulli:{q:.4},{c}")),
        (0.1..10.0f64, 1.0..50.0f64).prop_map(|(c, p)| format!("periodic:{c},{}", p.ceil())),
        (0.01..2.0f64).prop_map(|r| format!("constant:{r}")),
        (0.0..1.0f64, 1.0..3.0f64).prop_map(|(lo, hi)| format!("uniformrand:{lo},{hi}")),
    ]
}

/// Whitespace-padded recharge spellings, for idempotence only.
fn padded_recharge_spellings() -> impl Strategy<Value = String> {
    prop_oneof![
        recharge_spellings(),
        (0.05..0.95f64, 0.1..5.0f64).prop_map(|(q, c)| format!(" bernoulli: {q:.4} , {c} ")),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `canonical_dist` is idempotent: canonicalizing a canonical spelling
    /// is the identity.
    #[test]
    fn canonical_dist_is_idempotent(spec in padded_dist_spellings()) {
        let once = canonical_dist(&spec).expect("generated specs are valid");
        let twice = canonical_dist(&once).expect("canonical specs stay valid");
        prop_assert_eq!(&once, &twice);
    }

    /// Parsing the canonical spelling yields the same pmf, bit for bit, as
    /// parsing the original: same label, same horizon, same probabilities.
    #[test]
    fn canonical_dist_parses_bit_identical(spec in dist_spellings()) {
        let canon = canonical_dist(&spec).expect("generated specs are valid");
        let a = parse_dist(&spec, HORIZON).expect("original parses");
        let b = parse_dist(&canon, HORIZON).expect("canonical parses");
        prop_assert_eq!(a.label(), b.label());
        prop_assert_eq!(a.horizon(), b.horizon());
        prop_assert_eq!(a.mean().to_bits(), b.mean().to_bits());
        for i in 1..=a.horizon() {
            prop_assert_eq!(a.pmf(i).to_bits(), b.pmf(i).to_bits(), "pmf({}) differs", i);
            prop_assert_eq!(a.hazard(i).to_bits(), b.hazard(i).to_bits(), "hazard({}) differs", i);
        }
    }

    #[test]
    fn canonical_recharge_is_idempotent(spec in padded_recharge_spellings()) {
        let once = canonical_recharge(&spec).expect("generated specs are valid");
        let twice = canonical_recharge(&once).expect("canonical specs stay valid");
        prop_assert_eq!(&once, &twice);
    }

    /// Canonical recharge spellings construct the same process: identical
    /// label and bit-identical mean rate.
    #[test]
    fn canonical_recharge_parses_bit_identical(spec in recharge_spellings()) {
        let canon = canonical_recharge(&spec).expect("generated specs are valid");
        let a = parse_recharge(&spec).expect("original parses");
        let b = parse_recharge(&canon).expect("canonical parses");
        prop_assert_eq!(a.label(), b.label());
        prop_assert_eq!(a.mean_rate().to_bits(), b.mean_rate().to_bits());
    }
}

/// The empirical (`trace:PATH`) family, deterministically: whitespace
/// around the path canonicalizes away, and the canonical spelling parses
/// the same file to the same pmf.
#[test]
fn trace_specs_canonicalize_and_round_trip() {
    let path = std::env::temp_dir().join("evcap_spec_canonical_trace.txt");
    std::fs::write(&path, "3\n5\n5\n7\n9\n4\n6\n").expect("temp trace file writes");
    let padded = format!("trace: {} ", path.display());
    let spec = format!("trace:{}", path.display());
    let canon = canonical_dist(&padded).expect("trace specs canonicalize");
    assert_eq!(canon, spec);
    assert_eq!(canonical_dist(&canon).unwrap(), canon, "idempotent");

    let a = parse_dist(&spec, 64).expect("original parses");
    let b = parse_dist(&canon, 64).expect("canonical parses");
    assert_eq!(a.label(), b.label());
    assert_eq!(a.horizon(), b.horizon());
    for i in 1..=a.horizon() {
        assert_eq!(a.pmf(i).to_bits(), b.pmf(i).to_bits());
    }
    std::fs::remove_file(&path).ok();
}
