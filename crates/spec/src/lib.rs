//! The canonical scenario layer shared by every front end.
//!
//! This crate does two jobs:
//!
//! 1. **Parse** compact textual specs like `weibull:40,3` or
//!    `bernoulli:0.5,1` (mirroring the paper's notation) into
//!    distributions and recharge processes, with canonical text forms so
//!    `exp:0.050` and `exponential:0.05` mean the same thing (see
//!    [`parse_dist`], [`parse_recharge`], [`canonical_dist`],
//!    [`canonical_recharge`]).
//!
//! 2. **Solve**: a [`Scenario`] (distribution, recharge, battery `K`,
//!    costs `δ1`/`δ2`, mean recharge `e`, horizon, sensors) plus a
//!    [`PolicySpec`] goes through the single [`solve`] entry point and
//!    comes back as a [`SolvedPolicy`] artifact — the boxed activation
//!    policy, its precompiled [`evcap_core::PolicyTable`], and
//!    [`SolveMeta`] (objective `U(π*)`, region boundaries, optimizer
//!    iteration counts).
//!
//! The CLI, the policy server (`evcap-serve`), and the bench runners all
//! route through this pipeline, so a scenario means exactly the same
//! thing over HTTP as on the command line, and
//! [`Scenario::canonical_key`] gives every layer one cache identity per
//! solve.

#![forbid(unsafe_code)]

mod parse;
mod scenario;

pub use evcap_core::Objective;
pub use parse::{
    canonical_dist, canonical_recharge, parse_dist, parse_objective, parse_recharge, SpecError,
};
pub use scenario::{
    rehydrate, solve, solve_with_hint, PolicyParams, PolicySpec, Regions, Scenario, SolveError,
    SolveMeta, SolvedPolicy, DEFAULT_HORIZON,
};
