//! The canonical scenario layer: one description of a workload, one solver
//! entry point, one reusable artifact.
//!
//! Every front end of the repo — the CLI, the policy server, and the bench
//! runners — used to re-implement "turn user input into a solved activation
//! policy". This module replaces those copies with a single pipeline:
//!
//! ```text
//! Scenario ──solve()──▶ SolvedPolicy { policy, table, meta }
//! ```
//!
//! A [`Scenario`] stores every parameter that affects *which policy gets
//! computed* (distribution, recharge process, battery capacity `K`, costs
//! `δ1`/`δ2`, mean recharge rate `e`, discretization horizon, sensor
//! count), all in canonical spec form, so [`Scenario::canonical_key`] is a
//! stable identity: two requests that spell the same physics differently
//! (`exp:0.050` vs `exponential:0.05`) produce the same key and can share
//! one solve. [`SolvedPolicy`] bundles the boxed [`ActivationPolicy`], its
//! precompiled [`PolicyTable`] (when the policy is stationary and small
//! enough to materialize), and [`SolveMeta`] — the solve-time facts
//! (objective `U(π*)`, region boundaries, optimizer iteration counts) that
//! renderers need without re-deriving them.

use std::fmt;

use evcap_core::{
    evaluate_partial_info_moments, greedy_cycle_moments, ActivationPolicy, AggressivePolicy,
    ClusterEvaluation, ClusteringOptimizer, ClusteringPolicy, CycleMoments, DecisionContext,
    EnergyBudget, EvalOptions, GreedyPolicy, InfoModel, MyopicPolicy, Objective, PeriodicPolicy,
    PolicyTable,
};
use evcap_dist::SlotPmf;
use evcap_energy::{ConsumptionModel, Energy};

use crate::parse::{canonical_dist, canonical_recharge, parse_dist, SpecError};

/// Which activation policy family to solve for.
///
/// This enum replaces the stringly-typed `match` arms that used to live in
/// the CLI, the server, and the bench crate: wire/argv names are parsed
/// once by [`PolicySpec::parse`] and everything downstream dispatches on
/// the enum.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PolicySpec {
    /// Full-information greedy water-filling (the paper's Theorem 1).
    Greedy,
    /// Partial-information three-region clustering heuristic.
    Clustering,
    /// Always-active baseline (sense every slot the battery allows).
    Aggressive,
    /// Wall-clock duty cycling: `theta1` active slots per period.
    Periodic {
        /// Active slots per period; the period is energy-balanced at solve
        /// time from the budget and mean gap (paper Fig. 4).
        theta1: u64,
    },
    /// Belief-threshold myopic policy over an age window.
    Myopic,
}

impl PolicySpec {
    /// Parses a policy name as it appears on the wire or on argv.
    ///
    /// `periodic` defaults to `theta1 = 3` (the paper's Fig. 4 setting);
    /// callers with an explicit flag can override the field afterwards.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] for unknown names.
    pub fn parse(name: &str) -> Result<Self, SpecError> {
        match name.trim() {
            "greedy" => Ok(Self::Greedy),
            "clustering" => Ok(Self::Clustering),
            "aggressive" => Ok(Self::Aggressive),
            "periodic" => Ok(Self::Periodic { theta1: 3 }),
            "myopic" => Ok(Self::Myopic),
            other => Err(SpecError {
                spec: other.to_owned(),
                reason: format!(
                    "unknown policy `{other}` (try greedy, clustering, aggressive, periodic, \
                     myopic)"
                ),
            }),
        }
    }

    /// The base wire name (without parameters), e.g. `"periodic"`.
    pub fn name(&self) -> &'static str {
        match self {
            Self::Greedy => "greedy",
            Self::Clustering => "clustering",
            Self::Aggressive => "aggressive",
            Self::Periodic { .. } => "periodic",
            Self::Myopic => "myopic",
        }
    }

    /// The cache-key fragment: includes parameters, e.g. `"periodic:3"`.
    pub fn key(&self) -> String {
        match self {
            Self::Periodic { theta1 } => format!("periodic:{theta1}"),
            other => other.name().to_owned(),
        }
    }

    /// What the policy is allowed to observe (paper §II).
    pub fn info_model(&self) -> InfoModel {
        match self {
            Self::Greedy => InfoModel::Full,
            _ => InfoModel::Partial,
        }
    }
}

/// A complete, canonical description of one solvable scenario.
///
/// All spec strings are stored in canonical form (see
/// [`canonical_dist`]/[`canonical_recharge`]), so equality of
/// [`Scenario::canonical_key`] means "the same solve".
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    dist: String,
    recharge: String,
    policy: PolicySpec,
    objective: Objective,
    e: f64,
    delta1: f64,
    delta2: f64,
    battery: f64,
    horizon: usize,
    sensors: usize,
}

/// Default discretization horizon (matches the CLI and server defaults).
pub const DEFAULT_HORIZON: usize = 65_536;

impl Scenario {
    /// Creates a scenario from a distribution spec, policy, and mean
    /// recharge rate `e` (units per slot per sensor).
    ///
    /// Defaults: recharge `bernoulli:0.5,2e` (paper §V), costs `δ1 = 1`,
    /// `δ2 = 6`, battery `K = 1000`, horizon `65 536`, one sensor.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] if the distribution spec does not
    /// canonicalize.
    pub fn new(dist: &str, policy: PolicySpec, e: f64) -> Result<Self, SpecError> {
        let dist = canonical_dist(dist)?;
        // `{}` formatting keeps this in canonical float form already.
        let recharge = format!("bernoulli:0.5,{}", 2.0 * e);
        Ok(Self {
            dist,
            recharge,
            policy,
            objective: Objective::Qom,
            e,
            delta1: 1.0,
            delta2: 6.0,
            battery: 1000.0,
            horizon: DEFAULT_HORIZON,
            sensors: 1,
        })
    }

    /// Replaces the recharge process spec (canonicalized).
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] if the spec does not canonicalize.
    pub fn with_recharge(mut self, spec: &str) -> Result<Self, SpecError> {
        self.recharge = canonical_recharge(spec)?;
        Ok(self)
    }

    /// Replaces the optimization objective (defaults to
    /// [`Objective::Qom`], the paper's metric).
    #[must_use]
    pub fn with_objective(mut self, objective: Objective) -> Self {
        self.objective = objective;
        self
    }

    /// Replaces the per-slot sensing (`δ1`) and capture (`δ2`) costs.
    #[must_use]
    pub fn with_costs(mut self, delta1: f64, delta2: f64) -> Self {
        self.delta1 = delta1;
        self.delta2 = delta2;
        self
    }

    /// Replaces the battery capacity `K` (energy units).
    #[must_use]
    pub fn with_battery(mut self, k: f64) -> Self {
        self.battery = k;
        self
    }

    /// Replaces the discretization horizon.
    #[must_use]
    pub fn with_horizon(mut self, horizon: usize) -> Self {
        self.horizon = horizon;
        self
    }

    /// Replaces the sensor count (the solve budget scales to `n·e`).
    #[must_use]
    pub fn with_sensors(mut self, sensors: usize) -> Self {
        self.sensors = sensors;
        self
    }

    /// The canonical distribution spec.
    pub fn dist(&self) -> &str {
        &self.dist
    }

    /// The canonical recharge spec.
    pub fn recharge(&self) -> &str {
        &self.recharge
    }

    /// The policy family to solve for.
    pub fn policy(&self) -> PolicySpec {
        self.policy
    }

    /// Mutable access to the policy (e.g. to apply a `--theta1` flag).
    pub fn policy_mut(&mut self) -> &mut PolicySpec {
        &mut self.policy
    }

    /// The metric the solve optimizes (and reports).
    pub fn objective(&self) -> Objective {
        self.objective
    }

    /// Mean recharge rate `e` per sensor (units per slot).
    pub fn e(&self) -> f64 {
        self.e
    }

    /// Sensing cost `δ1`.
    pub fn delta1(&self) -> f64 {
        self.delta1
    }

    /// Capture cost `δ2`.
    pub fn delta2(&self) -> f64 {
        self.delta2
    }

    /// Battery capacity `K`.
    pub fn battery(&self) -> f64 {
        self.battery
    }

    /// Discretization horizon.
    pub fn horizon(&self) -> usize {
        self.horizon
    }

    /// Number of sensors sharing the aggregate budget.
    pub fn sensors(&self) -> usize {
        self.sensors
    }

    /// What the chosen policy is allowed to observe.
    pub fn info_model(&self) -> InfoModel {
        self.policy.info_model()
    }

    /// A stable identity for this scenario: equal keys ⇔ the same solve.
    ///
    /// Built entirely from canonical forms, so spelling variants
    /// (`exp:0.050` vs `exponential:0.05`, `bernoulli:0.50,1.0` vs
    /// `bernoulli:0.5,1`) collapse onto one key. This is the key of the
    /// server's artifact cache.
    pub fn canonical_key(&self) -> String {
        let mut key = format!(
            "{}|{}|r={}|e={}|d1={}|d2={}|k={}|h={}|n={}",
            self.policy.key(),
            self.dist,
            self.recharge,
            self.e,
            self.delta1,
            self.delta2,
            self.battery,
            self.horizon,
            self.sensors,
        );
        // The default objective (QoM) is elided so every key minted before
        // objectives existed keeps hitting the same cache entries.
        if !self.objective.is_default() {
            key.push_str("|obj=");
            key.push_str(self.objective.name());
        }
        key
    }
}

/// Region boundaries of a solved clustering policy (paper §IV).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Regions {
    /// First hot slot.
    pub n1: usize,
    /// Last hot slot.
    pub n2: usize,
    /// First recovery slot.
    pub n3: usize,
    /// Activation coefficients at the three boundaries `(q1, q2, q3)`.
    pub boundary: (f64, f64, f64),
}

/// The concrete solver outputs a [`SolvedPolicy`] can be reassembled from
/// without re-running any optimizer — the payload the artifact store
/// (`evcap-store`) persists alongside the scenario.
///
/// Each variant holds exactly the family-specific facts [`solve`] computed
/// that [`rehydrate`] cannot re-derive cheaply and deterministically from
/// the scenario alone. Everything else (the pmf, the label, the activation
/// table, analytic evaluations) is reconstructed at rehydration time, so a
/// record stays small and a tampered copy has few places to hide.
#[derive(Debug, Clone, PartialEq)]
pub enum PolicyParams {
    /// Greedy water-filling output: the per-state coefficients plus the
    /// summary statistics whose floating-point accumulation order (sorted
    /// by hazard) cannot be replayed from the coefficients alone.
    Greedy {
        /// Activation coefficients `c_1..c_H` (one per explicit pmf state).
        coefficients: Vec<f64>,
        /// The coefficient shared by every state beyond the horizon.
        tail_coefficient: f64,
        /// The water-filling objective `U(π*_FI)`.
        ideal_qom: f64,
        /// The planned discharge rate (units/slot).
        discharge_rate: f64,
    },
    /// Clustering region boundaries and boundary coefficients; the analytic
    /// evaluation is re-derived (deterministically) at rehydration.
    Clustering {
        /// First hot slot.
        n1: usize,
        /// Last hot slot.
        n2: usize,
        /// First recovery slot.
        n3: usize,
        /// Boundary coefficients `(c_{n1}, c_{n2}, c_{n3})`.
        boundary: (f64, f64, f64),
    },
    /// The aggressive baseline has no parameters.
    Aggressive,
    /// Energy-balanced duty cycle (`theta2` is cross-checked against the
    /// balance formula at rehydration, so a stale record is rejected).
    Periodic {
        /// Active slots per cycle.
        theta1: u64,
        /// Cycle length.
        theta2: u64,
    },
    /// Myopic belief-threshold decisions over the derived window.
    Myopic {
        /// Deterministic activation decisions for states `1..=window`.
        active: Vec<bool>,
        /// The belief threshold that produced them.
        threshold: f64,
        /// The analytic evaluation recorded at derivation time.
        evaluation: ClusterEvaluation,
    },
}

impl PolicyParams {
    /// The wire name of the family these parameters belong to.
    pub fn family(&self) -> &'static str {
        match self {
            Self::Greedy { .. } => "greedy",
            Self::Clustering { .. } => "clustering",
            Self::Aggressive => "aggressive",
            Self::Periodic { .. } => "periodic",
            Self::Myopic { .. } => "myopic",
        }
    }
}

/// Solve-time metadata bundled with a [`SolvedPolicy`].
#[derive(Debug, Clone, PartialEq)]
pub struct SolveMeta {
    /// Human-readable policy label (same string as
    /// `ActivationPolicy::label`).
    pub label: String,
    /// What the policy observes.
    pub info: InfoModel,
    /// The solver's ideal QoM `U(π*)` under the energy assumption — when
    /// the family reports one. Always QoM regardless of
    /// [`SolveMeta::objective_kind`], so historical renderers keep their
    /// meaning.
    pub objective: Option<f64>,
    /// Which metric the solve optimized (the scenario's
    /// [`Scenario::objective`]).
    pub objective_kind: Objective,
    /// The solved policy's value under `objective_kind`, in natural units
    /// (a probability for QoM, slots for the age objectives), when the
    /// family reports one. Equal to `objective` under QoM; derived from
    /// the deterministic cycle moments otherwise, so [`rehydrate`]
    /// reproduces it bit for bit.
    pub objective_value: Option<f64>,
    /// Planned battery discharge rate (units per slot), when known.
    pub discharge_rate: Option<f64>,
    /// Expected capture-cycle length in slots (clustering/myopic).
    pub expected_cycle: Option<f64>,
    /// Region structure (clustering only).
    pub regions: Option<Regions>,
    /// Mean inter-arrival gap `μ` of the discretized distribution.
    pub mean_gap: f64,
    /// Optimizer work: candidate evaluations (clustering), funded slots
    /// (greedy water-filling), window states (myopic); `0` for closed-form
    /// families.
    pub iterations: u64,
}

/// The reusable artifact produced by [`solve`]: everything a front end
/// needs to render, simulate, or benchmark a solved scenario without
/// re-running the optimizer.
pub struct SolvedPolicy {
    /// The scenario this artifact was solved from (canonical).
    pub scenario: Scenario,
    /// The discretized inter-arrival pmf used by the solver.
    pub pmf: SlotPmf,
    /// The consumption model `(δ1, δ2)` the policy was solved against.
    pub consumption: ConsumptionModel,
    /// The solved policy.
    pub policy: Box<dyn ActivationPolicy + Send + Sync>,
    /// Precompiled activation table (stationary policies below the
    /// materialization cap); bit-for-bit equal to querying the policy.
    pub table: Option<PolicyTable>,
    /// The family-specific solver outputs this artifact can be rebuilt
    /// from (see [`PolicyParams`] and [`rehydrate`]).
    pub params: PolicyParams,
    /// Solve-time metadata.
    pub meta: SolveMeta,
}

impl SolvedPolicy {
    /// The stationary activation probability in state `i` (1-based),
    /// served from the precompiled table when one exists.
    pub fn probability(&self, state: usize) -> f64 {
        match &self.table {
            Some(t) => t.probability(state),
            None => self.policy.probability(&DecisionContext::stationary(state)),
        }
    }
}

impl fmt::Debug for SolvedPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SolvedPolicy")
            .field("scenario", &self.scenario)
            .field("label", &self.meta.label)
            .field("table", &self.table.is_some())
            .finish()
    }
}

/// Why a scenario could not be solved.
#[derive(Debug, Clone, PartialEq)]
pub enum SolveError {
    /// A spec string failed to parse.
    Spec(SpecError),
    /// The specs parsed but the optimizer rejected the parameters
    /// (infeasible budget, invalid costs, …).
    Unsolvable(String),
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Spec(e) => e.fmt(f),
            Self::Unsolvable(reason) => write!(f, "cannot solve scenario: {reason}"),
        }
    }
}

impl std::error::Error for SolveError {}

impl From<SpecError> for SolveError {
    fn from(e: SpecError) -> Self {
        Self::Spec(e)
    }
}

fn unsolvable(e: impl fmt::Display) -> SolveError {
    SolveError::Unsolvable(e.to_string())
}

/// The solve's reported value under `objective`, in natural units.
///
/// QoM reuses the family's ideal-QoM report; the age objectives read the
/// deterministic capture-cycle moments. Both [`solve`] and [`rehydrate`]
/// feed this from the same deterministic computations, so the two sides
/// agree bit for bit. `None` when the family reports neither (aggressive,
/// periodic).
fn objective_value(
    objective: Objective,
    qom: Option<f64>,
    moments: Option<&CycleMoments>,
) -> Option<f64> {
    match objective {
        Objective::Qom => qom,
        Objective::AoiMean => moments.map(CycleMoments::mean_age),
        Objective::AoiPeak => moments.map(CycleMoments::peak_age),
    }
}

/// Capture-cycle moments of a partial-information policy under the
/// stationary information model — the shared deterministic routine behind
/// the clustering and myopic `objective_value` reports.
fn stationary_moments(
    pmf: &SlotPmf,
    policy: &dyn ActivationPolicy,
    consumption: &ConsumptionModel,
) -> CycleMoments {
    evaluate_partial_info_moments(
        pmf,
        |i| policy.probability(&DecisionContext::stationary(i)),
        consumption,
        EvalOptions::default(),
    )
    .1
}

/// Solves a scenario into a reusable [`SolvedPolicy`] artifact.
///
/// This is the **only** policy-construction site shared by the CLI, the
/// policy server, and the bench runners. The whole solve runs under the
/// `spec.solve` timing span (visible via `evcap-obs` when spans are
/// enabled), alongside the finer-grained `clustering.search` / `lp.solve`
/// spans the optimizers emit themselves.
///
/// # Errors
///
/// * [`SolveError::Spec`] if the distribution spec fails to parse.
/// * [`SolveError::Unsolvable`] if the optimizer rejects the parameters.
pub fn solve(scenario: &Scenario) -> Result<SolvedPolicy, SolveError> {
    solve_with_hint(scenario, None)
}

/// [`solve`] with an optional warm-start hint for the clustering search.
///
/// `hint` is the `(n1, n2, n3)` optimum of a *neighboring* scenario (same
/// distribution family, nearby `e`). The clustering optimizer first sweeps
/// only a trust region of the enumeration lattice around the hint and
/// falls back to the full cold sweep whenever the local optimum is not
/// clearly interior, so the returned policy is **bit-identical** to the
/// cold solve — only `meta.iterations` (candidate evaluations) shrinks.
/// Non-clustering families ignore the hint.
///
/// # Errors
///
/// Same contract as [`solve`].
pub fn solve_with_hint(
    scenario: &Scenario,
    hint: Option<(usize, usize, usize)>,
) -> Result<SolvedPolicy, SolveError> {
    let _span = evcap_obs::timing::span("spec.solve");
    let pmf = parse_dist(scenario.dist(), scenario.horizon())?;
    let consumption = ConsumptionModel::new(
        Energy::from_units(scenario.delta1()),
        Energy::from_units(scenario.delta2()),
    )
    .map_err(unsolvable)?;
    let budget = EnergyBudget::per_slot(scenario.e() * scenario.sensors() as f64);
    let objective = scenario.objective();

    type Boxed = Box<dyn ActivationPolicy + Send + Sync>;
    let (policy, params, meta): (Boxed, PolicyParams, SolveMeta) = match scenario.policy() {
        PolicySpec::Greedy => {
            // Water-filling maximizes the capture probability `q`; with
            // `E[T] = μ/q` that same policy minimizes the peak age, and it
            // stands in as the (reported, not re-optimized) candidate under
            // the mean-age objective.
            let g = GreedyPolicy::optimize(&pmf, budget, &consumption).map_err(unsolvable)?;
            let horizon = g.horizon();
            let funded = (1..=horizon).filter(|&i| g.coefficient(i) > 0.0).count() as u64
                + u64::from(g.coefficient(horizon + 1) > 0.0);
            let moments = (!objective.is_default()).then(|| greedy_cycle_moments(&pmf, &g));
            let params = PolicyParams::Greedy {
                coefficients: (1..=horizon).map(|i| g.coefficient(i)).collect(),
                tail_coefficient: g.coefficient(horizon + 1),
                ideal_qom: g.ideal_qom(),
                discharge_rate: g.discharge_rate(),
            };
            let meta = SolveMeta {
                label: g.label(),
                info: g.info_model(),
                objective: Some(g.ideal_qom()),
                objective_kind: objective,
                objective_value: objective_value(objective, Some(g.ideal_qom()), moments.as_ref()),
                discharge_rate: Some(g.discharge_rate()),
                expected_cycle: None,
                regions: None,
                mean_gap: g.mean_gap(),
                iterations: funded,
            };
            (Box::new(g), params, meta)
        }
        PolicySpec::Clustering => {
            let (p, eval, candidates) = ClusteringOptimizer::new(budget)
                .objective(objective)
                .optimize_counted_with_hint(&pmf, &consumption, hint)
                .map_err(unsolvable)?;
            let moments =
                (!objective.is_default()).then(|| stationary_moments(&pmf, &p, &consumption));
            let params = PolicyParams::Clustering {
                n1: p.n1(),
                n2: p.n2(),
                n3: p.n3(),
                boundary: p.boundary_coefficients(),
            };
            let meta = SolveMeta {
                label: p.label(),
                info: p.info_model(),
                objective: Some(eval.capture_probability),
                objective_kind: objective,
                objective_value: objective_value(
                    objective,
                    Some(eval.capture_probability),
                    moments.as_ref(),
                ),
                discharge_rate: Some(eval.discharge_rate),
                expected_cycle: Some(eval.expected_cycle),
                regions: Some(Regions {
                    n1: p.n1(),
                    n2: p.n2(),
                    n3: p.n3(),
                    boundary: p.boundary_coefficients(),
                }),
                mean_gap: pmf.mean(),
                iterations: candidates,
            };
            (Box::new(p), params, meta)
        }
        PolicySpec::Aggressive => {
            let p = AggressivePolicy::new();
            let meta = SolveMeta {
                label: p.label(),
                info: p.info_model(),
                objective: None,
                objective_kind: objective,
                objective_value: None,
                discharge_rate: p.planned_discharge_rate(),
                expected_cycle: None,
                regions: None,
                mean_gap: pmf.mean(),
                iterations: 0,
            };
            (Box::new(p), PolicyParams::Aggressive, meta)
        }
        PolicySpec::Periodic { theta1 } => {
            let p = PeriodicPolicy::energy_balanced(theta1, budget, pmf.mean(), &consumption)
                .map_err(unsolvable)?;
            let params = PolicyParams::Periodic {
                theta1: p.theta1(),
                theta2: p.theta2(),
            };
            let meta = SolveMeta {
                label: p.label(),
                info: p.info_model(),
                objective: None,
                objective_kind: objective,
                objective_value: None,
                discharge_rate: p.planned_discharge_rate(),
                expected_cycle: None,
                regions: None,
                mean_gap: pmf.mean(),
                iterations: 0,
            };
            (Box::new(p), params, meta)
        }
        PolicySpec::Myopic => {
            let window = (4.0 * pmf.mean()).ceil() as usize;
            let p =
                MyopicPolicy::derive(&pmf, budget, &consumption, window, EvalOptions::default())
                    .map_err(unsolvable)?;
            let eval = p.evaluation();
            let moments =
                (!objective.is_default()).then(|| stationary_moments(&pmf, &p, &consumption));
            let params = PolicyParams::Myopic {
                active: (1..=window).map(|i| p.active(i)).collect(),
                threshold: p.threshold(),
                evaluation: eval,
            };
            let meta = SolveMeta {
                label: p.label(),
                info: p.info_model(),
                objective: Some(eval.capture_probability),
                objective_kind: objective,
                objective_value: objective_value(
                    objective,
                    Some(eval.capture_probability),
                    moments.as_ref(),
                ),
                discharge_rate: Some(eval.discharge_rate),
                expected_cycle: Some(eval.expected_cycle),
                regions: None,
                mean_gap: pmf.mean(),
                iterations: window as u64,
            };
            (Box::new(p), params, meta)
        }
    };

    let table = {
        let _span = evcap_obs::timing::span("spec.table");
        policy.table()
    };
    let solved = SolvedPolicy {
        scenario: scenario.clone(),
        pmf,
        consumption,
        policy,
        table,
        params,
        meta,
    };
    #[cfg(debug_assertions)]
    debug_validate(&solved);
    Ok(solved)
}

/// Reassembles a [`SolvedPolicy`] from persisted [`PolicyParams`] without
/// running any optimizer — the load path of the artifact store.
///
/// The result is bit-identical to what [`solve`] produced for the same
/// scenario: the policy is rebuilt from the stored family parameters
/// through the same public constructors, while the pmf, label, table, and
/// analytic evaluations are re-derived deterministically from the
/// scenario. `iterations` is the solve-time candidate count recorded with
/// the record (only clustering's count is not re-derivable; the other
/// families recompute theirs and ignore the stored value).
///
/// Every family cross-checks the stored parameters against what the
/// scenario implies (coefficient counts, the energy-balance formula for
/// `theta2`, the myopic window), so a record persisted against an older
/// solver or tampered with on disk is rejected here with
/// [`SolveError::Unsolvable`] rather than rehydrated into a wrong policy.
/// Runs under the `spec.rehydrate` timing span and emits **no**
/// `clustering.search` or `lp.solve` spans.
///
/// # Errors
///
/// * [`SolveError::Spec`] if the scenario's distribution spec fails to
///   parse.
/// * [`SolveError::Unsolvable`] if the parameters fail validation or do
///   not match the scenario's policy family.
pub fn rehydrate(
    scenario: &Scenario,
    params: &PolicyParams,
    iterations: u64,
) -> Result<SolvedPolicy, SolveError> {
    let _span = evcap_obs::timing::span("spec.rehydrate");
    if params.family() != scenario.policy().name() {
        return Err(SolveError::Unsolvable(format!(
            "stored params are for family `{}` but the scenario solves `{}`",
            params.family(),
            scenario.policy().name()
        )));
    }
    let pmf = parse_dist(scenario.dist(), scenario.horizon())?;
    let consumption = ConsumptionModel::new(
        Energy::from_units(scenario.delta1()),
        Energy::from_units(scenario.delta2()),
    )
    .map_err(unsolvable)?;
    let rate = scenario.e() * scenario.sensors() as f64;
    if !rate.is_finite() || rate < 0.0 {
        return Err(SolveError::Unsolvable(format!(
            "recharge rate {rate} is not a finite non-negative number"
        )));
    }
    let budget = EnergyBudget::per_slot(rate);
    let objective = scenario.objective();

    type Boxed = Box<dyn ActivationPolicy + Send + Sync>;
    let (policy, meta): (Boxed, SolveMeta) = match params {
        PolicyParams::Greedy {
            coefficients,
            tail_coefficient,
            ideal_qom,
            discharge_rate,
        } => {
            if coefficients.len() != pmf.horizon() {
                return Err(SolveError::Unsolvable(format!(
                    "stored greedy record has {} coefficients but the scenario's horizon \
                     discretizes to {} states",
                    coefficients.len(),
                    pmf.horizon()
                )));
            }
            let label = format!("greedy-FI(e={}, {})", budget.rate(), pmf.label());
            let g = GreedyPolicy::from_parts(
                coefficients.clone(),
                *tail_coefficient,
                *ideal_qom,
                *discharge_rate,
                pmf.mean(),
                label,
            )
            .map_err(unsolvable)?;
            let horizon = g.horizon();
            let funded = (1..=horizon).filter(|&i| g.coefficient(i) > 0.0).count() as u64
                + u64::from(g.coefficient(horizon + 1) > 0.0);
            let moments = (!objective.is_default()).then(|| greedy_cycle_moments(&pmf, &g));
            let meta = SolveMeta {
                label: g.label(),
                info: g.info_model(),
                objective: Some(g.ideal_qom()),
                objective_kind: objective,
                objective_value: objective_value(objective, Some(g.ideal_qom()), moments.as_ref()),
                discharge_rate: Some(g.discharge_rate()),
                expected_cycle: None,
                regions: None,
                mean_gap: g.mean_gap(),
                iterations: funded,
            };
            (Box::new(g), meta)
        }
        PolicyParams::Clustering {
            n1,
            n2,
            n3,
            boundary,
        } => {
            let (c1, c2, c3) = *boundary;
            let p = ClusteringPolicy::new(*n1, *n2, *n3, c1, c2, c3).map_err(unsolvable)?;
            let eval = p.evaluate(&pmf, &consumption, EvalOptions::default());
            if eval.discharge_rate.is_nan() || eval.discharge_rate > budget.rate() * (1.0 + 1e-9) {
                return Err(SolveError::Unsolvable(format!(
                    "stored clustering record discharges {} units/slot against a budget of {}",
                    eval.discharge_rate,
                    budget.rate()
                )));
            }
            let moments =
                (!objective.is_default()).then(|| stationary_moments(&pmf, &p, &consumption));
            let meta = SolveMeta {
                label: p.label(),
                info: p.info_model(),
                objective: Some(eval.capture_probability),
                objective_kind: objective,
                objective_value: objective_value(
                    objective,
                    Some(eval.capture_probability),
                    moments.as_ref(),
                ),
                discharge_rate: Some(eval.discharge_rate),
                expected_cycle: Some(eval.expected_cycle),
                regions: Some(Regions {
                    n1: p.n1(),
                    n2: p.n2(),
                    n3: p.n3(),
                    boundary: p.boundary_coefficients(),
                }),
                mean_gap: pmf.mean(),
                iterations,
            };
            (Box::new(p), meta)
        }
        PolicyParams::Aggressive => {
            let p = AggressivePolicy::new();
            let meta = SolveMeta {
                label: p.label(),
                info: p.info_model(),
                objective: None,
                objective_kind: objective,
                objective_value: None,
                discharge_rate: p.planned_discharge_rate(),
                expected_cycle: None,
                regions: None,
                mean_gap: pmf.mean(),
                iterations: 0,
            };
            (Box::new(p), meta)
        }
        PolicyParams::Periodic { theta1, theta2 } => {
            let balanced =
                PeriodicPolicy::energy_balanced(*theta1, budget, pmf.mean(), &consumption)
                    .map_err(unsolvable)?;
            if balanced.theta2() != *theta2 {
                return Err(SolveError::Unsolvable(format!(
                    "stored periodic record is stale: theta2 = {theta2} but the energy balance \
                     now yields {}",
                    balanced.theta2()
                )));
            }
            let meta = SolveMeta {
                label: balanced.label(),
                info: balanced.info_model(),
                objective: None,
                objective_kind: objective,
                objective_value: None,
                discharge_rate: balanced.planned_discharge_rate(),
                expected_cycle: None,
                regions: None,
                mean_gap: pmf.mean(),
                iterations: 0,
            };
            (Box::new(balanced), meta)
        }
        PolicyParams::Myopic {
            active,
            threshold,
            evaluation,
        } => {
            let window = (4.0 * pmf.mean()).ceil() as usize;
            if active.len() != window {
                return Err(SolveError::Unsolvable(format!(
                    "stored myopic record covers a window of {} states but the scenario \
                     derives a window of {window}",
                    active.len()
                )));
            }
            let p = MyopicPolicy::from_parts(active.clone(), *threshold, *evaluation)
                .map_err(unsolvable)?;
            let eval = p.evaluation();
            let moments =
                (!objective.is_default()).then(|| stationary_moments(&pmf, &p, &consumption));
            let meta = SolveMeta {
                label: p.label(),
                info: p.info_model(),
                objective: Some(eval.capture_probability),
                objective_kind: objective,
                objective_value: objective_value(
                    objective,
                    Some(eval.capture_probability),
                    moments.as_ref(),
                ),
                discharge_rate: Some(eval.discharge_rate),
                expected_cycle: Some(eval.expected_cycle),
                regions: None,
                mean_gap: pmf.mean(),
                iterations: window as u64,
            };
            (Box::new(p), meta)
        }
    };

    let table = {
        let _span = evcap_obs::timing::span("spec.table");
        policy.table()
    };
    let solved = SolvedPolicy {
        scenario: scenario.clone(),
        pmf,
        consumption,
        policy,
        table,
        params: params.clone(),
        meta,
    };
    #[cfg(debug_assertions)]
    debug_validate(&solved);
    Ok(solved)
}

/// Structural self-check run on every debug-build solve.
///
/// The full analytic certifier lives in `evcap-audit` — which depends on
/// this crate, so it cannot run here. This hook catches the cheap,
/// unambiguous corruptions at the construction site itself: out-of-range
/// coefficients, table/policy disagreement on a sampled prefix, and
/// unordered region boundaries. Release builds skip it entirely.
#[cfg(debug_assertions)]
fn debug_validate(solved: &SolvedPolicy) {
    let prefix = solved.pmf.horizon().min(512);
    for state in 1..=prefix {
        let c = solved.probability(state);
        debug_assert!(
            c.is_finite() && (0.0..=1.0).contains(&c),
            "solve produced a non-probability coefficient c_{state} = {c}"
        );
    }
    if let Some(table) = &solved.table {
        let explicit = table.explicit_states();
        let samples = [
            1,
            explicit.div_ceil(2).max(1),
            explicit.max(1),
            explicit + 1,
        ];
        for state in samples {
            let t = table.probability(state);
            let p = solved
                .policy
                .probability(&DecisionContext::stationary(state));
            debug_assert!(
                t.to_bits() == p.to_bits(),
                "precompiled table disagrees with the policy at state {state}: {t} vs {p}"
            );
        }
    }
    if let Some(r) = &solved.meta.regions {
        debug_assert!(
            r.n1 >= 1 && r.n1 <= r.n2 && r.n2 <= r.n3,
            "solve produced unordered region boundaries n1={} n2={} n3={}",
            r.n1,
            r.n2,
            r.n3
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_names_round_trip() {
        for name in ["greedy", "clustering", "aggressive", "periodic", "myopic"] {
            let p = PolicySpec::parse(name).unwrap();
            assert_eq!(p.name(), name);
        }
        assert!(PolicySpec::parse("zigzag").is_err());
        assert_eq!(
            PolicySpec::parse("periodic").unwrap(),
            PolicySpec::Periodic { theta1: 3 }
        );
        assert_eq!(PolicySpec::Periodic { theta1: 5 }.key(), "periodic:5");
    }

    #[test]
    fn canonical_key_collapses_spelling_variants() {
        let a = Scenario::new("exponential:0.050", PolicySpec::Greedy, 0.2).unwrap();
        let b = Scenario::new("exp:0.05", PolicySpec::Greedy, 0.2).unwrap();
        assert_eq!(a.canonical_key(), b.canonical_key());
        let c = b
            .clone()
            .with_recharge("bernoulli:0.50,1.0")
            .unwrap()
            .with_recharge("bernoulli:0.5,1")
            .unwrap();
        assert_eq!(c.recharge(), "bernoulli:0.5,1");
    }

    #[test]
    fn canonical_key_elides_the_default_objective() {
        let base = Scenario::new("weibull:40,3", PolicySpec::Clustering, 0.5).unwrap();
        let explicit = base.clone().with_objective(Objective::Qom);
        // Explicit QoM spells the same key as before objectives existed.
        assert_eq!(base.canonical_key(), explicit.canonical_key());
        assert!(!base.canonical_key().contains("obj="));
        let mean = base.clone().with_objective(Objective::AoiMean);
        let peak = base.clone().with_objective(Objective::AoiPeak);
        assert!(mean.canonical_key().ends_with("|obj=aoi-mean"));
        assert!(peak.canonical_key().ends_with("|obj=aoi-peak"));
        assert_ne!(mean.canonical_key(), peak.canonical_key());
    }

    #[test]
    fn canonical_key_separates_different_scenarios() {
        let base = Scenario::new("weibull:40,3", PolicySpec::Clustering, 0.5).unwrap();
        let keys = [
            base.canonical_key(),
            base.clone().with_sensors(4).canonical_key(),
            base.clone().with_horizon(4096).canonical_key(),
            base.clone().with_costs(1.0, 8.0).canonical_key(),
            Scenario::new("weibull:40,3", PolicySpec::Greedy, 0.5)
                .unwrap()
                .canonical_key(),
        ];
        for i in 0..keys.len() {
            for j in 0..keys.len() {
                if i != j {
                    assert_ne!(keys[i], keys[j]);
                }
            }
        }
    }

    #[test]
    fn solve_produces_artifacts_for_every_family() {
        for name in ["greedy", "clustering", "aggressive", "periodic", "myopic"] {
            let policy = PolicySpec::parse(name).unwrap();
            let s = Scenario::new("weibull:40,3", policy, 0.5)
                .unwrap()
                .with_horizon(4_096);
            let solved = solve(&s).expect(name);
            assert_eq!(solved.meta.label, solved.policy.label(), "{name}");
            assert_eq!(solved.meta.info, solved.policy.info_model(), "{name}");
            if let Some(table) = &solved.table {
                for i in 1..=64 {
                    assert_eq!(
                        table.probability(i),
                        solved.policy.probability(&DecisionContext::stationary(i)),
                        "{name} state {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn greedy_artifact_matches_direct_optimization() {
        let s = Scenario::new("weibull:40,3", PolicySpec::Greedy, 0.5)
            .unwrap()
            .with_horizon(4_096);
        let solved = solve(&s).unwrap();
        let pmf = parse_dist("weibull:40,3", 4_096).unwrap();
        let direct = GreedyPolicy::optimize(
            &pmf,
            EnergyBudget::per_slot(0.5),
            &ConsumptionModel::paper_defaults(),
        )
        .unwrap();
        assert_eq!(solved.meta.objective, Some(direct.ideal_qom()));
        assert_eq!(solved.meta.discharge_rate, Some(direct.discharge_rate()));
        for i in 1..=128 {
            assert_eq!(
                solved.probability(i),
                direct.probability(&DecisionContext::stationary(i)),
                "state {i}"
            );
        }
        assert!(solved.meta.iterations > 0, "greedy reports funded slots");
    }

    #[test]
    fn clustering_artifact_reports_regions_and_candidates() {
        let s = Scenario::new("weibull:40,3", PolicySpec::Clustering, 0.5)
            .unwrap()
            .with_horizon(4_096);
        let solved = solve(&s).unwrap();
        let r = solved.meta.regions.expect("clustering reports regions");
        assert!(r.n1 <= r.n2 && r.n2 <= r.n3);
        assert!(solved.meta.iterations > 0, "candidate evaluations counted");
        assert!(solved.meta.objective.unwrap() > 0.0);
    }

    #[test]
    fn rehydrate_is_bit_identical_to_solve_for_every_family() {
        for name in ["greedy", "clustering", "aggressive", "periodic", "myopic"] {
            let policy = PolicySpec::parse(name).unwrap();
            let s = Scenario::new("weibull:40,3", policy, 0.5)
                .unwrap()
                .with_horizon(4_096);
            let solved = solve(&s).expect(name);
            let rebuilt = rehydrate(&s, &solved.params, solved.meta.iterations).expect(name);
            assert_eq!(solved.meta, rebuilt.meta, "{name} meta");
            assert_eq!(solved.params, rebuilt.params, "{name} params");
            assert_eq!(solved.table.is_some(), rebuilt.table.is_some(), "{name}");
            for state in 1..=256 {
                assert_eq!(
                    solved.probability(state).to_bits(),
                    rebuilt.probability(state).to_bits(),
                    "{name} state {state}"
                );
            }
        }
    }

    #[test]
    fn default_objective_meta_mirrors_the_qom_report() {
        for name in ["greedy", "clustering", "aggressive", "periodic", "myopic"] {
            let policy = PolicySpec::parse(name).unwrap();
            let s = Scenario::new("weibull:40,3", policy, 0.5)
                .unwrap()
                .with_horizon(4_096);
            let solved = solve(&s).expect(name);
            assert_eq!(solved.meta.objective_kind, Objective::Qom, "{name}");
            assert_eq!(solved.meta.objective_value, solved.meta.objective, "{name}");
        }
    }

    #[test]
    fn age_objectives_solve_and_rehydrate_bit_identically() {
        for (name, objective) in [
            ("greedy", Objective::AoiMean),
            ("greedy", Objective::AoiPeak),
            ("clustering", Objective::AoiMean),
            ("clustering", Objective::AoiPeak),
            ("myopic", Objective::AoiMean),
            ("aggressive", Objective::AoiMean),
            ("periodic", Objective::AoiPeak),
        ] {
            let policy = PolicySpec::parse(name).unwrap();
            let s = Scenario::new("weibull:40,3", policy, 0.5)
                .unwrap()
                .with_horizon(4_096)
                .with_objective(objective);
            let solved = solve(&s).expect(name);
            assert_eq!(solved.meta.objective_kind, objective, "{name}");
            match name {
                // Age values are slot counts: finite and at least the
                // single-gap floor of the event process.
                "greedy" | "clustering" | "myopic" => {
                    let value = solved.meta.objective_value.expect(name);
                    let floor = objective.value_floor(&solved.pmf).unwrap();
                    assert!(value >= floor - 1e-9, "{name}: {value} < floor {floor}");
                    assert!(value.is_finite(), "{name}");
                }
                _ => assert_eq!(solved.meta.objective_value, None, "{name}"),
            }
            let rebuilt = rehydrate(&s, &solved.params, solved.meta.iterations).expect(name);
            assert_eq!(solved.meta, rebuilt.meta, "{name} {objective} meta");
            for state in 1..=64 {
                assert_eq!(
                    solved.probability(state).to_bits(),
                    rebuilt.probability(state).to_bits(),
                    "{name} {objective} state {state}"
                );
            }
        }
    }

    #[test]
    fn rehydrate_rejects_stale_or_mismatched_records() {
        let s = Scenario::new("weibull:40,3", PolicySpec::Clustering, 0.5)
            .unwrap()
            .with_horizon(4_096);
        let solved = solve(&s).unwrap();

        // Family mismatch: clustering params against a greedy scenario.
        let greedy = Scenario::new("weibull:40,3", PolicySpec::Greedy, 0.5)
            .unwrap()
            .with_horizon(4_096);
        assert!(matches!(
            rehydrate(&greedy, &solved.params, 0),
            Err(SolveError::Unsolvable(_))
        ));

        // Stale greedy record: coefficient count no longer matches the
        // scenario's discretization.
        let gs = solve(&greedy).unwrap();
        let truncated_greedy = match gs.params {
            PolicyParams::Greedy {
                mut coefficients,
                tail_coefficient,
                ideal_qom,
                discharge_rate,
            } => {
                coefficients.pop();
                PolicyParams::Greedy {
                    coefficients,
                    tail_coefficient,
                    ideal_qom,
                    discharge_rate,
                }
            }
            other => panic!("unexpected params {other:?}"),
        };
        assert!(matches!(
            rehydrate(&greedy, &truncated_greedy, gs.meta.iterations),
            Err(SolveError::Unsolvable(_))
        ));

        // Stale periodic record: theta2 disagrees with the energy balance.
        let ps = Scenario::new("weibull:40,3", PolicySpec::Periodic { theta1: 3 }, 0.5)
            .unwrap()
            .with_horizon(4_096);
        let p = solve(&ps).unwrap();
        let stale = match p.params {
            PolicyParams::Periodic { theta1, theta2 } => PolicyParams::Periodic {
                theta1,
                theta2: theta2 + 1,
            },
            other => panic!("unexpected params {other:?}"),
        };
        assert!(matches!(
            rehydrate(&ps, &stale, 0),
            Err(SolveError::Unsolvable(_))
        ));

        // Stale myopic record: window no longer matches the scenario.
        let ms = Scenario::new("weibull:40,3", PolicySpec::Myopic, 0.5)
            .unwrap()
            .with_horizon(4_096);
        let m = solve(&ms).unwrap();
        let truncated = match m.params {
            PolicyParams::Myopic {
                mut active,
                threshold,
                evaluation,
            } => {
                active.pop();
                PolicyParams::Myopic {
                    active,
                    threshold,
                    evaluation,
                }
            }
            other => panic!("unexpected params {other:?}"),
        };
        assert!(matches!(
            rehydrate(&ms, &truncated, m.meta.iterations),
            Err(SolveError::Unsolvable(_))
        ));
    }

    #[test]
    fn warm_hint_reproduces_the_cold_clustering_solve_with_fewer_candidates() {
        let near = Scenario::new("weibull:40,3", PolicySpec::Clustering, 0.48)
            .unwrap()
            .with_horizon(4_096);
        let hint = match solve(&near).unwrap().params {
            PolicyParams::Clustering { n1, n2, n3, .. } => (n1, n2, n3),
            other => panic!("unexpected params {other:?}"),
        };

        let s = Scenario::new("weibull:40,3", PolicySpec::Clustering, 0.5)
            .unwrap()
            .with_horizon(4_096);
        let cold = solve(&s).unwrap();
        let warm = solve_with_hint(&s, Some(hint)).unwrap();
        assert_eq!(cold.meta.label, warm.meta.label);
        assert_eq!(cold.meta.regions, warm.meta.regions);
        assert_eq!(
            cold.meta.objective.unwrap().to_bits(),
            warm.meta.objective.unwrap().to_bits()
        );
        assert!(
            warm.meta.iterations < cold.meta.iterations,
            "warm start should evaluate fewer candidates ({} vs {})",
            warm.meta.iterations,
            cold.meta.iterations
        );
    }

    #[test]
    fn unsolvable_scenarios_report_structured_errors() {
        let bad_dist = Scenario::new("gauss:1,2", PolicySpec::Greedy, 0.5);
        assert!(bad_dist.is_err());
        let zero_budget = Scenario::new("weibull:40,3", PolicySpec::Clustering, 0.0)
            .unwrap()
            .with_horizon(1_024);
        assert!(matches!(
            solve(&zero_budget),
            Err(SolveError::Unsolvable(_))
        ));
        let bad_costs = Scenario::new("weibull:40,3", PolicySpec::Greedy, 0.5)
            .unwrap()
            .with_costs(-1.0, 6.0);
        assert!(matches!(solve(&bad_costs), Err(SolveError::Unsolvable(_))));
    }
}
