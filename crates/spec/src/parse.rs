//! Spec-string parsing and canonicalization.
//!
//! Workloads are described by compact specs like `weibull:40,3` or
//! `bernoulli:0.5,1`, mirroring the paper's notation. This module is the
//! single parser for those specs; [`canonical_dist`] and
//! [`canonical_recharge`] reduce a spec to a canonical text form (aliases
//! resolved, numbers reformatted) so that `exp:0.050` and
//! `exponential:0.05` mean — and cache as — the same thing.
//!
//! Numeric arguments must be finite: `weibull:nan,3` and `exp:inf` are
//! rejected here (Rust's `f64::from_str` happily parses `nan`/`inf`, which
//! would otherwise propagate into the discretizer).

use std::fmt;

use evcap_core::Objective;
use evcap_dist::{
    Deterministic, Discretizer, EmpiricalGaps, Erlang, Exponential, HyperExponential, InterArrival,
    LogNormal, MarkovEvents, Pareto, SlotPmf, UniformArrival, Weibull,
};
use evcap_energy::{
    BernoulliRecharge, ConstantRecharge, Energy, PeriodicRecharge, RechargeProcess, UniformRecharge,
};

/// A parse failure for a spec string.
#[derive(Debug, Clone, PartialEq)]
pub struct SpecError {
    /// The spec that failed to parse.
    pub spec: String,
    /// Why it failed.
    pub reason: String,
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid spec `{}`: {}", self.spec, self.reason)
    }
}

impl std::error::Error for SpecError {}

fn err(spec: &str, reason: impl Into<String>) -> SpecError {
    SpecError {
        spec: spec.to_owned(),
        reason: reason.into(),
    }
}

/// Splits `name:a,b,c` into the name and numeric arguments.
///
/// Every argument must parse as a *finite* float: `nan`/`inf` (which Rust's
/// float parser accepts) are rejected so no downstream discretizer or
/// optimizer ever sees a non-finite parameter.
fn split(spec: &str) -> Result<(&str, Vec<f64>), SpecError> {
    let (name, rest) = match spec.split_once(':') {
        Some((n, r)) => (n, r),
        None => (spec, ""),
    };
    let mut args = Vec::new();
    if !rest.is_empty() {
        for part in rest.split(',') {
            let value: f64 = part
                .trim()
                .parse()
                .map_err(|_| err(spec, format!("`{part}` is not a number")))?;
            if !value.is_finite() {
                return Err(err(spec, format!("`{part}` is not finite")));
            }
            args.push(value);
        }
    }
    Ok((name, args))
}

fn arity(spec: &str, args: &[f64], expected: usize) -> Result<(), SpecError> {
    if args.len() == expected {
        Ok(())
    } else {
        Err(err(
            spec,
            format!("expected {expected} parameter(s), got {}", args.len()),
        ))
    }
}

/// Distribution names (canonical name, accepted aliases, arity).
const DIST_NAMES: &[(&str, &[&str], usize)] = &[
    ("weibull", &[], 2),
    ("pareto", &[], 2),
    ("exp", &["exponential"], 1),
    ("erlang", &[], 2),
    ("uniform", &[], 2),
    ("det", &["deterministic"], 1),
    ("hyperexp", &[], 3),
    ("lognormal", &[], 2),
    ("markov", &[], 2),
];

/// Recharge-process names (canonical name, accepted aliases, arity).
const RECHARGE_NAMES: &[(&str, &[&str], usize)] = &[
    ("bernoulli", &[], 2),
    ("periodic", &[], 2),
    ("constant", &[], 1),
    ("uniformrand", &[], 2),
];

fn canonical_name(
    name: &str,
    table: &'static [(&'static str, &'static [&'static str], usize)],
) -> Option<(&'static str, usize)> {
    for &(canon, aliases, arity) in table {
        if name == canon || aliases.contains(&name) {
            return Some((canon, arity));
        }
    }
    None
}

fn canonicalize(
    spec: &str,
    table: &'static [(&'static str, &'static [&'static str], usize)],
    what: &str,
) -> Result<String, SpecError> {
    let (name, args) = split(spec.trim())?;
    let (canon, expected) =
        canonical_name(name, table).ok_or_else(|| err(spec, format!("unknown {what} `{name}`")))?;
    arity(spec, &args, expected)?;
    let mut out = String::from(canon);
    for (i, a) in args.iter().enumerate() {
        out.push(if i == 0 { ':' } else { ',' });
        // `{}` is Rust's shortest round-trip float form, so 0.50 and 0.5
        // canonicalize identically.
        let _ = fmt::Write::write_fmt(&mut out, format_args!("{a}"));
    }
    Ok(out)
}

/// Reduces a distribution spec to canonical text: aliases resolved
/// (`exponential:0.05` → `exp:0.05`), numbers reformatted to their shortest
/// round-trip form. `trace:PATH` specs canonicalize to the trimmed path.
///
/// Canonicalization validates the name, arity, and finiteness of arguments
/// but does *not* check parameter domains — [`parse_dist`] remains the
/// authority on whether `weibull:-1,3` is a valid Weibull.
///
/// # Errors
///
/// Returns [`SpecError`] for unknown names, wrong arity, or non-finite
/// arguments.
pub fn canonical_dist(spec: &str) -> Result<String, SpecError> {
    if let Some(path) = spec.trim().strip_prefix("trace:") {
        return Ok(format!("trace:{}", path.trim()));
    }
    canonicalize(spec, DIST_NAMES, "distribution")
}

/// Reduces a recharge spec to canonical text (see [`canonical_dist`]).
///
/// # Errors
///
/// Returns [`SpecError`] for unknown names, wrong arity, or non-finite
/// arguments.
pub fn canonical_recharge(spec: &str) -> Result<String, SpecError> {
    canonicalize(spec, RECHARGE_NAMES, "recharge process")
}

/// Parses an optimization-objective name as it appears on the wire or on
/// argv (`qom`, `aoi-mean`, `aoi-peak`); the canonical spelling is
/// [`Objective::name`].
///
/// # Errors
///
/// Returns [`SpecError`] for unknown names.
pub fn parse_objective(spec: &str) -> Result<Objective, SpecError> {
    Objective::parse(spec)
        .ok_or_else(|| err(spec, "unknown objective (try qom, aoi-mean, aoi-peak)"))
}

/// Parses a distribution spec into a slotted pmf.
///
/// Supported: `weibull:scale,shape` · `pareto:shape,scale` · `exp:rate` ·
/// `erlang:stages,rate` · `uniform:lo,hi` · `det:period` ·
/// `hyperexp:p,rate1,rate2` · `markov:a,b` · `lognormal:mu,sigma` ·
/// `trace:PATH` (a file of observed inter-arrival times, one per line).
///
/// # Errors
///
/// Returns [`SpecError`] for unknown names, wrong arity, or invalid
/// parameters (including non-finite numbers like `nan`).
pub fn parse_dist(spec: &str, max_horizon: usize) -> Result<SlotPmf, SpecError> {
    if let Some(path) = spec.strip_prefix("trace:") {
        return parse_trace(spec, path);
    }
    let (name, args) = split(spec)?;
    let discretizer = Discretizer::new().max_horizon(max_horizon);
    let boxed: Box<dyn InterArrival> = match name {
        "weibull" => {
            arity(spec, &args, 2)?;
            Box::new(Weibull::new(args[0], args[1]).map_err(|e| err(spec, e.to_string()))?)
        }
        "pareto" => {
            arity(spec, &args, 2)?;
            Box::new(Pareto::new(args[0], args[1]).map_err(|e| err(spec, e.to_string()))?)
        }
        "exp" | "exponential" => {
            arity(spec, &args, 1)?;
            Box::new(Exponential::new(args[0]).map_err(|e| err(spec, e.to_string()))?)
        }
        "erlang" => {
            arity(spec, &args, 2)?;
            let stages = args[0] as u32;
            if (stages as f64 - args[0]).abs() > 1e-9 {
                return Err(err(spec, "stages must be an integer"));
            }
            Box::new(Erlang::new(stages, args[1]).map_err(|e| err(spec, e.to_string()))?)
        }
        "uniform" => {
            arity(spec, &args, 2)?;
            Box::new(UniformArrival::new(args[0], args[1]).map_err(|e| err(spec, e.to_string()))?)
        }
        "det" | "deterministic" => {
            arity(spec, &args, 1)?;
            Box::new(Deterministic::new(args[0]).map_err(|e| err(spec, e.to_string()))?)
        }
        "hyperexp" => {
            arity(spec, &args, 3)?;
            Box::new(
                HyperExponential::new(args[0], args[1], args[2])
                    .map_err(|e| err(spec, e.to_string()))?,
            )
        }
        "lognormal" => {
            arity(spec, &args, 2)?;
            Box::new(LogNormal::new(args[0], args[1]).map_err(|e| err(spec, e.to_string()))?)
        }
        "markov" => {
            arity(spec, &args, 2)?;
            return MarkovEvents::new(args[0], args[1])
                .and_then(|m| m.to_slot_pmf())
                .map_err(|e| err(spec, e.to_string()));
        }
        other => {
            return Err(err(
                spec,
                format!(
                    "unknown distribution `{other}` (try weibull, pareto, exp, erlang, \
                     uniform, det, hyperexp, markov, lognormal, trace:PATH)"
                ),
            ))
        }
    };
    discretizer
        .discretize(boxed.as_ref())
        .map_err(|e| err(spec, e.to_string()))
}

/// Loads observed inter-arrival times (one float per line; `#` comments and
/// blank lines ignored) and builds the empirical pmf with mild tail
/// smoothing.
fn parse_trace(spec: &str, path: &str) -> Result<SlotPmf, SpecError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| err(spec, format!("cannot read `{path}`: {e}")))?;
    let mut samples = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let value: f64 = line.parse().map_err(|_| {
            err(
                spec,
                format!("line {}: `{line}` is not a number", lineno + 1),
            )
        })?;
        if !value.is_finite() {
            return Err(err(
                spec,
                format!("line {}: `{line}` is not finite", lineno + 1),
            ));
        }
        samples.push(value);
    }
    EmpiricalGaps::from_samples(&samples)
        .and_then(|emp| emp.to_slot_pmf(Some(0.5)))
        .map_err(|e| err(spec, e.to_string()))
}

/// Parses a recharge-process spec.
///
/// Supported: `bernoulli:q,c` · `periodic:amount,period` · `constant:rate` ·
/// `uniformrand:lo,hi`.
///
/// # Errors
///
/// Returns [`SpecError`] for unknown names, wrong arity, or invalid
/// parameters (including non-finite numbers like `nan`).
pub fn parse_recharge(spec: &str) -> Result<Box<dyn RechargeProcess>, SpecError> {
    let (name, args) = split(spec)?;
    let process: Box<dyn RechargeProcess> = match name {
        "bernoulli" => {
            arity(spec, &args, 2)?;
            Box::new(
                BernoulliRecharge::new(args[0], Energy::from_units(args[1]))
                    .map_err(|e| err(spec, e.to_string()))?,
            )
        }
        "periodic" => {
            arity(spec, &args, 2)?;
            let period = args[1] as u32;
            if (period as f64 - args[1]).abs() > 1e-9 {
                return Err(err(spec, "period must be an integer number of slots"));
            }
            Box::new(
                PeriodicRecharge::new(Energy::from_units(args[0]), period)
                    .map_err(|e| err(spec, e.to_string()))?,
            )
        }
        "constant" => {
            arity(spec, &args, 1)?;
            Box::new(
                ConstantRecharge::new(Energy::from_units(args[0]))
                    .map_err(|e| err(spec, e.to_string()))?,
            )
        }
        "uniformrand" => {
            arity(spec, &args, 2)?;
            Box::new(
                UniformRecharge::new(Energy::from_units(args[0]), Energy::from_units(args[1]))
                    .map_err(|e| err(spec, e.to_string()))?,
            )
        }
        other => {
            return Err(err(
                spec,
                format!(
                    "unknown recharge process `{other}` (try bernoulli, periodic, constant, \
                     uniformrand)"
                ),
            ))
        }
    };
    Ok(process)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_workloads() {
        let w = parse_dist("weibull:40,3", 65_536).unwrap();
        assert!((w.mean() - 36.2).abs() < 0.5);
        let p = parse_dist("pareto:2,10", 2_000).unwrap();
        assert_eq!(p.min_support(), 11);
        let m = parse_dist("markov:0.7,0.8", 100).unwrap();
        assert!((m.hazard(1) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn parses_all_dist_names() {
        for spec in [
            "exp:0.05",
            "erlang:4,0.2",
            "uniform:10,30",
            "det:7",
            "hyperexp:0.4,0.5,0.05",
        ] {
            assert!(parse_dist(spec, 65_536).is_ok(), "{spec}");
        }
    }

    #[test]
    fn parses_lognormal_and_trace() {
        assert!(parse_dist("lognormal:3,0.5", 65_536).is_ok());
        let dir = std::env::temp_dir().join("evcap-spec-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("gaps.txt");
        std::fs::write(&path, "2\n# note\n3.5\n\n4\n").unwrap();
        let spec = format!("trace:{}", path.display());
        let pmf = parse_dist(&spec, 65_536).unwrap();
        assert!(pmf.pmf(2) > 0.0 && pmf.pmf(4) > 0.0);
        assert!(parse_dist("trace:/definitely/not/here", 10).is_err());
        std::fs::write(&path, "2\nnot-a-number\n").unwrap();
        assert!(parse_dist(&spec, 10).is_err());
        std::fs::write(&path, "2\nnan\n").unwrap();
        assert!(parse_dist(&spec, 10).is_err(), "trace files reject nan");
    }

    #[test]
    fn rejects_bad_dists() {
        assert!(parse_dist("weibull:40", 100).is_err()); // arity
        assert!(parse_dist("weibull:40,x", 100).is_err()); // not a number
        assert!(parse_dist("gauss:1,2", 100).is_err()); // unknown
        assert!(parse_dist("weibull:-1,3", 100).is_err()); // domain
        assert!(parse_dist("erlang:2.5,1", 100).is_err()); // non-integer stages
    }

    #[test]
    fn rejects_non_finite_arguments() {
        for spec in [
            "weibull:nan,3",
            "weibull:40,NaN",
            "exp:inf",
            "exp:-inf",
            "pareto:infinity,10",
        ] {
            let e = parse_dist(spec, 100).unwrap_err();
            assert!(e.reason.contains("not finite"), "{spec}: {e}");
        }
        for spec in ["bernoulli:nan,1", "constant:inf"] {
            let e = parse_recharge(spec).err().expect("non-finite must fail");
            assert!(e.reason.contains("not finite"), "{spec}: {e}");
        }
        assert!(canonical_dist("weibull:nan,3").is_err());
        assert!(canonical_recharge("bernoulli:nan,1").is_err());
    }

    #[test]
    fn parses_recharge_processes() {
        for (spec, rate) in [
            ("bernoulli:0.5,1", 0.5),
            ("periodic:5,10", 0.5),
            ("constant:0.5", 0.5),
            ("uniformrand:0,1", 0.5),
        ] {
            let p = parse_recharge(spec).unwrap();
            assert!((p.mean_rate() - rate).abs() < 1e-12, "{spec}");
        }
    }

    #[test]
    fn rejects_bad_recharges() {
        assert!(parse_recharge("bernoulli:1.5,1").is_err());
        assert!(parse_recharge("periodic:5,2.5").is_err());
        assert!(parse_recharge("solar:1").is_err());
    }

    #[test]
    fn parses_objectives() {
        assert_eq!(parse_objective("qom").unwrap(), Objective::Qom);
        assert_eq!(parse_objective(" aoi-mean ").unwrap(), Objective::AoiMean);
        assert_eq!(parse_objective("aoi-peak").unwrap(), Objective::AoiPeak);
        let e = parse_objective("freshness").unwrap_err();
        assert!(e.reason.contains("aoi-mean"), "{e}");
    }

    #[test]
    fn error_messages_name_the_spec() {
        let e = parse_dist("weibull:40", 100).unwrap_err();
        assert!(e.to_string().contains("weibull:40"));
    }

    #[test]
    fn canonical_forms_collapse_aliases_and_float_spellings() {
        assert_eq!(canonical_dist("weibull:40,3").unwrap(), "weibull:40,3");
        assert_eq!(canonical_dist("weibull:40.0,3.00").unwrap(), "weibull:40,3");
        assert_eq!(canonical_dist("exponential:0.050").unwrap(), "exp:0.05");
        assert_eq!(canonical_dist("deterministic:7").unwrap(), "det:7");
        assert_eq!(canonical_dist(" det:7 ").unwrap(), "det:7");
        assert_eq!(
            canonical_dist("trace: /tmp/x.txt").unwrap(),
            "trace:/tmp/x.txt"
        );
        assert_eq!(
            canonical_recharge("bernoulli:0.50,1.0").unwrap(),
            "bernoulli:0.5,1"
        );
        // Same canonical text ⇒ same parse result.
        let a = parse_dist("exponential:0.050", 4_096).unwrap();
        let b = parse_dist(&canonical_dist("exponential:0.050").unwrap(), 4_096).unwrap();
        assert_eq!(a.mean(), b.mean());
    }

    #[test]
    fn canonical_rejects_unknown_and_bad_arity() {
        assert!(canonical_dist("gauss:1,2").is_err());
        assert!(canonical_dist("weibull:40").is_err());
        assert!(canonical_recharge("solar:1").is_err());
        assert!(canonical_recharge("bernoulli:0.5").is_err());
    }
}
