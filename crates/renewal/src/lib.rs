//! Discrete renewal theory for slotted event processes.
//!
//! The paper's analysis leans on three renewal-theoretic objects:
//!
//! 1. the **renewal mass function** `u_t` — the probability that *some* event
//!    occurs in slot `t` given a renewal at slot 0 ([`RenewalFunction`]);
//! 2. the **forward recurrence time** `Ψ(t)` — the wait from slot `t` to the
//!    next event ([`forward_recurrence`], [`equilibrium_distribution`]);
//! 3. the **conditional capture hazards** `β̂_i` of the partial-information
//!    model (Appendix B): the probability that an event occurs `i` slots
//!    after the last *captured* event, given everything a duty-cycled sensor
//!    has (not) observed since.
//!
//! The paper derives (3) by manipulating continuous-time integral equations.
//! In slotted time there is an exact, simpler route: propagate a belief over
//! the *age* of the renewal process (slots since the last actual event),
//! censored by the sensor's activation sequence. [`AgeBeliefDp`] implements
//! that propagation in `O(#cooling slots)` per step by keying the belief on
//! the slot of the last actual event.
//!
//! # Example
//!
//! ```
//! use evcap_dist::SlotPmf;
//! use evcap_renewal::RenewalFunction;
//!
//! # fn main() -> Result<(), evcap_dist::DistError> {
//! let pmf = SlotPmf::from_pmf(vec![0.5, 0.5])?;
//! let renewal = RenewalFunction::new(&pmf, 64);
//! // The renewal density converges to 1/μ = 1/1.5.
//! assert!((renewal.mass(60) - 1.0 / 1.5).abs() < 1e-6);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

mod age;
mod belief;
mod forward;
mod renewal_fn;

pub use age::{age_distribution, limiting_age, mean_spread, spread_distribution};
pub use belief::{AgeBeliefDp, BeliefStep};
pub use forward::{equilibrium_distribution, forward_recurrence};
pub use renewal_fn::RenewalFunction;
