//! Age (backward recurrence time) and spread distributions.
//!
//! Complements [`forward_recurrence`](crate::forward_recurrence): the *age*
//! `A(t)` is the time since the last event at or before `t`, and the
//! *spread* is the length of the gap that covers `t`. Their limiting laws
//! give the classic inspection paradox (`E[spread] = E[X²]/E[X] ≥ μ`), and
//! the limiting forward-recurrence law powers the simulator's
//! equilibrium-start mode (sampling the process as if it had been running
//! forever, instead of anchoring an event at slot 0).

use evcap_dist::SlotPmf;

use crate::renewal_fn::RenewalFunction;

/// Distribution of the age `A(t)`: `age_distribution(pmf, t)[a] = P(A(t) = a)`
/// for `a = 0..=t`, given a renewal at slot 0.
///
/// `P(A(t) = a) = u_{t−a} · P(X > a)`: the last event happened at `t − a`
/// and the following gap outlives `a` slots.
pub fn age_distribution(pmf: &SlotPmf, t: usize) -> Vec<f64> {
    let renewal = RenewalFunction::new(pmf, t);
    (0..=t)
        .map(|a| renewal.mass(t - a) * pmf.survival(a))
        .collect()
}

/// The limiting age law `P(A = a) → (1 − F(a))/μ`, identical in form to the
/// limiting forward recurrence (shifted by one slot convention).
pub fn limiting_age(pmf: &SlotPmf, max_a: usize) -> Vec<f64> {
    let mu = pmf.mean();
    (0..=max_a).map(|a| pmf.survival(a) / mu).collect()
}

/// The limiting *spread* (length-biased gap) law:
/// `P(L = ℓ) = ℓ·α_ℓ/μ` — long gaps are proportionally more likely to cover
/// a random inspection time.
pub fn spread_distribution(pmf: &SlotPmf, max_len: usize) -> Vec<f64> {
    let mu = pmf.mean();
    (1..=max_len).map(|l| l as f64 * pmf.pmf(l) / mu).collect()
}

/// Mean of the limiting spread, `E[X²]/E[X]` (the inspection paradox value),
/// computed over the first `max_len` slots plus the geometric tail left
/// uncounted — callers should pick `max_len` past the bulk of the mass.
pub fn mean_spread(pmf: &SlotPmf, max_len: usize) -> f64 {
    let mu = pmf.mean();
    let second_moment: f64 = (1..=max_len)
        .map(|l| (l as f64) * (l as f64) * pmf.pmf(l))
        .sum();
    second_moment / mu
}

#[cfg(test)]
mod tests {
    use super::*;
    use evcap_dist::{Discretizer, SlotPmf, Weibull};

    #[test]
    fn age_distribution_sums_to_one() {
        let pmf = SlotPmf::from_pmf(vec![0.2, 0.5, 0.3]).unwrap();
        for t in [0usize, 1, 3, 10, 25] {
            let dist = age_distribution(&pmf, t);
            let total: f64 = dist.iter().sum();
            assert!((total - 1.0).abs() < 1e-9, "t={t}: {total}");
        }
    }

    #[test]
    fn age_zero_at_time_zero() {
        let pmf = SlotPmf::from_pmf(vec![0.2, 0.8]).unwrap();
        let dist = age_distribution(&pmf, 0);
        assert!((dist[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn age_converges_to_limiting_law() {
        let pmf = Discretizer::new()
            .discretize(&Weibull::new(8.0, 2.0).unwrap())
            .unwrap();
        let t = 400;
        let dist = age_distribution(&pmf, t);
        let limit = limiting_age(&pmf, 30);
        for a in 0..=30 {
            assert!(
                (dist[a] - limit[a]).abs() < 1e-4,
                "a={a}: {} vs {}",
                dist[a],
                limit[a]
            );
        }
    }

    #[test]
    fn deterministic_age_is_uniform_in_the_limit() {
        // Gap always 4: the age cycles 0,1,2,3 → limiting law uniform on
        // {0,1,2,3}.
        let pmf = SlotPmf::from_pmf(vec![0.0, 0.0, 0.0, 1.0]).unwrap();
        let limit = limiting_age(&pmf, 5);
        for (a, &p) in limit.iter().enumerate().take(4) {
            assert!((p - 0.25).abs() < 1e-12, "a={a}");
        }
        assert!(limit[4].abs() < 1e-12);
    }

    #[test]
    fn spread_is_length_biased_and_proper() {
        let pmf = SlotPmf::from_pmf(vec![0.5, 0.0, 0.0, 0.5]).unwrap();
        // μ = 2.5; spread: P(1) = 0.5/2.5 = 0.2, P(4) = 2/2.5 = 0.8.
        let spread = spread_distribution(&pmf, 4);
        assert!((spread[0] - 0.2).abs() < 1e-12);
        assert!((spread[3] - 0.8).abs() < 1e-12);
        let total: f64 = spread.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inspection_paradox() {
        // E[spread] ≥ μ, strictly unless deterministic.
        let mixed = SlotPmf::from_pmf(vec![0.5, 0.0, 0.0, 0.5]).unwrap();
        assert!(mean_spread(&mixed, 4) > mixed.mean() + 0.5);
        let det = SlotPmf::from_pmf(vec![0.0, 0.0, 1.0]).unwrap();
        assert!((mean_spread(&det, 3) - det.mean()).abs() < 1e-12);
    }
}
