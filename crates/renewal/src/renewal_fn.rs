//! The discrete renewal mass function and its cumulative form.

use evcap_dist::SlotPmf;

/// The renewal mass function `u_t = P(an event occurs in slot t | renewal at
/// slot 0)` and the renewal function `M(t) = E[#events in (0, t]] = Σ u`.
///
/// Computed by the standard convolution recursion
/// `u_t = Σ_{s=1}^{t} α_s · u_{t−s}` with `u_0 = 1`.
///
/// By the elementary renewal theorem, `u_t → 1/μ`; the paper uses this as
/// `lim M(T)/T = 1/μ` when deriving the energy-balance constraint (6).
///
/// # Example
///
/// ```
/// use evcap_dist::SlotPmf;
/// use evcap_renewal::RenewalFunction;
///
/// # fn main() -> Result<(), evcap_dist::DistError> {
/// let pmf = SlotPmf::from_pmf(vec![0.25, 0.75])?;
/// let renewal = RenewalFunction::new(&pmf, 100);
/// assert_eq!(renewal.mass(0), 1.0);
/// // u_1 = α_1, u_2 = α_2 + α_1².
/// assert!((renewal.mass(1) - 0.25).abs() < 1e-12);
/// assert!((renewal.mass(2) - (0.75 + 0.0625)).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RenewalFunction {
    mass: Vec<f64>,
    cumulative: Vec<f64>,
}

impl RenewalFunction {
    /// Computes `u_0..=u_horizon` for the given inter-arrival pmf.
    ///
    /// Cost is `O(horizon · min(horizon, support))`.
    pub fn new(pmf: &SlotPmf, horizon: usize) -> Self {
        let mut mass = Vec::with_capacity(horizon + 1);
        mass.push(1.0);
        // Effective support bound: beyond the pmf's stored head plus the
        // window we compute, the geometric tail still contributes, so we use
        // `pmf.pmf(s)` (which understands the tail) rather than `masses()`.
        for t in 1..=horizon {
            let mut u = 0.0;
            for s in 1..=t {
                let a = pmf.pmf(s);
                if a > 0.0 {
                    u += a * mass[t - s];
                }
            }
            mass.push(u.clamp(0.0, 1.0));
        }
        let mut cumulative = Vec::with_capacity(horizon + 1);
        let mut acc = 0.0;
        for (t, &u) in mass.iter().enumerate() {
            if t > 0 {
                acc += u;
            }
            cumulative.push(acc);
        }
        Self { mass, cumulative }
    }

    /// `u_t`: probability of an event in slot `t` (with `u_0 = 1`, the
    /// conditioning renewal).
    ///
    /// # Panics
    ///
    /// Panics if `t` exceeds the computed horizon.
    pub fn mass(&self, t: usize) -> f64 {
        self.mass[t]
    }

    /// `M(t) = E[#events in slots 1..=t]`.
    ///
    /// # Panics
    ///
    /// Panics if `t` exceeds the computed horizon.
    pub fn expected_events(&self, t: usize) -> f64 {
        self.cumulative[t]
    }

    /// The computed horizon (largest valid `t`).
    pub fn horizon(&self) -> usize {
        self.mass.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evcap_dist::{Discretizer, SlotPmf, Weibull};

    #[test]
    fn geometric_renewal_density_is_flat() {
        // Geometric(p): memoryless, so u_t = p for every t ≥ 1.
        let p = 0.3;
        let pmf = SlotPmf::from_hazards(&[p]).unwrap();
        let r = RenewalFunction::new(&pmf, 50);
        for t in 1..=50 {
            assert!((r.mass(t) - p).abs() < 1e-12, "t={t}");
        }
        assert!((r.expected_events(50) - 50.0 * p).abs() < 1e-9);
    }

    #[test]
    fn deterministic_renewal_spikes_at_multiples() {
        let pmf = SlotPmf::from_pmf(vec![0.0, 0.0, 1.0]).unwrap();
        let r = RenewalFunction::new(&pmf, 12);
        for t in 1..=12 {
            let expected = if t % 3 == 0 { 1.0 } else { 0.0 };
            assert!((r.mass(t) - expected).abs() < 1e-12, "t={t}");
        }
        assert!((r.expected_events(12) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn elementary_renewal_theorem() {
        let pmf = Discretizer::new()
            .discretize(&Weibull::new(10.0, 2.0).unwrap())
            .unwrap();
        let r = RenewalFunction::new(&pmf, 400);
        let limit = 1.0 / pmf.mean();
        // The density oscillates early and settles at 1/μ.
        for t in 350..=400 {
            assert!(
                (r.mass(t) - limit).abs() < 1e-3,
                "t={t}: {} vs {limit}",
                r.mass(t)
            );
        }
        // M(t)/t converges to 1/μ as well.
        assert!((r.expected_events(400) / 400.0 - limit).abs() < 0.01);
    }

    #[test]
    fn renewal_function_with_geometric_tail() {
        // Markov-style pmf exercising the tail path of `pmf.pmf(s)`.
        let pmf = SlotPmf::with_tail(vec![0.4], 0.6, 0.5, "test".into()).unwrap();
        let r = RenewalFunction::new(&pmf, 200);
        let limit = 1.0 / pmf.mean();
        assert!((r.mass(200) - limit).abs() < 1e-6);
    }
}
