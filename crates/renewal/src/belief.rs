//! Exact age-belief propagation under a censoring activation policy.
//!
//! This module is the slotted-time replacement for the paper's Appendix B.
//! After a sensor captures an event (renewing its schedule at slot 0), the
//! partial-information chain needs, for every subsequent slot `i`, the
//! probability `β̂_i` that an event occurs in slot `i` **given** that the
//! sensor has not captured anything in slots `1..i` — where "not captured"
//! means: in every slot the sensor was active, no event occurred; in slots it
//! slept, anything may have happened.
//!
//! Because the event process is renewal, the only latent state is the *age*
//! `a` — the number of slots since the last actual event (captured or
//! missed). Conditioned on the age, an event occurs in the current slot with
//! the pmf's hazard `β_a`. The belief over ages is propagated exactly:
//!
//! * event & sensor active (prob `β_a · c_i`): **capture** — the mass leaves
//!   the "no capture yet" chain;
//! * event & sensor asleep (prob `β_a · (1 − c_i)`): **miss** — the age
//!   resets, so the mass moves to the bucket "last event at slot `i`";
//! * no event (prob `1 − β_a`): the age grows by one.
//!
//! Keying buckets by the *slot of the last actual event* (rather than the
//! age) keeps the representation stable: only slots with `c_i < 1` can ever
//! create a new bucket, so the belief stays as small as the policy's cooling
//! region regardless of how long the chain runs.

use evcap_dist::SlotPmf;

/// Belief mass below which a bucket is dropped (the pruned mass is tracked
/// and reported via [`AgeBeliefDp::pruned_mass`]).
const PRUNE_EPS: f64 = 1e-15;

/// The outcome of advancing the belief by one slot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BeliefStep {
    /// The slot index `i` that was just processed (1-based, counted from the
    /// renewing capture).
    pub slot: usize,
    /// `β̂_i`: probability that an event occurs in slot `i`, conditioned on
    /// no capture in slots `1..i`.
    pub hazard: f64,
    /// Joint probability of reaching slot `i` uncaptured *and* capturing in
    /// it: `S_i · c_i · β̂_i` where `S_i` is the chain survival.
    pub capture_mass: f64,
    /// Chain survival *after* this slot: `P(no capture in slots 1..=i)`.
    pub survival: f64,
}

/// Exact belief over the renewal process age, censored by an activation
/// policy; yields the conditional hazards `β̂_i` of the paper's
/// partial-information chain.
///
/// # Example
///
/// With a sensor that is always active (`c ≡ 1`), no event is ever missed,
/// so `β̂_i` equals the plain inter-arrival hazard `β_i`:
///
/// ```
/// use evcap_dist::SlotPmf;
/// use evcap_renewal::AgeBeliefDp;
///
/// # fn main() -> Result<(), evcap_dist::DistError> {
/// let pmf = SlotPmf::from_pmf(vec![0.2, 0.5, 0.3])?;
/// let mut dp = AgeBeliefDp::new(&pmf);
/// for i in 1..=3 {
///     let step = dp.step(1.0);
///     assert!((step.hazard - pmf.hazard(i)).abs() < 1e-12);
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct AgeBeliefDp<'a> {
    pmf: &'a SlotPmf,
    /// `(slot of last actual event, joint mass)`; masses sum to the chain
    /// survival `P(no capture yet)` (up to pruning).
    buckets: Vec<(usize, f64)>,
    /// The next slot to process (1-based).
    slot: usize,
    /// Chain survival after the last processed slot.
    survival: f64,
    /// Total mass dropped by pruning, for diagnostics.
    pruned: f64,
}

impl<'a> AgeBeliefDp<'a> {
    /// Starts a fresh chain: an event was captured at slot 0, so the age is
    /// known exactly.
    pub fn new(pmf: &'a SlotPmf) -> Self {
        Self {
            pmf,
            buckets: vec![(0, 1.0)],
            slot: 1,
            survival: 1.0,
            pruned: 0.0,
        }
    }

    /// Advances one slot under activation probability `c ∈ [0, 1]`, returning
    /// the slot's conditional hazard and capture mass.
    ///
    /// # Panics
    ///
    /// Panics if `c` is outside `[0, 1]`.
    pub fn step(&mut self, c: f64) -> BeliefStep {
        assert!(
            (0.0..=1.0).contains(&c) && c.is_finite(),
            "activation probability must lie in [0, 1], got {c}"
        );
        let i = self.slot;
        let total: f64 = self.buckets.iter().map(|&(_, m)| m).sum();
        let mut event_mass = 0.0;
        let mut missed_mass = 0.0;
        for (last_event, mass) in &mut self.buckets {
            let age = i - *last_event;
            let beta = self.pmf.hazard(age);
            let event = *mass * beta;
            event_mass += event;
            missed_mass += event * (1.0 - c);
            *mass -= event;
        }
        let capture_mass = event_mass * c;
        if missed_mass > 0.0 {
            self.buckets.push((i, missed_mass));
        }
        // Prune negligible buckets to keep the representation compact.
        let pruned_before = self.pruned;
        self.buckets.retain(|&(_, m)| {
            if m >= PRUNE_EPS {
                true
            } else {
                // Track what we drop so invariants can account for it.
                false
            }
        });
        let remaining: f64 = self.buckets.iter().map(|&(_, m)| m).sum();
        let expected_remaining = total - capture_mass;
        self.pruned = pruned_before + (expected_remaining - remaining).max(0.0);
        self.survival = remaining;
        self.slot = i + 1;
        BeliefStep {
            slot: i,
            hazard: if total > 0.0 {
                (event_mass / total).clamp(0.0, 1.0)
            } else {
                0.0
            },
            capture_mass,
            survival: self.survival,
        }
    }

    /// Chain survival after the last processed slot:
    /// `P(no capture in slots 1..slot)`.
    pub fn survival(&self) -> f64 {
        self.survival
    }

    /// The next slot [`step`](Self::step) will process.
    pub fn next_slot(&self) -> usize {
        self.slot
    }

    /// Number of live belief buckets (bounded by 1 + the number of processed
    /// slots with `c < 1`).
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Total probability mass dropped by pruning so far (diagnostic; should
    /// stay ≪ any tolerance used downstream).
    pub fn pruned_mass(&self) -> f64 {
        self.pruned
    }

    /// Runs the DP for `horizon` slots under the per-slot activation
    /// probabilities given by `policy(i)`, collecting every step.
    pub fn run(pmf: &'a SlotPmf, policy: impl Fn(usize) -> f64, horizon: usize) -> Vec<BeliefStep> {
        let mut dp = AgeBeliefDp::new(pmf);
        (0..horizon)
            .map(|_| dp.step(policy(dp.next_slot())))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::renewal_fn::RenewalFunction;
    use evcap_dist::{Discretizer, MarkovEvents, SlotPmf, Weibull};

    #[test]
    fn always_active_reproduces_plain_hazard() {
        let pmf = Discretizer::new()
            .discretize(&Weibull::new(12.0, 3.0).unwrap())
            .unwrap();
        let steps = AgeBeliefDp::run(&pmf, |_| 1.0, 30);
        for step in &steps {
            assert!(
                (step.hazard - pmf.hazard(step.slot)).abs() < 1e-12,
                "slot {}",
                step.slot
            );
        }
    }

    #[test]
    fn never_active_reproduces_renewal_density() {
        // With no observations, P(event in slot i) is the renewal mass u_i.
        let pmf = SlotPmf::from_pmf(vec![0.3, 0.3, 0.4]).unwrap();
        let renewal = RenewalFunction::new(&pmf, 40);
        let steps = AgeBeliefDp::run(&pmf, |_| 0.0, 40);
        for step in &steps {
            assert!(
                (step.hazard - renewal.mass(step.slot)).abs() < 1e-9,
                "slot {}: {} vs {}",
                step.slot,
                step.hazard,
                renewal.mass(step.slot)
            );
            // Nothing is ever captured.
            assert_eq!(step.capture_mass, 0.0);
            assert!((step.survival - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn capture_masses_and_survival_are_consistent() {
        let pmf = SlotPmf::from_pmf(vec![0.5, 0.5]).unwrap();
        let mut dp = AgeBeliefDp::new(&pmf);
        let mut total_captured = 0.0;
        let mut prev_survival = 1.0;
        for _ in 0..200 {
            let step = dp.step(0.7);
            total_captured += step.capture_mass;
            // capture_mass = prev_survival · c · hazard.
            assert!((step.capture_mass - prev_survival * 0.7 * step.hazard).abs() < 1e-12);
            prev_survival = step.survival;
        }
        // Eventually everything is captured.
        assert!((total_captured + dp.survival() - 1.0).abs() < 1e-9);
        assert!(dp.survival() < 1e-9);
    }

    #[test]
    fn markov_chain_hazards_match_closed_form() {
        // For the two-state Markov renewal process with an always-active
        // sensor, β̂_1 = a and β̂_k = 1 − b thereafter.
        let chain = MarkovEvents::new(0.3, 0.6).unwrap();
        let pmf = chain.to_slot_pmf().unwrap();
        let steps = AgeBeliefDp::run(&pmf, |_| 1.0, 10);
        assert!((steps[0].hazard - 0.3).abs() < 1e-12);
        for step in &steps[1..] {
            assert!((step.hazard - 0.4).abs() < 1e-12, "slot {}", step.slot);
        }
    }

    #[test]
    fn bucket_count_bounded_by_cooling_slots() {
        let pmf = Discretizer::new()
            .discretize(&Weibull::new(12.0, 3.0).unwrap())
            .unwrap();
        // Policy: sleep in slots 1..=9, active afterwards.
        let mut dp = AgeBeliefDp::new(&pmf);
        for _ in 0..200 {
            let c = if dp.next_slot() <= 9 { 0.0 } else { 1.0 };
            dp.step(c);
        }
        // Buckets: the initial one plus at most one per cooling slot.
        assert!(dp.bucket_count() <= 10, "{}", dp.bucket_count());
        assert!(dp.pruned_mass() < 1e-9);
    }

    #[test]
    fn missed_events_raise_later_hazard() {
        // Deterministic gaps of 3: if the sensor sleeps through slot 3, the
        // event recurs at slot 6 with certainty.
        let pmf = SlotPmf::from_pmf(vec![0.0, 0.0, 1.0]).unwrap();
        let steps = AgeBeliefDp::run(&pmf, |i| if i <= 3 { 0.0 } else { 1.0 }, 6);
        assert!((steps[2].hazard - 1.0).abs() < 1e-12); // slot 3: missed
        assert!((steps[3].hazard - 0.0).abs() < 1e-12);
        assert!((steps[5].hazard - 1.0).abs() < 1e-12); // slot 6: captured
        assert!(steps[5].survival < 1e-12);
    }

    #[test]
    #[should_panic(expected = "activation probability")]
    fn step_rejects_invalid_probability() {
        let pmf = SlotPmf::from_pmf(vec![1.0]).unwrap();
        let mut dp = AgeBeliefDp::new(&pmf);
        dp.step(1.5);
    }
}
