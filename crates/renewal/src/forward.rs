//! Forward recurrence time (residual life) of a slotted renewal process.

use evcap_dist::SlotPmf;

use crate::renewal_fn::RenewalFunction;

/// Distribution of the forward recurrence time `Ψ(t)`: given a renewal at
/// slot 0, `forward_recurrence(pmf, t, max_k)[k−1] = P(next event occurs in
/// slot t + k)` for `k = 1..=max_k`.
///
/// This is the discrete analogue of the paper's `G_t(x)` (Appendix B),
/// computed exactly from the renewal mass function:
///
/// `P(Ψ(t) = k) = Σ_{j=0}^{t} u_j · α_{t−j+k} / 1` restricted to gaps that
/// straddle `t` (the renewal at `j` is the last one at or before `t`).
///
/// # Panics
///
/// Panics if `max_k == 0`.
pub fn forward_recurrence(pmf: &SlotPmf, t: usize, max_k: usize) -> Vec<f64> {
    assert!(max_k >= 1, "max_k must be at least 1");
    let renewal = RenewalFunction::new(pmf, t);
    let mut out = vec![0.0; max_k];
    for j in 0..=t {
        let u = renewal.mass(j);
        if u <= 0.0 {
            continue;
        }
        for (k_idx, slot_prob) in out.iter_mut().enumerate() {
            let gap = t - j + k_idx + 1;
            // The gap starting at j must skip every slot in (j, t] and land
            // exactly at t + k. `u_j · α_gap` double counts nothing because
            // `u_j` is the probability that *a* renewal happens at j and the
            // next gap is independent of the past.
            *slot_prob += u * pmf.pmf(gap);
        }
    }
    out
}

/// The limiting (equilibrium) forward recurrence distribution:
/// `P(Ψ(∞) = k) = (1 − F(k − 1)) / μ`.
///
/// This is the stationary distribution of the residual life chain and the
/// limit of [`forward_recurrence`] as `t → ∞`.
///
/// # Panics
///
/// Panics if `max_k == 0`.
pub fn equilibrium_distribution(pmf: &SlotPmf, max_k: usize) -> Vec<f64> {
    assert!(max_k >= 1, "max_k must be at least 1");
    let mu = pmf.mean();
    (1..=max_k).map(|k| pmf.survival(k - 1) / mu).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use evcap_dist::{Discretizer, SlotPmf, Weibull};

    #[test]
    fn at_time_zero_forward_recurrence_is_the_gap_pmf() {
        let pmf = SlotPmf::from_pmf(vec![0.2, 0.5, 0.3]).unwrap();
        let fr = forward_recurrence(&pmf, 0, 3);
        for k in 1..=3 {
            assert!((fr[k - 1] - pmf.pmf(k)).abs() < 1e-12, "k={k}");
        }
    }

    #[test]
    fn forward_recurrence_sums_to_one() {
        let pmf = SlotPmf::from_pmf(vec![0.2, 0.5, 0.3]).unwrap();
        for t in [0, 1, 5, 20] {
            let fr = forward_recurrence(&pmf, t, 3);
            let total: f64 = fr.iter().sum();
            assert!((total - 1.0).abs() < 1e-9, "t={t}: {total}");
        }
    }

    #[test]
    fn converges_to_equilibrium() {
        let pmf = Discretizer::new()
            .discretize(&Weibull::new(8.0, 2.0).unwrap())
            .unwrap();
        let horizon = 30;
        let fr = forward_recurrence(&pmf, 500, horizon);
        let eq = equilibrium_distribution(&pmf, horizon);
        for k in 0..horizon {
            assert!(
                (fr[k] - eq[k]).abs() < 1e-4,
                "k={}: {} vs {}",
                k + 1,
                fr[k],
                eq[k]
            );
        }
    }

    #[test]
    fn equilibrium_sums_to_one_over_full_support() {
        let pmf = SlotPmf::from_pmf(vec![0.1, 0.2, 0.3, 0.4]).unwrap();
        let eq = equilibrium_distribution(&pmf, 4);
        let total: f64 = eq.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn deterministic_process_counts_down() {
        let pmf = SlotPmf::from_pmf(vec![0.0, 0.0, 0.0, 1.0]).unwrap();
        // At t = 1 the next event is at slot 4 ⇒ Ψ = 3 with certainty.
        let fr = forward_recurrence(&pmf, 1, 6);
        assert!((fr[2] - 1.0).abs() < 1e-12);
        let rest: f64 = fr.iter().sum::<f64>() - fr[2];
        assert!(rest.abs() < 1e-12);
    }
}
