//! Exhaustive search over small partial-information policy spaces.
//!
//! The paper proves that computing the exact POMDP optimum is intractable in
//! general, which is precisely why the clustering heuristic exists. On
//! *small* instances, however, the best **deterministic state-indexed**
//! policy (an activation bit per state `f_i`, with everything beyond the
//! enumerated window fixed to aggressive recovery) can be found by brute
//! force — `2^window` evaluations of the exact belief chain. This module
//! provides that search as a certification tool: integration tests and the
//! `ablation_refined_convergence` bench use it to measure how close the
//! clustering heuristic and its refinements get to the best policy in the
//! class.
//!
//! The search cost doubles per window slot (the "curse of dimensionality" in
//! miniature), so [`ExhaustiveSearch::optimize`] refuses windows beyond 20
//! states.

use evcap_dist::SlotPmf;
use evcap_energy::ConsumptionModel;

use crate::clustering::{evaluate_partial_info, ClusterEvaluation, EvalOptions};
use crate::greedy::EnergyBudget;
use crate::policy::{ActivationPolicy, DecisionContext, InfoModel};
use crate::{PolicyError, Result};

/// Hard cap on the enumerated window (2^20 ≈ 1M chain evaluations).
pub const MAX_WINDOW: usize = 20;

/// A deterministic state-indexed policy found by exhaustive search: one
/// activation bit per state in `1..=window`, aggressive (always active)
/// beyond.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitmaskPolicy {
    bits: Vec<bool>,
}

impl BitmaskPolicy {
    /// The activation decision in state `f_i`.
    ///
    /// # Panics
    ///
    /// Panics if `state == 0`; states are 1-based.
    pub fn active(&self, state: usize) -> bool {
        assert!(state >= 1, "states are 1-based");
        self.bits.get(state - 1).copied().unwrap_or(true)
    }

    /// The enumerated window length.
    pub fn window(&self) -> usize {
        self.bits.len()
    }

    /// The activation bits, state 1 first.
    pub fn bits(&self) -> &[bool] {
        &self.bits
    }
}

impl ActivationPolicy for BitmaskPolicy {
    fn probability(&self, ctx: &DecisionContext) -> f64 {
        if self.active(ctx.state) {
            1.0
        } else {
            0.0
        }
    }

    fn info_model(&self) -> InfoModel {
        InfoModel::Partial
    }

    fn label(&self) -> String {
        let pattern: String = self
            .bits
            .iter()
            .map(|&b| if b { '1' } else { '0' })
            .collect();
        format!("bitmask-PI({pattern}|aggressive)")
    }
}

/// Brute-force search for the best energy-balanced deterministic
/// state-indexed policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExhaustiveSearch {
    budget: EnergyBudget,
    window: usize,
    eval: EvalOptions,
}

impl ExhaustiveSearch {
    /// Creates a search over the first `window` states (recovery beyond).
    pub fn new(budget: EnergyBudget, window: usize) -> Self {
        Self {
            budget,
            window,
            eval: EvalOptions::default(),
        }
    }

    /// Overrides the evaluator controls.
    #[must_use]
    pub fn eval_options(mut self, opts: EvalOptions) -> Self {
        self.eval = opts;
        self
    }

    /// Enumerates all `2^window` policies and returns the feasible one with
    /// the highest capture probability.
    ///
    /// # Errors
    ///
    /// * [`PolicyError::InvalidParameter`] if `window` is 0 or exceeds
    ///   [`MAX_WINDOW`].
    /// * [`PolicyError::BudgetTooSmall`] for a zero budget.
    /// * [`PolicyError::NoFeasibleCandidate`] if no enumerated policy is
    ///   energy balanced (shrink the window or grow the budget).
    pub fn optimize(
        &self,
        pmf: &SlotPmf,
        consumption: &ConsumptionModel,
    ) -> Result<(BitmaskPolicy, ClusterEvaluation)> {
        if self.window == 0 || self.window > MAX_WINDOW {
            return Err(PolicyError::InvalidParameter {
                name: "window",
                value: self.window as f64,
                expected: "a window between 1 and 20 states",
            });
        }
        if self.budget.rate() <= 0.0 {
            return Err(PolicyError::BudgetTooSmall { budget: 0.0 });
        }
        let e = self.budget.rate();
        let mut best: Option<(u64, ClusterEvaluation)> = None;
        for mask in 0u64..(1 << self.window) {
            let eval = evaluate_partial_info(
                pmf,
                |i| {
                    if i <= self.window {
                        if (mask >> (i - 1)) & 1 == 1 {
                            1.0
                        } else {
                            0.0
                        }
                    } else {
                        1.0
                    }
                },
                consumption,
                self.eval,
            );
            if eval.discharge_rate <= e + 1e-9 {
                let better = best
                    .as_ref()
                    .map(|(_, b)| eval.capture_probability > b.capture_probability + 1e-12)
                    .unwrap_or(true);
                if better {
                    best = Some((mask, eval));
                }
            }
        }
        let (mask, eval) = best.ok_or(PolicyError::NoFeasibleCandidate)?;
        let bits = (0..self.window).map(|i| (mask >> i) & 1 == 1).collect();
        Ok((BitmaskPolicy { bits }, eval))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clustering::ClusteringOptimizer;
    use evcap_dist::{Discretizer, SlotPmf, Weibull};

    fn consumption() -> ConsumptionModel {
        ConsumptionModel::paper_defaults()
    }

    #[test]
    fn finds_the_obvious_optimum_on_deterministic_gaps() {
        // Gap always 4: the unique best policy activates only in state 4.
        let pmf = SlotPmf::from_pmf(vec![0.0, 0.0, 0.0, 1.0]).unwrap();
        let (policy, eval) = ExhaustiveSearch::new(EnergyBudget::per_slot(7.0 / 4.0), 6)
            .optimize(&pmf, &consumption())
            .unwrap();
        assert!(policy.active(4));
        assert!(!policy.active(1) && !policy.active(2) && !policy.active(3));
        assert!((eval.capture_probability - 1.0).abs() < 1e-9);
    }

    #[test]
    fn respects_the_budget() {
        let pmf = SlotPmf::from_pmf(vec![0.3, 0.4, 0.3]).unwrap();
        let (_, eval) = ExhaustiveSearch::new(EnergyBudget::per_slot(1.0), 8)
            .optimize(&pmf, &consumption())
            .unwrap();
        assert!(eval.discharge_rate <= 1.0 + 1e-9);
    }

    #[test]
    fn clustering_heuristic_is_near_optimal_in_the_class() {
        // The headline certification: on a small Weibull instance the
        // clustering policy reaches ≥ 95% of the exhaustive optimum.
        let pmf = Discretizer::new()
            .discretize(&Weibull::new(6.0, 3.0).unwrap())
            .unwrap();
        let budget = EnergyBudget::per_slot(0.8);
        let (_, best) = ExhaustiveSearch::new(budget, 12)
            .optimize(&pmf, &consumption())
            .unwrap();
        let (_, heuristic) = ClusteringOptimizer::new(budget)
            .optimize(&pmf, &consumption())
            .unwrap();
        assert!(
            heuristic.capture_probability >= 0.95 * best.capture_probability,
            "clustering {} vs exhaustive {}",
            heuristic.capture_probability,
            best.capture_probability
        );
        // The clustering policy's *fractional* boundary coefficients let it
        // exceed the best deterministic policy slightly (randomization helps
        // under a budget constraint), but never by much.
        assert!(
            heuristic.capture_probability <= best.capture_probability + 0.05,
            "clustering {} vs exhaustive {}",
            heuristic.capture_probability,
            best.capture_probability
        );
    }

    #[test]
    fn window_limits_enforced() {
        let pmf = SlotPmf::from_pmf(vec![1.0]).unwrap();
        assert!(matches!(
            ExhaustiveSearch::new(EnergyBudget::per_slot(1.0), 0).optimize(&pmf, &consumption()),
            Err(PolicyError::InvalidParameter { .. })
        ));
        assert!(matches!(
            ExhaustiveSearch::new(EnergyBudget::per_slot(1.0), 21).optimize(&pmf, &consumption()),
            Err(PolicyError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn bitmask_policy_trait_wiring() {
        let pmf = SlotPmf::from_pmf(vec![0.5, 0.5]).unwrap();
        let (policy, _) = ExhaustiveSearch::new(EnergyBudget::per_slot(3.0), 4)
            .optimize(&pmf, &consumption())
            .unwrap();
        assert_eq!(policy.info_model(), InfoModel::Partial);
        assert!(policy.label().starts_with("bitmask-PI("));
        // Beyond the window the policy is aggressive.
        assert_eq!(policy.probability(&DecisionContext::stationary(100)), 1.0);
    }
}
