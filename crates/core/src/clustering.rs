//! The heuristic clustering policy for partial information (Section IV-B2).
//!
//! Finding the exact POMDP optimum is intractable (the information set `F_t`
//! grows exponentially), so the paper proposes a *clustering* structure over
//! the states `f_i` ("`i` slots since the last captured event"):
//!
//! ```text
//! π'_PI = (0, …, 0, c_{n1}, 1, …, 1, c_{n2}, 0, …, 0, c_{n3}, aggressive…)
//!          └ cooling ┘└─────── hot ────────┘└ cooling ┘└──── recovery ────┘
//! ```
//!
//! * the **hot region** `[n1, n2]` spends energy where the next event is most
//!   likely;
//! * the **cooling regions** bank energy;
//! * the **recovery region** `[n3, ∞)` activates aggressively until a capture
//!   renews the schedule — the safeguard against silently missed events.
//!
//! Evaluation uses the exact slotted belief propagation
//! ([`evcap_renewal::AgeBeliefDp`]) to obtain the conditional hazards `β̂_i`,
//! from which the chain survival, capture probability `U = μ / E[cycle]`, and
//! discharge rate follow in closed form; [`ClusteringOptimizer`] searches the
//! region boundaries under the energy-balance constraint.

use evcap_dist::SlotPmf;
use evcap_energy::ConsumptionModel;
use evcap_renewal::AgeBeliefDp;

use crate::greedy::EnergyBudget;
use crate::objective::{CycleMoments, Objective};
use crate::policy::{ActivationPolicy, DecisionContext, InfoModel, PolicyTable};
use crate::{PolicyError, Result};

/// Validates that a coefficient is a probability.
fn check_probability(name: &'static str, value: f64) -> Result<f64> {
    if value.is_finite() && (0.0..=1.0).contains(&value) {
        Ok(value)
    } else {
        Err(PolicyError::InvalidParameter {
            name,
            value,
            expected: "a probability in [0, 1]",
        })
    }
}

/// The paper's clustering activation policy `π'_PI(e)` (Eq. 11).
///
/// # Example
///
/// ```
/// use evcap_core::ClusteringPolicy;
///
/// # fn main() -> Result<(), evcap_core::PolicyError> {
/// let policy = ClusteringPolicy::new(10, 20, 30, 0.5, 1.0, 1.0)?;
/// assert_eq!(policy.coefficient(5), 0.0);   // cooling
/// assert_eq!(policy.coefficient(10), 0.5);  // fractional hot edge
/// assert_eq!(policy.coefficient(15), 1.0);  // hot
/// assert_eq!(policy.coefficient(25), 0.0);  // cooling again
/// assert_eq!(policy.coefficient(40), 1.0);  // aggressive recovery
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ClusteringPolicy {
    n1: usize,
    n2: usize,
    n3: usize,
    c_n1: f64,
    c_n2: f64,
    c_n3: f64,
}

impl ClusteringPolicy {
    /// Creates a clustering policy with hot region `[n1, n2]`, recovery from
    /// `n3`, and fractional coefficients at the three boundaries.
    ///
    /// When boundaries coincide, the earlier region's coefficient wins (e.g.
    /// for `n1 == n2` the single hot slot uses `c_n1`).
    ///
    /// # Errors
    ///
    /// * [`PolicyError::UnorderedRegions`] unless `1 ≤ n1 ≤ n2 ≤ n3`.
    /// * [`PolicyError::InvalidParameter`] if a coefficient is not a
    ///   probability.
    pub fn new(n1: usize, n2: usize, n3: usize, c_n1: f64, c_n2: f64, c_n3: f64) -> Result<Self> {
        if n1 < 1 || n1 > n2 || n2 > n3 {
            return Err(PolicyError::UnorderedRegions { n1, n2, n3 });
        }
        Ok(Self {
            n1,
            n2,
            n3,
            c_n1: check_probability("c_n1", c_n1)?,
            c_n2: check_probability("c_n2", c_n2)?,
            c_n3: check_probability("c_n3", c_n3)?,
        })
    }

    /// The activation probability in state `f_i`.
    ///
    /// # Panics
    ///
    /// Panics if `state == 0`; states are 1-based.
    pub fn coefficient(&self, state: usize) -> f64 {
        assert!(state >= 1, "states are 1-based");
        if state < self.n1 {
            0.0
        } else if state == self.n1 {
            self.c_n1
        } else if state < self.n2 {
            1.0
        } else if state == self.n2 {
            self.c_n2
        } else if state < self.n3 {
            0.0
        } else if state == self.n3 {
            self.c_n3
        } else {
            1.0
        }
    }

    /// Start of the hot region.
    pub fn n1(&self) -> usize {
        self.n1
    }

    /// End of the hot region.
    pub fn n2(&self) -> usize {
        self.n2
    }

    /// Start of the aggressive recovery region.
    pub fn n3(&self) -> usize {
        self.n3
    }

    /// The three boundary coefficients `(c_{n1}, c_{n2}, c_{n3})`.
    pub fn boundary_coefficients(&self) -> (f64, f64, f64) {
        (self.c_n1, self.c_n2, self.c_n3)
    }

    /// Returns a copy with a different `c_{n1}` (used by the energy-balance
    /// search).
    #[must_use]
    pub fn with_c_n1(&self, c_n1: f64) -> Self {
        Self {
            c_n1: c_n1.clamp(0.0, 1.0),
            ..self.clone()
        }
    }
}

impl ActivationPolicy for ClusteringPolicy {
    fn probability(&self, ctx: &DecisionContext) -> f64 {
        self.coefficient(ctx.state)
    }

    fn info_model(&self) -> InfoModel {
        InfoModel::Partial
    }

    fn label(&self) -> String {
        format!(
            "clustering-PI(n1={}, n2={}, n3={}, c=({:.3}, {:.3}, {:.3}))",
            self.n1, self.n2, self.n3, self.c_n1, self.c_n2, self.c_n3
        )
    }

    fn table(&self) -> Option<PolicyTable> {
        // Everything past n3 is aggressive recovery, so the staircase up to
        // n3 is the whole explicit part. Ablation variants disable recovery
        // by pushing n3 out of reach — don't materialize that.
        if self.n3 > PolicyTable::MAX_EXPLICIT_STATES {
            return None;
        }
        let probs = (1..=self.n3).map(|i| self.coefficient(i)).collect();
        Some(PolicyTable::new(probs, 1.0))
    }
}

/// Analytic performance of a partial-information policy, computed from the
/// exact belief chain under the energy assumption.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterEvaluation {
    /// The QoM `U = μ / E[capture cycle]` — the fraction of events captured.
    pub capture_probability: f64,
    /// Long-run discharge rate in energy units per slot.
    pub discharge_rate: f64,
    /// Expected number of slots between consecutive captures (`1/y_1`).
    pub expected_cycle: f64,
    /// Chain survival mass left unresolved at the evaluation horizon
    /// (diagnostic; should be tiny).
    pub truncated_survival: f64,
}

/// Controls for the analytic evaluator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalOptions {
    /// Stop once the chain survival falls below this.
    pub survival_eps: f64,
    /// Hard cap on evaluated slots (a geometric continuation accounts for
    /// the remainder).
    pub max_slots: usize,
}

impl Default for EvalOptions {
    fn default() -> Self {
        Self {
            survival_eps: 1e-10,
            max_slots: 20_000,
        }
    }
}

/// Evaluates any state-indexed partial-information policy on the event
/// process `pmf`: capture probability, expected capture cycle, and discharge
/// rate, all under the energy assumption.
///
/// `policy(i)` gives the activation probability in state `f_i`.
pub fn evaluate_partial_info(
    pmf: &SlotPmf,
    policy: impl Fn(usize) -> f64,
    consumption: &ConsumptionModel,
    opts: EvalOptions,
) -> ClusterEvaluation {
    evaluate_partial_info_moments(pmf, policy, consumption, opts).0
}

/// Like [`evaluate_partial_info`], additionally reporting the first and
/// second moments of the capture-cycle length — the renewal statistics the
/// age-of-information objectives derive from.
///
/// The second moment rides along as a separate accumulator
/// (`E[T²] = Σ_{i≥1} (2i−1)·P(T ≥ i)`), so the [`ClusterEvaluation`] half
/// of the result is bit-identical to what [`evaluate_partial_info`] has
/// always produced.
pub fn evaluate_partial_info_moments(
    pmf: &SlotPmf,
    policy: impl Fn(usize) -> f64,
    consumption: &ConsumptionModel,
    opts: EvalOptions,
) -> (ClusterEvaluation, CycleMoments) {
    let d1 = consumption.delta1_units();
    let d2 = consumption.delta2_units();
    let mut dp = AgeBeliefDp::new(pmf);
    let mut cycle = 0.0; // Σ_{i≥0} S_i accumulates E[T]; S_0 = 1 added below.
    let mut cycle2 = 0.0; // Σ_{i≥1} (2i−1)·S_{i−1} accumulates E[T²].
    let mut energy = 0.0; // expected energy per cycle
    let mut prev_survival = 1.0;
    let mut last_capture_hazard = 0.0;
    let mut last_c = 0.0;
    let mut last_hazard = 0.0;
    while prev_survival > opts.survival_eps && dp.next_slot() <= opts.max_slots {
        cycle += prev_survival;
        cycle2 += (2 * dp.next_slot() - 1) as f64 * prev_survival;
        let c = policy(dp.next_slot());
        let step = dp.step(c);
        energy += prev_survival * c * (d1 + step.hazard * d2);
        last_capture_hazard = c * step.hazard;
        last_c = c;
        last_hazard = step.hazard;
        prev_survival = step.survival;
    }
    // Geometric continuation for whatever survival remains: capture per slot
    // with probability ≈ last observed c·β̂.
    let residual = prev_survival;
    if residual > 0.0 {
        if last_capture_hazard > 1e-12 {
            let p = last_capture_hazard;
            // Σ_{k≥0} residual·(1 − p)^k slots remain on average.
            let extra_slots = residual / p;
            cycle += extra_slots;
            // Σ_{k≥0} (2(m+k)−1)·residual·(1−p)^k with m the first
            // unevaluated slot.
            let m = dp.next_slot() as f64;
            cycle2 += residual * ((2.0 * m - 1.0) / p + 2.0 * (1.0 - p) / (p * p));
            energy += extra_slots * last_c * (d1 + last_hazard * d2);
        } else {
            // The policy never captures from here on: the cycle never ends.
            return (
                ClusterEvaluation {
                    capture_probability: 0.0,
                    discharge_rate: 0.0,
                    expected_cycle: f64::INFINITY,
                    truncated_survival: residual,
                },
                CycleMoments {
                    first: f64::INFINITY,
                    second: f64::INFINITY,
                },
            );
        }
    }
    (
        ClusterEvaluation {
            capture_probability: (pmf.mean() / cycle).clamp(0.0, 1.0),
            discharge_rate: energy / cycle,
            expected_cycle: cycle,
            truncated_survival: residual,
        },
        CycleMoments {
            first: cycle,
            second: cycle2,
        },
    )
}

impl ClusteringPolicy {
    /// Evaluates this policy analytically on `pmf`.
    pub fn evaluate(
        &self,
        pmf: &SlotPmf,
        consumption: &ConsumptionModel,
        opts: EvalOptions,
    ) -> ClusterEvaluation {
        evaluate_partial_info(pmf, |i| self.coefficient(i), consumption, opts)
    }

    /// Evaluates this policy analytically, with cycle moments.
    pub fn evaluate_moments(
        &self,
        pmf: &SlotPmf,
        consumption: &ConsumptionModel,
        opts: EvalOptions,
    ) -> (ClusterEvaluation, CycleMoments) {
        evaluate_partial_info_moments(pmf, |i| self.coefficient(i), consumption, opts)
    }
}

/// Slack subtracted from a warm hint's priced value to form the screening
/// threshold: wide enough that the cold grid optimum clears it whenever
/// the hint comes from a genuinely neighboring scenario, which keeps the
/// certified fast path the common case.
const WARM_SLACK: f64 = 0.05;

/// Searches clustering-region boundaries for the best energy-balanced policy,
/// following the paper's bounded enumeration ("increase n3 gradually and
/// enumerate n1 and n2 … until the objective cannot be further increased"),
/// accelerated by a coarse grid plus local refinement.
///
/// # Example
///
/// ```no_run
/// use evcap_core::{ClusteringOptimizer, EnergyBudget};
/// use evcap_dist::{Discretizer, Weibull};
/// use evcap_energy::ConsumptionModel;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let pmf = Discretizer::new().discretize(&Weibull::new(40.0, 3.0)?)?;
/// let (policy, eval) = ClusteringOptimizer::new(EnergyBudget::per_slot(0.5))
///     .optimize(&pmf, &ConsumptionModel::paper_defaults())?;
/// assert!(eval.discharge_rate <= 0.5 + 1e-6);
/// assert!(policy.n1() <= policy.n2());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusteringOptimizer {
    budget: EnergyBudget,
    eval: EvalOptions,
    /// Approximate number of grid points per region boundary in the coarse
    /// phase.
    grid_points: usize,
    /// Optional hard cap on `n3`.
    max_n3: Option<usize>,
    /// The metric candidates are ranked by (QoM by default).
    objective: Objective,
}

impl ClusteringOptimizer {
    /// Creates an optimizer for the given recharge budget.
    pub fn new(budget: EnergyBudget) -> Self {
        Self {
            budget,
            eval: EvalOptions::default(),
            grid_points: 14,
            max_n3: None,
            objective: Objective::Qom,
        }
    }

    /// Overrides the analytic evaluator's controls.
    #[must_use]
    pub fn eval_options(mut self, opts: EvalOptions) -> Self {
        self.eval = opts;
        self
    }

    /// Ranks candidates by `objective` instead of QoM. Under
    /// [`Objective::Qom`] the search is unchanged bit for bit; the age
    /// objectives reuse the same lattice and energy-balance bisection but
    /// accept by [`Objective::score`]. The `c_{n1}` balance (spend the whole
    /// budget) remains a heuristic for `AoiMean`, which can in principle
    /// prefer leaving energy unspent; it is provably optimal for `AoiPeak`,
    /// whose score is monotone in the capture probability.
    #[must_use]
    pub fn objective(mut self, objective: Objective) -> Self {
        self.objective = objective;
        self
    }

    /// Overrides the coarse grid density (minimum 4).
    #[must_use]
    pub fn grid_points(mut self, points: usize) -> Self {
        self.grid_points = points.max(4);
        self
    }

    /// Caps the recovery boundary `n3`.
    #[must_use]
    pub fn max_n3(mut self, n3: usize) -> Self {
        self.max_n3 = Some(n3.max(1));
        self
    }

    /// Finds the best clustering policy for the event process.
    ///
    /// # Errors
    ///
    /// * [`PolicyError::BudgetTooSmall`] for a zero budget.
    /// * [`PolicyError::NoFeasibleCandidate`] if no candidate within the
    ///   search bounds satisfies the energy constraint (pathological pmfs).
    pub fn optimize(
        &self,
        pmf: &SlotPmf,
        consumption: &ConsumptionModel,
    ) -> Result<(ClusteringPolicy, ClusterEvaluation)> {
        self.optimize_counted(pmf, consumption)
            .map(|(policy, eval, _)| (policy, eval))
    }

    /// Like [`ClusteringOptimizer::optimize`], additionally reporting how
    /// many `(n1, n2, n3)` candidates the search evaluated — the number the
    /// scenario layer records as solve iterations.
    ///
    /// # Errors
    ///
    /// Same as [`ClusteringOptimizer::optimize`].
    pub fn optimize_counted(
        &self,
        pmf: &SlotPmf,
        consumption: &ConsumptionModel,
    ) -> Result<(ClusteringPolicy, ClusterEvaluation, u64)> {
        self.optimize_counted_with_hint(pmf, consumption, None)
    }

    /// Like [`ClusteringOptimizer::optimize_counted`], optionally seeded
    /// with the region boundaries of a previously solved *neighboring*
    /// scenario (same distribution family, nearby budget).
    ///
    /// The warm pass prices the hint on this scenario, then walks the cold
    /// search's lattice **in the cold order with the cold accept rule**,
    /// skipping the expensive budget bisection for every candidate whose
    /// upper bound (the fully-open variant, pointwise at least any
    /// budget-balanced variant) cannot come within a fixed slack of the
    /// hint's value. Skipped candidates provably cannot be the cold
    /// sweep's final grid optimum, so when the surviving best clears the
    /// threshold the warm search returns the cold policy **bit for bit**
    /// while evaluating far fewer candidates. Whenever that cannot be
    /// certified — the hint violates the search bounds, prices as
    /// infeasible, or out-values the entire surviving lattice — the search
    /// falls back to the full cold enumeration. Successful warm passes
    /// bump the `clustering.warm_hits` observability counter.
    ///
    /// # Errors
    ///
    /// Same as [`ClusteringOptimizer::optimize`].
    pub fn optimize_counted_with_hint(
        &self,
        pmf: &SlotPmf,
        consumption: &ConsumptionModel,
        hint: Option<(usize, usize, usize)>,
    ) -> Result<(ClusteringPolicy, ClusterEvaluation, u64)> {
        if self.budget.rate() <= 0.0 {
            return Err(PolicyError::BudgetTooSmall { budget: 0.0 });
        }
        let lo = pmf.min_support();
        // Upper search bound: essentially all of the gap distribution, with
        // headroom because the capture chain can outlive one gap. When the
        // budget is tight the only feasible policies sleep much longer than
        // that, so the bound doubles adaptively until something is feasible.
        let q999 = quantile_slot(pmf, 0.999);
        let mut hi = self
            .max_n3
            .unwrap_or_else(|| (2 * q999).max(lo + 4))
            .max(lo + 1);
        let mut candidates = 0u64;
        for _ in 0..8 {
            if let Some(h) = hint {
                if let Some((policy, eval)) =
                    self.search_warm(pmf, consumption, lo, hi, h, &mut candidates)
                {
                    evcap_obs::timing::add_count("clustering.warm_hits", 1);
                    return Ok((policy, eval, candidates));
                }
            }
            if let Some((policy, eval)) = self.search(pmf, consumption, lo, hi, &mut candidates) {
                return Ok((policy, eval, candidates));
            }
            if self.max_n3.is_some() {
                break; // the caller pinned the bound; do not exceed it
            }
            hi *= 2;
        }
        Err(PolicyError::NoFeasibleCandidate)
    }

    /// Coarse grid search plus local refinement over `n1 ≤ n2 ≤ n3` within
    /// `[lo, hi]`.
    fn search(
        &self,
        pmf: &SlotPmf,
        consumption: &ConsumptionModel,
        lo: usize,
        hi: usize,
        candidates: &mut u64,
    ) -> Option<(ClusteringPolicy, ClusterEvaluation)> {
        let _span = evcap_obs::timing::span("clustering.search");
        let step = ((hi - lo) / self.grid_points).max(1);

        let mut best: Option<Ranked> = None;
        let mut n1 = lo.max(1);
        while n1 <= hi {
            let mut n2 = n1;
            while n2 <= hi {
                let mut n3 = n2;
                while n3 <= hi {
                    self.consider(pmf, consumption, n1, n2, n3, &mut best, candidates);
                    n3 += step;
                }
                n2 += step;
            }
            n1 += step;
        }

        self.refine(pmf, consumption, lo, hi, step, &mut best, candidates);
        best.map(|r| (r.policy, r.eval))
    }

    /// The warm-hinted counterpart of [`ClusteringOptimizer::search`]: the
    /// same lattice, enumerated in the same order with the same accept
    /// rule, except that candidates whose upper bound cannot reach the
    /// hint-derived threshold are screened out before the budget
    /// bisection. Returns `None` when the screened sweep's verdict cannot
    /// be certified as the cold sweep's (see
    /// [`ClusteringOptimizer::optimize_counted_with_hint`]), which sends
    /// the caller to the full enumeration.
    fn search_warm(
        &self,
        pmf: &SlotPmf,
        consumption: &ConsumptionModel,
        lo: usize,
        hi: usize,
        hint: (usize, usize, usize),
        candidates: &mut u64,
    ) -> Option<(ClusteringPolicy, ClusterEvaluation)> {
        if self.objective != Objective::Qom {
            // The screening bound below certifies *capture probabilities*
            // (the fully-open variant dominates every balanced variant),
            // which only orders candidates under QoM. Age objectives take
            // the cold sweep.
            return None;
        }
        let (h1, h2, h3) = hint;
        if h1 < lo.max(1) || h1 > h2 || h2 > h3 || h3 > hi {
            return None; // the hint violates this search's bounds
        }
        let _span = evcap_obs::timing::span("clustering.search");
        let step = ((hi - lo) / self.grid_points).max(1);

        // Price the hint on *this* scenario (budget-balanced like any other
        // candidate). Its result stays out of `best`: the hint is generally
        // off-lattice, and the equivalence argument below needs `best` to
        // see exactly the candidates the cold sweep would accept.
        let mut priced: Option<Ranked> = None;
        self.consider(pmf, consumption, h1, h2, h3, &mut priced, candidates);
        let hint_eval = priced?.eval;
        let threshold = hint_eval.capture_probability - WARM_SLACK;
        if threshold <= 0.0 {
            return None; // the hint prunes nothing; run the cold sweep
        }

        // Cold lattice, cold order, cold accept rule — but a candidate is
        // only *considered* (feasibility + c_n1 bisection) if the capture
        // probability of its fully-open variant, which bounds every
        // budget-balanced variant from above, clears the threshold. A
        // screened-out candidate therefore has value ≤ threshold, so if
        // the surviving best ends up strictly above the threshold, no
        // skipped candidate could have been the cold sweep's grid optimum
        // (nor perturbed the accept chain that selects it), and the
        // identical refinement below reproduces the cold policy bit for
        // bit. Per-`n1` subtrees are screened first with the everything-
        // from-`n1`-on bound, which dominates every `(n2, n3)` choice.
        let mut best: Option<Ranked> = None;
        let mut n1 = lo.max(1);
        while n1 <= hi {
            let subtree_ub = ClusteringPolicy::new(n1, hi, hi, 1.0, 1.0, 1.0)
                .map(|p| p.evaluate(pmf, consumption, self.eval).capture_probability)
                .unwrap_or(0.0);
            evcap_obs::timing::add_count("clustering.screened", 1);
            if subtree_ub > threshold {
                let mut n2 = n1;
                while n2 <= hi {
                    let mut n3 = n2;
                    while n3 <= hi {
                        if let Ok(full) = ClusteringPolicy::new(n1, n2, n3, 1.0, 1.0, 1.0) {
                            evcap_obs::timing::add_count("clustering.screened", 1);
                            let (eval_full, moments_full) =
                                full.evaluate_moments(pmf, consumption, self.eval);
                            if eval_full.capture_probability > threshold {
                                self.consider_priced(
                                    pmf,
                                    consumption,
                                    full,
                                    eval_full,
                                    moments_full,
                                    &mut best,
                                    candidates,
                                );
                            }
                        }
                        n3 += step;
                    }
                    n2 += step;
                }
            }
            n1 += step;
        }

        let grid_value = best.as_ref().map(|r| r.eval.capture_probability)?;
        if grid_value < threshold + 2e-9 {
            // Too close to the screening threshold to certify that the
            // pruned sweep and the cold sweep agree on the grid optimum.
            return None;
        }
        self.refine(pmf, consumption, lo, hi, step, &mut best, candidates);
        best.map(|r| (r.policy, r.eval))
    }

    /// Local refinement shared by the cold and warm searches: coordinate
    /// descent with shrinking step, seeded from (and folding back into)
    /// `best`.
    #[allow(clippy::too_many_arguments)]
    fn refine(
        &self,
        pmf: &SlotPmf,
        consumption: &ConsumptionModel,
        lo: usize,
        hi: usize,
        step: usize,
        best: &mut Option<Ranked>,
        candidates: &mut u64,
    ) {
        if let Some(seed) = best.as_ref().map(|r| r.policy.clone()) {
            let mut current = (seed.n1(), seed.n2(), seed.n3());
            let mut delta = step.max(2) / 2;
            while delta >= 1 {
                let mut improved = true;
                while improved {
                    improved = false;
                    for dim in 0..3 {
                        for dir in [-1i64, 1] {
                            let mut cand = [current.0 as i64, current.1 as i64, current.2 as i64];
                            cand[dim] += dir * delta as i64;
                            if cand[0] < lo as i64
                                || cand[0] > cand[1]
                                || cand[1] > cand[2]
                                || cand[2] > hi as i64
                            {
                                continue;
                            }
                            let before = best.as_ref().map(|r| r.score);
                            self.consider(
                                pmf,
                                consumption,
                                cand[0] as usize,
                                cand[1] as usize,
                                cand[2] as usize,
                                best,
                                candidates,
                            );
                            let after = best.as_ref().map(|r| r.score);
                            if after > before {
                                current = (cand[0] as usize, cand[1] as usize, cand[2] as usize);
                                improved = true;
                            }
                        }
                    }
                }
                if delta == 1 {
                    break;
                }
                delta /= 2;
            }
        }
    }

    /// Evaluates the `(n1, n2, n3)` candidate (balancing `c_{n1}` if the full
    /// policy overshoots the budget) and folds it into `best`.
    #[allow(clippy::too_many_arguments)]
    fn consider(
        &self,
        pmf: &SlotPmf,
        consumption: &ConsumptionModel,
        n1: usize,
        n2: usize,
        n3: usize,
        best: &mut Option<Ranked>,
        candidates: &mut u64,
    ) {
        let Ok(full) = ClusteringPolicy::new(n1, n2, n3, 1.0, 1.0, 1.0) else {
            return;
        };
        let (eval_full, moments_full) = full.evaluate_moments(pmf, consumption, self.eval);
        self.consider_priced(
            pmf,
            consumption,
            full,
            eval_full,
            moments_full,
            best,
            candidates,
        );
    }

    /// [`ClusteringOptimizer::consider`] with the fully-open evaluation
    /// already in hand (the warm screen computes it as its upper bound).
    #[allow(clippy::too_many_arguments)]
    fn consider_priced(
        &self,
        pmf: &SlotPmf,
        consumption: &ConsumptionModel,
        full: ClusteringPolicy,
        eval_full: ClusterEvaluation,
        moments_full: CycleMoments,
        best: &mut Option<Ranked>,
        candidates: &mut u64,
    ) {
        *candidates += 1;
        evcap_obs::timing::add_count("clustering.candidates", 1);
        let e = self.budget.rate();
        let candidate = if eval_full.discharge_rate <= e {
            Some((full, eval_full, moments_full))
        } else {
            // Over budget: shrink the hot-region entry coefficient.
            let closed = full.with_c_n1(0.0);
            let (eval_closed, moments_closed) =
                closed.evaluate_moments(pmf, consumption, self.eval);
            if eval_closed.discharge_rate > e {
                None // even the narrowest variant is infeasible
            } else {
                // Bisect c_n1 for energy balance (discharge is monotone).
                let (mut lo_c, mut hi_c) = (0.0f64, 1.0f64);
                let mut chosen = (closed, eval_closed, moments_closed);
                for _ in 0..24 {
                    let mid = 0.5 * (lo_c + hi_c);
                    let p = full.with_c_n1(mid);
                    let (ev, mo) = p.evaluate_moments(pmf, consumption, self.eval);
                    if ev.discharge_rate <= e {
                        chosen = (p, ev, mo);
                        lo_c = mid;
                    } else {
                        hi_c = mid;
                    }
                }
                Some(chosen)
            }
        };
        if let Some((policy, eval, moments)) = candidate {
            let score = self.objective.score(&eval, &moments);
            let better = match best {
                None => true,
                Some(b) => score > b.score + 1e-12,
            };
            if better {
                *best = Some(Ranked {
                    policy,
                    eval,
                    score,
                });
            }
        }
    }
}

/// A candidate the search has accepted, tagged with its objective score
/// (always higher-is-better; equal to the capture probability under QoM).
#[derive(Debug, Clone)]
struct Ranked {
    policy: ClusteringPolicy,
    eval: ClusterEvaluation,
    score: f64,
}

/// The smallest slot `i` with `F(i) ≥ p`.
fn quantile_slot(pmf: &SlotPmf, p: f64) -> usize {
    let mut i = 1;
    let cap = pmf.horizon().max(1) * 4;
    while pmf.cdf(i) < p && i < cap {
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;
    use evcap_dist::{Discretizer, SlotPmf, Weibull};
    use evcap_energy::ConsumptionModel;

    fn consumption() -> ConsumptionModel {
        ConsumptionModel::paper_defaults()
    }

    #[test]
    fn construction_validates_regions() {
        assert!(ClusteringPolicy::new(0, 2, 3, 1.0, 1.0, 1.0).is_err());
        assert!(ClusteringPolicy::new(3, 2, 4, 1.0, 1.0, 1.0).is_err());
        assert!(ClusteringPolicy::new(2, 5, 4, 1.0, 1.0, 1.0).is_err());
        assert!(ClusteringPolicy::new(2, 2, 2, 1.0, 1.0, 1.0).is_ok());
        assert!(ClusteringPolicy::new(1, 2, 3, 1.5, 1.0, 1.0).is_err());
    }

    #[test]
    fn coefficient_regions() {
        let p = ClusteringPolicy::new(3, 6, 9, 0.25, 0.5, 0.75).unwrap();
        assert_eq!(p.coefficient(1), 0.0);
        assert_eq!(p.coefficient(2), 0.0);
        assert_eq!(p.coefficient(3), 0.25);
        assert_eq!(p.coefficient(4), 1.0);
        assert_eq!(p.coefficient(5), 1.0);
        assert_eq!(p.coefficient(6), 0.5);
        assert_eq!(p.coefficient(7), 0.0);
        assert_eq!(p.coefficient(8), 0.0);
        assert_eq!(p.coefficient(9), 0.75);
        assert_eq!(p.coefficient(10), 1.0);
        assert_eq!(p.coefficient(1000), 1.0);
    }

    #[test]
    fn table_matches_probability_everywhere() {
        let p = ClusteringPolicy::new(3, 6, 9, 0.25, 0.5, 0.75).unwrap();
        let table = p.table().expect("clustering is stationary");
        for i in 1..=200 {
            let ctx = DecisionContext::stationary(i);
            assert_eq!(table.probability(i), p.probability(&ctx), "state {i}");
        }
    }

    #[test]
    fn unreachable_recovery_region_skips_the_table() {
        // The region ablation pushes n3 → u32::MAX to disable recovery;
        // materializing that staircase would allocate gigabytes, so the
        // policy must fall back to dynamic dispatch instead.
        let p = ClusteringPolicy::new(3, 6, u32::MAX as usize, 0.25, 0.5, 0.0).unwrap();
        assert!(p.table().is_none());
    }

    #[test]
    fn coincident_boundaries_use_earlier_region() {
        let p = ClusteringPolicy::new(4, 4, 4, 0.3, 0.6, 0.9).unwrap();
        assert_eq!(p.coefficient(4), 0.3);
        assert_eq!(p.coefficient(5), 1.0);
    }

    #[test]
    fn always_active_policy_captures_everything() {
        let pmf = SlotPmf::from_pmf(vec![0.5, 0.3, 0.2]).unwrap();
        let p = ClusteringPolicy::new(1, 1, 1, 1.0, 1.0, 1.0).unwrap();
        let eval = p.evaluate(&pmf, &consumption(), EvalOptions::default());
        assert!((eval.capture_probability - 1.0).abs() < 1e-9);
        // Discharge per slot: (δ1·E[cycle] + δ2) / E[cycle] with cycle = μ.
        let mu = pmf.mean();
        let expected = (1.0 * mu + 6.0) / mu;
        assert!((eval.discharge_rate - expected).abs() < 1e-6);
        assert!((eval.expected_cycle - mu).abs() < 1e-9);
    }

    #[test]
    fn deterministic_process_perfect_capture_with_tiny_energy() {
        // Gap is always 5: activating only in state 5 captures everything.
        let pmf = SlotPmf::from_pmf(vec![0.0, 0.0, 0.0, 0.0, 1.0]).unwrap();
        let p = ClusteringPolicy::new(5, 5, 5, 1.0, 1.0, 1.0).unwrap();
        let eval = p.evaluate(&pmf, &consumption(), EvalOptions::default());
        assert!((eval.capture_probability - 1.0).abs() < 1e-9);
        assert!((eval.discharge_rate - 7.0 / 5.0).abs() < 1e-9);
    }

    #[test]
    fn recovery_region_rescues_missed_events() {
        // Two-point gaps {2, 4}: hot region only at 2, so a gap of 4 is
        // missed… unless recovery kicks in.
        let pmf = SlotPmf::from_pmf(vec![0.0, 0.7, 0.0, 0.3]).unwrap();
        let with_recovery = ClusteringPolicy::new(2, 2, 3, 1.0, 1.0, 1.0).unwrap();
        let eval = with_recovery.evaluate(&pmf, &consumption(), EvalOptions::default());
        // Recovery from state 3 onward is always active, so every event is
        // eventually... captured in-slot with prob < 1 but the chain renews.
        assert!(
            eval.capture_probability > 0.8,
            "{}",
            eval.capture_probability
        );
        assert!(eval.truncated_survival < 1e-9);
    }

    #[test]
    fn evaluation_matches_hand_computation_on_geometric() {
        // Geometric(p = 0.25) events with an always-on policy: the cycle is
        // the mean gap 4, discharge = δ1 + δ2/4.
        let pmf = SlotPmf::from_hazards(&[0.25]).unwrap();
        let p = ClusteringPolicy::new(1, 1, 1, 1.0, 1.0, 1.0).unwrap();
        let eval = p.evaluate(&pmf, &consumption(), EvalOptions::default());
        assert!((eval.expected_cycle - 4.0).abs() < 1e-6);
        assert!((eval.discharge_rate - (1.0 + 6.0 / 4.0)).abs() < 1e-6);
        assert!((eval.capture_probability - 1.0).abs() < 1e-6);
    }

    #[test]
    fn optimizer_respects_energy_budget() {
        let pmf = Discretizer::new()
            .discretize(&Weibull::new(40.0, 3.0).unwrap())
            .unwrap();
        let (policy, eval) = ClusteringOptimizer::new(EnergyBudget::per_slot(0.5))
            .optimize(&pmf, &consumption())
            .unwrap();
        assert!(eval.discharge_rate <= 0.5 + 1e-6, "{}", eval.discharge_rate);
        assert!(policy.n1() >= 1 && policy.n1() <= policy.n2() && policy.n2() <= policy.n3());
        // Weibull(40, 3) with e = 0.5 supports a strong policy.
        assert!(
            eval.capture_probability > 0.6,
            "{}",
            eval.capture_probability
        );
    }

    #[test]
    fn optimizer_hot_region_tracks_the_mode() {
        let pmf = Discretizer::new()
            .discretize(&Weibull::new(40.0, 3.0).unwrap())
            .unwrap();
        let (policy, _) = ClusteringOptimizer::new(EnergyBudget::per_slot(0.5))
            .optimize(&pmf, &consumption())
            .unwrap();
        // The bulk of Weibull(40, 3) lies in roughly [20, 55]; the hot
        // region must overlap it.
        assert!(policy.n2() >= 25, "n2 = {}", policy.n2());
        assert!(policy.n1() <= 45, "n1 = {}", policy.n1());
    }

    #[test]
    fn optimizer_more_energy_never_hurts() {
        let pmf = Discretizer::new()
            .discretize(&Weibull::new(40.0, 3.0).unwrap())
            .unwrap();
        let mut last = 0.0;
        for e in [0.3, 0.5, 0.8] {
            let (_, eval) = ClusteringOptimizer::new(EnergyBudget::per_slot(e))
                .optimize(&pmf, &consumption())
                .unwrap();
            assert!(
                eval.capture_probability + 0.01 >= last,
                "e={e}: {} < {last}",
                eval.capture_probability
            );
            last = eval.capture_probability;
        }
    }

    #[test]
    fn warm_hint_reproduces_cold_policy_with_fewer_candidates() {
        let pmf = Discretizer::new()
            .discretize(&Weibull::new(40.0, 3.0).unwrap())
            .unwrap();
        // Sweep the budget; each step seeds from the previous cold optimum,
        // the way the fleet solver hands hints between neighboring e.
        let mut hint: Option<(usize, usize, usize)> = None;
        for e in [0.30, 0.35, 0.4, 0.45, 0.5] {
            let opt = ClusteringOptimizer::new(EnergyBudget::per_slot(e));
            let (cold, cold_eval, cold_n) = opt.optimize_counted(&pmf, &consumption()).unwrap();
            let (warm, warm_eval, warm_n) = opt
                .optimize_counted_with_hint(&pmf, &consumption(), hint)
                .unwrap();
            assert_eq!(cold, warm, "e={e}: warm policy diverged from cold");
            assert_eq!(
                cold_eval.capture_probability.to_bits(),
                warm_eval.capture_probability.to_bits(),
                "e={e}"
            );
            if hint.is_some() {
                assert!(
                    warm_n < cold_n,
                    "e={e}: warm search did not save work ({warm_n} vs {cold_n})"
                );
            }
            hint = Some((cold.n1(), cold.n2(), cold.n3()));
        }
    }

    #[test]
    fn bogus_hint_falls_back_to_the_cold_result() {
        let pmf = Discretizer::new()
            .discretize(&Weibull::new(40.0, 3.0).unwrap())
            .unwrap();
        let opt = ClusteringOptimizer::new(EnergyBudget::per_slot(0.5));
        let (cold, _, _) = opt.optimize_counted(&pmf, &consumption()).unwrap();
        // A hint far from the optimum (and one violating the bounds) must
        // still land on the cold policy via the certification fallback.
        for bad in [(1, 1, 1), (500, 600, 700), (3, 2, 1)] {
            let (warm, _, _) = opt
                .optimize_counted_with_hint(&pmf, &consumption(), Some(bad))
                .unwrap();
            assert_eq!(cold, warm, "hint {bad:?}");
        }
    }

    #[test]
    fn moments_agree_with_the_evaluation_and_hand_math() {
        // Deterministic gap 5, perfect capture: T ≡ 5 ⇒ E[T²] = 25, ages
        // 1..4 then 0 ⇒ mean age 2.
        let pmf = SlotPmf::from_pmf(vec![0.0, 0.0, 0.0, 0.0, 1.0]).unwrap();
        let p = ClusteringPolicy::new(5, 5, 5, 1.0, 1.0, 1.0).unwrap();
        let (eval, moments) = p.evaluate_moments(&pmf, &consumption(), EvalOptions::default());
        assert_eq!(eval.expected_cycle.to_bits(), moments.first.to_bits());
        assert!((moments.second - 25.0).abs() < 1e-6, "{}", moments.second);
        assert!((moments.mean_age() - 2.0).abs() < 1e-6);
        // The moments ride along without perturbing the evaluation.
        let plain = p.evaluate(&pmf, &consumption(), EvalOptions::default());
        assert_eq!(plain, eval);
    }

    #[test]
    fn moments_cover_the_geometric_tail_continuation() {
        // Geometric(0.25) with an always-on policy: T ~ Geom₁(0.25), so
        // E[T] = 4 and E[T²] = (2 − p)/p² = 28.
        let pmf = SlotPmf::from_hazards(&[0.25]).unwrap();
        let p = ClusteringPolicy::new(1, 1, 1, 1.0, 1.0, 1.0).unwrap();
        let (_, moments) = p.evaluate_moments(&pmf, &consumption(), EvalOptions::default());
        assert!((moments.first - 4.0).abs() < 1e-6, "{}", moments.first);
        assert!((moments.second - 28.0).abs() < 1e-4, "{}", moments.second);
    }

    #[test]
    fn age_objective_search_yields_a_feasible_fresh_policy() {
        let pmf = Discretizer::new()
            .discretize(&Weibull::new(40.0, 3.0).unwrap())
            .unwrap();
        let opt = ClusteringOptimizer::new(EnergyBudget::per_slot(0.35));
        let (qom_policy, qom_eval) = opt.optimize(&pmf, &consumption()).unwrap();
        let (aoi_policy, aoi_eval) = opt
            .objective(Objective::AoiMean)
            .optimize(&pmf, &consumption())
            .unwrap();
        assert!(aoi_eval.discharge_rate <= 0.35 + 1e-6);
        let (_, qm) = qom_policy.evaluate_moments(&pmf, &consumption(), EvalOptions::default());
        let (_, am) = aoi_policy.evaluate_moments(&pmf, &consumption(), EvalOptions::default());
        assert!(am.mean_age().is_finite());
        // The age-optimal pick is at least as fresh as the QoM pick, modulo
        // the different refinement endpoints.
        assert!(
            am.mean_age() <= qm.mean_age() * 1.02 + 1e-9,
            "aoi search aged worse: {} vs {}",
            am.mean_age(),
            qm.mean_age()
        );
        // Peak age orders candidates like QoM on a single scenario, so the
        // two searches land on essentially the same capture probability.
        let (peak_policy, peak_eval) = opt
            .objective(Objective::AoiPeak)
            .optimize(&pmf, &consumption())
            .unwrap();
        assert!(peak_policy.n1() >= 1);
        assert!(
            (peak_eval.capture_probability - qom_eval.capture_probability).abs() < 1e-6,
            "{} vs {}",
            peak_eval.capture_probability,
            qom_eval.capture_probability
        );
    }

    #[test]
    fn warm_hint_is_declined_for_age_objectives() {
        // The warm screen's upper bound only certifies QoM, so a hinted age
        // solve must fall back to the cold sweep and still succeed.
        let pmf = Discretizer::new()
            .discretize(&Weibull::new(40.0, 3.0).unwrap())
            .unwrap();
        let opt =
            ClusteringOptimizer::new(EnergyBudget::per_slot(0.4)).objective(Objective::AoiMean);
        let (cold, cold_eval, _) = opt.optimize_counted(&pmf, &consumption()).unwrap();
        let (warm, warm_eval, _) = opt
            .optimize_counted_with_hint(
                &pmf,
                &consumption(),
                Some((cold.n1(), cold.n2(), cold.n3())),
            )
            .unwrap();
        assert_eq!(cold, warm);
        assert_eq!(
            cold_eval.capture_probability.to_bits(),
            warm_eval.capture_probability.to_bits()
        );
    }

    #[test]
    fn optimizer_rejects_zero_budget() {
        let pmf = SlotPmf::from_pmf(vec![1.0]).unwrap();
        let err = ClusteringOptimizer::new(EnergyBudget::per_slot(0.0))
            .optimize(&pmf, &consumption())
            .unwrap_err();
        assert!(matches!(err, PolicyError::BudgetTooSmall { .. }));
    }

    #[test]
    fn policy_trait_wiring() {
        let p = ClusteringPolicy::new(2, 4, 6, 0.5, 1.0, 1.0).unwrap();
        assert_eq!(p.info_model(), InfoModel::Partial);
        assert!(p.label().contains("clustering-PI"));
        let ctx = DecisionContext::stationary(3);
        assert_eq!(p.probability(&ctx), 1.0);
    }
}
