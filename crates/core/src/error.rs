use std::fmt;

/// Errors produced while constructing or optimizing activation policies.
#[derive(Debug, Clone, PartialEq)]
pub enum PolicyError {
    /// A rate or probability parameter was out of range.
    InvalidParameter {
        /// The offending parameter's name.
        name: &'static str,
        /// The value that was supplied.
        value: f64,
        /// Human-readable description of the valid domain.
        expected: &'static str,
    },
    /// Clustering region boundaries were not ordered `n1 ≤ n2 ≤ n3`.
    UnorderedRegions {
        /// Start of the hot region.
        n1: usize,
        /// End of the hot region.
        n2: usize,
        /// Start of the recovery region.
        n3: usize,
    },
    /// The energy budget cannot sustain any activation at all (the optimal
    /// policy would be "never activate", which captures nothing).
    BudgetTooSmall {
        /// The per-renewal budget `e·μ` that was available.
        budget: f64,
    },
    /// The optimizer found no feasible candidate within its search bounds.
    NoFeasibleCandidate,
    /// An LP cross-check failed to solve.
    Lp(evcap_lp::LpError),
    /// A distribution-level failure (propagated from `evcap-dist`).
    Dist(evcap_dist::DistError),
}

impl fmt::Display for PolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolicyError::InvalidParameter {
                name,
                value,
                expected,
            } => write!(
                f,
                "invalid parameter `{name}` = {value}; expected {expected}"
            ),
            PolicyError::UnorderedRegions { n1, n2, n3 } => {
                write!(
                    f,
                    "clustering regions must satisfy n1 <= n2 <= n3, got ({n1}, {n2}, {n3})"
                )
            }
            PolicyError::BudgetTooSmall { budget } => {
                write!(
                    f,
                    "per-renewal energy budget {budget} cannot sustain any activation"
                )
            }
            PolicyError::NoFeasibleCandidate => {
                write!(
                    f,
                    "no feasible policy found within the optimizer's search bounds"
                )
            }
            PolicyError::Lp(e) => write!(f, "lp cross-check failed: {e}"),
            PolicyError::Dist(e) => write!(f, "distribution error: {e}"),
        }
    }
}

impl std::error::Error for PolicyError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PolicyError::Lp(e) => Some(e),
            PolicyError::Dist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<evcap_lp::LpError> for PolicyError {
    fn from(e: evcap_lp::LpError) -> Self {
        PolicyError::Lp(e)
    }
}

impl From<evcap_dist::DistError> for PolicyError {
    fn from(e: evcap_dist::DistError) -> Self {
        PolicyError::Dist(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty() {
        let errors: Vec<PolicyError> = vec![
            PolicyError::InvalidParameter {
                name: "e",
                value: -1.0,
                expected: "a rate > 0",
            },
            PolicyError::UnorderedRegions {
                n1: 5,
                n2: 3,
                n3: 9,
            },
            PolicyError::BudgetTooSmall { budget: 0.0 },
            PolicyError::NoFeasibleCandidate,
            PolicyError::Lp(evcap_lp::LpError::Infeasible),
            PolicyError::Dist(evcap_dist::DistError::EmptyPmf),
        ];
        for err in errors {
            assert!(!err.to_string().is_empty());
        }
    }

    #[test]
    fn sources_chain() {
        use std::error::Error;
        let err = PolicyError::Lp(evcap_lp::LpError::Unbounded);
        assert!(err.source().is_some());
        assert!(PolicyError::NoFeasibleCandidate.source().is_none());
    }
}
