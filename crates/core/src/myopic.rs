//! A myopic belief-threshold baseline for partial information.
//!
//! A natural POMDP heuristic that the paper's clustering policy implicitly
//! competes with: track the belief over the event process, and activate
//! exactly in the states whose conditional event probability `β̂_i` clears a
//! threshold `θ`, with `θ` tuned for energy balance.
//!
//! Because the policy's own past decisions determine which observations were
//! censored, `β̂_i` depends on `c_1..c_{i−1}` — but for a deterministic
//! threshold rule that dependency resolves *constructively*: walk the states
//! in order, computing each `β̂_i` from the belief DP under the decisions
//! already made, and decide state `i` on the spot. A bisection over `θ`
//! finds the energy-balanced threshold.
//!
//! The derived policy is stationary and state-indexed, so it slots into the
//! same simulator interface as every other policy. It differs from the
//! clustering heuristic in that its active set need not be an interval —
//! and the `ablation_refined_convergence` bench shows how much (or little)
//! that structural freedom buys.

use evcap_dist::SlotPmf;
use evcap_energy::ConsumptionModel;
use evcap_renewal::AgeBeliefDp;

use crate::clustering::{evaluate_partial_info, ClusterEvaluation, EvalOptions};
use crate::greedy::EnergyBudget;
use crate::policy::{ActivationPolicy, DecisionContext, InfoModel, PolicyTable};
use crate::{PolicyError, Result};

/// The energy-balanced myopic belief-threshold policy.
#[derive(Debug, Clone, PartialEq)]
pub struct MyopicPolicy {
    /// Deterministic activation decisions for states `1..=window`.
    active: Vec<bool>,
    /// The belief threshold that produced them.
    threshold: f64,
    evaluation: ClusterEvaluation,
}

impl MyopicPolicy {
    /// Derives the policy for the given event process and budget.
    ///
    /// `window` bounds the explicitly derived states; beyond it the policy
    /// is aggressive (recovery), mirroring the clustering heuristic's
    /// safeguard.
    ///
    /// # Errors
    ///
    /// * [`PolicyError::BudgetTooSmall`] for a zero budget.
    /// * [`PolicyError::InvalidParameter`] for a zero window.
    pub fn derive(
        pmf: &SlotPmf,
        budget: EnergyBudget,
        consumption: &ConsumptionModel,
        window: usize,
        opts: EvalOptions,
    ) -> Result<Self> {
        if budget.rate() <= 0.0 {
            return Err(PolicyError::BudgetTooSmall { budget: 0.0 });
        }
        if window == 0 {
            return Err(PolicyError::InvalidParameter {
                name: "window",
                value: 0.0,
                expected: "at least one derived state",
            });
        }
        let e = budget.rate();
        let derive_at = |theta: f64| -> Vec<bool> {
            let mut dp = AgeBeliefDp::new(pmf);
            let mut active = Vec::with_capacity(window);
            for _ in 0..window {
                // Peek the hazard without committing: step with c chosen by
                // the threshold on the hazard the step itself reports. The
                // hazard does not depend on the *current* slot's decision,
                // so compute it with a probe first.
                let mut probe = dp.clone();
                let hazard = probe.step(0.0).hazard;
                let act = hazard >= theta;
                dp.step(if act { 1.0 } else { 0.0 });
                active.push(act);
            }
            active
        };
        let eval_of = |active: &[bool]| {
            evaluate_partial_info(
                pmf,
                |i| {
                    if i <= active.len() {
                        if active[i - 1] {
                            1.0
                        } else {
                            0.0
                        }
                    } else {
                        1.0
                    }
                },
                consumption,
                opts,
            )
        };

        // θ = 1+ means "never activate in the window" (recovery only);
        // θ = 0 means aggressive. Bisect for the lowest feasible θ.
        let mut lo = 0.0f64; // most active
        let mut hi = 1.0 + 1e-9; // least active
        let mut chosen: Option<(f64, Vec<bool>, ClusterEvaluation)> = None;
        for _ in 0..32 {
            let mid = 0.5 * (lo + hi);
            let active = derive_at(mid);
            let eval = eval_of(&active);
            if eval.discharge_rate <= e + 1e-9 {
                let better = chosen
                    .as_ref()
                    .map(|(_, _, b)| eval.capture_probability > b.capture_probability - 1e-12)
                    .unwrap_or(true);
                if better {
                    chosen = Some((mid, active, eval));
                }
                hi = mid;
            } else {
                lo = mid;
            }
        }
        let (threshold, active, evaluation) = chosen.unwrap_or_else(|| {
            // Even the all-sleep window overshoots (recovery alone is too
            // expensive): fall back to the least active variant.
            let active = derive_at(1.0 + 1e-9);
            let eval = eval_of(&active);
            (1.0, active, eval)
        });
        Ok(Self {
            active,
            threshold,
            evaluation,
        })
    }

    /// Reassembles a policy from previously solved parts — the fields a
    /// persisted artifact recorded — without re-running the belief DP.
    ///
    /// This is the rehydration door used by the scenario layer when loading
    /// artifacts from the on-disk store; validation here keeps a corrupted
    /// record from materializing as a malformed policy.
    ///
    /// # Errors
    ///
    /// Returns [`PolicyError::InvalidParameter`] for an empty window, a
    /// non-finite or out-of-range threshold, or evaluation fields outside
    /// their analytic ranges.
    pub fn from_parts(
        active: Vec<bool>,
        threshold: f64,
        evaluation: ClusterEvaluation,
    ) -> Result<Self> {
        if active.is_empty() {
            return Err(PolicyError::InvalidParameter {
                name: "window",
                value: 0.0,
                expected: "at least one derived state",
            });
        }
        // The bisection keeps θ within [0, 1 + 1e-9] (the "never activate"
        // sentinel sits just above 1).
        if !(threshold.is_finite() && (0.0..=1.0 + 1e-6).contains(&threshold)) {
            return Err(PolicyError::InvalidParameter {
                name: "threshold",
                value: threshold,
                expected: "a belief threshold in [0, 1]",
            });
        }
        let e = &evaluation;
        let capture_ok =
            e.capture_probability.is_finite() && (0.0..=1.0).contains(&e.capture_probability);
        let discharge_ok = e.discharge_rate.is_finite() && e.discharge_rate >= 0.0;
        // `expected_cycle` may legitimately be +∞ (a policy that never
        // captures); it must still be positive and non-NaN.
        let cycle_ok = !e.expected_cycle.is_nan() && e.expected_cycle > 0.0;
        let survival_ok = e.truncated_survival.is_finite() && e.truncated_survival >= 0.0;
        if !(capture_ok && discharge_ok && cycle_ok && survival_ok) {
            return Err(PolicyError::InvalidParameter {
                name: "evaluation",
                value: e.capture_probability,
                expected: "analytic evaluation fields within their ranges",
            });
        }
        Ok(Self {
            active,
            threshold,
            evaluation,
        })
    }

    /// The belief threshold the derivation converged to.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The derived activation decision for state `f_i`.
    ///
    /// # Panics
    ///
    /// Panics if `state == 0`; states are 1-based.
    pub fn active(&self, state: usize) -> bool {
        assert!(state >= 1, "states are 1-based");
        self.active.get(state - 1).copied().unwrap_or(true)
    }

    /// The analytic evaluation recorded at derivation time.
    pub fn evaluation(&self) -> ClusterEvaluation {
        self.evaluation
    }
}

impl ActivationPolicy for MyopicPolicy {
    fn probability(&self, ctx: &DecisionContext) -> f64 {
        if self.active(ctx.state) {
            1.0
        } else {
            0.0
        }
    }

    fn info_model(&self) -> InfoModel {
        InfoModel::Partial
    }

    fn label(&self) -> String {
        format!("myopic-PI(θ={:.4})", self.threshold)
    }

    fn planned_discharge_rate(&self) -> Option<f64> {
        Some(self.evaluation.discharge_rate)
    }

    fn table(&self) -> Option<PolicyTable> {
        let probs = self
            .active
            .iter()
            .map(|&a| if a { 1.0 } else { 0.0 })
            .collect();
        // Beyond the derived window the policy is aggressive recovery.
        Some(PolicyTable::new(probs, 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clustering::ClusteringOptimizer;
    use evcap_dist::{Discretizer, SlotPmf, Weibull};

    fn consumption() -> ConsumptionModel {
        ConsumptionModel::paper_defaults()
    }

    #[test]
    fn activates_exactly_on_deterministic_gap() {
        let pmf = SlotPmf::from_pmf(vec![0.0, 0.0, 0.0, 1.0]).unwrap();
        let policy = MyopicPolicy::derive(
            &pmf,
            EnergyBudget::per_slot(7.0 / 4.0),
            &consumption(),
            8,
            EvalOptions::default(),
        )
        .unwrap();
        assert!(policy.active(4));
        assert!(!policy.active(1) && !policy.active(3));
        assert!((policy.evaluation().capture_probability - 1.0).abs() < 1e-9);
    }

    #[test]
    fn respects_budget_on_weibull() {
        let pmf = Discretizer::new()
            .discretize(&Weibull::new(40.0, 3.0).unwrap())
            .unwrap();
        for e in [0.2, 0.5, 1.0] {
            let policy = MyopicPolicy::derive(
                &pmf,
                EnergyBudget::per_slot(e),
                &consumption(),
                120,
                EvalOptions::default(),
            )
            .unwrap();
            assert!(
                policy.evaluation().discharge_rate <= e + 1e-6,
                "e={e}: {}",
                policy.evaluation().discharge_rate
            );
        }
    }

    #[test]
    fn active_set_is_an_interval_for_increasing_hazard() {
        // With an IFR process and no misses inside the window, β̂ rises, so
        // the threshold rule yields a contiguous active window — it should
        // essentially agree with the clustering structure.
        let pmf = Discretizer::new()
            .discretize(&Weibull::new(40.0, 3.0).unwrap())
            .unwrap();
        let policy = MyopicPolicy::derive(
            &pmf,
            EnergyBudget::per_slot(0.5),
            &consumption(),
            120,
            EvalOptions::default(),
        )
        .unwrap();
        let first = (1..=120).find(|&i| policy.active(i));
        let some_first = first.expect("activates somewhere");
        // After the first active state, activity persists until the window
        // edge or the hazard peak has passed well beyond the support.
        let mut gaps = 0;
        let mut in_active = false;
        for i in 1..=90 {
            match (policy.active(i), in_active) {
                (true, _) => in_active = true,
                (false, true) => {
                    gaps += 1;
                    in_active = false;
                }
                _ => {}
            }
        }
        assert!(
            gaps <= 1,
            "active set fragmented: {gaps} gaps, first {some_first}"
        );
    }

    #[test]
    fn competitive_with_clustering() {
        let pmf = Discretizer::new()
            .discretize(&Weibull::new(40.0, 3.0).unwrap())
            .unwrap();
        let budget = EnergyBudget::per_slot(0.5);
        let myopic =
            MyopicPolicy::derive(&pmf, budget, &consumption(), 160, EvalOptions::default())
                .unwrap();
        let (_, clustering) = ClusteringOptimizer::new(budget)
            .optimize(&pmf, &consumption())
            .unwrap();
        // The myopic rule is a credible baseline: within 10% of clustering.
        assert!(
            myopic.evaluation().capture_probability > 0.9 * clustering.capture_probability,
            "myopic {} vs clustering {}",
            myopic.evaluation().capture_probability,
            clustering.capture_probability
        );
    }

    #[test]
    fn from_parts_round_trips_a_derived_policy() {
        let pmf = Discretizer::new()
            .discretize(&Weibull::new(40.0, 3.0).unwrap())
            .unwrap();
        let policy = MyopicPolicy::derive(
            &pmf,
            EnergyBudget::per_slot(0.5),
            &consumption(),
            120,
            EvalOptions::default(),
        )
        .unwrap();
        let active: Vec<bool> = (1..=120).map(|i| policy.active(i)).collect();
        let rebuilt =
            MyopicPolicy::from_parts(active, policy.threshold(), policy.evaluation()).unwrap();
        assert_eq!(policy, rebuilt);
    }

    #[test]
    fn from_parts_rejects_corrupted_fields() {
        let eval = ClusterEvaluation {
            capture_probability: 0.8,
            discharge_rate: 0.5,
            expected_cycle: 50.0,
            truncated_survival: 0.0,
        };
        assert!(MyopicPolicy::from_parts(vec![true], 0.5, eval).is_ok());
        assert!(MyopicPolicy::from_parts(Vec::new(), 0.5, eval).is_err());
        assert!(MyopicPolicy::from_parts(vec![true], f64::NAN, eval).is_err());
        assert!(MyopicPolicy::from_parts(vec![true], 2.0, eval).is_err());
        let mut bad = eval;
        bad.capture_probability = 1.5;
        assert!(MyopicPolicy::from_parts(vec![true], 0.5, bad).is_err());
        let mut bad = eval;
        bad.discharge_rate = -1.0;
        assert!(MyopicPolicy::from_parts(vec![true], 0.5, bad).is_err());
        let mut bad = eval;
        bad.expected_cycle = f64::NAN;
        assert!(MyopicPolicy::from_parts(vec![true], 0.5, bad).is_err());
    }

    #[test]
    fn rejects_bad_inputs() {
        let pmf = SlotPmf::from_pmf(vec![1.0]).unwrap();
        assert!(matches!(
            MyopicPolicy::derive(
                &pmf,
                EnergyBudget::per_slot(0.0),
                &consumption(),
                8,
                EvalOptions::default()
            ),
            Err(PolicyError::BudgetTooSmall { .. })
        ));
        assert!(matches!(
            MyopicPolicy::derive(
                &pmf,
                EnergyBudget::per_slot(1.0),
                &consumption(),
                0,
                EvalOptions::default()
            ),
            Err(PolicyError::InvalidParameter { .. })
        ));
    }
}
