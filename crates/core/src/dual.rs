//! Lagrangian-dual certification of the full-information optimum.
//!
//! Theorem 1 is certified in this workspace two ways already (greedy
//! water-filling in [`GreedyPolicy`](crate::GreedyPolicy), simplex in
//! `evcap-lp`). This module adds a third, structurally different derivation
//! through Lagrangian duality, which also exposes the *energy price* of the
//! constraint — a quantity of independent interest for provisioning ("how
//! much QoM does one more unit/slot of harvest buy?").
//!
//! Relax the energy constraint with a multiplier `λ ≥ 0`:
//!
//! ```text
//! L(c, λ) = Σ α_i c_i − λ (Σ ξ_i c_i − e·μ)
//! ```
//!
//! For fixed `λ` the maximization decouples per slot: `c_i = 1` iff
//! `α_i > λ·ξ_i`, i.e. iff the slot's *efficiency* `α_i/ξ_i` exceeds `λ`.
//! Complementary slackness pins the optimal `λ*` where the induced spend
//! crosses the budget; a bisection finds it, and a fractional coefficient on
//! the marginal slot closes the (zero) duality gap — the LP is, after all, a
//! fractional knapsack.

use evcap_dist::SlotPmf;
use evcap_energy::ConsumptionModel;

use crate::greedy::EnergyBudget;
use crate::{PolicyError, Result};

/// The outcome of the dual derivation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DualSolution {
    /// The optimal multiplier `λ*`: the marginal captures per unit of
    /// per-renewal energy (the "energy price").
    pub multiplier: f64,
    /// The primal optimum recovered from the dual (equals the greedy/LP
    /// optimum up to numerics).
    pub capture_probability: f64,
    /// Per-renewal energy spent by the recovered primal solution.
    pub spent: f64,
    /// The duality gap `dual(λ*) − primal` (≈ 0 for this problem; reported
    /// for the certification tests).
    pub gap: f64,
}

/// Solves the full-information optimization by Lagrangian relaxation.
///
/// `horizon` truncates the slot set (use the pmf's own horizon for light
/// tails).
///
/// # Errors
///
/// Returns [`PolicyError::BudgetTooSmall`] for a zero budget.
pub fn solve_dual(
    pmf: &SlotPmf,
    budget: EnergyBudget,
    consumption: &ConsumptionModel,
    horizon: usize,
) -> Result<DualSolution> {
    let per_renewal = budget.per_renewal(pmf.mean());
    if per_renewal <= 0.0 {
        return Err(PolicyError::BudgetTooSmall {
            budget: per_renewal,
        });
    }
    let d1 = consumption.delta1_units();
    let d2 = consumption.delta2_units();
    // Per-slot reward, cost, and efficiency.
    let mut items: Vec<(f64, f64, f64)> = Vec::with_capacity(horizon); // (reward, cost, eff)
    for i in 1..=horizon {
        let reward = pmf.pmf(i);
        let cost = d1 * pmf.survival(i - 1) + d2 * reward;
        if cost > 0.0 {
            items.push((reward, cost, reward / cost));
        }
    }
    let total_cost: f64 = items.iter().map(|&(_, c, _)| c).sum();
    let budget_eff = per_renewal.min(total_cost);

    // spend(λ) = Σ { cost_i : eff_i > λ } is non-increasing in λ.
    let spend = |lambda: f64| -> (f64, f64) {
        let mut cost = 0.0;
        let mut reward = 0.0;
        for &(r, c, eff) in &items {
            if eff > lambda {
                cost += c;
                reward += r;
            }
        }
        (cost, reward)
    };

    // Bisect λ to the threshold where spend crosses the budget.
    let mut lo = 0.0f64;
    let mut hi = items
        .iter()
        .map(|&(_, _, e)| e)
        .fold(0.0f64, f64::max)
        .max(1e-12)
        * (1.0 + 1e-9);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if spend(mid).0 > budget_eff {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let lambda = hi;
    let (interior_cost, interior_reward) = spend(lambda);

    // Fractional fill of the marginal efficiency class (ties share the
    // leftover budget pro rata; their identical efficiency makes the split
    // irrelevant to the objective).
    let marginal: Vec<&(f64, f64, f64)> = items
        .iter()
        .filter(|&&(_, _, eff)| eff <= lambda && eff >= lo)
        .collect();
    let marginal_cost: f64 = marginal.iter().map(|&&(_, c, _)| c).sum();
    let leftover = (budget_eff - interior_cost).max(0.0);
    let frac = if marginal_cost > 0.0 {
        (leftover / marginal_cost).min(1.0)
    } else {
        0.0
    };
    let marginal_reward: f64 = marginal.iter().map(|&&(r, _, _)| r).sum();
    let primal = interior_reward + frac * marginal_reward;
    let spent = interior_cost + frac * marginal_cost;

    // Dual value at λ: max_c L(c, λ) = Σ max(0, r_i − λ c_i) + λ·budget.
    let dual_value: f64 = items
        .iter()
        .map(|&(r, c, _)| (r - lambda * c).max(0.0))
        .sum::<f64>()
        + lambda * budget_eff;

    Ok(DualSolution {
        multiplier: lambda,
        capture_probability: primal,
        spent,
        gap: dual_value - primal,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::GreedyPolicy;
    use evcap_dist::{Discretizer, Pareto, SlotPmf, Weibull};

    fn consumption() -> ConsumptionModel {
        ConsumptionModel::paper_defaults()
    }

    #[test]
    fn dual_matches_greedy_on_weibull() {
        let pmf = Discretizer::new()
            .discretize(&Weibull::new(40.0, 3.0).unwrap())
            .unwrap();
        for e in [0.1, 0.3, 0.5, 1.0] {
            let budget = EnergyBudget::per_slot(e);
            let greedy = GreedyPolicy::optimize(&pmf, budget, &consumption()).unwrap();
            let dual = solve_dual(&pmf, budget, &consumption(), pmf.horizon()).unwrap();
            assert!(
                (dual.capture_probability - greedy.ideal_qom()).abs() < 1e-6,
                "e={e}: dual {} vs greedy {}",
                dual.capture_probability,
                greedy.ideal_qom()
            );
            assert!(dual.gap.abs() < 1e-6, "e={e}: gap {}", dual.gap);
        }
    }

    #[test]
    fn dual_matches_greedy_on_pareto() {
        let pmf = Discretizer::new()
            .max_horizon(600)
            .discretize(&Pareto::new(2.0, 10.0).unwrap())
            .unwrap();
        let budget = EnergyBudget::per_slot(0.3);
        let greedy = GreedyPolicy::optimize(&pmf, budget, &consumption()).unwrap();
        let dual = solve_dual(&pmf, budget, &consumption(), 600).unwrap();
        // The greedy also allocates the analytic tail; allow truncation slack.
        assert!(
            (dual.capture_probability - greedy.ideal_qom()).abs() < 2e-3,
            "dual {} vs greedy {}",
            dual.capture_probability,
            greedy.ideal_qom()
        );
    }

    #[test]
    fn multiplier_is_the_energy_price() {
        // A tiny budget increase buys ≈ λ*·Δ(e·μ) extra captures.
        let pmf = Discretizer::new()
            .discretize(&Weibull::new(40.0, 3.0).unwrap())
            .unwrap();
        let c = consumption();
        let e = 0.4;
        let de = 0.001;
        let base = solve_dual(&pmf, EnergyBudget::per_slot(e), &c, pmf.horizon()).unwrap();
        let bumped = solve_dual(&pmf, EnergyBudget::per_slot(e + de), &c, pmf.horizon()).unwrap();
        let observed = (bumped.capture_probability - base.capture_probability) / (de * pmf.mean());
        assert!(
            (observed - base.multiplier).abs() < 0.01,
            "marginal gain {observed} vs λ* {}",
            base.multiplier
        );
    }

    #[test]
    fn multiplier_decreases_with_budget() {
        // Diminishing returns: the energy price falls as energy gets cheap.
        let pmf = Discretizer::new()
            .discretize(&Weibull::new(40.0, 3.0).unwrap())
            .unwrap();
        let c = consumption();
        let mut last = f64::INFINITY;
        for e in [0.1, 0.3, 0.6, 1.0, 1.5] {
            let dual = solve_dual(&pmf, EnergyBudget::per_slot(e), &c, pmf.horizon()).unwrap();
            assert!(dual.multiplier <= last + 1e-9, "e={e}");
            last = dual.multiplier;
        }
    }

    #[test]
    fn saturated_budget_has_zero_price() {
        let pmf = SlotPmf::from_pmf(vec![0.5, 0.5]).unwrap();
        let c = consumption();
        let dual = solve_dual(&pmf, EnergyBudget::per_slot(50.0), &c, 2).unwrap();
        assert!((dual.capture_probability - 1.0).abs() < 1e-9);
        assert!(dual.multiplier < 1e-6, "{}", dual.multiplier);
    }

    #[test]
    fn zero_budget_rejected() {
        let pmf = SlotPmf::from_pmf(vec![1.0]).unwrap();
        assert!(matches!(
            solve_dual(&pmf, EnergyBudget::per_slot(0.0), &consumption(), 1),
            Err(PolicyError::BudgetTooSmall { .. })
        ));
    }
}
