//! The activation-policy abstraction shared by analysis and simulation.

use std::fmt;

/// Which observation model a policy is designed for.
///
/// The simulator uses this to decide what the policy's *state index* means:
/// slots since the last **event** (full information — the sensor always
/// learns about events after the fact) or slots since the last **captured**
/// event (partial information — missed events are invisible).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InfoModel {
    /// The sensor learns about every event at the end of its slot.
    Full,
    /// The sensor learns about an event only if it was active in its slot.
    Partial,
}

impl fmt::Display for InfoModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InfoModel::Full => write!(f, "full information"),
            InfoModel::Partial => write!(f, "partial information"),
        }
    }
}

/// Everything a policy may condition its per-slot decision on.
///
/// The paper's policies are *stationary* in the renewal state, but the
/// periodic baseline conditions on wall-clock time and the aggressive
/// baseline on the battery, so the context carries all three.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecisionContext {
    /// Global slot number `t ≥ 1`.
    pub slot: u64,
    /// Renewal state index `i ≥ 1`: slots since the last event (full
    /// information) or since the last captured event (partial information).
    pub state: usize,
    /// Battery fill fraction in `[0, 1]` (1 under the energy assumption).
    pub battery_fraction: f64,
}

impl DecisionContext {
    /// Context for analytic evaluation under the energy assumption: only the
    /// renewal state matters and the battery is treated as always sufficient.
    pub fn stationary(state: usize) -> Self {
        Self {
            slot: state as u64,
            state,
            battery_fraction: 1.0,
        }
    }
}

/// A policy's state-indexed activation probabilities compiled into a flat
/// array, plus the constant probability shared by every state beyond it.
///
/// Stationary policies (everything except the wall-clock periodic baseline)
/// are pure functions of the renewal state, so the per-slot hot loop can
/// replace a virtual [`ActivationPolicy::probability`] call with one bounds
/// check and an array load. The table must agree *bit-for-bit* with the
/// policy it was compiled from — the batched simulation layer relies on that
/// to keep table-driven runs identical to dispatch-driven ones.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyTable {
    probs: Vec<f64>,
    tail: f64,
}

impl PolicyTable {
    /// Largest explicit-state count a [`table`](ActivationPolicy::table)
    /// implementation should materialize.
    ///
    /// Every policy in this crate keeps its interesting region within a few
    /// hundred states, but ablation variants push region boundaries toward
    /// `usize::MAX` to make a region unreachable; compiling that staircase
    /// literally would allocate gigabytes per run. Policies whose explicit
    /// region exceeds this bound return `None` and keep dynamic dispatch.
    pub const MAX_EXPLICIT_STATES: usize = 1 << 16;

    /// Builds a table mapping state `i` (1-based) to `probs[i - 1]` for
    /// `i ≤ probs.len()` and to `tail` beyond.
    ///
    /// # Panics
    ///
    /// Panics if any entry (or the tail) is not a probability in `[0, 1]`.
    pub fn new(probs: Vec<f64>, tail: f64) -> Self {
        let valid = |p: f64| p.is_finite() && (0.0..=1.0).contains(&p);
        assert!(
            probs.iter().all(|&p| valid(p)) && valid(tail),
            "policy table entries must be probabilities in [0, 1]"
        );
        Self { probs, tail }
    }

    /// The activation probability for state `i ≥ 1`.
    #[inline]
    pub fn probability(&self, state: usize) -> f64 {
        debug_assert!(state >= 1, "states are 1-based");
        if state <= self.probs.len() {
            self.probs[state - 1]
        } else {
            self.tail
        }
    }

    /// Slice-in/slice-out batch lookup: `out[i] = probability(states[i])`.
    ///
    /// One bounds check against the explicit region per lane and no call
    /// overhead — the batched simulation engine's per-slot activation sweep.
    /// Bit-identical to looping [`PolicyTable::probability`] by definition.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    #[inline]
    pub fn fill_probabilities(&self, states: &[usize], out: &mut [f64]) {
        assert_eq!(states.len(), out.len(), "state/probability lanes differ");
        let n = self.probs.len();
        for (slot, &state) in out.iter_mut().zip(states) {
            debug_assert!(state >= 1, "states are 1-based");
            *slot = if state <= n {
                self.probs[state - 1]
            } else {
                self.tail
            };
        }
    }

    /// Number of explicitly stored states before the constant tail.
    pub fn explicit_states(&self) -> usize {
        self.probs.len()
    }

    /// The constant probability applied beyond the explicit states.
    pub fn tail(&self) -> f64 {
        self.tail
    }
}

/// A randomized activation policy: in each slot the sensor activates with a
/// computed probability.
///
/// Implementations must be deterministic functions of the context — the
/// randomness lives in the simulator, which draws the Bernoulli coin. This
/// keeps analytic evaluation (which integrates over the coin) and simulation
/// (which flips it) consistent by construction.
pub trait ActivationPolicy {
    /// Probability of choosing to activate given the context.
    ///
    /// The simulator applies the paper's feasibility rule on top: a sensor
    /// holding less than `δ1 + δ2` is forced inactive regardless of this
    /// probability.
    fn probability(&self, ctx: &DecisionContext) -> f64;

    /// The observation model this policy is designed for.
    fn info_model(&self) -> InfoModel;

    /// A short human-readable label for reports and plots.
    fn label(&self) -> String;

    /// The analytic long-run discharge rate (energy units/slot) under the
    /// energy assumption, when known. Used by tests to verify energy
    /// balance.
    fn planned_discharge_rate(&self) -> Option<f64> {
        None
    }

    /// The policy compiled to a flat state-indexed probability table, when
    /// the policy is stationary in the renewal state.
    ///
    /// Returning `Some` promises `table.probability(i)` equals
    /// `self.probability(&DecisionContext::stationary(i))` *exactly* (same
    /// bits) for every state `i ≥ 1` and any slot/battery context — the
    /// simulator substitutes the table for the virtual call on its hot path.
    /// Policies that condition on wall-clock time or battery return `None`.
    fn table(&self) -> Option<PolicyTable> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct AlwaysOn;

    impl ActivationPolicy for AlwaysOn {
        fn probability(&self, _ctx: &DecisionContext) -> f64 {
            1.0
        }
        fn info_model(&self) -> InfoModel {
            InfoModel::Partial
        }
        fn label(&self) -> String {
            "always-on".into()
        }
    }

    #[test]
    fn trait_is_object_safe() {
        let policy: Box<dyn ActivationPolicy> = Box::new(AlwaysOn);
        let ctx = DecisionContext::stationary(3);
        assert_eq!(policy.probability(&ctx), 1.0);
        assert_eq!(policy.info_model(), InfoModel::Partial);
        assert_eq!(policy.planned_discharge_rate(), None);
    }

    #[test]
    fn stationary_context_defaults() {
        let ctx = DecisionContext::stationary(5);
        assert_eq!(ctx.state, 5);
        assert_eq!(ctx.battery_fraction, 1.0);
    }

    #[test]
    fn info_model_displays() {
        assert_eq!(InfoModel::Full.to_string(), "full information");
        assert_eq!(InfoModel::Partial.to_string(), "partial information");
    }

    #[test]
    fn table_defaults_to_none() {
        let policy: Box<dyn ActivationPolicy> = Box::new(AlwaysOn);
        assert!(policy.table().is_none());
    }

    #[test]
    fn table_lookup_and_tail() {
        let table = PolicyTable::new(vec![0.0, 0.5, 1.0], 0.25);
        assert_eq!(table.probability(1), 0.0);
        assert_eq!(table.probability(2), 0.5);
        assert_eq!(table.probability(3), 1.0);
        assert_eq!(table.probability(4), 0.25);
        assert_eq!(table.probability(1_000_000), 0.25);
        assert_eq!(table.explicit_states(), 3);
        assert_eq!(table.tail(), 0.25);
    }

    #[test]
    fn batch_lookup_matches_scalar_lookup() {
        let table = PolicyTable::new(vec![0.0, 0.5, 1.0], 0.25);
        let states: Vec<usize> = vec![1, 2, 3, 4, 3, 1_000_000, 1];
        let mut out = vec![f64::NAN; states.len()];
        table.fill_probabilities(&states, &mut out);
        for (&state, &p) in states.iter().zip(&out) {
            assert_eq!(p, table.probability(state), "state {state}");
        }
        // Empty lanes are a no-op, and mismatched lanes panic.
        table.fill_probabilities(&[], &mut []);
        assert!(std::panic::catch_unwind(|| {
            let mut short = [0.0];
            table.fill_probabilities(&[1, 2], &mut short);
        })
        .is_err());
    }

    #[test]
    fn empty_table_is_all_tail() {
        let table = PolicyTable::new(Vec::new(), 1.0);
        assert_eq!(table.explicit_states(), 0);
        assert_eq!(table.probability(1), 1.0);
        assert_eq!(table.probability(99), 1.0);
    }

    #[test]
    #[should_panic(expected = "probabilities")]
    fn table_rejects_non_probability() {
        let _ = PolicyTable::new(vec![1.5], 0.0);
    }
}
