//! The activation-policy abstraction shared by analysis and simulation.

use std::fmt;

/// Which observation model a policy is designed for.
///
/// The simulator uses this to decide what the policy's *state index* means:
/// slots since the last **event** (full information — the sensor always
/// learns about events after the fact) or slots since the last **captured**
/// event (partial information — missed events are invisible).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InfoModel {
    /// The sensor learns about every event at the end of its slot.
    Full,
    /// The sensor learns about an event only if it was active in its slot.
    Partial,
}

impl fmt::Display for InfoModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InfoModel::Full => write!(f, "full information"),
            InfoModel::Partial => write!(f, "partial information"),
        }
    }
}

/// Everything a policy may condition its per-slot decision on.
///
/// The paper's policies are *stationary* in the renewal state, but the
/// periodic baseline conditions on wall-clock time and the aggressive
/// baseline on the battery, so the context carries all three.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecisionContext {
    /// Global slot number `t ≥ 1`.
    pub slot: u64,
    /// Renewal state index `i ≥ 1`: slots since the last event (full
    /// information) or since the last captured event (partial information).
    pub state: usize,
    /// Battery fill fraction in `[0, 1]` (1 under the energy assumption).
    pub battery_fraction: f64,
}

impl DecisionContext {
    /// Context for analytic evaluation under the energy assumption: only the
    /// renewal state matters and the battery is treated as always sufficient.
    pub fn stationary(state: usize) -> Self {
        Self {
            slot: state as u64,
            state,
            battery_fraction: 1.0,
        }
    }
}

/// A randomized activation policy: in each slot the sensor activates with a
/// computed probability.
///
/// Implementations must be deterministic functions of the context — the
/// randomness lives in the simulator, which draws the Bernoulli coin. This
/// keeps analytic evaluation (which integrates over the coin) and simulation
/// (which flips it) consistent by construction.
pub trait ActivationPolicy {
    /// Probability of choosing to activate given the context.
    ///
    /// The simulator applies the paper's feasibility rule on top: a sensor
    /// holding less than `δ1 + δ2` is forced inactive regardless of this
    /// probability.
    fn probability(&self, ctx: &DecisionContext) -> f64;

    /// The observation model this policy is designed for.
    fn info_model(&self) -> InfoModel;

    /// A short human-readable label for reports and plots.
    fn label(&self) -> String;

    /// The analytic long-run discharge rate (energy units/slot) under the
    /// energy assumption, when known. Used by tests to verify energy
    /// balance.
    fn planned_discharge_rate(&self) -> Option<f64> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct AlwaysOn;

    impl ActivationPolicy for AlwaysOn {
        fn probability(&self, _ctx: &DecisionContext) -> f64 {
            1.0
        }
        fn info_model(&self) -> InfoModel {
            InfoModel::Partial
        }
        fn label(&self) -> String {
            "always-on".into()
        }
    }

    #[test]
    fn trait_is_object_safe() {
        let policy: Box<dyn ActivationPolicy> = Box::new(AlwaysOn);
        let ctx = DecisionContext::stationary(3);
        assert_eq!(policy.probability(&ctx), 1.0);
        assert_eq!(policy.info_model(), InfoModel::Partial);
        assert_eq!(policy.planned_discharge_rate(), None);
    }

    #[test]
    fn stationary_context_defaults() {
        let ctx = DecisionContext::stationary(5);
        assert_eq!(ctx.state, 5);
        assert_eq!(ctx.battery_fraction, 1.0);
    }

    #[test]
    fn info_model_displays() {
        assert_eq!(InfoModel::Full.to_string(), "full information");
        assert_eq!(InfoModel::Partial.to_string(), "partial information");
    }
}
