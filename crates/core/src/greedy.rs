//! The full-information greedy policy (Theorem 1).
//!
//! Under full information the sensor always knows the state `h_i` (the last
//! event was `i` slots ago) and activates with probability `c_i`. The
//! constrained-MDP reduction (Section IV-A) yields the linear program
//!
//! ```text
//! maximize    U = Σ α_i c_i
//! subject to  Σ ξ_i c_i = e·μ,   ξ_i = δ1·(1 − F(i−1)) + δ2·α_i,   0 ≤ c_i ≤ 1.
//! ```
//!
//! Theorem 1 (with Remark 1 for non-monotone hazards): the optimum
//! water-fills the slots in decreasing order of the conditional probability
//! `β_i`, with at most one fractional coefficient. That is a fractional
//! knapsack filled by "efficiency" `α_i/ξ_i`, which is monotone in `β_i`.

use evcap_dist::SlotPmf;
use evcap_energy::ConsumptionModel;
use evcap_lp::{Problem, Relation};

use crate::policy::{ActivationPolicy, DecisionContext, InfoModel, PolicyTable};
use crate::{PolicyError, Result};

/// The mean recharge rate `e` (energy units per slot) a policy must balance
/// against.
///
/// # Example
///
/// ```
/// use evcap_core::EnergyBudget;
///
/// let budget = EnergyBudget::per_slot(0.5);
/// assert_eq!(budget.rate(), 0.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyBudget {
    rate: f64,
}

impl EnergyBudget {
    /// Creates a budget from a mean recharge rate in energy units per slot.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is negative, NaN, or infinite.
    pub fn per_slot(rate: f64) -> Self {
        assert!(
            rate.is_finite() && rate >= 0.0,
            "recharge rate must be a finite non-negative number, got {rate}"
        );
        Self { rate }
    }

    /// The rate `e` in energy units per slot.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// The per-renewal budget `e·μ` available to spend across one expected
    /// inter-arrival time.
    pub fn per_renewal(&self, mean_gap: f64) -> f64 {
        self.rate * mean_gap
    }
}

/// One allocatable item of the water-filling: a slot (or the aggregated
/// geometric tail) with its hazard, energy cost, and capture reward.
#[derive(Debug, Clone, Copy)]
struct Item {
    /// Slot index, or `usize::MAX` for the aggregated tail.
    slot: usize,
    hazard: f64,
    /// `ξ_i`: expected energy cost of setting `c_i = 1`, per renewal.
    cost: f64,
    /// `α_i`: expected captures of setting `c_i = 1`, per renewal.
    reward: f64,
}

/// The optimal full-information activation policy `π*_FI(e)` of Theorem 1.
///
/// See the [crate-level example](crate) for the worked two-slot instance from
/// Section IV-A of the paper.
#[derive(Debug, Clone, PartialEq)]
pub struct GreedyPolicy {
    coefficients: Vec<f64>,
    tail_coefficient: f64,
    ideal_qom: f64,
    discharge_rate: f64,
    mean_gap: f64,
    label: String,
}

impl GreedyPolicy {
    /// Computes the optimal policy for the event process `pmf` under the
    /// recharge budget and consumption model.
    ///
    /// # Errors
    ///
    /// Returns [`PolicyError::BudgetTooSmall`] if the budget is exactly zero
    /// (no activation is ever possible, so the policy would be vacuous).
    pub fn optimize(
        pmf: &SlotPmf,
        budget: EnergyBudget,
        consumption: &ConsumptionModel,
    ) -> Result<Self> {
        let mu = pmf.mean();
        let per_renewal = budget.per_renewal(mu);
        if per_renewal <= 0.0 {
            return Err(PolicyError::BudgetTooSmall {
                budget: per_renewal,
            });
        }
        let d1 = consumption.delta1_units();
        let d2 = consumption.delta2_units();
        let horizon = pmf.horizon();

        let mut items = Vec::with_capacity(horizon + 1);
        for i in 1..=horizon {
            let alpha = pmf.pmf(i);
            let surv_prev = pmf.survival(i - 1);
            let cost = d1 * surv_prev + d2 * alpha;
            if cost <= 0.0 {
                continue; // unreachable slot: costs nothing, captures nothing
            }
            items.push(Item {
                slot: i,
                hazard: pmf.hazard(i),
                cost,
                reward: alpha,
            });
        }
        let tail_mass = pmf.tail_mass();
        if tail_mass > 0.0 {
            let h = pmf.tail_hazard();
            // Σ_{i>H} ξ_i = δ1·Σ_{j≥H} (1 − F(j)) + δ2·tail_mass
            //             = δ1·tail_mass/h + δ2·tail_mass.
            items.push(Item {
                slot: usize::MAX,
                hazard: h,
                cost: d1 * tail_mass / h + d2 * tail_mass,
                reward: tail_mass,
            });
        }

        // Remark 1: sort by conditional probability, best first; ties go to
        // the earlier slot (load-balancing-friendly and deterministic).
        items.sort_by(|a, b| b.hazard.total_cmp(&a.hazard).then(a.slot.cmp(&b.slot)));

        let mut remaining = per_renewal;
        let mut coefficients = vec![0.0; horizon];
        let mut tail_coefficient = 0.0;
        let mut ideal_qom = 0.0;
        let mut spent = 0.0;
        for item in &items {
            if remaining <= 0.0 {
                break;
            }
            let c = (remaining / item.cost).min(1.0);
            remaining -= c * item.cost;
            spent += c * item.cost;
            ideal_qom += c * item.reward;
            if item.slot == usize::MAX {
                tail_coefficient = c;
            } else {
                coefficients[item.slot - 1] = c;
            }
        }

        Ok(Self {
            coefficients,
            tail_coefficient,
            ideal_qom,
            discharge_rate: spent / mu,
            mean_gap: mu,
            label: format!("greedy-FI(e={}, {})", budget.rate(), pmf.label()),
        })
    }

    /// The activation probability `c_i` for state `h_i` (`i ≥ 1`).
    ///
    /// # Panics
    ///
    /// Panics if `slot == 0`; states are 1-based.
    pub fn coefficient(&self, slot: usize) -> f64 {
        assert!(slot >= 1, "states are 1-based");
        if slot <= self.coefficients.len() {
            self.coefficients[slot - 1]
        } else {
            self.tail_coefficient
        }
    }

    /// The ideal QoM `U(π*_FI(e))` achieved under the energy assumption —
    /// the "Upper Bound" curve of the paper's Fig. 3(a).
    pub fn ideal_qom(&self) -> f64 {
        self.ideal_qom
    }

    /// The planned long-run discharge rate; equals `e` when the budget is
    /// binding, and less when the sensor has surplus energy.
    pub fn discharge_rate(&self) -> f64 {
        self.discharge_rate
    }

    /// Number of explicitly stored coefficients.
    pub fn horizon(&self) -> usize {
        self.coefficients.len()
    }

    /// The mean inter-arrival time `μ` the policy was optimized for.
    pub fn mean_gap(&self) -> f64 {
        self.mean_gap
    }

    /// Re-solves the truncated LP (7)–(8) with the simplex solver from
    /// `evcap-lp` and returns its optimal objective, certifying Theorem 1
    /// (the caller asserts it matches [`ideal_qom`](Self::ideal_qom)).
    ///
    /// `horizon` bounds the number of LP variables; it should cover
    /// essentially all probability mass of `pmf`.
    ///
    /// # Errors
    ///
    /// Propagates LP construction/solution failures as [`PolicyError::Lp`].
    pub fn certify_against_lp(
        &self,
        pmf: &SlotPmf,
        budget: EnergyBudget,
        consumption: &ConsumptionModel,
        horizon: usize,
    ) -> Result<f64> {
        let d1 = consumption.delta1_units();
        let d2 = consumption.delta2_units();
        let rewards: Vec<f64> = (1..=horizon).map(|i| pmf.pmf(i)).collect();
        let costs: Vec<f64> = (1..=horizon)
            .map(|i| d1 * pmf.survival(i - 1) + d2 * pmf.pmf(i))
            .collect();
        let total_cost: f64 = costs.iter().sum();
        // The paper states the constraint as an equality; when the budget
        // exceeds what full activation can spend, the equality is infeasible
        // and the effective constraint is Σ ξ c ≤ budget.
        let per_renewal = budget.per_renewal(pmf.mean()).min(total_cost);
        let mut problem = Problem::maximize(rewards);
        problem.constraint(costs, Relation::Eq, per_renewal)?;
        for i in 0..horizon {
            problem.upper_bound(i, 1.0)?;
        }
        let solution = problem.solve()?;
        Ok(solution.objective)
    }

    /// Reassembles a policy from previously solved parts — the fields a
    /// persisted artifact recorded — without re-running the water-filling.
    ///
    /// This is the rehydration door used by the scenario layer when loading
    /// artifacts from the on-disk store; validation here keeps a corrupted
    /// record from materializing as an out-of-range policy.
    ///
    /// # Errors
    ///
    /// Returns [`PolicyError::InvalidParameter`] if any coefficient (or the
    /// tail) is not a probability, the QoM is not a probability, the
    /// discharge rate is negative or non-finite, or the mean gap is not a
    /// positive finite number.
    pub fn from_parts(
        coefficients: Vec<f64>,
        tail_coefficient: f64,
        ideal_qom: f64,
        discharge_rate: f64,
        mean_gap: f64,
        label: String,
    ) -> Result<Self> {
        let prob = |name: &'static str, v: f64| -> Result<f64> {
            if v.is_finite() && (0.0..=1.0).contains(&v) {
                Ok(v)
            } else {
                Err(PolicyError::InvalidParameter {
                    name,
                    value: v,
                    expected: "a probability in [0, 1]",
                })
            }
        };
        for &c in &coefficients {
            prob("coefficient", c)?;
        }
        prob("tail_coefficient", tail_coefficient)?;
        prob("ideal_qom", ideal_qom)?;
        if !(discharge_rate.is_finite() && discharge_rate >= 0.0) {
            return Err(PolicyError::InvalidParameter {
                name: "discharge_rate",
                value: discharge_rate,
                expected: "a finite non-negative rate",
            });
        }
        if !(mean_gap.is_finite() && mean_gap > 0.0) {
            return Err(PolicyError::InvalidParameter {
                name: "mean_gap",
                value: mean_gap,
                expected: "a positive finite mean gap",
            });
        }
        Ok(Self {
            coefficients,
            tail_coefficient,
            ideal_qom,
            discharge_rate,
            mean_gap,
            label,
        })
    }
}

impl ActivationPolicy for GreedyPolicy {
    fn probability(&self, ctx: &DecisionContext) -> f64 {
        self.coefficient(ctx.state)
    }

    fn info_model(&self) -> InfoModel {
        InfoModel::Full
    }

    fn label(&self) -> String {
        self.label.clone()
    }

    fn planned_discharge_rate(&self) -> Option<f64> {
        Some(self.discharge_rate)
    }

    fn table(&self) -> Option<PolicyTable> {
        Some(PolicyTable::new(
            self.coefficients.clone(),
            self.tail_coefficient,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evcap_dist::{Discretizer, Pareto, SlotPmf, Weibull};
    use evcap_energy::{ConsumptionModel, Energy};

    fn paper_consumption() -> ConsumptionModel {
        ConsumptionModel::paper_defaults()
    }

    #[test]
    fn section_iv_a_worked_example() {
        // α1 = 0.6, α2 = 0.4; β1 = 0.6 < β2 = 1. Slot 2 costs
        // ξ2 = δ1·0.4 + δ2·0.4 = 2.8 per renewal; slot 1 costs
        // ξ1 = δ1·1 + δ2·0.6 = 4.6.
        let pmf = SlotPmf::from_pmf(vec![0.6, 0.4]).unwrap();
        let consumption = paper_consumption();
        let mu = pmf.mean();

        // Budget exactly ξ2: everything goes to slot 2.
        let policy =
            GreedyPolicy::optimize(&pmf, EnergyBudget::per_slot(2.8 / mu), &consumption).unwrap();
        assert!(policy.coefficient(1).abs() < 1e-12);
        assert!((policy.coefficient(2) - 1.0).abs() < 1e-12);
        assert!((policy.ideal_qom() - 0.4).abs() < 1e-12);

        // Surplus budget flows to slot 1 at 60% efficiency.
        let policy =
            GreedyPolicy::optimize(&pmf, EnergyBudget::per_slot((2.8 + 2.3) / mu), &consumption)
                .unwrap();
        assert!((policy.coefficient(2) - 1.0).abs() < 1e-12);
        assert!((policy.coefficient(1) - 0.5).abs() < 1e-12);
        assert!((policy.ideal_qom() - (0.4 + 0.5 * 0.6)).abs() < 1e-12);
    }

    #[test]
    fn from_parts_round_trips_an_optimized_policy() {
        let pmf = Discretizer::new()
            .discretize(&Weibull::new(40.0, 3.0).unwrap())
            .unwrap();
        let policy =
            GreedyPolicy::optimize(&pmf, EnergyBudget::per_slot(0.5), &paper_consumption())
                .unwrap();
        let rebuilt = GreedyPolicy::from_parts(
            (1..=policy.horizon())
                .map(|i| policy.coefficient(i))
                .collect(),
            policy.coefficient(policy.horizon() + 1),
            policy.ideal_qom(),
            policy.discharge_rate(),
            policy.mean_gap(),
            policy.label(),
        )
        .unwrap();
        assert_eq!(policy, rebuilt);
    }

    #[test]
    fn from_parts_rejects_corrupted_fields() {
        let ok = || (vec![0.0, 1.0], 0.5, 0.4, 0.5, 40.0, "g".to_owned());
        let (c, t, q, d, m, l) = ok();
        assert!(GreedyPolicy::from_parts(c, t, q, d, m, l).is_ok());
        let (_, t, q, d, m, l) = ok();
        assert!(GreedyPolicy::from_parts(vec![1.5], t, q, d, m, l).is_err());
        let (c, _, q, d, m, l) = ok();
        assert!(GreedyPolicy::from_parts(c, f64::NAN, q, d, m, l).is_err());
        let (c, t, _, d, m, l) = ok();
        assert!(GreedyPolicy::from_parts(c, t, 2.0, d, m, l).is_err());
        let (c, t, q, _, m, l) = ok();
        assert!(GreedyPolicy::from_parts(c, t, q, -1.0, m, l).is_err());
        let (c, t, q, d, _, l) = ok();
        assert!(GreedyPolicy::from_parts(c, t, q, d, 0.0, l).is_err());
    }

    #[test]
    fn theorem_1_structure_for_increasing_hazard() {
        // Weibull(40, 3) has increasing hazard, so the optimal policy is
        // (0, …, 0, c_{k+1}, 1, 1, …): a single threshold with one
        // fractional coefficient.
        let pmf = Discretizer::new()
            .discretize(&Weibull::new(40.0, 3.0).unwrap())
            .unwrap();
        let policy =
            GreedyPolicy::optimize(&pmf, EnergyBudget::per_slot(0.5), &paper_consumption())
                .unwrap();
        let mut fractional = 0;
        let mut seen_positive = false;
        for i in 1..=pmf.horizon() {
            let c = policy.coefficient(i);
            if pmf.survival(i - 1) < 1e-12 {
                break; // unreachable states carry arbitrary (zero) c
            }
            if c > 1e-12 && c < 1.0 - 1e-12 {
                fractional += 1;
            }
            if seen_positive && pmf.hazard(i) >= pmf.hazard(i - 1) {
                // Once activation starts it never stops (hazard increasing).
                assert!(c > 1e-12, "gap in activation at slot {i}");
            }
            if c > 1e-12 {
                seen_positive = true;
            }
        }
        assert!(seen_positive);
        assert!(fractional <= 1, "{fractional} fractional coefficients");
    }

    #[test]
    fn matches_lp_on_weibull() {
        let pmf = Discretizer::new()
            .discretize(&Weibull::new(15.0, 3.0).unwrap())
            .unwrap();
        for e in [0.2, 0.5, 1.0] {
            let budget = EnergyBudget::per_slot(e);
            let policy = GreedyPolicy::optimize(&pmf, budget, &paper_consumption()).unwrap();
            let lp = policy
                .certify_against_lp(&pmf, budget, &paper_consumption(), pmf.horizon())
                .unwrap();
            assert!(
                (policy.ideal_qom() - lp).abs() < 1e-6,
                "e={e}: greedy {} vs lp {lp}",
                policy.ideal_qom()
            );
        }
    }

    #[test]
    fn matches_lp_on_decreasing_hazard() {
        // Pareto hazards decrease, exercising Remark 1's sorting.
        let pmf = Discretizer::new()
            .max_horizon(400)
            .discretize(&Pareto::new(2.0, 10.0).unwrap())
            .unwrap();
        let budget = EnergyBudget::per_slot(0.3);
        let policy = GreedyPolicy::optimize(&pmf, budget, &paper_consumption()).unwrap();
        let lp = policy
            .certify_against_lp(&pmf, budget, &paper_consumption(), 400)
            .unwrap();
        // The greedy includes the analytic tail beyond the LP's truncation,
        // so allow the truncation error.
        assert!(
            (policy.ideal_qom() - lp).abs() < 1e-3,
            "greedy {} vs lp {lp}",
            policy.ideal_qom()
        );
    }

    #[test]
    fn saturates_at_full_activation() {
        // e ≥ δ1 + δ2/μ lets the sensor always activate: U = 1.
        let pmf = SlotPmf::from_pmf(vec![0.5, 0.5]).unwrap();
        let consumption = paper_consumption();
        let e_full = consumption.delta1_units() + consumption.delta2_units() / pmf.mean();
        let policy =
            GreedyPolicy::optimize(&pmf, EnergyBudget::per_slot(e_full + 0.1), &consumption)
                .unwrap();
        assert!((policy.ideal_qom() - 1.0).abs() < 1e-9);
        assert!((policy.coefficient(1) - 1.0).abs() < 1e-12);
        assert!((policy.coefficient(2) - 1.0).abs() < 1e-12);
        // Discharge never exceeds what full activation costs.
        assert!(policy.discharge_rate() <= e_full + 1e-12);
    }

    #[test]
    fn discharge_rate_matches_budget_when_binding() {
        let pmf = Discretizer::new()
            .discretize(&Weibull::new(40.0, 3.0).unwrap())
            .unwrap();
        let policy =
            GreedyPolicy::optimize(&pmf, EnergyBudget::per_slot(0.1), &paper_consumption())
                .unwrap();
        assert!((policy.discharge_rate() - 0.1).abs() < 1e-9);
    }

    #[test]
    fn zero_budget_is_rejected() {
        let pmf = SlotPmf::from_pmf(vec![1.0]).unwrap();
        let err = GreedyPolicy::optimize(&pmf, EnergyBudget::per_slot(0.0), &paper_consumption())
            .unwrap_err();
        assert!(matches!(err, PolicyError::BudgetTooSmall { .. }));
    }

    #[test]
    fn heavier_budget_never_decreases_qom() {
        let pmf = Discretizer::new()
            .discretize(&Weibull::new(20.0, 2.0).unwrap())
            .unwrap();
        let mut last = 0.0;
        for e in [0.05, 0.1, 0.2, 0.4, 0.8, 1.6] {
            let policy =
                GreedyPolicy::optimize(&pmf, EnergyBudget::per_slot(e), &paper_consumption())
                    .unwrap();
            assert!(policy.ideal_qom() + 1e-12 >= last, "e={e}");
            last = policy.ideal_qom();
        }
    }

    #[test]
    fn tail_allocation_for_markov_process() {
        use evcap_dist::MarkovEvents;
        // Markov events: β1 = a = 0.8 > 1 − b = 0.3 for k ≥ 2 — the tail
        // bucket must be filled only after slot 1.
        let pmf = MarkovEvents::new(0.8, 0.7).unwrap().to_slot_pmf().unwrap();
        let consumption = paper_consumption();
        // Budget enough for slot 1 (ξ1 = 1 + 6·0.8 = 5.8) plus a bit.
        let mu = pmf.mean();
        let policy =
            GreedyPolicy::optimize(&pmf, EnergyBudget::per_slot(6.5 / mu), &consumption).unwrap();
        assert!((policy.coefficient(1) - 1.0).abs() < 1e-12);
        // The remainder goes to the (uniform-hazard) tail, fractionally.
        let tail_c = policy.coefficient(2);
        assert!(tail_c > 0.0 && tail_c < 1.0, "{tail_c}");
        assert_eq!(policy.coefficient(2), policy.coefficient(50));
    }

    #[test]
    fn policy_trait_wiring() {
        let pmf = SlotPmf::from_pmf(vec![0.6, 0.4]).unwrap();
        let consumption =
            ConsumptionModel::new(Energy::from_units(1.0), Energy::from_units(6.0)).unwrap();
        let policy =
            GreedyPolicy::optimize(&pmf, EnergyBudget::per_slot(0.5), &consumption).unwrap();
        assert_eq!(policy.info_model(), InfoModel::Full);
        assert!(policy.label().contains("greedy-FI"));
        let ctx = DecisionContext::stationary(2);
        assert_eq!(policy.probability(&ctx), policy.coefficient(2));
        assert!(policy.planned_discharge_rate().is_some());
    }

    #[test]
    fn table_matches_probability_everywhere() {
        let pmf = Discretizer::new()
            .discretize(&Weibull::new(40.0, 3.0).unwrap())
            .unwrap();
        let policy =
            GreedyPolicy::optimize(&pmf, EnergyBudget::per_slot(0.5), &paper_consumption())
                .unwrap();
        let table = policy.table().expect("greedy is stationary");
        for i in 1..=(pmf.horizon() + 64) {
            let ctx = DecisionContext::stationary(i);
            assert_eq!(table.probability(i), policy.probability(&ctx), "state {i}");
        }
    }
}
