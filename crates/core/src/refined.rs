//! Progressively finer partial-information policies (Section IV-B2's
//! closing remark).
//!
//! The paper notes that the three-region clustering policy is coarse, and
//! that introducing additional transition points `c_{n4}, c_{n5}, …` yields
//! "progressively more detailed policies which converge to π*_PI" at the
//! cost of implementation complexity. [`RegionPolicy`] realizes that family:
//! an arbitrary piecewise-constant activation profile over the states `f_i`,
//! with a final segment that extends to infinity (the recovery analogue).
//!
//! [`RegionPolicy::refine`] implements the convergence knob: starting from
//! any policy (typically an optimized [`ClusteringPolicy`]), it splits
//! segments and re-tunes their coefficients by energy-balanced coordinate
//! ascent on the exact belief-chain evaluation. Each refinement round can
//! only improve the analytic QoM, giving a concrete measurement of how far
//! the coarse heuristic sits from the best state-indexed policy (see the
//! `ablation_refined_convergence` bench).

use evcap_dist::SlotPmf;
use evcap_energy::ConsumptionModel;

use crate::clustering::{evaluate_partial_info, ClusterEvaluation, ClusteringPolicy, EvalOptions};
use crate::greedy::EnergyBudget;
use crate::policy::{ActivationPolicy, DecisionContext, InfoModel, PolicyTable};
use crate::{PolicyError, Result};

/// One piecewise-constant segment: states `start..next_start` activate with
/// probability `coefficient`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// First state (1-based) of the segment.
    pub start: usize,
    /// Activation probability throughout the segment.
    pub coefficient: f64,
}

/// A piecewise-constant partial-information activation policy with an
/// unbounded final segment.
///
/// # Example
///
/// ```
/// use evcap_core::{RegionPolicy, Segment};
///
/// # fn main() -> Result<(), evcap_core::PolicyError> {
/// let policy = RegionPolicy::new(vec![
///     Segment { start: 1, coefficient: 0.0 },
///     Segment { start: 20, coefficient: 1.0 },
///     Segment { start: 50, coefficient: 0.25 },
/// ])?;
/// assert_eq!(policy.coefficient(5), 0.0);
/// assert_eq!(policy.coefficient(30), 1.0);
/// assert_eq!(policy.coefficient(1_000), 0.25);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RegionPolicy {
    segments: Vec<Segment>,
}

impl RegionPolicy {
    /// Creates a policy from segments.
    ///
    /// # Errors
    ///
    /// Returns [`PolicyError::InvalidParameter`] if the list is empty, does
    /// not start at state 1, has non-increasing starts, or contains a
    /// coefficient outside `[0, 1]`.
    pub fn new(segments: Vec<Segment>) -> Result<Self> {
        if segments.is_empty() || segments[0].start != 1 {
            return Err(PolicyError::InvalidParameter {
                name: "segments",
                value: segments.first().map(|s| s.start as f64).unwrap_or(0.0),
                expected: "a non-empty list whose first segment starts at state 1",
            });
        }
        for window in segments.windows(2) {
            if window[1].start <= window[0].start {
                return Err(PolicyError::InvalidParameter {
                    name: "segments",
                    value: window[1].start as f64,
                    expected: "strictly increasing segment starts",
                });
            }
        }
        for s in &segments {
            if !s.coefficient.is_finite() || !(0.0..=1.0).contains(&s.coefficient) {
                return Err(PolicyError::InvalidParameter {
                    name: "coefficient",
                    value: s.coefficient,
                    expected: "a probability in [0, 1]",
                });
            }
        }
        Ok(Self { segments })
    }

    /// Converts a three-region clustering policy into its (equivalent)
    /// region form, the usual starting point for refinement.
    pub fn from_clustering(policy: &ClusteringPolicy) -> Self {
        let (c1, c2, c3) = policy.boundary_coefficients();
        let (n1, n2, n3) = (policy.n1(), policy.n2(), policy.n3());
        let mut segments = Vec::new();
        let mut push = |start: usize, coefficient: f64| {
            // Collapse adjacent equal coefficients.
            if segments
                .last()
                .map(|s: &Segment| (s.coefficient - coefficient).abs() > 1e-15)
                .unwrap_or(true)
            {
                segments.push(Segment { start, coefficient });
            }
        };
        push(1, if n1 == 1 { c1 } else { 0.0 });
        if n1 > 1 {
            push(n1, c1);
        }
        if n2 > n1 {
            if n2 > n1 + 1 {
                push(n1 + 1, 1.0);
            }
            push(n2, c2);
        }
        if n3 > n2 {
            if n3 > n2 + 1 {
                push(n2 + 1, 0.0);
            }
            push(n3, c3);
        }
        push(n3 + 1, 1.0);
        Self { segments }
    }

    /// The activation probability in state `f_i`.
    ///
    /// # Panics
    ///
    /// Panics if `state == 0`; states are 1-based.
    pub fn coefficient(&self, state: usize) -> f64 {
        assert!(state >= 1, "states are 1-based");
        match self.segments.binary_search_by(|s| s.start.cmp(&state)) {
            Ok(i) => self.segments[i].coefficient,
            Err(i) => self.segments[i - 1].coefficient,
        }
    }

    /// The segments, in order.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Evaluates this policy analytically (capture probability, discharge
    /// rate, expected capture cycle).
    pub fn evaluate(
        &self,
        pmf: &SlotPmf,
        consumption: &ConsumptionModel,
        opts: EvalOptions,
    ) -> ClusterEvaluation {
        evaluate_partial_info(pmf, |i| self.coefficient(i), consumption, opts)
    }

    /// One refinement pass: split every segment at its midpoint, then run
    /// energy-balanced coordinate ascent on all coefficients. Returns the
    /// refined policy and its evaluation; the analytic QoM never decreases.
    ///
    /// `rounds` chains several passes (each pass doubles the number of
    /// tunable segments, capped at `max_segments`).
    pub fn refine(
        &self,
        pmf: &SlotPmf,
        budget: EnergyBudget,
        consumption: &ConsumptionModel,
        opts: EvalOptions,
        rounds: usize,
        max_segments: usize,
    ) -> (RegionPolicy, ClusterEvaluation) {
        let mut current = self.clone();
        // Balance the seed first: the returned evaluation must always be
        // energy feasible, even if the seed is not.
        let mut best_eval = coordinate_ascent(&mut current, pmf, budget, consumption, opts);
        let mut best_policy = current.clone();
        for _ in 0..rounds {
            let mut split = Vec::with_capacity(current.segments.len() * 2);
            for (idx, seg) in current.segments.iter().enumerate() {
                split.push(*seg);
                if split.len() >= max_segments {
                    continue;
                }
                let end = current
                    .segments
                    .get(idx + 1)
                    .map(|s| s.start)
                    .unwrap_or(seg.start + 16); // split the unbounded tail a bit out
                let mid = seg.start + (end - seg.start) / 2;
                if mid > seg.start {
                    split.push(Segment {
                        start: mid,
                        coefficient: seg.coefficient,
                    });
                }
            }
            current = RegionPolicy { segments: split };
            let eval = coordinate_ascent(&mut current, pmf, budget, consumption, opts);
            if eval.capture_probability > best_eval.capture_probability {
                best_eval = eval;
                best_policy = current.clone();
            }
        }
        (best_policy, best_eval)
    }
}

/// Greedy coordinate ascent over segment coefficients under the energy
/// budget: repeatedly tries moving each coefficient up/down on a shrinking
/// grid, keeping changes that improve the (feasible) capture probability.
fn coordinate_ascent(
    policy: &mut RegionPolicy,
    pmf: &SlotPmf,
    budget: EnergyBudget,
    consumption: &ConsumptionModel,
    opts: EvalOptions,
) -> ClusterEvaluation {
    let e = budget.rate();
    let feasible_eval = |p: &RegionPolicy| {
        let ev = p.evaluate(pmf, consumption, opts);
        (ev.discharge_rate <= e + 1e-9).then_some(ev)
    };
    // If the starting point is infeasible, scale all coefficients down first.
    let mut best = match feasible_eval(policy) {
        Some(ev) => ev,
        None => {
            let (mut lo, mut hi) = (0.0f64, 1.0f64);
            let base = policy.clone();
            let mut chosen = None;
            for _ in 0..24 {
                let mid = 0.5 * (lo + hi);
                let mut scaled = base.clone();
                for s in &mut scaled.segments {
                    s.coefficient *= mid;
                }
                match feasible_eval(&scaled) {
                    Some(ev) => {
                        chosen = Some((scaled, ev));
                        lo = mid;
                    }
                    None => hi = mid,
                }
            }
            let (scaled, ev) = chosen.unwrap_or_else(|| {
                let mut zero = base.clone();
                for s in &mut zero.segments {
                    s.coefficient = 0.0;
                }
                let ev = zero.evaluate(pmf, consumption, opts);
                (zero, ev)
            });
            *policy = scaled;
            ev
        }
    };
    let mut step = 0.25;
    while step >= 0.01 {
        let mut improved = true;
        while improved {
            improved = false;
            // Single-coordinate moves.
            for i in 0..policy.segments.len() {
                for dir in [1.0f64, -1.0] {
                    let old = policy.segments[i].coefficient;
                    let new = (old + dir * step).clamp(0.0, 1.0);
                    if (new - old).abs() < 1e-12 {
                        continue;
                    }
                    policy.segments[i].coefficient = new;
                    match feasible_eval(policy) {
                        Some(ev) if ev.capture_probability > best.capture_probability + 1e-12 => {
                            best = ev;
                            improved = true;
                        }
                        _ => policy.segments[i].coefficient = old,
                    }
                }
            }
            // Paired transfer moves: shift activation mass from segment j to
            // segment i. Under a binding budget no single-coordinate move is
            // feasible *and* improving, so transfers are what actually make
            // progress.
            for i in 0..policy.segments.len() {
                for j in 0..policy.segments.len() {
                    if i == j {
                        continue;
                    }
                    let (old_i, old_j) = (
                        policy.segments[i].coefficient,
                        policy.segments[j].coefficient,
                    );
                    let new_i = (old_i + step).min(1.0);
                    let new_j = (old_j - step).max(0.0);
                    if (new_i - old_i).abs() < 1e-12 || (new_j - old_j).abs() < 1e-12 {
                        continue;
                    }
                    policy.segments[i].coefficient = new_i;
                    policy.segments[j].coefficient = new_j;
                    match feasible_eval(policy) {
                        Some(ev) if ev.capture_probability > best.capture_probability + 1e-12 => {
                            best = ev;
                            improved = true;
                        }
                        _ => {
                            policy.segments[i].coefficient = old_i;
                            policy.segments[j].coefficient = old_j;
                        }
                    }
                }
            }
        }
        step *= 0.5;
    }
    best
}

impl ActivationPolicy for RegionPolicy {
    fn probability(&self, ctx: &DecisionContext) -> f64 {
        self.coefficient(ctx.state)
    }

    fn info_model(&self) -> InfoModel {
        InfoModel::Partial
    }

    fn label(&self) -> String {
        format!("region-PI({} segments)", self.segments.len())
    }

    fn table(&self) -> Option<PolicyTable> {
        // The final segment is unbounded: its coefficient is the tail, and
        // only states before it need explicit entries.
        let last = self.segments.last()?;
        if last.start > PolicyTable::MAX_EXPLICIT_STATES {
            return None;
        }
        let probs = (1..last.start).map(|i| self.coefficient(i)).collect();
        Some(PolicyTable::new(probs, last.coefficient))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clustering::ClusteringOptimizer;
    use evcap_dist::{Discretizer, Weibull};

    fn consumption() -> ConsumptionModel {
        ConsumptionModel::paper_defaults()
    }

    #[test]
    fn construction_validates() {
        assert!(RegionPolicy::new(vec![]).is_err());
        assert!(RegionPolicy::new(vec![Segment {
            start: 2,
            coefficient: 1.0
        }])
        .is_err());
        assert!(RegionPolicy::new(vec![
            Segment {
                start: 1,
                coefficient: 0.5
            },
            Segment {
                start: 1,
                coefficient: 0.7
            },
        ])
        .is_err());
        assert!(RegionPolicy::new(vec![Segment {
            start: 1,
            coefficient: 1.5
        }])
        .is_err());
    }

    #[test]
    fn coefficient_lookup() {
        let p = RegionPolicy::new(vec![
            Segment {
                start: 1,
                coefficient: 0.0,
            },
            Segment {
                start: 10,
                coefficient: 0.5,
            },
            Segment {
                start: 20,
                coefficient: 1.0,
            },
        ])
        .unwrap();
        assert_eq!(p.coefficient(1), 0.0);
        assert_eq!(p.coefficient(9), 0.0);
        assert_eq!(p.coefficient(10), 0.5);
        assert_eq!(p.coefficient(19), 0.5);
        assert_eq!(p.coefficient(20), 1.0);
        assert_eq!(p.coefficient(10_000), 1.0);
    }

    #[test]
    fn table_matches_probability_everywhere() {
        let c = ClusteringPolicy::new(5, 9, 14, 0.3, 0.7, 0.9).unwrap();
        let p = RegionPolicy::from_clustering(&c);
        let table = p.table().expect("regions are stationary");
        for state in 1..=100 {
            let ctx = DecisionContext::stationary(state);
            assert_eq!(table.probability(state), p.probability(&ctx), "{state}");
        }
    }

    #[test]
    fn from_clustering_is_equivalent() {
        let c = ClusteringPolicy::new(5, 9, 14, 0.3, 0.7, 0.9).unwrap();
        let r = RegionPolicy::from_clustering(&c);
        for state in 1..=40 {
            assert_eq!(
                r.coefficient(state),
                c.coefficient(state),
                "state {state}: {:?}",
                r.segments()
            );
        }
    }

    #[test]
    fn from_clustering_handles_degenerate_boundaries() {
        for (n1, n2, n3) in [(1, 1, 1), (3, 3, 3), (2, 2, 5), (2, 5, 5), (1, 4, 9)] {
            let c = ClusteringPolicy::new(n1, n2, n3, 0.4, 0.6, 0.8).unwrap();
            let r = RegionPolicy::from_clustering(&c);
            for state in 1..=30 {
                assert_eq!(
                    r.coefficient(state),
                    c.coefficient(state),
                    "({n1},{n2},{n3}) state {state}"
                );
            }
        }
    }

    #[test]
    fn evaluation_matches_clustering_evaluation() {
        let pmf = Discretizer::new()
            .discretize(&Weibull::new(12.0, 3.0).unwrap())
            .unwrap();
        let c = ClusteringPolicy::new(6, 12, 18, 0.5, 1.0, 1.0).unwrap();
        let r = RegionPolicy::from_clustering(&c);
        let ev_c = c.evaluate(&pmf, &consumption(), EvalOptions::default());
        let ev_r = r.evaluate(&pmf, &consumption(), EvalOptions::default());
        assert!((ev_c.capture_probability - ev_r.capture_probability).abs() < 1e-12);
        assert!((ev_c.discharge_rate - ev_r.discharge_rate).abs() < 1e-12);
    }

    #[test]
    fn refinement_never_decreases_qom_and_stays_feasible() {
        let pmf = Discretizer::new()
            .discretize(&Weibull::new(40.0, 3.0).unwrap())
            .unwrap();
        let budget = EnergyBudget::per_slot(0.5);
        let (coarse, coarse_eval) = ClusteringOptimizer::new(budget)
            .optimize(&pmf, &consumption())
            .unwrap();
        let seed = RegionPolicy::from_clustering(&coarse);
        let (refined, refined_eval) =
            seed.refine(&pmf, budget, &consumption(), EvalOptions::default(), 2, 24);
        assert!(
            refined_eval.capture_probability >= coarse_eval.capture_probability - 1e-9,
            "refined {} vs coarse {}",
            refined_eval.capture_probability,
            coarse_eval.capture_probability
        );
        assert!(refined_eval.discharge_rate <= 0.5 + 1e-6);
        assert!(refined.segments().len() >= seed.segments().len());
    }

    #[test]
    fn ascent_rescues_infeasible_start() {
        let pmf = Discretizer::new()
            .discretize(&Weibull::new(12.0, 3.0).unwrap())
            .unwrap();
        // Always-on is far over a 0.2 budget. The refinement must return an
        // energy-feasible policy with positive capture (the local search is
        // not required to discover global structure from a pathological
        // seed — use ClusteringOptimizer for that — but it must never
        // return an infeasible evaluation).
        let seed = RegionPolicy::new(vec![Segment {
            start: 1,
            coefficient: 1.0,
        }])
        .unwrap();
        let (refined, eval) = seed.refine(
            &pmf,
            EnergyBudget::per_slot(0.2),
            &consumption(),
            EvalOptions::default(),
            2,
            16,
        );
        assert!(eval.discharge_rate <= 0.2 + 1e-6, "{}", eval.discharge_rate);
        assert!(eval.capture_probability > 0.05);
        // The returned policy re-evaluates to the returned numbers.
        let recheck = refined.evaluate(&pmf, &consumption(), EvalOptions::default());
        assert!((recheck.capture_probability - eval.capture_probability).abs() < 1e-9);
    }

    #[test]
    fn trait_wiring() {
        let p = RegionPolicy::new(vec![Segment {
            start: 1,
            coefficient: 0.5,
        }])
        .unwrap();
        assert_eq!(p.info_model(), InfoModel::Partial);
        assert!(p.label().contains("region-PI"));
        assert_eq!(p.probability(&DecisionContext::stationary(3)), 0.5);
    }
}
