//! The comparator policy of Jaggi et al. for Markov-modulated events.
//!
//! Fig. 5 of the paper compares `π'_PI` against the rechargeable-sensor
//! activation policy of Jaggi, Kar, and Krishnamurthy (reference [6]), which
//! models events as a two-state Markov chain with `a = P(1|1)`, `b = P(0|0)`
//! and **presumes positive temporal correlation** (`a, b > 0.5`): after a
//! captured event the next event is most likely immediately, so the policy
//! gives the slot right after a capture first claim on the energy budget.
//!
//! Their chain has only two belief regimes — "just saw an event" and
//! "haven't seen one" (where the belief decays geometrically to its
//! stationary value) — so the policy family is two-dimensional: activate
//! with probability `c₁` in state `f_1` and with a uniform probability
//! `c_rest` in every later state, energy balanced. Under the scheme's
//! premise, `c₁` is filled first. When the premise holds (`a, b > 0.5`,
//! i.e. `β_1 = a` exceeds the flat continuation hazard `1 − b`) this
//! allocation is the right greedy order and the policy matches the paper's
//! clustering heuristic; when it fails, the forced priority wastes energy on
//! an unlikely slot and `π'_PI` pulls ahead — exactly Fig. 5's message.

use evcap_dist::MarkovEvents;
use evcap_energy::ConsumptionModel;

use crate::clustering::{evaluate_partial_info, ClusterEvaluation, EvalOptions};
use crate::greedy::EnergyBudget;
use crate::policy::{ActivationPolicy, DecisionContext, InfoModel, PolicyTable};
use crate::{PolicyError, Result};

/// The energy-balanced positive-correlation policy `π_EBCW`.
#[derive(Debug, Clone, PartialEq)]
pub struct EbcwPolicy {
    c1: f64,
    c_rest: f64,
    evaluation: ClusterEvaluation,
    a: f64,
    b: f64,
}

impl EbcwPolicy {
    /// Optimizes the policy for the given Markov event chain and budget:
    /// fill `c₁` first (the scheme's premise), then the uniform remainder.
    ///
    /// # Errors
    ///
    /// Returns [`PolicyError::BudgetTooSmall`] for a zero budget.
    pub fn optimize(
        chain: &MarkovEvents,
        budget: EnergyBudget,
        consumption: &ConsumptionModel,
    ) -> Result<Self> {
        if budget.rate() <= 0.0 {
            return Err(PolicyError::BudgetTooSmall { budget: 0.0 });
        }
        let pmf = chain.to_slot_pmf()?;
        let e = budget.rate();
        let opts = EvalOptions::default();
        let eval_at = |c1: f64, c_rest: f64| {
            evaluate_partial_info(
                &pmf,
                |i| if i == 1 { c1 } else { c_rest },
                consumption,
                opts,
            )
        };

        // Stage 1: how much of the budget does c₁ = 1 alone use?
        let solo = eval_at(1.0, 0.0);
        let (c1, c_rest, evaluation) = if solo.discharge_rate > e {
            // Not even the priority slot is affordable. A literal
            // "slot 1 only, fractional" policy can never re-synchronize once
            // a capture is missed, so (matching the battery-threshold
            // behavior of the original scheme, which re-activates whenever
            // enough energy has rebuilt) fall back to the uniform
            // energy-balanced rate.
            let (mut lo, mut hi) = (0.0f64, 1.0f64);
            let mut chosen = (0.0, eval_at(0.0, 0.0));
            for _ in 0..40 {
                let mid = 0.5 * (lo + hi);
                let ev = eval_at(mid, mid);
                if ev.discharge_rate <= e {
                    chosen = (mid, ev);
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
            (chosen.0, chosen.0, chosen.1)
        } else {
            // Stage 2: spend the surplus uniformly on the remaining states.
            let full = eval_at(1.0, 1.0);
            if full.discharge_rate <= e {
                (1.0, 1.0, full)
            } else {
                let (mut lo, mut hi) = (0.0f64, 1.0f64);
                let mut chosen = (0.0, solo);
                for _ in 0..40 {
                    let mid = 0.5 * (lo + hi);
                    let ev = eval_at(1.0, mid);
                    if ev.discharge_rate <= e {
                        chosen = (mid, ev);
                        lo = mid;
                    } else {
                        hi = mid;
                    }
                }
                (1.0, chosen.0, chosen.1)
            }
        };

        Ok(Self {
            c1,
            c_rest,
            evaluation,
            a: chain.a(),
            b: chain.b(),
        })
    }

    /// Activation probability in state `f_1` (right after a capture).
    pub fn c1(&self) -> f64 {
        self.c1
    }

    /// Uniform activation probability in every state `f_i`, `i ≥ 2`.
    pub fn c_rest(&self) -> f64 {
        self.c_rest
    }

    /// The analytic evaluation recorded at optimization time.
    pub fn evaluation(&self) -> ClusterEvaluation {
        self.evaluation
    }
}

impl ActivationPolicy for EbcwPolicy {
    fn probability(&self, ctx: &DecisionContext) -> f64 {
        if ctx.state == 1 {
            self.c1
        } else {
            self.c_rest
        }
    }

    fn info_model(&self) -> InfoModel {
        InfoModel::Partial
    }

    fn label(&self) -> String {
        format!("EBCW(a={}, b={})", self.a, self.b)
    }

    fn planned_discharge_rate(&self) -> Option<f64> {
        Some(self.evaluation.discharge_rate)
    }

    fn table(&self) -> Option<PolicyTable> {
        Some(PolicyTable::new(vec![self.c1], self.c_rest))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clustering::ClusteringOptimizer;

    fn consumption() -> ConsumptionModel {
        ConsumptionModel::paper_defaults()
    }

    #[test]
    fn slot_one_is_filled_first() {
        let chain = MarkovEvents::new(0.8, 0.8).unwrap();
        let policy =
            EbcwPolicy::optimize(&chain, EnergyBudget::per_slot(0.8), &consumption()).unwrap();
        assert!(policy.c1() >= policy.c_rest());
        assert!(policy.c1() > 0.0);
        assert_eq!(
            policy.probability(&DecisionContext::stationary(1)),
            policy.c1()
        );
        assert_eq!(
            policy.probability(&DecisionContext::stationary(7)),
            policy.c_rest()
        );
    }

    #[test]
    fn respects_energy_budget() {
        for (a, b) in [(0.8, 0.8), (0.3, 0.7), (0.6, 0.2), (0.9, 0.9)] {
            for e in [0.2, 0.5, 1.0, 2.0] {
                let chain = MarkovEvents::new(a, b).unwrap();
                let policy =
                    EbcwPolicy::optimize(&chain, EnergyBudget::per_slot(e), &consumption())
                        .unwrap();
                assert!(
                    policy.evaluation().discharge_rate <= e + 1e-6,
                    "a={a} b={b} e={e}: {}",
                    policy.evaluation().discharge_rate
                );
            }
        }
    }

    #[test]
    fn close_to_unconstrained_clustering_under_positive_correlation() {
        // a, b > 0.5: events cluster right after events, so prioritizing
        // slot 1 is what the free optimizer does anyway.
        let chain = MarkovEvents::new(0.7, 0.8).unwrap();
        let budget = EnergyBudget::per_slot(1.0);
        let pmf = chain.to_slot_pmf().unwrap();
        let ebcw = EbcwPolicy::optimize(&chain, budget, &consumption()).unwrap();
        let (_, free) = ClusteringOptimizer::new(budget)
            .optimize(&pmf, &consumption())
            .unwrap();
        // Note: analytically the two families differ slightly — the
        // clustering evaluator charges the aggressive recovery region at
        // c = 1 under the energy assumption, while EBCW's uniform fractional
        // tail is exactly balanced. In a battery-gated simulation (Fig. 5)
        // the recovery self-throttles and the two coincide; here we only
        // require the analytic values to be in the same ballpark.
        assert!(
            (ebcw.evaluation().capture_probability - free.capture_probability).abs() < 0.08,
            "ebcw {} vs free {}",
            ebcw.evaluation().capture_probability,
            free.capture_probability
        );
    }

    #[test]
    fn loses_to_free_clustering_under_negative_correlation() {
        // a = 0.15: an event almost never follows an event immediately, so
        // spending energy at slot 1 is wasteful; b = 0.2 makes slot 2 hot.
        let chain = MarkovEvents::new(0.15, 0.2).unwrap();
        let budget = EnergyBudget::per_slot(1.0);
        let pmf = chain.to_slot_pmf().unwrap();
        let ebcw = EbcwPolicy::optimize(&chain, budget, &consumption()).unwrap();
        let (_, free) = ClusteringOptimizer::new(budget)
            .optimize(&pmf, &consumption())
            .unwrap();
        assert!(
            free.capture_probability > ebcw.evaluation().capture_probability + 0.02,
            "free {} vs ebcw {}",
            free.capture_probability,
            ebcw.evaluation().capture_probability
        );
    }

    #[test]
    fn abundant_energy_reaches_full_activation() {
        let chain = MarkovEvents::new(0.8, 0.8).unwrap();
        let policy =
            EbcwPolicy::optimize(&chain, EnergyBudget::per_slot(10.0), &consumption()).unwrap();
        assert_eq!(policy.c1(), 1.0);
        assert_eq!(policy.c_rest(), 1.0);
        assert!((policy.evaluation().capture_probability - 1.0).abs() < 1e-6);
    }

    #[test]
    fn zero_budget_rejected() {
        let chain = MarkovEvents::new(0.8, 0.8).unwrap();
        assert!(matches!(
            EbcwPolicy::optimize(&chain, EnergyBudget::per_slot(0.0), &consumption()),
            Err(PolicyError::BudgetTooSmall { .. })
        ));
    }
}
