//! Fleet allocation across multiple points of interest.
//!
//! The paper's deployment story has sensors scattered over an area with
//! several PoIs, then analyzes one PoI in depth. This module closes the
//! loop: given `P` PoIs — each with its own event process and an importance
//! weight — and a fleet of `N` identical sensors, how many sensors should
//! watch each PoI?
//!
//! Because each PoI's achievable QoM under the M-FI scheme is the Theorem-1
//! optimum at aggregate budget `n·e`, which is a **concave** function of `n`
//! (the LP's value function is concave in its budget), the weighted marginal
//! gains are non-increasing and the greedy assignment — hand each sensor to
//! the PoI whose weighted QoM it improves most — is exactly optimal.
//! [`FleetAllocator::allocate`] implements it with memoized per-PoI value
//! curves; a brute-force cross-check lives in the tests.
//!
//! The allocator is objective-generic ([`FleetAllocator::objective`]): under
//! [`Objective::AoiPeak`] the per-PoI utility is `−E[T] = −μ_p/U_p(n)`,
//! which is still concave in `n` (a convex decreasing map of a concave
//! increasing curve), so the greedy assignment stays exactly optimal — and,
//! unlike the single-PoI case, genuinely reallocates sensors because `μ_p`
//! differs per PoI. [`Objective::AoiMean`] adds the cycle-variance term and
//! is a documented heuristic (its marginals are not provably monotone).

use evcap_dist::SlotPmf;
use evcap_energy::ConsumptionModel;

use crate::greedy::{EnergyBudget, GreedyPolicy};
use crate::objective::Objective;
use crate::{PolicyError, Result};

/// One point of interest: its event process and its importance weight.
#[derive(Debug, Clone)]
pub struct PoiSpec {
    /// The PoI's inter-arrival distribution.
    pub pmf: SlotPmf,
    /// Relative importance (the allocator maximizes `Σ weight·QoM`).
    pub weight: f64,
}

/// The allocator's output.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetPlan {
    /// Sensors assigned to each PoI (same order as the input).
    pub allocation: Vec<usize>,
    /// The ideal (energy-assumption) QoM each PoI achieves under its share.
    pub expected_qom: Vec<f64>,
    /// The achieved `Σ weight·QoM` (always reported, whatever the
    /// objective, for comparability across runs).
    pub weighted_qom: f64,
    /// The metric the allocation optimized.
    pub objective: Objective,
    /// Each PoI's achieved objective value in natural units (QoM, or slots
    /// of age; `+∞` for a PoI left unwatched under an age objective).
    pub objective_values: Vec<f64>,
}

/// Optimal greedy fleet allocator over the M-FI value curves.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetAllocator {
    per_sensor: EnergyBudget,
    consumption: ConsumptionModel,
    objective: Objective,
}

impl FleetAllocator {
    /// Creates an allocator for identical sensors with the given per-sensor
    /// recharge rate.
    pub fn new(per_sensor: EnergyBudget, consumption: ConsumptionModel) -> Self {
        Self {
            per_sensor,
            consumption,
            objective: Objective::Qom,
        }
    }

    /// Allocates for `objective` instead of QoM (see the module docs for
    /// which objectives keep the exact-optimality guarantee).
    #[must_use]
    pub fn objective(mut self, objective: Objective) -> Self {
        self.objective = objective;
        self
    }

    /// The ideal QoM of PoI `pmf` when watched by `n` sensors (M-FI at
    /// aggregate budget `n·e`); 0 for an unwatched PoI.
    ///
    /// # Errors
    ///
    /// Propagates policy-optimization failures.
    pub fn poi_value(&self, pmf: &SlotPmf, n: usize) -> Result<f64> {
        self.poi_point(pmf, n).map(|(qom, _)| qom)
    }

    /// Like [`FleetAllocator::poi_value`], but also reporting the PoI's
    /// utility under this allocator's objective (for QoM the two halves
    /// coincide). One greedy optimization feeds both.
    fn poi_point(&self, pmf: &SlotPmf, n: usize) -> Result<(f64, f64)> {
        if n == 0 {
            return Ok((0.0, self.objective.unwatched_utility()));
        }
        let aggregate = EnergyBudget::per_slot(self.per_sensor.rate() * n as f64);
        let policy = GreedyPolicy::optimize(pmf, aggregate, &self.consumption)?;
        let utility = self.objective.greedy_utility(pmf, &policy);
        Ok((policy.ideal_qom(), utility))
    }

    /// The weighted marginal utility of giving a PoI one more sensor,
    /// defined so the infinities of the age objectives stay out of the
    /// arithmetic: a PoI that remains unwatchable gains nothing, and the
    /// first finite coverage of a positive-weight PoI is infinitely
    /// valuable.
    fn marginal(weight: f64, cur: f64, next: f64) -> f64 {
        if weight <= 0.0 || next == f64::NEG_INFINITY {
            0.0
        } else if cur == f64::NEG_INFINITY {
            f64::INFINITY
        } else {
            weight * (next - cur)
        }
    }

    /// Distributes `sensors` across the PoIs to maximize `Σ weight·QoM`.
    ///
    /// # Errors
    ///
    /// * [`PolicyError::InvalidParameter`] if `pois` is empty or a weight is
    ///   not a finite non-negative number.
    /// * [`PolicyError::BudgetTooSmall`] for a zero per-sensor rate.
    pub fn allocate(&self, pois: &[PoiSpec], sensors: usize) -> Result<FleetPlan> {
        if pois.is_empty() {
            return Err(PolicyError::InvalidParameter {
                name: "pois",
                value: 0.0,
                expected: "at least one point of interest",
            });
        }
        for poi in pois {
            if !poi.weight.is_finite() || poi.weight < 0.0 {
                return Err(PolicyError::InvalidParameter {
                    name: "weight",
                    value: poi.weight,
                    expected: "a finite non-negative importance",
                });
            }
        }
        if self.per_sensor.rate() <= 0.0 {
            return Err(PolicyError::BudgetTooSmall { budget: 0.0 });
        }

        let mut allocation = vec![0usize; pois.len()];
        // Memoized (QoM, utility) curve: values[p] holds both halves of
        // U_p(0..=assigned+1); under QoM they are the same number.
        let mut values: Vec<Vec<(f64, f64)>> =
            vec![vec![(0.0, self.objective.unwatched_utility())]; pois.len()];
        for (p, poi) in pois.iter().enumerate() {
            let point = self.poi_point(&poi.pmf, 1)?;
            values[p].push(point);
        }
        for _ in 0..sensors {
            // Pick the PoI with the largest weighted marginal gain.
            let mut best: Option<(usize, f64)> = None;
            for (p, poi) in pois.iter().enumerate() {
                let n = allocation[p];
                let gain = Self::marginal(poi.weight, values[p][n].1, values[p][n + 1].1);
                if best.map(|(_, g)| gain > g + 1e-15).unwrap_or(true) {
                    best = Some((p, gain));
                }
            }
            let (p, _) = best.expect("pois is non-empty");
            allocation[p] += 1;
            // Extend that PoI's value curve for the next round.
            let next = allocation[p] + 1;
            if values[p].len() <= next {
                let point = self.poi_point(&pois[p].pmf, next)?;
                values[p].push(point);
            }
        }

        let expected_qom: Vec<f64> = allocation
            .iter()
            .enumerate()
            .map(|(p, &n)| values[p][n].0)
            .collect();
        let weighted_qom = expected_qom
            .iter()
            .zip(pois)
            .map(|(u, poi)| u * poi.weight)
            .sum();
        let objective_values: Vec<f64> = allocation
            .iter()
            .enumerate()
            .map(|(p, &n)| self.objective.utility_to_value(values[p][n].1))
            .collect();
        Ok(FleetPlan {
            allocation,
            expected_qom,
            weighted_qom,
            objective: self.objective,
            objective_values,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evcap_dist::{Discretizer, Weibull};

    fn allocator(e: f64) -> FleetAllocator {
        FleetAllocator::new(
            EnergyBudget::per_slot(e),
            ConsumptionModel::paper_defaults(),
        )
    }

    fn weibull(scale: f64) -> SlotPmf {
        Discretizer::new()
            .discretize(&Weibull::new(scale, 3.0).unwrap())
            .unwrap()
    }

    #[test]
    fn single_poi_gets_everything() {
        let pois = vec![PoiSpec {
            pmf: weibull(40.0),
            weight: 1.0,
        }];
        let plan = allocator(0.1).allocate(&pois, 5).unwrap();
        assert_eq!(plan.allocation, vec![5]);
        assert!(plan.expected_qom[0] > 0.0);
    }

    #[test]
    fn value_curve_is_concave() {
        let alloc = allocator(0.1);
        let pmf = weibull(40.0);
        let values: Vec<f64> = (0..8).map(|n| alloc.poi_value(&pmf, n).unwrap()).collect();
        for w in values.windows(3) {
            let first = w[1] - w[0];
            let second = w[2] - w[1];
            assert!(second <= first + 1e-9, "not concave: {values:?}");
        }
    }

    #[test]
    fn greedy_matches_brute_force() {
        let pois = vec![
            PoiSpec {
                pmf: weibull(20.0),
                weight: 1.0,
            },
            PoiSpec {
                pmf: weibull(40.0),
                weight: 2.0,
            },
            PoiSpec {
                pmf: weibull(60.0),
                weight: 0.5,
            },
        ];
        let alloc = allocator(0.15);
        let sensors = 6;
        let plan = alloc.allocate(&pois, sensors).unwrap();

        // Brute force over all compositions of 6 into 3 parts.
        let mut best = f64::NEG_INFINITY;
        for a in 0..=sensors {
            for b in 0..=(sensors - a) {
                let c = sensors - a - b;
                let value = pois[0].weight * alloc.poi_value(&pois[0].pmf, a).unwrap()
                    + pois[1].weight * alloc.poi_value(&pois[1].pmf, b).unwrap()
                    + pois[2].weight * alloc.poi_value(&pois[2].pmf, c).unwrap();
                best = best.max(value);
            }
        }
        assert!(
            (plan.weighted_qom - best).abs() < 1e-9,
            "greedy {} vs brute force {best}",
            plan.weighted_qom
        );
    }

    #[test]
    fn heavier_weight_attracts_sensors() {
        let pois = vec![
            PoiSpec {
                pmf: weibull(40.0),
                weight: 0.1,
            },
            PoiSpec {
                pmf: weibull(40.0),
                weight: 10.0,
            },
        ];
        let plan = allocator(0.1).allocate(&pois, 4).unwrap();
        assert!(
            plan.allocation[1] > plan.allocation[0],
            "{:?}",
            plan.allocation
        );
    }

    #[test]
    fn aoi_peak_greedy_matches_brute_force() {
        let pois = vec![
            PoiSpec {
                pmf: weibull(20.0),
                weight: 1.0,
            },
            PoiSpec {
                pmf: weibull(40.0),
                weight: 2.0,
            },
            PoiSpec {
                pmf: weibull(60.0),
                weight: 0.5,
            },
        ];
        let alloc = allocator(0.15).objective(Objective::AoiPeak);
        let sensors = 6;
        let plan = alloc.allocate(&pois, sensors).unwrap();
        assert_eq!(plan.objective, Objective::AoiPeak);
        let achieved: f64 = plan
            .objective_values
            .iter()
            .zip(&pois)
            .map(|(age, poi)| poi.weight * age)
            .sum();

        // Brute force over all compositions that watch every PoI (an
        // unwatched PoI has infinite peak age, so no finite plan skips one).
        let mut best = f64::INFINITY;
        let value = |p: usize, n: usize| -> f64 {
            if n == 0 {
                return f64::INFINITY;
            }
            pois[p].pmf.mean() / alloc.poi_value(&pois[p].pmf, n).unwrap()
        };
        for a in 1..=(sensors - 2) {
            for b in 1..=(sensors - a - 1) {
                let c = sensors - a - b;
                let total = pois[0].weight * value(0, a)
                    + pois[1].weight * value(1, b)
                    + pois[2].weight * value(2, c);
                best = best.min(total);
            }
        }
        assert!(
            (achieved - best).abs() < 1e-6 * best,
            "greedy {achieved} vs brute force {best}"
        );
    }

    #[test]
    fn aoi_allocation_differs_from_qom_when_gap_scales_differ() {
        // Under QoM the fast PoI (small μ) and slow PoI trade off by capture
        // fraction alone; under peak age the slow PoI's μ multiplies its
        // staleness, so the age-optimal fleet shifts sensors toward it.
        let pois = vec![
            PoiSpec {
                pmf: weibull(15.0),
                weight: 1.0,
            },
            PoiSpec {
                pmf: weibull(90.0),
                weight: 1.0,
            },
        ];
        let qom_plan = allocator(0.12).allocate(&pois, 8).unwrap();
        let aoi_plan = allocator(0.12)
            .objective(Objective::AoiPeak)
            .allocate(&pois, 8)
            .unwrap();
        assert_eq!(qom_plan.objective, Objective::Qom);
        assert!(
            aoi_plan.allocation != qom_plan.allocation,
            "expected the objectives to allocate differently: {:?}",
            aoi_plan.allocation
        );
        // Natural units: QoM values are probabilities, ages are slots.
        for v in &qom_plan.objective_values {
            assert!((0.0..=1.0).contains(v));
        }
        for v in &aoi_plan.objective_values {
            assert!(*v >= 1.0, "peak age below one slot: {v}");
        }
    }

    #[test]
    fn zero_weight_poi_does_not_poison_age_allocation() {
        // weight 0 × infinite first-coverage gain must not become NaN.
        let pois = vec![
            PoiSpec {
                pmf: weibull(40.0),
                weight: 0.0,
            },
            PoiSpec {
                pmf: weibull(40.0),
                weight: 1.0,
            },
        ];
        let plan = allocator(0.1)
            .objective(Objective::AoiMean)
            .allocate(&pois, 3)
            .unwrap();
        assert_eq!(plan.allocation, vec![0, 3], "{:?}", plan.allocation);
        assert!(plan.objective_values[0].is_infinite());
        assert!(plan.objective_values[1].is_finite());
    }

    #[test]
    fn zero_sensors_is_a_valid_empty_plan() {
        let pois = vec![PoiSpec {
            pmf: weibull(40.0),
            weight: 1.0,
        }];
        let plan = allocator(0.1).allocate(&pois, 0).unwrap();
        assert_eq!(plan.allocation, vec![0]);
        assert_eq!(plan.weighted_qom, 0.0);
    }

    #[test]
    fn validation() {
        let alloc = allocator(0.1);
        assert!(alloc.allocate(&[], 3).is_err());
        let bad = vec![PoiSpec {
            pmf: weibull(40.0),
            weight: -1.0,
        }];
        assert!(alloc.allocate(&bad, 3).is_err());
        let pois = vec![PoiSpec {
            pmf: weibull(40.0),
            weight: 1.0,
        }];
        assert!(allocator(0.0).allocate(&pois, 3).is_err());
    }
}
