//! Fleet allocation across multiple points of interest.
//!
//! The paper's deployment story has sensors scattered over an area with
//! several PoIs, then analyzes one PoI in depth. This module closes the
//! loop: given `P` PoIs — each with its own event process and an importance
//! weight — and a fleet of `N` identical sensors, how many sensors should
//! watch each PoI?
//!
//! Because each PoI's achievable QoM under the M-FI scheme is the Theorem-1
//! optimum at aggregate budget `n·e`, which is a **concave** function of `n`
//! (the LP's value function is concave in its budget), the weighted marginal
//! gains are non-increasing and the greedy assignment — hand each sensor to
//! the PoI whose weighted QoM it improves most — is exactly optimal.
//! [`FleetAllocator::allocate`] implements it with memoized per-PoI value
//! curves; a brute-force cross-check lives in the tests.

use evcap_dist::SlotPmf;
use evcap_energy::ConsumptionModel;

use crate::greedy::{EnergyBudget, GreedyPolicy};
use crate::{PolicyError, Result};

/// One point of interest: its event process and its importance weight.
#[derive(Debug, Clone)]
pub struct PoiSpec {
    /// The PoI's inter-arrival distribution.
    pub pmf: SlotPmf,
    /// Relative importance (the allocator maximizes `Σ weight·QoM`).
    pub weight: f64,
}

/// The allocator's output.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetPlan {
    /// Sensors assigned to each PoI (same order as the input).
    pub allocation: Vec<usize>,
    /// The ideal (energy-assumption) QoM each PoI achieves under its share.
    pub expected_qom: Vec<f64>,
    /// The achieved objective `Σ weight·QoM`.
    pub weighted_qom: f64,
}

/// Optimal greedy fleet allocator over the M-FI value curves.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetAllocator {
    per_sensor: EnergyBudget,
    consumption: ConsumptionModel,
}

impl FleetAllocator {
    /// Creates an allocator for identical sensors with the given per-sensor
    /// recharge rate.
    pub fn new(per_sensor: EnergyBudget, consumption: ConsumptionModel) -> Self {
        Self {
            per_sensor,
            consumption,
        }
    }

    /// The ideal QoM of PoI `pmf` when watched by `n` sensors (M-FI at
    /// aggregate budget `n·e`); 0 for an unwatched PoI.
    ///
    /// # Errors
    ///
    /// Propagates policy-optimization failures.
    pub fn poi_value(&self, pmf: &SlotPmf, n: usize) -> Result<f64> {
        if n == 0 {
            return Ok(0.0);
        }
        let aggregate = EnergyBudget::per_slot(self.per_sensor.rate() * n as f64);
        Ok(GreedyPolicy::optimize(pmf, aggregate, &self.consumption)?.ideal_qom())
    }

    /// Distributes `sensors` across the PoIs to maximize `Σ weight·QoM`.
    ///
    /// # Errors
    ///
    /// * [`PolicyError::InvalidParameter`] if `pois` is empty or a weight is
    ///   not a finite non-negative number.
    /// * [`PolicyError::BudgetTooSmall`] for a zero per-sensor rate.
    pub fn allocate(&self, pois: &[PoiSpec], sensors: usize) -> Result<FleetPlan> {
        if pois.is_empty() {
            return Err(PolicyError::InvalidParameter {
                name: "pois",
                value: 0.0,
                expected: "at least one point of interest",
            });
        }
        for poi in pois {
            if !poi.weight.is_finite() || poi.weight < 0.0 {
                return Err(PolicyError::InvalidParameter {
                    name: "weight",
                    value: poi.weight,
                    expected: "a finite non-negative importance",
                });
            }
        }
        if self.per_sensor.rate() <= 0.0 {
            return Err(PolicyError::BudgetTooSmall { budget: 0.0 });
        }

        let mut allocation = vec![0usize; pois.len()];
        // Memoized value curve: values[p] holds U_p(0..=assigned+1).
        let mut values: Vec<Vec<f64>> = vec![vec![0.0]; pois.len()];
        for (p, poi) in pois.iter().enumerate() {
            values[p].push(self.poi_value(&poi.pmf, 1)?);
        }
        for _ in 0..sensors {
            // Pick the PoI with the largest weighted marginal gain.
            let mut best: Option<(usize, f64)> = None;
            for (p, poi) in pois.iter().enumerate() {
                let n = allocation[p];
                let gain = poi.weight * (values[p][n + 1] - values[p][n]);
                if best.map(|(_, g)| gain > g + 1e-15).unwrap_or(true) {
                    best = Some((p, gain));
                }
            }
            let (p, _) = best.expect("pois is non-empty");
            allocation[p] += 1;
            // Extend that PoI's value curve for the next round.
            let next = allocation[p] + 1;
            if values[p].len() <= next {
                let value = self.poi_value(&pois[p].pmf, next)?;
                values[p].push(value);
            }
        }

        let expected_qom: Vec<f64> = allocation
            .iter()
            .enumerate()
            .map(|(p, &n)| values[p][n])
            .collect();
        let weighted_qom = expected_qom
            .iter()
            .zip(pois)
            .map(|(u, poi)| u * poi.weight)
            .sum();
        Ok(FleetPlan {
            allocation,
            expected_qom,
            weighted_qom,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evcap_dist::{Discretizer, Weibull};

    fn allocator(e: f64) -> FleetAllocator {
        FleetAllocator::new(
            EnergyBudget::per_slot(e),
            ConsumptionModel::paper_defaults(),
        )
    }

    fn weibull(scale: f64) -> SlotPmf {
        Discretizer::new()
            .discretize(&Weibull::new(scale, 3.0).unwrap())
            .unwrap()
    }

    #[test]
    fn single_poi_gets_everything() {
        let pois = vec![PoiSpec {
            pmf: weibull(40.0),
            weight: 1.0,
        }];
        let plan = allocator(0.1).allocate(&pois, 5).unwrap();
        assert_eq!(plan.allocation, vec![5]);
        assert!(plan.expected_qom[0] > 0.0);
    }

    #[test]
    fn value_curve_is_concave() {
        let alloc = allocator(0.1);
        let pmf = weibull(40.0);
        let values: Vec<f64> = (0..8).map(|n| alloc.poi_value(&pmf, n).unwrap()).collect();
        for w in values.windows(3) {
            let first = w[1] - w[0];
            let second = w[2] - w[1];
            assert!(second <= first + 1e-9, "not concave: {values:?}");
        }
    }

    #[test]
    fn greedy_matches_brute_force() {
        let pois = vec![
            PoiSpec {
                pmf: weibull(20.0),
                weight: 1.0,
            },
            PoiSpec {
                pmf: weibull(40.0),
                weight: 2.0,
            },
            PoiSpec {
                pmf: weibull(60.0),
                weight: 0.5,
            },
        ];
        let alloc = allocator(0.15);
        let sensors = 6;
        let plan = alloc.allocate(&pois, sensors).unwrap();

        // Brute force over all compositions of 6 into 3 parts.
        let mut best = f64::NEG_INFINITY;
        for a in 0..=sensors {
            for b in 0..=(sensors - a) {
                let c = sensors - a - b;
                let value = pois[0].weight * alloc.poi_value(&pois[0].pmf, a).unwrap()
                    + pois[1].weight * alloc.poi_value(&pois[1].pmf, b).unwrap()
                    + pois[2].weight * alloc.poi_value(&pois[2].pmf, c).unwrap();
                best = best.max(value);
            }
        }
        assert!(
            (plan.weighted_qom - best).abs() < 1e-9,
            "greedy {} vs brute force {best}",
            plan.weighted_qom
        );
    }

    #[test]
    fn heavier_weight_attracts_sensors() {
        let pois = vec![
            PoiSpec {
                pmf: weibull(40.0),
                weight: 0.1,
            },
            PoiSpec {
                pmf: weibull(40.0),
                weight: 10.0,
            },
        ];
        let plan = allocator(0.1).allocate(&pois, 4).unwrap();
        assert!(
            plan.allocation[1] > plan.allocation[0],
            "{:?}",
            plan.allocation
        );
    }

    #[test]
    fn zero_sensors_is_a_valid_empty_plan() {
        let pois = vec![PoiSpec {
            pmf: weibull(40.0),
            weight: 1.0,
        }];
        let plan = allocator(0.1).allocate(&pois, 0).unwrap();
        assert_eq!(plan.allocation, vec![0]);
        assert_eq!(plan.weighted_qom, 0.0);
    }

    #[test]
    fn validation() {
        let alloc = allocator(0.1);
        assert!(alloc.allocate(&[], 3).is_err());
        let bad = vec![PoiSpec {
            pmf: weibull(40.0),
            weight: -1.0,
        }];
        assert!(alloc.allocate(&bad, 3).is_err());
        let pois = vec![PoiSpec {
            pmf: weibull(40.0),
            weight: 1.0,
        }];
        assert!(allocator(0.0).allocate(&pois, 3).is_err());
    }
}
