//! Multi-sensor coordination (Section V).
//!
//! A single sensor's recharge rate may be too slow for the required QoM, so
//! `N` identical sensors monitor the same PoI. To avoid redundant
//! activations, the paper assigns sensors to slots **round-robin**
//! (`t = kN + s` → sensor `s` is in charge; everyone else sleeps) and has the
//! responsible sensor follow the single-sensor policy computed for the
//! *aggregate* recharge rate `N·e`:
//!
//! * **M-FI** — the greedy policy `π*_FI(N·e)` under full information;
//! * **M-PI** — the clustering policy `π'_PI(N·e)` under partial information.
//!
//! The periodic baseline instead hands each sensor a whole block of `θ2`
//! consecutive slots ([`SlotAssignment::Blocks`]), as described in the
//! paper's Section VI-B.

use evcap_dist::SlotPmf;
use evcap_energy::ConsumptionModel;

use crate::clustering::{ClusterEvaluation, ClusteringOptimizer, ClusteringPolicy};
use crate::greedy::{EnergyBudget, GreedyPolicy};
use crate::policy::ActivationPolicy;
use crate::{PolicyError, Result};

/// How global slots are divided among the `N` sensors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SlotAssignment {
    /// Sensor `s` owns slots `t ≡ s (mod N)` — the paper's M-FI / M-PI
    /// scheme.
    RoundRobin,
    /// Sensors take turns owning `block_len` consecutive slots — the
    /// multi-sensor periodic baseline.
    Blocks {
        /// Length of each sensor's block, in slots.
        block_len: u64,
    },
    /// Weighted round-robin over a repeating `cycle` of integer shares —
    /// for heterogeneous fleets where a sensor with twice the harvest rate
    /// should carry twice the slots. The paper assumes identical sensors;
    /// this is the natural generalization (build one with
    /// [`SlotAssignment::weighted`]).
    Weighted {
        /// Shares per sensor, in sensor order (total ≤ 64; slot
        /// `t` is owned by the sensor whose share range contains
        /// `(t−1) mod Σ shares`).
        cycle: [u8; 16],
    },
}

impl SlotAssignment {
    /// Builds a weighted round-robin assignment from integer shares (one per
    /// sensor, each ≥ 1; at most 16 sensors and a total of 255 shares).
    ///
    /// # Errors
    ///
    /// Returns [`PolicyError::InvalidParameter`] if `shares` is empty,
    /// longer than 16, contains a zero, or sums past 255.
    pub fn weighted(shares: &[u8]) -> Result<Self> {
        if shares.is_empty() || shares.len() > 16 {
            return Err(PolicyError::InvalidParameter {
                name: "shares",
                value: shares.len() as f64,
                expected: "between 1 and 16 sensors",
            });
        }
        let mut total: u32 = 0;
        for &s in shares {
            if s == 0 {
                return Err(PolicyError::InvalidParameter {
                    name: "share",
                    value: 0.0,
                    expected: "a share of at least 1 slot per cycle",
                });
            }
            total += s as u32;
        }
        if total > 255 {
            return Err(PolicyError::InvalidParameter {
                name: "shares",
                value: total as f64,
                expected: "a cycle of at most 255 slots",
            });
        }
        let mut cycle = [0u8; 16];
        cycle[..shares.len()].copy_from_slice(shares);
        Ok(SlotAssignment::Weighted { cycle })
    }

    /// The index (0-based) of the sensor in charge of global slot `t`
    /// (1-based).
    ///
    /// # Panics
    ///
    /// Panics if `slot == 0`, `sensors == 0`, or (for
    /// [`SlotAssignment::Weighted`]) the cycle does not cover `sensors`
    /// entries.
    pub fn owner(&self, slot: u64, sensors: usize) -> usize {
        assert!(slot >= 1, "slots are 1-based");
        assert!(sensors >= 1, "need at least one sensor");
        match self {
            SlotAssignment::RoundRobin => ((slot - 1) % sensors as u64) as usize,
            SlotAssignment::Blocks { block_len } => {
                assert!(*block_len >= 1, "block length must be at least 1");
                (((slot - 1) / block_len) % sensors as u64) as usize
            }
            SlotAssignment::Weighted { cycle } => {
                assert!(sensors <= cycle.len(), "cycle shorter than the fleet");
                let shares = &cycle[..sensors];
                let total: u64 = shares.iter().map(|&s| s as u64).sum();
                assert!(
                    shares.iter().all(|&s| s > 0) && total > 0,
                    "weighted cycle must cover every sensor; use SlotAssignment::weighted"
                );
                let mut phase = (slot - 1) % total;
                for (s, &share) in shares.iter().enumerate() {
                    if phase < share as u64 {
                        return s;
                    }
                    phase -= share as u64;
                }
                // deepcheck:allow(panic-path): phase < total = Σ shares, so the loop above always returns
                unreachable!("phase < total by construction")
            }
        }
    }
}

/// A complete multi-sensor configuration: how many sensors, how slots are
/// assigned, and the shared policy the responsible sensor follows.
#[derive(Debug, Clone)]
pub struct MultiSensorPlan<P> {
    sensors: usize,
    assignment: SlotAssignment,
    policy: P,
}

impl<P: ActivationPolicy> MultiSensorPlan<P> {
    /// Creates a plan.
    ///
    /// # Errors
    ///
    /// Returns [`PolicyError::InvalidParameter`] if `sensors == 0`.
    pub fn new(sensors: usize, assignment: SlotAssignment, policy: P) -> Result<Self> {
        if sensors == 0 {
            return Err(PolicyError::InvalidParameter {
                name: "sensors",
                value: 0.0,
                expected: "at least one sensor",
            });
        }
        Ok(Self {
            sensors,
            assignment,
            policy,
        })
    }

    /// Number of sensors.
    pub fn sensors(&self) -> usize {
        self.sensors
    }

    /// The slot-assignment scheme.
    pub fn assignment(&self) -> SlotAssignment {
        self.assignment
    }

    /// The shared activation policy.
    pub fn policy(&self) -> &P {
        &self.policy
    }

    /// The sensor in charge of global slot `t`.
    pub fn owner(&self, slot: u64) -> usize {
        self.assignment.owner(slot, self.sensors)
    }
}

impl MultiSensorPlan<GreedyPolicy> {
    /// Builds the paper's **M-FI** plan: round-robin slots, each responsible
    /// sensor following the greedy policy for the aggregate rate `N·e`.
    ///
    /// # Errors
    ///
    /// Propagates [`GreedyPolicy::optimize`] failures.
    pub fn m_fi(
        pmf: &SlotPmf,
        per_sensor_rate: EnergyBudget,
        sensors: usize,
        consumption: &ConsumptionModel,
    ) -> Result<Self> {
        if sensors == 0 {
            return Err(PolicyError::InvalidParameter {
                name: "sensors",
                value: 0.0,
                expected: "at least one sensor",
            });
        }
        let aggregate = EnergyBudget::per_slot(per_sensor_rate.rate() * sensors as f64);
        let policy = GreedyPolicy::optimize(pmf, aggregate, consumption)?;
        Self::new(sensors, SlotAssignment::RoundRobin, policy)
    }
}

impl MultiSensorPlan<ClusteringPolicy> {
    /// Builds the paper's **M-PI** plan: round-robin slots, each responsible
    /// sensor following the clustering policy for the aggregate rate `N·e`.
    /// Also returns the analytic evaluation at rate `N·e`.
    ///
    /// # Errors
    ///
    /// Propagates [`ClusteringOptimizer::optimize`] failures.
    pub fn m_pi(
        pmf: &SlotPmf,
        per_sensor_rate: EnergyBudget,
        sensors: usize,
        consumption: &ConsumptionModel,
    ) -> Result<(Self, ClusterEvaluation)> {
        if sensors == 0 {
            return Err(PolicyError::InvalidParameter {
                name: "sensors",
                value: 0.0,
                expected: "at least one sensor",
            });
        }
        let aggregate = EnergyBudget::per_slot(per_sensor_rate.rate() * sensors as f64);
        let (policy, eval) = ClusteringOptimizer::new(aggregate).optimize(pmf, consumption)?;
        Ok((
            Self::new(sensors, SlotAssignment::RoundRobin, policy)?,
            eval,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::AggressivePolicy;
    use evcap_dist::{Discretizer, Weibull};

    #[test]
    fn round_robin_cycles_through_sensors() {
        let a = SlotAssignment::RoundRobin;
        let owners: Vec<usize> = (1..=7).map(|t| a.owner(t, 3)).collect();
        assert_eq!(owners, vec![0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn single_sensor_owns_everything() {
        let a = SlotAssignment::RoundRobin;
        for t in 1..=10 {
            assert_eq!(a.owner(t, 1), 0);
        }
    }

    #[test]
    fn blocks_hand_out_consecutive_runs() {
        let a = SlotAssignment::Blocks { block_len: 3 };
        let owners: Vec<usize> = (1..=12).map(|t| a.owner(t, 2)).collect();
        assert_eq!(owners, vec![0, 0, 0, 1, 1, 1, 0, 0, 0, 1, 1, 1]);
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn owner_rejects_slot_zero() {
        SlotAssignment::RoundRobin.owner(0, 2);
    }

    #[test]
    fn weighted_assignment_follows_shares() {
        // Sensor 0 carries 2 of every 3 slots, sensor 1 the remaining one.
        let a = SlotAssignment::weighted(&[2, 1]).unwrap();
        let owners: Vec<usize> = (1..=9).map(|t| a.owner(t, 2)).collect();
        assert_eq!(owners, vec![0, 0, 1, 0, 0, 1, 0, 0, 1]);
    }

    #[test]
    fn weighted_long_run_fractions_match() {
        let a = SlotAssignment::weighted(&[3, 1, 2]).unwrap();
        let mut counts = [0u64; 3];
        for t in 1..=6_000 {
            counts[a.owner(t, 3)] += 1;
        }
        assert_eq!(counts, [3_000, 1_000, 2_000]);
    }

    #[test]
    fn weighted_with_equal_shares_is_round_robin() {
        let w = SlotAssignment::weighted(&[1, 1, 1]).unwrap();
        for t in 1..=30 {
            assert_eq!(w.owner(t, 3), SlotAssignment::RoundRobin.owner(t, 3));
        }
    }

    #[test]
    fn weighted_validation() {
        assert!(SlotAssignment::weighted(&[]).is_err());
        assert!(SlotAssignment::weighted(&[1, 0]).is_err());
        assert!(SlotAssignment::weighted(&[255, 255]).is_err());
        assert!(SlotAssignment::weighted(&[1; 17]).is_err());
        assert!(SlotAssignment::weighted(&[1; 16]).is_ok());
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn weighted_cycle_must_cover_fleet() {
        let a = SlotAssignment::weighted(&[1, 1]).unwrap();
        // Third sensor has no share in the cycle.
        a.owner(1, 3);
    }

    #[test]
    fn plan_validates_sensor_count() {
        assert!(MultiSensorPlan::new(0, SlotAssignment::RoundRobin, AggressivePolicy).is_err());
        let plan = MultiSensorPlan::new(4, SlotAssignment::RoundRobin, AggressivePolicy).unwrap();
        assert_eq!(plan.sensors(), 4);
        assert_eq!(plan.owner(6), 1);
    }

    #[test]
    fn m_fi_uses_aggregate_rate() {
        let pmf = Discretizer::new()
            .discretize(&Weibull::new(40.0, 3.0).unwrap())
            .unwrap();
        let consumption = ConsumptionModel::paper_defaults();
        let e = EnergyBudget::per_slot(0.1);
        let plan1 = MultiSensorPlan::m_fi(&pmf, e, 1, &consumption).unwrap();
        let plan5 = MultiSensorPlan::m_fi(&pmf, e, 5, &consumption).unwrap();
        // Five sensors pool five times the energy → strictly better ideal QoM.
        assert!(plan5.policy().ideal_qom() > plan1.policy().ideal_qom() + 0.05);
    }

    #[test]
    fn m_pi_respects_aggregate_budget() {
        let pmf = Discretizer::new()
            .discretize(&Weibull::new(40.0, 3.0).unwrap())
            .unwrap();
        let consumption = ConsumptionModel::paper_defaults();
        let (plan, eval) =
            MultiSensorPlan::m_pi(&pmf, EnergyBudget::per_slot(0.2), 3, &consumption).unwrap();
        assert_eq!(plan.sensors(), 3);
        assert!(eval.discharge_rate <= 0.6 + 1e-6);
    }
}
