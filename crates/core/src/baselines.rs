//! The plausible alternative policies the paper compares against.

use crate::greedy::EnergyBudget;
use crate::policy::{ActivationPolicy, DecisionContext, InfoModel, PolicyTable};
use crate::{PolicyError, Result};
use evcap_energy::ConsumptionModel;

/// The aggressive policy `π_AG`: activate whenever the battery holds at
/// least `δ1 + δ2`.
///
/// The feasibility gate is enforced by the simulator, so the policy itself
/// simply always votes to activate; the battery does the throttling. With no
/// regard for event memory, it burns energy in low-probability slots — the
/// paper's Figs. 4 and 6 show it trailing the clustering policy until energy
/// is abundant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AggressivePolicy;

impl AggressivePolicy {
    /// Creates the aggressive policy.
    pub fn new() -> Self {
        Self
    }
}

impl ActivationPolicy for AggressivePolicy {
    fn probability(&self, _ctx: &DecisionContext) -> f64 {
        1.0
    }

    fn info_model(&self) -> InfoModel {
        InfoModel::Partial
    }

    fn label(&self) -> String {
        "aggressive".to_owned()
    }

    fn table(&self) -> Option<PolicyTable> {
        Some(PolicyTable::new(Vec::new(), 1.0))
    }
}

/// The periodic policy `π_PE`: active for `θ1` slots out of every `θ2`,
/// independent of event history.
///
/// The paper fixes `θ1 = 3` and balances energy by choosing
/// `θ2 = θ1·δ1/e + θ1·δ2/(e·μ)` — the active slots cost `θ1·δ1` in sensing
/// plus an expected `θ1/μ · δ2` capture cost per cycle slot… rearranged so
/// that the per-slot drain equals the recharge rate `e`.
///
/// # Example
///
/// ```
/// use evcap_core::{EnergyBudget, PeriodicPolicy};
/// use evcap_energy::ConsumptionModel;
///
/// # fn main() -> Result<(), evcap_core::PolicyError> {
/// let policy = PeriodicPolicy::energy_balanced(
///     3,
///     EnergyBudget::per_slot(0.5),
///     35.7,
///     &ConsumptionModel::paper_defaults(),
/// )?;
/// assert_eq!(policy.theta1(), 3);
/// assert!(policy.theta2() >= policy.theta1());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeriodicPolicy {
    theta1: u64,
    theta2: u64,
}

impl PeriodicPolicy {
    /// Creates a periodic policy that is active in the first `theta1` slots
    /// of every `theta2`-slot cycle.
    ///
    /// # Errors
    ///
    /// Returns [`PolicyError::InvalidParameter`] if `theta1 == 0` or
    /// `theta2 < theta1`.
    pub fn new(theta1: u64, theta2: u64) -> Result<Self> {
        if theta1 == 0 {
            return Err(PolicyError::InvalidParameter {
                name: "theta1",
                value: 0.0,
                expected: "an active length of at least 1 slot",
            });
        }
        if theta2 < theta1 {
            return Err(PolicyError::InvalidParameter {
                name: "theta2",
                value: theta2 as f64,
                expected: "a period no shorter than theta1",
            });
        }
        Ok(Self { theta1, theta2 })
    }

    /// Creates the energy-balanced periodic policy of the paper's Fig. 4:
    /// `θ2 = θ1·δ1/e + θ1·δ2/(e·μ)` (rounded up so the policy never
    /// overspends).
    ///
    /// # Errors
    ///
    /// Returns [`PolicyError::InvalidParameter`] for a non-positive budget
    /// or mean gap, or propagates [`PolicyError`] from [`PeriodicPolicy::new`].
    pub fn energy_balanced(
        theta1: u64,
        budget: EnergyBudget,
        mean_gap: f64,
        consumption: &ConsumptionModel,
    ) -> Result<Self> {
        let e = budget.rate();
        if e <= 0.0 {
            return Err(PolicyError::InvalidParameter {
                name: "e",
                value: e,
                expected: "a recharge rate > 0",
            });
        }
        if !mean_gap.is_finite() || mean_gap <= 0.0 {
            return Err(PolicyError::InvalidParameter {
                name: "mean_gap",
                value: mean_gap,
                expected: "a mean inter-arrival time > 0",
            });
        }
        let t1 = theta1 as f64;
        let theta2 = (t1 * consumption.delta1_units() / e
            + t1 * consumption.delta2_units() / (e * mean_gap))
            .ceil()
            .max(t1) as u64;
        Self::new(theta1, theta2)
    }

    /// The number of active slots per cycle.
    pub fn theta1(&self) -> u64 {
        self.theta1
    }

    /// The cycle length.
    pub fn theta2(&self) -> u64 {
        self.theta2
    }

    /// The policy's duty cycle `θ1/θ2`.
    pub fn duty_cycle(&self) -> f64 {
        self.theta1 as f64 / self.theta2 as f64
    }
}

impl ActivationPolicy for PeriodicPolicy {
    fn probability(&self, ctx: &DecisionContext) -> f64 {
        // Slot 1 starts a cycle: active during slots 1..=θ1 (mod θ2).
        if (ctx.slot - 1) % self.theta2 < self.theta1 {
            1.0
        } else {
            0.0
        }
    }

    fn info_model(&self) -> InfoModel {
        InfoModel::Partial
    }

    fn label(&self) -> String {
        format!("periodic(θ1={}, θ2={})", self.theta1, self.theta2)
    }

    // No `table()`: the periodic policy conditions on the wall-clock slot,
    // not the renewal state, so it keeps the default `None` and the
    // simulator falls back to virtual dispatch.
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggressive_always_votes_active() {
        let p = AggressivePolicy::new();
        for state in [1, 5, 100] {
            assert_eq!(p.probability(&DecisionContext::stationary(state)), 1.0);
        }
        assert_eq!(p.info_model(), InfoModel::Partial);
    }

    #[test]
    fn aggressive_table_is_all_ones_and_periodic_has_none() {
        let table = AggressivePolicy::new().table().unwrap();
        for state in [1, 7, 10_000] {
            assert_eq!(table.probability(state), 1.0);
        }
        assert!(PeriodicPolicy::new(2, 5).unwrap().table().is_none());
    }

    #[test]
    fn periodic_validates() {
        assert!(PeriodicPolicy::new(0, 5).is_err());
        assert!(PeriodicPolicy::new(5, 3).is_err());
        assert!(PeriodicPolicy::new(3, 3).is_ok());
    }

    #[test]
    fn periodic_pattern() {
        let p = PeriodicPolicy::new(2, 5).unwrap();
        let active: Vec<bool> = (1..=10)
            .map(|slot| {
                p.probability(&DecisionContext {
                    slot,
                    state: 1,
                    battery_fraction: 1.0,
                }) > 0.5
            })
            .collect();
        assert_eq!(
            active,
            vec![true, true, false, false, false, true, true, false, false, false]
        );
    }

    #[test]
    fn energy_balanced_matches_formula() {
        let consumption = ConsumptionModel::paper_defaults();
        let mu = 35.7;
        let e = 0.5;
        let p = PeriodicPolicy::energy_balanced(3, EnergyBudget::per_slot(e), mu, &consumption)
            .unwrap();
        let expected = (3.0 * 1.0 / e + 3.0 * 6.0 / (e * mu)).ceil() as u64;
        assert_eq!(p.theta2(), expected);
        // The duty cycle actually is energy balanced: per-slot sensing drain
        // θ1·δ1/θ2 plus expected capture drain θ1/θ2·δ2/μ must be ≤ e.
        let drain = p.duty_cycle() * (1.0 + 6.0 / mu);
        assert!(drain <= e + 1e-9, "{drain}");
    }

    #[test]
    fn energy_balanced_rejects_bad_inputs() {
        let c = ConsumptionModel::paper_defaults();
        assert!(PeriodicPolicy::energy_balanced(3, EnergyBudget::per_slot(0.0), 10.0, &c).is_err());
        assert!(
            PeriodicPolicy::energy_balanced(3, EnergyBudget::per_slot(0.5), f64::NAN, &c).is_err()
        );
    }

    #[test]
    fn abundant_energy_gives_always_on() {
        let c = ConsumptionModel::paper_defaults();
        // e large enough that θ2 rounds to θ1.
        let p =
            PeriodicPolicy::energy_balanced(3, EnergyBudget::per_slot(100.0), 10.0, &c).unwrap();
        assert_eq!(p.theta2(), p.theta1());
        assert_eq!(p.duty_cycle(), 1.0);
    }
}
