//! Dynamic activation policies for event capture with rechargeable sensors.
//!
//! This crate implements the contribution of *Ren, Cheng, Chen, Yau, Sun —
//! "Dynamic Activation Policies for Event Capture with Rechargeable Sensors"
//! (ICDCS 2012)*: activation policies that maximize the probability of
//! capturing renewal-process events *in the slot they occur*, subject to the
//! energy balance of a stochastic recharge process.
//!
//! # The two information models
//!
//! * **Full information** — the sensor always learns (at slot end) whether an
//!   event occurred. The optimization is a constrained average-reward MDP
//!   whose optimum, by the paper's Theorem 1, is the greedy water-filling
//!   policy [`GreedyPolicy`]: spend the per-renewal energy budget `e·μ` on
//!   the slots with the highest conditional event probability `β_i`.
//!   [`GreedyPolicy::certify_against_lp`] re-derives the optimum with a
//!   simplex solver to certify the theorem numerically.
//!
//! * **Partial information** — the sensor learns about events only in slots
//!   it is active; the exact POMDP is intractable (the information set grows
//!   exponentially). The paper's heuristic [`ClusteringPolicy`] splits the
//!   slots since the last *captured* event into cooling / hot / cooling /
//!   recovery regions; [`ClusteringOptimizer`] searches the region boundaries
//!   using the exact slotted belief propagation from `evcap-renewal`.
//!
//! # Baselines and the multi-sensor extension
//!
//! [`AggressivePolicy`], [`PeriodicPolicy`], and [`EbcwPolicy`] (the
//! positive-correlation policy of Jaggi et al., Fig. 5's comparator) are
//! provided, as are the round-robin coordination schemes of Section V
//! ([`SlotAssignment`], [`MultiSensorPlan`]) that scale every policy to `N`
//! collaborating sensors.
//!
//! # Example
//!
//! ```
//! use evcap_core::{EnergyBudget, GreedyPolicy};
//! use evcap_dist::SlotPmf;
//! use evcap_energy::ConsumptionModel;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // The worked example from Section IV-A: α1 = 0.6, α2 = 0.4.
//! let pmf = SlotPmf::from_pmf(vec![0.6, 0.4])?;
//! let consumption = ConsumptionModel::paper_defaults();
//! // Give the sensor just enough energy to activate in slot 2 every renewal.
//! let budget = EnergyBudget::per_slot((1.0 * 0.4 + 6.0 * 0.4) / pmf.mean());
//! let policy = GreedyPolicy::optimize(&pmf, budget, &consumption)?;
//! // All energy goes to slot 2 where β2 = 1 (100% efficiency).
//! assert!(policy.coefficient(1) < 1e-9);
//! assert!((policy.coefficient(2) - 1.0).abs() < 1e-9);
//! assert!((policy.ideal_qom() - 0.4).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

mod baselines;
mod clustering;
mod dual;
mod ebcw;
mod error;
mod exhaustive;
mod fleet;
mod greedy;
mod multi;
mod myopic;
mod objective;
mod policy;
mod refined;

pub use baselines::{AggressivePolicy, PeriodicPolicy};
pub use clustering::{
    evaluate_partial_info, evaluate_partial_info_moments, ClusterEvaluation, ClusteringOptimizer,
    ClusteringPolicy, EvalOptions,
};
pub use dual::{solve_dual, DualSolution};
pub use ebcw::EbcwPolicy;
pub use error::PolicyError;
pub use exhaustive::{BitmaskPolicy, ExhaustiveSearch, MAX_WINDOW};
pub use fleet::{FleetAllocator, FleetPlan, PoiSpec};
pub use greedy::{EnergyBudget, GreedyPolicy};
pub use multi::{MultiSensorPlan, SlotAssignment};
pub use myopic::MyopicPolicy;
pub use objective::{gap_moments, greedy_cycle_moments, CycleMoments, Objective};
pub use policy::{ActivationPolicy, DecisionContext, InfoModel, PolicyTable};
pub use refined::{RegionPolicy, Segment};

/// Convenience alias for results in this crate.
pub type Result<T, E = PolicyError> = std::result::Result<T, E>;
