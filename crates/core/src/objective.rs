//! The first-class optimization objective: what a solve is *for*.
//!
//! The paper optimizes exactly one metric — the quality of monitoring
//! `U = μ / E[capture cycle]`, the long-run fraction of events captured in
//! their own slot. Much of the related work (Arafa–Yang–Ulukus, UROP)
//! optimizes *freshness* instead: the age of information since the last
//! capture. This module makes the metric a first-class axis so the rest of
//! the workspace never hard-codes it:
//!
//! * [`Objective::Qom`] — maximize the capture probability `U` (the paper).
//! * [`Objective::AoiPeak`] — minimize the expected peak age, which for a
//!   renewal capture process is exactly the expected capture-cycle length
//!   `E[T]`. Because `U = μ/E[T]` with `μ` fixed per scenario, minimizing
//!   `E[T]` selects the same single-scenario policy as maximizing `U`
//!   (ties aside) — the objectives only separate across a *fleet*, where
//!   `μ` differs per PoI.
//! * [`Objective::AoiMean`] — minimize the time-average age. In a slotted
//!   renewal process where a capture at slot `T` resets the age to zero,
//!   each cycle contributes `T(T−1)/2` slot-ages, so by renewal-reward the
//!   mean age is `(E[T²] − E[T]) / (2·E[T])` — it depends on the *second*
//!   moment of the cycle, so unlike the other two it penalizes cycle
//!   variance (the Arafa et al. freshness/throughput tension).
//!
//! Everything here reuses the renewal-cycle statistics the QoM machinery
//! already computes: the clustering evaluator accumulates `E[T²]` alongside
//! `E[T]` (see `evaluate_partial_info_moments`), and the greedy
//! water-filling family gets a closed form via the compound-geometric
//! structure of its capture cycle ([`greedy_cycle_moments`]).
//!
//! **This module is the only place that maps an objective to a score.** The
//! optimizers, the scenario layer, the server, and the benches all go
//! through [`Objective::score`] / [`Objective::value`]; `xtask tidy`
//! (rule `objective-score`) enforces that no other file compares raw
//! capture probabilities to rank candidates.

use evcap_dist::SlotPmf;

use crate::clustering::ClusterEvaluation;
use crate::greedy::GreedyPolicy;

/// The metric a solve optimizes (and reports).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum Objective {
    /// The paper's quality of monitoring `U = μ / E[T]` (maximize).
    #[default]
    Qom,
    /// Time-average age of information since the last capture (minimize).
    AoiMean,
    /// Expected peak age — the expected capture-cycle length (minimize).
    AoiPeak,
}

impl Objective {
    /// Every objective, in wire-tag order (see [`Objective::index`]).
    pub const ALL: [Self; 3] = [Self::Qom, Self::AoiMean, Self::AoiPeak];

    /// Parses a wire/argv spelling (`qom`, `aoi-mean`, `aoi-peak`).
    pub fn parse(name: &str) -> Option<Self> {
        match name.trim() {
            "qom" => Some(Self::Qom),
            "aoi-mean" => Some(Self::AoiMean),
            "aoi-peak" => Some(Self::AoiPeak),
            _ => None,
        }
    }

    /// The canonical spelling (round-trips through [`Objective::parse`]).
    pub fn name(self) -> &'static str {
        match self {
            Self::Qom => "qom",
            Self::AoiMean => "aoi-mean",
            Self::AoiPeak => "aoi-peak",
        }
    }

    /// Whether this is the default objective (QoM), which every canonical
    /// key, stored record, and wire body elides for backward compatibility.
    pub fn is_default(self) -> bool {
        self == Self::Qom
    }

    /// A stable small index (`qom = 0`, `aoi-mean = 1`, `aoi-peak = 2`) for
    /// counter arrays and the store's record tag.
    pub fn index(self) -> usize {
        match self {
            Self::Qom => 0,
            Self::AoiMean => 1,
            Self::AoiPeak => 2,
        }
    }

    /// The objective from a stable index (inverse of [`Objective::index`]).
    pub fn from_index(index: usize) -> Option<Self> {
        Self::ALL.get(index).copied()
    }

    /// The candidate-ranking score (**higher is better** for every
    /// variant): age objectives are negated so one comparison rule serves
    /// all three.
    ///
    /// For [`Objective::Qom`] this is exactly `eval.capture_probability`,
    /// bit for bit, so objective-generic search code reproduces the
    /// historical QoM search unchanged.
    pub fn score(self, eval: &ClusterEvaluation, moments: &CycleMoments) -> f64 {
        match self {
            Self::Qom => eval.capture_probability,
            Self::AoiMean => -moments.mean_age(),
            Self::AoiPeak => -moments.peak_age(),
        }
    }

    /// The metric in its natural units (a probability for QoM, slots for
    /// the age objectives) — what metadata and wire bodies report.
    pub fn value(self, eval: &ClusterEvaluation, moments: &CycleMoments) -> f64 {
        match self {
            Self::Qom => eval.capture_probability,
            Self::AoiMean => moments.mean_age(),
            Self::AoiPeak => moments.peak_age(),
        }
    }

    /// Higher-is-better utility of an optimized water-filling policy on
    /// `pmf` — what the fleet allocator's value curves are made of. QoM is
    /// its own utility; the age objectives negate the closed-form
    /// [`greedy_cycle_moments`] age so one maximization rule serves all.
    pub fn greedy_utility(self, pmf: &SlotPmf, policy: &GreedyPolicy) -> f64 {
        match self {
            Self::Qom => policy.ideal_qom(),
            Self::AoiMean => -greedy_cycle_moments(pmf, policy).mean_age(),
            Self::AoiPeak => -greedy_cycle_moments(pmf, policy).peak_age(),
        }
    }

    /// The utility of a PoI no sensor watches: zero captures under QoM;
    /// unbounded staleness (utility `−∞`) under the age objectives, which
    /// makes any finite coverage infinitely preferable.
    pub fn unwatched_utility(self) -> f64 {
        match self {
            Self::Qom => 0.0,
            Self::AoiMean | Self::AoiPeak => f64::NEG_INFINITY,
        }
    }

    /// Converts a [`Objective::greedy_utility`]/[`Objective::unwatched_utility`]
    /// utility back to the metric's natural units.
    pub fn utility_to_value(self, utility: f64) -> f64 {
        match self {
            Self::Qom => utility,
            Self::AoiMean | Self::AoiPeak => -utility,
        }
    }

    /// The analytic lower bound on this objective's value for *any* policy
    /// on the event process `pmf` (used by the audit's objective-bound
    /// check): no policy ages slower than one that captures every event,
    /// whose cycle is a single inter-arrival gap.
    ///
    /// Returns `None` for QoM, whose (upper) bound is the Theorem-1
    /// water-filling optimum and is recomputed exactly by the auditor.
    pub fn value_floor(self, pmf: &SlotPmf) -> Option<f64> {
        let gaps = gap_moments(pmf);
        match self {
            Self::Qom => None,
            Self::AoiMean => Some(gaps.mean_age()),
            Self::AoiPeak => Some(gaps.peak_age()),
        }
    }
}

impl std::fmt::Display for Objective {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// First and second moments of the capture-cycle length `T` (slots), the
/// renewal statistics every objective's value derives from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CycleMoments {
    /// `E[T]` — identical to `ClusterEvaluation::expected_cycle` when both
    /// come from the same evaluation.
    pub first: f64,
    /// `E[T²]`.
    pub second: f64,
}

impl CycleMoments {
    /// Time-average age since the last capture: a capture at slot `T`
    /// carries age 0, so one cycle accrues `T(T−1)/2` slot-ages and the
    /// renewal-reward mean is `(E[T²] − E[T]) / (2·E[T])`.
    pub fn mean_age(&self) -> f64 {
        if !self.first.is_finite() {
            return f64::INFINITY;
        }
        ((self.second - self.first) / (2.0 * self.first)).max(0.0)
    }

    /// Expected peak age of a cycle — the age just before the capture
    /// resets it, i.e. `E[T] − 1` slots… reported paper-style as the cycle
    /// length `E[T]` so `peak = μ/U` holds exactly.
    pub fn peak_age(&self) -> f64 {
        self.first
    }
}

/// Moments of a single inter-arrival gap `X` of `pmf`, including the
/// geometric tail beyond the explicit horizon: `first = E[X] = μ`,
/// `second = E[X²]`.
///
/// This is the cycle law of the perfect policy that captures every event,
/// so its [`CycleMoments::mean_age`]/[`CycleMoments::peak_age`] are the
/// analytic floors of the age objectives.
pub fn gap_moments(pmf: &SlotPmf) -> CycleMoments {
    let (mut m1, mut m2) = (0.0f64, 0.0f64);
    for i in 1..=pmf.horizon() {
        let alpha = pmf.pmf(i);
        let x = i as f64;
        m1 += x * alpha;
        m2 += x * x * alpha;
    }
    let tail = tail_gap_moments(pmf);
    CycleMoments {
        first: m1 + tail.first,
        second: m2 + tail.second,
    }
}

/// Mass-weighted first/second moments of the gap restricted to the
/// geometric tail `i > H`: `Σ_{i>H} α_i·i` and `Σ_{i>H} α_i·i²`, with
/// `α_{H+j} = tail_mass·h·(1−h)^{j−1}`.
fn tail_gap_moments(pmf: &SlotPmf) -> CycleMoments {
    let mass = pmf.tail_mass();
    if mass <= 0.0 {
        return CycleMoments {
            first: 0.0,
            second: 0.0,
        };
    }
    let h = pmf.tail_hazard();
    let hh = pmf.horizon() as f64;
    // X = H + J with J ~ Geom₁(h): E[J] = 1/h, E[J²] = (2 − h)/h².
    let ej = 1.0 / h;
    let ej2 = (2.0 - h) / (h * h);
    CycleMoments {
        first: mass * (hh + ej),
        second: mass * (hh * hh + 2.0 * hh * ej + ej2),
    }
}

/// Closed-form capture-cycle moments of a full-information water-filling
/// policy, via the compound-geometric cycle structure.
///
/// Under full information the state resets at every *event*, so gaps are
/// i.i.d. and gap `i` is captured independently with probability `c_i`.
/// With `q = Σ α_i c_i` (the ideal QoM), the cycle is
/// `T = Y_1 + … + Y_M + Z` where `M ~ Geom₀(q)` counts missed gaps,
/// `Y` is a gap conditioned on a miss, and `Z` one conditioned on a
/// capture — all independent. Wald gives `E[T] = μ/q`; the compound-sum
/// variance identity gives `E[T²]`.
///
/// Deterministic in the policy's coefficients and the pmf, so a rehydrated
/// artifact reproduces the solve-time value bit for bit.
pub fn greedy_cycle_moments(pmf: &SlotPmf, policy: &GreedyPolicy) -> CycleMoments {
    // Capture-weighted (z*) and miss-weighted (y*) gap moment sums.
    let (mut z0, mut z1, mut z2) = (0.0f64, 0.0, 0.0);
    let (mut y0, mut y1, mut y2) = (0.0f64, 0.0, 0.0);
    for i in 1..=pmf.horizon() {
        let alpha = pmf.pmf(i);
        if alpha <= 0.0 {
            continue;
        }
        let c = policy.coefficient(i);
        let x = i as f64;
        z0 += alpha * c;
        z1 += alpha * c * x;
        z2 += alpha * c * x * x;
        y0 += alpha * (1.0 - c);
        y1 += alpha * (1.0 - c) * x;
        y2 += alpha * (1.0 - c) * x * x;
    }
    let tail_mass = pmf.tail_mass();
    if tail_mass > 0.0 {
        let ct = policy.coefficient(pmf.horizon() + 1);
        let t = tail_gap_moments(pmf);
        z0 += tail_mass * ct;
        z1 += t.first * ct;
        z2 += t.second * ct;
        y0 += tail_mass * (1.0 - ct);
        y1 += t.first * (1.0 - ct);
        y2 += t.second * (1.0 - ct);
    }

    let q = z0;
    if q <= 0.0 {
        // The policy never captures: the cycle never ends.
        return CycleMoments {
            first: f64::INFINITY,
            second: f64::INFINITY,
        };
    }
    let ez = z1 / q;
    let var_z = (z2 / q - ez * ez).max(0.0);
    let (e_t, e_t2) = if y0 <= f64::EPSILON {
        // Every gap is captured: T = Z.
        (ez, z2 / q)
    } else {
        let ey = y1 / y0;
        let var_y = (y2 / y0 - ey * ey).max(0.0);
        let em = (1.0 - q) / q; // E[M], M ~ Geom₀(q)
        let var_m = (1.0 - q) / (q * q);
        let e_t = em * ey + ez;
        let var_t = em * var_y + var_m * ey * ey + var_z;
        (e_t, var_t + e_t * e_t)
    };
    CycleMoments {
        first: e_t,
        second: e_t2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::EnergyBudget;
    use evcap_dist::{Discretizer, Weibull};
    use evcap_energy::ConsumptionModel;

    #[test]
    fn parse_round_trips_and_rejects_unknown() {
        for obj in Objective::ALL {
            assert_eq!(Objective::parse(obj.name()), Some(obj));
            assert_eq!(Objective::from_index(obj.index()), Some(obj));
        }
        assert_eq!(Objective::parse("freshness"), None);
        assert_eq!(Objective::from_index(7), None);
        assert!(Objective::Qom.is_default());
        assert!(!Objective::AoiMean.is_default());
        assert_eq!(Objective::default(), Objective::Qom);
    }

    #[test]
    fn qom_score_is_the_capture_probability_bit_for_bit() {
        let eval = ClusterEvaluation {
            capture_probability: 0.7231,
            discharge_rate: 0.4,
            expected_cycle: 55.3,
            truncated_survival: 0.0,
        };
        let moments = CycleMoments {
            first: 55.3,
            second: 4000.0,
        };
        assert_eq!(
            Objective::Qom.score(&eval, &moments).to_bits(),
            eval.capture_probability.to_bits()
        );
        assert_eq!(Objective::AoiPeak.score(&eval, &moments), -55.3);
        assert!(Objective::AoiMean.score(&eval, &moments) < 0.0);
    }

    #[test]
    fn mean_age_matches_hand_computation() {
        // Deterministic cycle T = 5: ages 1, 2, 3, 4, 0 → mean 2.
        let m = CycleMoments {
            first: 5.0,
            second: 25.0,
        };
        assert!((m.mean_age() - 2.0).abs() < 1e-12);
        assert_eq!(m.peak_age(), 5.0);
        // A never-ending cycle ages forever.
        let never = CycleMoments {
            first: f64::INFINITY,
            second: f64::INFINITY,
        };
        assert!(never.mean_age().is_infinite());
    }

    #[test]
    fn gap_moments_match_the_pmf_mean() {
        let pmf = Discretizer::new()
            .discretize(&Weibull::new(40.0, 3.0).unwrap())
            .unwrap();
        let gaps = gap_moments(&pmf);
        assert!((gaps.first - pmf.mean()).abs() < 1e-9, "{}", gaps.first);
        // E[X²] ≥ E[X]² always.
        assert!(gaps.second >= gaps.first * gaps.first);
        // The floor exists exactly for the age objectives.
        assert!(Objective::Qom.value_floor(&pmf).is_none());
        assert!(Objective::AoiMean.value_floor(&pmf).unwrap() > 0.0);
        let peak_floor = Objective::AoiPeak.value_floor(&pmf).unwrap();
        assert!((peak_floor - pmf.mean()).abs() < 1e-9);
    }

    #[test]
    fn greedy_moments_satisfy_wald() {
        let pmf = Discretizer::new()
            .discretize(&Weibull::new(40.0, 3.0).unwrap())
            .unwrap();
        for e in [0.1, 0.3, 0.6] {
            let g = GreedyPolicy::optimize(
                &pmf,
                EnergyBudget::per_slot(e),
                &ConsumptionModel::paper_defaults(),
            )
            .unwrap();
            let m = greedy_cycle_moments(&pmf, &g);
            // Wald: E[T] = μ / q with q = ideal QoM.
            let wald = pmf.mean() / g.ideal_qom();
            assert!(
                (m.first - wald).abs() < 1e-6 * wald,
                "e={e}: E[T] = {} vs μ/q = {wald}",
                m.first
            );
            assert!(m.second >= m.first * m.first, "e={e}: Var[T] < 0");
            // More energy can only shorten the cycle.
            assert!(m.mean_age() >= gap_moments(&pmf).mean_age() - 1e-9);
        }
    }

    #[test]
    fn greedy_moments_on_the_perfect_capture_policy_equal_the_gap_law() {
        // Deterministic gap of 4 slots, budget rich enough to capture all.
        let pmf = evcap_dist::SlotPmf::from_pmf(vec![0.0, 0.0, 0.0, 1.0]).unwrap();
        let consumption = ConsumptionModel::paper_defaults();
        let g = GreedyPolicy::optimize(&pmf, EnergyBudget::per_slot(10.0), &consumption).unwrap();
        assert!((g.ideal_qom() - 1.0).abs() < 1e-12);
        let m = greedy_cycle_moments(&pmf, &g);
        assert!((m.first - 4.0).abs() < 1e-12);
        assert!((m.second - 16.0).abs() < 1e-12);
        // Ages 1, 2, 3, 0 → mean 1.5.
        assert!((m.mean_age() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn never_capturing_policy_has_infinite_age() {
        let pmf = evcap_dist::SlotPmf::from_pmf(vec![1.0]).unwrap();
        let g = GreedyPolicy::from_parts(vec![0.0], 0.0, 0.0, 0.0, 1.0, "dead".into()).unwrap();
        let m = greedy_cycle_moments(&pmf, &g);
        assert!(m.first.is_infinite() && m.second.is_infinite());
        assert!(m.mean_age().is_infinite());
    }
}
