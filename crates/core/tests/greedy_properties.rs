//! Property-based tests of the Theorem-1 greedy policy's invariants.

use evcap_core::{EnergyBudget, GreedyPolicy};
use evcap_dist::SlotPmf;
use evcap_energy::{ConsumptionModel, Energy};
use proptest::prelude::*;

fn arb_pmf() -> impl Strategy<Value = SlotPmf> {
    proptest::collection::vec(0.001f64..1.0, 1..16).prop_map(|raw| {
        let total: f64 = raw.iter().sum();
        SlotPmf::from_pmf(raw.into_iter().map(|w| w / total).collect()).expect("normalized")
    })
}

fn arb_consumption() -> impl Strategy<Value = ConsumptionModel> {
    (0.1f64..3.0, 0.0f64..10.0).prop_map(|(d1, d2)| {
        ConsumptionModel::new(Energy::from_units(d1), Energy::from_units(d2)).expect("valid")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Coefficients are probabilities, the QoM is a probability, and the
    /// planned discharge never exceeds the budget.
    #[test]
    fn outputs_are_well_formed(
        pmf in arb_pmf(),
        consumption in arb_consumption(),
        e in 0.001f64..5.0,
    ) {
        let policy = GreedyPolicy::optimize(&pmf, EnergyBudget::per_slot(e), &consumption)
            .expect("positive budget");
        for i in 1..=pmf.horizon() + 4 {
            let c = policy.coefficient(i);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&c), "c_{i} = {c}");
        }
        prop_assert!((0.0..=1.0 + 1e-9).contains(&policy.ideal_qom()));
        prop_assert!(policy.discharge_rate() <= e + 1e-9);
    }

    /// The QoM is monotone in the budget (more energy never hurts).
    #[test]
    fn qom_is_monotone_in_budget(
        pmf in arb_pmf(),
        consumption in arb_consumption(),
        e in 0.01f64..2.0,
        bump in 1.01f64..4.0,
    ) {
        let small = GreedyPolicy::optimize(&pmf, EnergyBudget::per_slot(e), &consumption)
            .expect("positive budget");
        let large = GreedyPolicy::optimize(&pmf, EnergyBudget::per_slot(e * bump), &consumption)
            .expect("positive budget");
        prop_assert!(
            large.ideal_qom() + 1e-9 >= small.ideal_qom(),
            "{} < {}",
            large.ideal_qom(),
            small.ideal_qom()
        );
    }

    /// Activation respects the hazard order: a slot with a strictly higher
    /// hazard never gets a strictly smaller coefficient (Theorem 1 /
    /// Remark 1 structure). Ties may break either way.
    #[test]
    fn higher_hazard_never_gets_less(
        pmf in arb_pmf(),
        consumption in arb_consumption(),
        e in 0.01f64..3.0,
    ) {
        let policy = GreedyPolicy::optimize(&pmf, EnergyBudget::per_slot(e), &consumption)
            .expect("positive budget");
        let h = pmf.horizon();
        for i in 1..=h {
            for j in 1..=h {
                // Only compare reachable slots with meaningful cost.
                if pmf.survival(i - 1) < 1e-12 || pmf.survival(j - 1) < 1e-12 {
                    continue;
                }
                if pmf.hazard(i) > pmf.hazard(j) + 1e-9 {
                    prop_assert!(
                        policy.coefficient(i) + 1e-9 >= policy.coefficient(j),
                        "β_{i}={} > β_{j}={} but c_{i}={} < c_{j}={}",
                        pmf.hazard(i),
                        pmf.hazard(j),
                        policy.coefficient(i),
                        policy.coefficient(j)
                    );
                }
            }
        }
    }

    /// At most one coefficient is fractional among slots of distinct hazard
    /// classes — the water-filling boundary.
    #[test]
    fn at_most_one_fractional_hazard_class(
        pmf in arb_pmf(),
        e in 0.01f64..3.0,
    ) {
        let consumption = ConsumptionModel::paper_defaults();
        let policy = GreedyPolicy::optimize(&pmf, EnergyBudget::per_slot(e), &consumption)
            .expect("positive budget");
        // Group reachable slots by hazard (within tolerance) and count the
        // groups whose coefficients are strictly interior.
        let mut fractional_hazards: Vec<f64> = Vec::new();
        for i in 1..=pmf.horizon() {
            if pmf.survival(i - 1) < 1e-12 {
                continue;
            }
            let c = policy.coefficient(i);
            if c > 1e-9 && c < 1.0 - 1e-9 {
                let h = pmf.hazard(i);
                if !fractional_hazards.iter().any(|&x| (x - h).abs() < 1e-9) {
                    fractional_hazards.push(h);
                }
            }
        }
        prop_assert!(
            fractional_hazards.len() <= 1,
            "fractional hazard classes: {fractional_hazards:?}"
        );
    }
}
