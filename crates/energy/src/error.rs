use std::fmt;

use crate::Energy;

/// Errors produced when configuring batteries or recharge processes.
#[derive(Debug, Clone, PartialEq)]
pub enum EnergyError {
    /// A probability parameter was outside `[0, 1]`.
    InvalidProbability {
        /// The offending parameter's name.
        name: &'static str,
        /// The value that was supplied.
        value: f64,
    },
    /// An energy quantity that must be non-negative was negative.
    NegativeEnergy {
        /// The offending parameter's name.
        name: &'static str,
        /// The value that was supplied.
        value: Energy,
    },
    /// A battery's initial level exceeded its capacity.
    InitialExceedsCapacity {
        /// Requested initial level.
        initial: Energy,
        /// Battery capacity.
        capacity: Energy,
    },
    /// A period parameter was zero.
    ZeroPeriod,
    /// A range parameter was inverted (`lo > hi`).
    InvertedRange {
        /// Lower bound supplied.
        lo: Energy,
        /// Upper bound supplied.
        hi: Energy,
    },
}

impl fmt::Display for EnergyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnergyError::InvalidProbability { name, value } => {
                write!(
                    f,
                    "parameter `{name}` = {value} is not a probability in [0, 1]"
                )
            }
            EnergyError::NegativeEnergy { name, value } => {
                write!(f, "parameter `{name}` = {value} must be non-negative")
            }
            EnergyError::InitialExceedsCapacity { initial, capacity } => {
                write!(
                    f,
                    "initial level {initial} exceeds battery capacity {capacity}"
                )
            }
            EnergyError::ZeroPeriod => write!(f, "recharge period must be at least one slot"),
            EnergyError::InvertedRange { lo, hi } => {
                write!(f, "recharge range is inverted: lo {lo} > hi {hi}")
            }
        }
    }
}

impl std::error::Error for EnergyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty() {
        let errors = [
            EnergyError::InvalidProbability {
                name: "q",
                value: 2.0,
            },
            EnergyError::NegativeEnergy {
                name: "c",
                value: Energy::from_units(-1.0),
            },
            EnergyError::InitialExceedsCapacity {
                initial: Energy::from_units(2.0),
                capacity: Energy::from_units(1.0),
            },
            EnergyError::ZeroPeriod,
            EnergyError::InvertedRange {
                lo: Energy::from_units(2.0),
                hi: Energy::from_units(1.0),
            },
        ];
        for err in errors {
            assert!(!err.to_string().is_empty());
        }
    }
}
