//! Fixed-point energy arithmetic.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Sub, SubAssign};

/// Number of fixed-point sub-units per paper energy unit.
const MILLIS_PER_UNIT: i64 = 1_000;

/// An amount of energy, stored as an integer number of milli-units.
///
/// The paper's parameters (`δ1 = 1`, `δ2 = 6`, recharge amounts like `0.5`)
/// are all exact multiples of `1/1000`, so fixed point loses nothing while
/// making energy-balance assertions exact.
///
/// `Energy` is a quantity, not a level: arithmetic saturates at the `i64`
/// bounds rather than wrapping, and subtraction may go negative (callers that
/// need non-negativity, like [`Battery`](crate::Battery), enforce it
/// themselves).
///
/// # Example
///
/// ```
/// use evcap_energy::Energy;
///
/// let half = Energy::from_units(0.5);
/// let one = Energy::from_units(1.0);
/// assert_eq!(half + half, one);
/// assert_eq!((one * 6).as_units(), 6.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Energy(i64);

impl Energy {
    /// The zero quantity.
    pub const ZERO: Energy = Energy(0);

    /// Converts a floating-point number of paper energy units, rounding to
    /// the nearest milli-unit.
    ///
    /// # Panics
    ///
    /// Panics if `units` is not finite or overflows the fixed-point range.
    pub fn from_units(units: f64) -> Self {
        assert!(units.is_finite(), "energy must be finite, got {units}");
        let millis = (units * MILLIS_PER_UNIT as f64).round();
        assert!(
            millis.abs() < i64::MAX as f64 / 4.0,
            "energy {units} overflows the fixed-point range"
        );
        Energy(millis as i64)
    }

    /// Constructs from a raw number of milli-units.
    pub const fn from_millis(millis: i64) -> Self {
        Energy(millis)
    }

    /// The value in paper energy units.
    pub fn as_units(self) -> f64 {
        self.0 as f64 / MILLIS_PER_UNIT as f64
    }

    /// The raw number of milli-units.
    pub const fn as_millis(self) -> i64 {
        self.0
    }

    /// Returns `true` if the quantity is exactly zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction clamped at zero (useful for "remaining budget"
    /// computations).
    #[must_use]
    pub fn saturating_sub_floor_zero(self, rhs: Energy) -> Energy {
        Energy(self.0.saturating_sub(rhs.0).max(0))
    }

    /// The smaller of two quantities.
    #[must_use]
    pub fn min(self, other: Energy) -> Energy {
        Energy(self.0.min(other.0))
    }

    /// The larger of two quantities.
    #[must_use]
    pub fn max(self, other: Energy) -> Energy {
        Energy(self.0.max(other.0))
    }
}

impl Add for Energy {
    type Output = Energy;
    fn add(self, rhs: Energy) -> Energy {
        Energy(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for Energy {
    fn add_assign(&mut self, rhs: Energy) {
        *self = *self + rhs;
    }
}

impl Sub for Energy {
    type Output = Energy;
    fn sub(self, rhs: Energy) -> Energy {
        Energy(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for Energy {
    fn sub_assign(&mut self, rhs: Energy) {
        *self = *self - rhs;
    }
}

impl Mul<i64> for Energy {
    type Output = Energy;
    fn mul(self, rhs: i64) -> Energy {
        Energy(self.0.saturating_mul(rhs))
    }
}

impl Sum for Energy {
    fn sum<I: Iterator<Item = Energy>>(iter: I) -> Energy {
        iter.fold(Energy::ZERO, Add::add)
    }
}

impl fmt::Display for Energy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_units())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_exact_fractions() {
        for units in [0.0, 0.5, 1.0, 6.0, 0.001, 1000.0, -2.5] {
            assert_eq!(Energy::from_units(units).as_units(), units);
        }
    }

    #[test]
    fn rounds_to_nearest_milli() {
        assert_eq!(Energy::from_units(0.000_4).as_millis(), 0);
        assert_eq!(Energy::from_units(0.000_6).as_millis(), 1);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan() {
        let _ = Energy::from_units(f64::NAN);
    }

    #[test]
    fn arithmetic_is_exact() {
        let a = Energy::from_units(0.1);
        let total: Energy = std::iter::repeat_n(a, 10).sum();
        assert_eq!(total, Energy::from_units(1.0));
        assert_eq!(a * 10, Energy::from_units(1.0));
    }

    #[test]
    fn saturating_floor_zero() {
        let a = Energy::from_units(1.0);
        let b = Energy::from_units(2.0);
        assert_eq!(a.saturating_sub_floor_zero(b), Energy::ZERO);
        assert_eq!(b.saturating_sub_floor_zero(a), Energy::from_units(1.0));
    }

    #[test]
    fn ordering_and_minmax() {
        let a = Energy::from_units(1.0);
        let b = Energy::from_units(2.0);
        assert!(a < b);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn display_shows_units() {
        assert_eq!(Energy::from_units(2.5).to_string(), "2.5");
        assert_eq!(Energy::ZERO.to_string(), "0");
    }
}
