//! The sensor's energy bucket and consumption model.

use crate::{Energy, EnergyError, Result};

/// A finite energy bucket of capacity `K`.
///
/// Recharge energy beyond the capacity **overflows and is lost** — this is
/// exactly the effect the paper studies in Fig. 3: a small `K` cannot absorb
/// bursts of the recharge process, so the achieved QoM falls short of the
/// energy-assumption optimum; as `K → ∞` the loss vanishes.
///
/// # Example
///
/// ```
/// use evcap_energy::{Battery, Energy};
///
/// # fn main() -> Result<(), evcap_energy::EnergyError> {
/// let mut battery = Battery::new(Energy::from_units(10.0), Energy::from_units(9.5))?;
/// let overflow = battery.recharge(Energy::from_units(1.0));
/// assert_eq!(overflow, Energy::from_units(0.5));
/// assert!(battery.is_full());
/// assert!(battery.try_consume(Energy::from_units(7.0)));
/// assert!(!battery.try_consume(Energy::from_units(7.0)));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Battery {
    level: Energy,
    capacity: Energy,
}

impl Battery {
    /// Creates a battery with the given `capacity` and `initial` level.
    ///
    /// # Errors
    ///
    /// * [`EnergyError::NegativeEnergy`] if either quantity is negative.
    /// * [`EnergyError::InitialExceedsCapacity`] if `initial > capacity`.
    pub fn new(capacity: Energy, initial: Energy) -> Result<Self> {
        if capacity < Energy::ZERO {
            return Err(EnergyError::NegativeEnergy {
                name: "capacity",
                value: capacity,
            });
        }
        if initial < Energy::ZERO {
            return Err(EnergyError::NegativeEnergy {
                name: "initial",
                value: initial,
            });
        }
        if initial > capacity {
            return Err(EnergyError::InitialExceedsCapacity { initial, capacity });
        }
        Ok(Self {
            level: initial,
            capacity,
        })
    }

    /// Creates a battery filled to half capacity — the paper's convention
    /// ("provide the sensor with `K/2` units of initial energy").
    ///
    /// # Errors
    ///
    /// Returns [`EnergyError::NegativeEnergy`] if `capacity` is negative.
    pub fn half_full(capacity: Energy) -> Result<Self> {
        Self::new(capacity, Energy::from_millis(capacity.as_millis() / 2))
    }

    /// Current level.
    pub fn level(&self) -> Energy {
        self.level
    }

    /// Capacity `K`.
    pub fn capacity(&self) -> Energy {
        self.capacity
    }

    /// Returns `true` when the bucket is at capacity.
    pub fn is_full(&self) -> bool {
        self.level == self.capacity
    }

    /// Fraction of capacity currently held, in `[0, 1]` (1 for a zero-capacity
    /// battery).
    pub fn fill_fraction(&self) -> f64 {
        if self.capacity.is_zero() {
            1.0
        } else {
            self.level.as_millis() as f64 / self.capacity.as_millis() as f64
        }
    }

    /// Adds `amount` to the bucket, clamping at capacity; returns the
    /// overflow that was lost.
    pub fn recharge(&mut self, amount: Energy) -> Energy {
        debug_assert!(amount >= Energy::ZERO);
        let headroom = self.capacity - self.level;
        let absorbed = amount.min(headroom);
        self.level += absorbed;
        amount - absorbed
    }

    /// Returns `true` if the bucket currently holds at least `amount`.
    pub fn can_afford(&self, amount: Energy) -> bool {
        self.level >= amount
    }

    /// Consumes `amount` if available; returns whether the consumption
    /// happened (the level is unchanged on `false`).
    pub fn try_consume(&mut self, amount: Energy) -> bool {
        debug_assert!(amount >= Energy::ZERO);
        if self.level >= amount {
            self.level -= amount;
            true
        } else {
            false
        }
    }
}

/// The paper's sensing-cost model: `δ1` per active slot, `δ2` extra per
/// captured event, and the activation threshold `δ1 + δ2`.
///
/// # Example
///
/// ```
/// use evcap_energy::{ConsumptionModel, Energy};
///
/// # fn main() -> Result<(), evcap_energy::EnergyError> {
/// let model = ConsumptionModel::paper_defaults();
/// assert_eq!(model.sensing_cost(), Energy::from_units(1.0));
/// assert_eq!(model.capture_cost(), Energy::from_units(6.0));
/// assert_eq!(model.activation_threshold(), Energy::from_units(7.0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConsumptionModel {
    delta1: Energy,
    delta2: Energy,
}

impl ConsumptionModel {
    /// Creates a model with sensing cost `δ1` and capture cost `δ2`.
    ///
    /// # Errors
    ///
    /// Returns [`EnergyError::NegativeEnergy`] if either cost is negative.
    /// (The paper also assumes `δ2 ≥ δ1`; we do not enforce that since the
    /// analysis never uses it.)
    pub fn new(delta1: Energy, delta2: Energy) -> Result<Self> {
        if delta1 < Energy::ZERO {
            return Err(EnergyError::NegativeEnergy {
                name: "delta1",
                value: delta1,
            });
        }
        if delta2 < Energy::ZERO {
            return Err(EnergyError::NegativeEnergy {
                name: "delta2",
                value: delta2,
            });
        }
        Ok(Self { delta1, delta2 })
    }

    /// The paper's simulation parameters: `δ1 = 1`, `δ2 = 6`.
    pub fn paper_defaults() -> Self {
        Self {
            delta1: Energy::from_units(1.0),
            delta2: Energy::from_units(6.0),
        }
    }

    /// Sensing cost `δ1`, paid in every active slot.
    pub fn sensing_cost(&self) -> Energy {
        self.delta1
    }

    /// Capture cost `δ2`, paid additionally when an event is captured.
    pub fn capture_cost(&self) -> Energy {
        self.delta2
    }

    /// The minimum level `δ1 + δ2` a sensor must hold before it may decide
    /// to activate.
    pub fn activation_threshold(&self) -> Energy {
        self.delta1 + self.delta2
    }

    /// Sensing cost in paper units (convenience for analytic formulas).
    pub fn delta1_units(&self) -> f64 {
        self.delta1.as_units()
    }

    /// Capture cost in paper units (convenience for analytic formulas).
    pub fn delta2_units(&self) -> f64 {
        self.delta2.as_units()
    }
}

impl Default for ConsumptionModel {
    fn default() -> Self {
        Self::paper_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        let k = Energy::from_units(10.0);
        assert!(Battery::new(k, Energy::from_units(11.0)).is_err());
        assert!(Battery::new(k, Energy::from_units(-1.0)).is_err());
        assert!(Battery::new(Energy::from_units(-1.0), Energy::ZERO).is_err());
        assert!(Battery::new(k, k).is_ok());
    }

    #[test]
    fn half_full_splits_odd_millis_down() {
        let b = Battery::half_full(Energy::from_millis(7)).unwrap();
        assert_eq!(b.level(), Energy::from_millis(3));
    }

    #[test]
    fn recharge_clamps_and_reports_overflow() {
        let mut b = Battery::new(Energy::from_units(5.0), Energy::from_units(4.0)).unwrap();
        assert_eq!(b.recharge(Energy::from_units(0.5)), Energy::ZERO);
        assert_eq!(b.recharge(Energy::from_units(2.0)), Energy::from_units(1.5));
        assert!(b.is_full());
    }

    #[test]
    fn try_consume_is_all_or_nothing() {
        let mut b = Battery::new(Energy::from_units(5.0), Energy::from_units(3.0)).unwrap();
        assert!(!b.try_consume(Energy::from_units(3.5)));
        assert_eq!(b.level(), Energy::from_units(3.0));
        assert!(b.try_consume(Energy::from_units(3.0)));
        assert_eq!(b.level(), Energy::ZERO);
    }

    #[test]
    fn fill_fraction() {
        let b = Battery::new(Energy::from_units(8.0), Energy::from_units(2.0)).unwrap();
        assert!((b.fill_fraction() - 0.25).abs() < 1e-12);
        let empty_cap = Battery::new(Energy::ZERO, Energy::ZERO).unwrap();
        assert_eq!(empty_cap.fill_fraction(), 1.0);
    }

    #[test]
    fn consumption_model_defaults_match_paper() {
        let m = ConsumptionModel::default();
        assert_eq!(m.delta1_units(), 1.0);
        assert_eq!(m.delta2_units(), 6.0);
        assert_eq!(m.activation_threshold(), Energy::from_units(7.0));
    }

    #[test]
    fn consumption_model_rejects_negative() {
        assert!(ConsumptionModel::new(Energy::from_units(-1.0), Energy::ZERO).is_err());
        assert!(ConsumptionModel::new(Energy::ZERO, Energy::from_units(-1.0)).is_err());
    }
}
