//! Energy accounting for rechargeable sensors.
//!
//! The paper's sensor owns an *energy bucket* ("battery") of capacity `K`
//! energy units, refilled by a stochastic recharge process `e_t` with mean
//! rate `e`, and drained by `δ1` units per active slot plus `δ2` additional
//! units per captured event. A sensor may take an activation decision only
//! when it holds at least `δ1 + δ2` units.
//!
//! Everything here is **fixed point**: energy is an integer number of
//! milli-units ([`Energy`]). This gives exact, platform-independent
//! accounting — the simulator's conservation property
//! (`recharged − consumed = level − initial`, up to capacity clipping) is an
//! identity over integers and is enforced by property tests.
//!
//! # Example
//!
//! ```
//! use evcap_energy::{Battery, BernoulliRecharge, Energy, RechargeProcess};
//! use rand::{rngs::SmallRng, SeedableRng};
//!
//! # fn main() -> Result<(), evcap_energy::EnergyError> {
//! let mut battery = Battery::new(Energy::from_units(1000.0), Energy::from_units(500.0))?;
//! let mut recharge = BernoulliRecharge::new(0.5, Energy::from_units(1.0))?;
//! let mut rng = SmallRng::seed_from_u64(1);
//! battery.recharge(recharge.next(&mut rng));
//! assert!(battery.level() >= Energy::from_units(500.0));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

mod battery;
mod error;
mod recharge;
mod units;

pub use battery::{Battery, ConsumptionModel};
pub use error::EnergyError;
pub use recharge::{
    BernoulliRecharge, ConstantRecharge, PeriodicRecharge, RechargeKind, RechargeProcess,
    UniformRecharge,
};
pub use units::Energy;

/// Convenience alias for results in this crate.
pub type Result<T, E = EnergyError> = std::result::Result<T, E>;
