//! Stochastic recharge processes.
//!
//! The paper evaluates three recharge models (Section VI): a Bernoulli
//! process (`c` units with probability `q` per slot — labeled "Poisson" in
//! the paper's Fig. 3 legend), a periodic process (a lump every `p` slots),
//! and a constant trickle. A uniform-random process is included as an extra
//! bursty model for ablations. All have a well-defined mean rate `e`
//! (units/slot); the activation policies depend on the recharge process only
//! through `e`, and Fig. 3 demonstrates that insensitivity.

use rand::Rng;

use crate::{Energy, EnergyError, Result};

/// A per-slot energy source.
///
/// Implementors are stateful (e.g. the periodic process tracks its phase) and
/// are stepped once per slot by the simulator, *before* the activation
/// decision — matching the paper's in-slot ordering (recharge, then decide,
/// then the event).
pub trait RechargeProcess {
    /// Draws the energy delivered in the next slot.
    fn next(&mut self, rng: &mut dyn rand::RngCore) -> Energy;

    /// The long-run mean rate `e` in energy units per slot.
    fn mean_rate(&self) -> f64;

    /// A short human-readable label for reports.
    fn label(&self) -> String;

    /// Resets any internal phase to the initial state.
    fn reset(&mut self);

    /// The process's closed-form description, if it has one.
    ///
    /// Batch executors use this to replace the per-slot virtual `next` call
    /// with an inlined sweep. A kind is a *contract*: the values it carries
    /// (including any phase state, captured at call time) must let a caller
    /// reproduce the exact same delivery sequence and the exact same RNG
    /// draws `next` would make. Processes without such a description return
    /// [`RechargeKind::Other`] and stay on dynamic dispatch.
    fn kind(&self) -> RechargeKind {
        RechargeKind::Other
    }
}

/// Closed-form description of a recharge process (see
/// [`RechargeProcess::kind`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RechargeKind {
    /// `c` units with probability `q` per slot; draws one `f64` per slot.
    Bernoulli {
        /// Delivery probability per slot.
        q: f64,
        /// Amount delivered on success.
        c: Energy,
    },
    /// Exactly `rate` units per slot; draws nothing.
    Constant {
        /// Per-slot delivery.
        rate: Energy,
    },
    /// `amount` once every `period` slots; draws nothing. `phase` is the
    /// process's current position within the period (0 = period start).
    Periodic {
        /// Lump delivered at the end of each period.
        amount: Energy,
        /// Slots per period.
        period: u32,
        /// Current phase at the time `kind` was called.
        phase: u32,
    },
    /// Uniform on `[lo, hi]` milli-units; draws one ranged integer per slot.
    Uniform {
        /// Lower bound (inclusive).
        lo: Energy,
        /// Upper bound (inclusive).
        hi: Energy,
    },
    /// No closed form; callers must keep using [`RechargeProcess::next`].
    Other,
}

/// Bernoulli recharge: `c` units with probability `q` each slot, zero
/// otherwise. Mean rate `e = q·c`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BernoulliRecharge {
    q: f64,
    c: Energy,
}

impl BernoulliRecharge {
    /// Creates a Bernoulli recharge process.
    ///
    /// # Errors
    ///
    /// Returns [`EnergyError::InvalidProbability`] if `q ∉ [0, 1]`, or
    /// [`EnergyError::NegativeEnergy`] if `c < 0`.
    pub fn new(q: f64, c: Energy) -> Result<Self> {
        if !q.is_finite() || !(0.0..=1.0).contains(&q) {
            return Err(EnergyError::InvalidProbability {
                name: "q",
                value: q,
            });
        }
        if c < Energy::ZERO {
            return Err(EnergyError::NegativeEnergy {
                name: "c",
                value: c,
            });
        }
        Ok(Self { q, c })
    }
}

impl RechargeProcess for BernoulliRecharge {
    fn next(&mut self, rng: &mut dyn rand::RngCore) -> Energy {
        if rng.random::<f64>() < self.q {
            self.c
        } else {
            Energy::ZERO
        }
    }

    fn mean_rate(&self) -> f64 {
        self.q * self.c.as_units()
    }

    fn label(&self) -> String {
        format!("Bernoulli(q={}, c={})", self.q, self.c)
    }

    fn reset(&mut self) {}

    fn kind(&self) -> RechargeKind {
        RechargeKind::Bernoulli {
            q: self.q,
            c: self.c,
        }
    }
}

/// Periodic recharge: `amount` units delivered once every `period` slots
/// (in the last slot of each period). Mean rate `e = amount / period`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeriodicRecharge {
    amount: Energy,
    period: u32,
    phase: u32,
}

impl PeriodicRecharge {
    /// Creates a periodic recharge process.
    ///
    /// # Errors
    ///
    /// Returns [`EnergyError::ZeroPeriod`] if `period == 0`, or
    /// [`EnergyError::NegativeEnergy`] if `amount < 0`.
    pub fn new(amount: Energy, period: u32) -> Result<Self> {
        if period == 0 {
            return Err(EnergyError::ZeroPeriod);
        }
        if amount < Energy::ZERO {
            return Err(EnergyError::NegativeEnergy {
                name: "amount",
                value: amount,
            });
        }
        Ok(Self {
            amount,
            period,
            phase: 0,
        })
    }
}

impl RechargeProcess for PeriodicRecharge {
    fn next(&mut self, _rng: &mut dyn rand::RngCore) -> Energy {
        self.phase += 1;
        if self.phase == self.period {
            self.phase = 0;
            self.amount
        } else {
            Energy::ZERO
        }
    }

    fn mean_rate(&self) -> f64 {
        self.amount.as_units() / self.period as f64
    }

    fn label(&self) -> String {
        format!("Periodic({} per {})", self.amount, self.period)
    }

    fn reset(&mut self) {
        self.phase = 0;
    }

    fn kind(&self) -> RechargeKind {
        RechargeKind::Periodic {
            amount: self.amount,
            period: self.period,
            phase: self.phase,
        }
    }
}

/// Constant recharge: exactly `rate` units every slot (the paper's "Uniform"
/// process, which delivers 0.5 units per slot).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConstantRecharge {
    rate: Energy,
}

impl ConstantRecharge {
    /// Creates a constant recharge of `rate` units per slot.
    ///
    /// # Errors
    ///
    /// Returns [`EnergyError::NegativeEnergy`] if `rate < 0`.
    pub fn new(rate: Energy) -> Result<Self> {
        if rate < Energy::ZERO {
            return Err(EnergyError::NegativeEnergy {
                name: "rate",
                value: rate,
            });
        }
        Ok(Self { rate })
    }
}

impl RechargeProcess for ConstantRecharge {
    fn next(&mut self, _rng: &mut dyn rand::RngCore) -> Energy {
        self.rate
    }

    fn mean_rate(&self) -> f64 {
        self.rate.as_units()
    }

    fn label(&self) -> String {
        format!("Constant({})", self.rate)
    }

    fn reset(&mut self) {}

    fn kind(&self) -> RechargeKind {
        RechargeKind::Constant { rate: self.rate }
    }
}

/// Uniform-random recharge: an amount drawn uniformly from `[lo, hi]` each
/// slot. Mean rate `(lo + hi) / 2`. Not in the paper; used in ablations to
/// stress burst absorption.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UniformRecharge {
    lo: Energy,
    hi: Energy,
}

impl UniformRecharge {
    /// Creates a uniform-random recharge on `[lo, hi]`.
    ///
    /// # Errors
    ///
    /// Returns [`EnergyError::NegativeEnergy`] if `lo < 0`, or
    /// [`EnergyError::InvertedRange`] if `lo > hi`.
    pub fn new(lo: Energy, hi: Energy) -> Result<Self> {
        if lo < Energy::ZERO {
            return Err(EnergyError::NegativeEnergy {
                name: "lo",
                value: lo,
            });
        }
        if lo > hi {
            return Err(EnergyError::InvertedRange { lo, hi });
        }
        Ok(Self { lo, hi })
    }
}

impl RechargeProcess for UniformRecharge {
    fn next(&mut self, rng: &mut dyn rand::RngCore) -> Energy {
        let lo = self.lo.as_millis();
        let hi = self.hi.as_millis();
        Energy::from_millis(rng.random_range(lo..=hi))
    }

    fn mean_rate(&self) -> f64 {
        0.5 * (self.lo.as_units() + self.hi.as_units())
    }

    fn label(&self) -> String {
        format!("UniformRandom({}, {})", self.lo, self.hi)
    }

    fn reset(&mut self) {}

    fn kind(&self) -> RechargeKind {
        RechargeKind::Uniform {
            lo: self.lo,
            hi: self.hi,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn empirical_rate<P: RechargeProcess>(p: &mut P, slots: usize, seed: u64) -> f64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let total: Energy = (0..slots).map(|_| p.next(&mut rng)).sum();
        total.as_units() / slots as f64
    }

    #[test]
    fn bernoulli_empirical_rate_matches_mean() {
        let mut p = BernoulliRecharge::new(0.5, Energy::from_units(1.0)).unwrap();
        assert_eq!(p.mean_rate(), 0.5);
        let rate = empirical_rate(&mut p, 100_000, 1);
        assert!((rate - 0.5).abs() < 0.01, "{rate}");
    }

    #[test]
    fn bernoulli_validates() {
        assert!(BernoulliRecharge::new(1.5, Energy::from_units(1.0)).is_err());
        assert!(BernoulliRecharge::new(0.5, Energy::from_units(-1.0)).is_err());
    }

    #[test]
    fn periodic_delivers_on_schedule() {
        let mut p = PeriodicRecharge::new(Energy::from_units(5.0), 10).unwrap();
        assert_eq!(p.mean_rate(), 0.5);
        let mut rng = SmallRng::seed_from_u64(2);
        let deliveries: Vec<Energy> = (0..20).map(|_| p.next(&mut rng)).collect();
        for (i, &d) in deliveries.iter().enumerate() {
            if (i + 1) % 10 == 0 {
                assert_eq!(d, Energy::from_units(5.0), "slot {i}");
            } else {
                assert_eq!(d, Energy::ZERO, "slot {i}");
            }
        }
    }

    #[test]
    fn periodic_reset_restores_phase() {
        let mut p = PeriodicRecharge::new(Energy::from_units(5.0), 3).unwrap();
        let mut rng = SmallRng::seed_from_u64(3);
        let _ = p.next(&mut rng);
        p.reset();
        assert_eq!(p.next(&mut rng), Energy::ZERO);
        assert_eq!(p.next(&mut rng), Energy::ZERO);
        assert_eq!(p.next(&mut rng), Energy::from_units(5.0));
    }

    #[test]
    fn periodic_validates() {
        assert!(PeriodicRecharge::new(Energy::from_units(1.0), 0).is_err());
        assert!(PeriodicRecharge::new(Energy::from_units(-1.0), 5).is_err());
    }

    #[test]
    fn constant_is_deterministic() {
        let mut p = ConstantRecharge::new(Energy::from_units(0.5)).unwrap();
        assert_eq!(p.mean_rate(), 0.5);
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..10 {
            assert_eq!(p.next(&mut rng), Energy::from_units(0.5));
        }
    }

    #[test]
    fn uniform_stays_in_range_and_matches_mean() {
        let lo = Energy::from_units(0.0);
        let hi = Energy::from_units(1.0);
        let mut p = UniformRecharge::new(lo, hi).unwrap();
        assert_eq!(p.mean_rate(), 0.5);
        let mut rng = SmallRng::seed_from_u64(5);
        let mut total = Energy::ZERO;
        for _ in 0..50_000 {
            let e = p.next(&mut rng);
            assert!(e >= lo && e <= hi);
            total += e;
        }
        let rate = total.as_units() / 50_000.0;
        assert!((rate - 0.5).abs() < 0.01, "{rate}");
    }

    #[test]
    fn uniform_validates() {
        assert!(UniformRecharge::new(Energy::from_units(2.0), Energy::from_units(1.0)).is_err());
        assert!(UniformRecharge::new(Energy::from_units(-1.0), Energy::from_units(1.0)).is_err());
    }

    #[test]
    fn kinds_describe_the_processes_exactly() {
        let b = BernoulliRecharge::new(0.3, Energy::from_units(2.0)).unwrap();
        assert_eq!(
            b.kind(),
            RechargeKind::Bernoulli {
                q: 0.3,
                c: Energy::from_units(2.0)
            }
        );
        let c = ConstantRecharge::new(Energy::from_units(0.5)).unwrap();
        assert_eq!(
            c.kind(),
            RechargeKind::Constant {
                rate: Energy::from_units(0.5)
            }
        );
        let u = UniformRecharge::new(Energy::ZERO, Energy::from_units(1.0)).unwrap();
        assert_eq!(
            u.kind(),
            RechargeKind::Uniform {
                lo: Energy::ZERO,
                hi: Energy::from_units(1.0)
            }
        );

        // The periodic kind carries the live phase: a stepped process
        // reports where it is, so a batch executor can resume mid-period.
        let mut p = PeriodicRecharge::new(Energy::from_units(5.0), 10).unwrap();
        let mut rng = SmallRng::seed_from_u64(9);
        let _ = p.next(&mut rng);
        let _ = p.next(&mut rng);
        assert_eq!(
            p.kind(),
            RechargeKind::Periodic {
                amount: Energy::from_units(5.0),
                period: 10,
                phase: 2,
            }
        );

        struct Custom;
        impl RechargeProcess for Custom {
            fn next(&mut self, _rng: &mut dyn rand::RngCore) -> Energy {
                Energy::ZERO
            }
            fn mean_rate(&self) -> f64 {
                0.0
            }
            fn label(&self) -> String {
                "custom".into()
            }
            fn reset(&mut self) {}
        }
        assert_eq!(Custom.kind(), RechargeKind::Other);
    }

    #[test]
    fn processes_are_object_safe() {
        let mut list: Vec<Box<dyn RechargeProcess>> = vec![
            Box::new(BernoulliRecharge::new(0.5, Energy::from_units(1.0)).unwrap()),
            Box::new(PeriodicRecharge::new(Energy::from_units(5.0), 10).unwrap()),
            Box::new(ConstantRecharge::new(Energy::from_units(0.5)).unwrap()),
        ];
        // All three of the paper's Fig. 3 processes share the same mean rate.
        for p in &mut list {
            assert!((p.mean_rate() - 0.5).abs() < 1e-12, "{}", p.label());
        }
    }
}
