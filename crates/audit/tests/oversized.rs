//! The `PolicyTable::MAX_EXPLICIT_STATES` fallback under audit.
//!
//! The region ablation's no-recovery variant pushes `n3` to `u32::MAX`;
//! materializing that staircase literally would allocate tens of gigabytes,
//! so `table()` refuses and the artifact serves through dynamic dispatch.
//! The audit must certify such an artifact — verifying table/policy
//! agreement on a sampled prefix instead of enumeration — without ever
//! materializing the table either.

use evcap_audit::{audit, Outcome};
use evcap_core::{evaluate_partial_info, ActivationPolicy, ClusteringPolicy, EvalOptions};
use evcap_spec::{solve, PolicySpec, Regions, Scenario};

#[test]
fn no_recovery_ablation_certifies_without_materializing_the_table() {
    let scenario = Scenario::new("exp:0.1", PolicySpec::Clustering, 0.1)
        .unwrap()
        .with_horizon(1_024);
    let mut solved = solve(&scenario).unwrap();
    let base = solved.meta.regions.unwrap();

    // The no-recovery ablation: same cooling/hot regions, recovery pushed
    // out of reach.
    let n3 = u32::MAX as usize;
    let (q1, q2, _) = base.boundary;
    let policy = ClusteringPolicy::new(base.n1, base.n2, n3, q1, q2, 1.0).unwrap();
    assert!(
        policy.table().is_none(),
        "oversized staircase must not materialize"
    );

    let eval = evaluate_partial_info(
        &solved.pmf,
        |i| policy.probability(&evcap_core::DecisionContext::stationary(i)),
        &solved.consumption,
        EvalOptions::default(),
    );
    solved.meta.label = policy.label();
    solved.meta.info = policy.info_model();
    solved.meta.objective = Some(eval.capture_probability);
    solved.meta.objective_value = Some(eval.capture_probability);
    solved.meta.discharge_rate = Some(eval.discharge_rate);
    solved.meta.expected_cycle = Some(eval.expected_cycle);
    solved.meta.regions = Some(Regions {
        n1: base.n1,
        n2: base.n2,
        n3,
        boundary: (q1, q2, 1.0),
    });
    solved.table = policy.table();
    solved.policy = Box::new(policy);

    let report = audit(&scenario, &solved);
    assert!(report.is_clean(), "{report}");
    let table = report.check("table-agreement").unwrap();
    assert_eq!(table.outcome, Outcome::Pass);
    assert!(
        table.detail.contains("dynamic dispatch"),
        "fallback path not exercised: {}",
        table.detail
    );
    assert_eq!(report.check("region-shape").unwrap().outcome, Outcome::Pass);

    // Deep-tail states still answer through dispatch (and stay in the
    // cooling region right up to the unreachable recovery boundary).
    assert_eq!(solved.probability(n3 - 1), 0.0);
    assert_eq!(solved.probability(n3 + 1), 1.0);
}
