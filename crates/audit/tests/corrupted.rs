//! Deliberately corrupted artifacts must be rejected with the *named*
//! invariant — one test per invariant class.
//!
//! `SolvedPolicy` exposes its fields precisely so integrity tooling (and
//! these tests) can tamper with artifacts the solver would never produce.

use evcap_audit::{audit, AuditReport, Outcome};
use evcap_core::{ActivationPolicy, DecisionContext, InfoModel, PolicyTable};
use evcap_spec::{solve, PolicySpec, Scenario, SolvedPolicy};

fn greedy_artifact() -> (Scenario, SolvedPolicy) {
    let scenario = Scenario::new("weibull:10,1.5", PolicySpec::Greedy, 0.05)
        .unwrap()
        .with_horizon(1_024);
    let solved = solve(&scenario).unwrap();
    (scenario, solved)
}

fn clustering_artifact() -> (Scenario, SolvedPolicy) {
    // exp:0.1 at e = 0.1 solves to distinct boundaries (n1 < n2 < n3), so
    // every region tamper below is observable.
    let scenario = Scenario::new("exp:0.1", PolicySpec::Clustering, 0.1)
        .unwrap()
        .with_horizon(1_024);
    let solved = solve(&scenario).unwrap();
    (scenario, solved)
}

/// Rebuilds the artifact's table with one entry replaced.
fn tamper_table(solved: &SolvedPolicy, state: usize, value: f64) -> PolicyTable {
    let table = solved.table.as_ref().expect("artifact has a table");
    let mut probs: Vec<f64> = (1..=table.explicit_states())
        .map(|i| table.probability(i))
        .collect();
    probs[state - 1] = value;
    PolicyTable::new(probs, table.tail())
}

fn assert_rejects(report: &AuditReport, invariant: &str) {
    assert!(!report.is_clean(), "tampered artifact certified:\n{report}");
    assert_eq!(
        report.check(invariant).unwrap().outcome,
        Outcome::Fail,
        "expected {invariant} to fail:\n{report}"
    );
}

/// A policy that returns an out-of-range activation "probability".
struct BrokenPolicy;

impl ActivationPolicy for BrokenPolicy {
    fn probability(&self, _ctx: &DecisionContext) -> f64 {
        1.5
    }
    fn info_model(&self) -> InfoModel {
        InfoModel::Full
    }
    fn label(&self) -> String {
        "broken".to_owned()
    }
}

#[test]
fn out_of_range_coefficient_is_rejected() {
    let (scenario, mut solved) = greedy_artifact();
    solved.policy = Box::new(BrokenPolicy);
    solved.table = None;
    let report = audit(&scenario, &solved);
    assert_rejects(&report, "coefficient-range");
}

#[test]
fn perturbed_coefficient_breaks_table_agreement() {
    let (scenario, mut solved) = greedy_artifact();
    // A valid probability, but not the one the boxed policy computes.
    let state = (1..=solved.table.as_ref().unwrap().explicit_states())
        .find(|&i| solved.probability(i) > 0.5)
        .expect("greedy artifact activates somewhere");
    solved.table = Some(tamper_table(&solved, state, 0.25));
    let report = audit(&scenario, &solved);
    assert_rejects(&report, "table-agreement");
}

#[test]
fn overspent_budget_is_rejected() {
    let (scenario, mut solved) = greedy_artifact();
    let table = solved.table.as_ref().unwrap();
    // Saturate every explicit state *and* the tail: valid probabilities,
    // far over the e·μ budget at e = 0.05.
    let probs = vec![1.0; table.explicit_states()];
    solved.table = Some(PolicyTable::new(probs, 1.0));
    let report = audit(&scenario, &solved);
    assert_rejects(&report, "energy-feasibility");
    // Fully saturated is still a valid water-filling shape — the energy
    // invariant is what catches this corruption.
    assert_eq!(
        report.check("water-filling").unwrap().outcome,
        Outcome::Pass
    );
}

#[test]
fn cut_high_hazard_slot_breaks_water_filling() {
    let (scenario, mut solved) = greedy_artifact();
    // Zero out one funded slot while lower-hazard slots stay saturated:
    // spends less (energy-feasible) but violates Theorem 1's structure.
    let state = (1..=solved.table.as_ref().unwrap().explicit_states())
        .find(|&i| solved.probability(i) >= 1.0)
        .expect("greedy artifact saturates somewhere");
    solved.table = Some(tamper_table(&solved, state, 0.0));
    // Keep the energy ledger honest (cutting a slot only *reduces* spend,
    // but the reported discharge rate would no longer match) so the
    // structural invariant is the discriminating one.
    solved.meta.discharge_rate = None;
    let report = audit(&scenario, &solved);
    assert_rejects(&report, "water-filling");
    assert_eq!(
        report.check("energy-feasibility").unwrap().outcome,
        Outcome::Pass
    );
}

#[test]
fn swapped_region_boundary_is_rejected() {
    let (scenario, mut solved) = clustering_artifact();
    let regions = solved.meta.regions.as_mut().unwrap();
    std::mem::swap(&mut regions.n1, &mut regions.n3);
    let report = audit(&scenario, &solved);
    if regions_still_ordered(&scenario, &solved) {
        // Degenerate solve with n1 == n3: swap is a no-op; nothing to test.
        panic!("pick a scenario with distinct region boundaries");
    }
    assert_rejects(&report, "region-shape");
}

fn regions_still_ordered(_scenario: &Scenario, solved: &SolvedPolicy) -> bool {
    let r = solved.meta.regions.as_ref().unwrap();
    r.n1 >= 1 && r.n1 <= r.n2 && r.n2 <= r.n3
}

#[test]
fn shifted_region_boundary_is_rejected() {
    let (scenario, mut solved) = clustering_artifact();
    // Keep the ordering valid but move n2 so the claimed shape no longer
    // matches the coefficients the policy actually produces.
    let regions = solved.meta.regions.as_mut().unwrap();
    assert!(regions.n2 > regions.n1, "hot region is non-trivial");
    regions.n2 -= 1;
    let report = audit(&scenario, &solved);
    assert_rejects(&report, "region-shape");
}

#[test]
fn inflated_objective_is_rejected() {
    let (scenario, mut solved) = greedy_artifact();
    let honest = solved.meta.objective.unwrap();
    solved.meta.objective = Some(honest + 0.05);
    let report = audit(&scenario, &solved);
    assert_rejects(&report, "objective-bound");

    let (scenario, mut solved) = clustering_artifact();
    solved.meta.objective = Some(1.5);
    let report = audit(&scenario, &solved);
    assert_rejects(&report, "objective-bound");
}

#[test]
fn cross_objective_presentation_is_rejected() {
    use evcap_spec::Objective;
    // A QoM-certified artifact presented as an AoI answer…
    let (scenario, solved) = clustering_artifact();
    let as_aoi = scenario.clone().with_objective(Objective::AoiMean);
    let report = audit(&as_aoi, &solved);
    assert_rejects(&report, "objective-value");
    assert!(evcap_audit::certify(&as_aoi, &solved).is_err());

    // …and an AoI-certified artifact presented as QoM.
    let aoi = scenario.with_objective(Objective::AoiPeak);
    let solved = solve(&aoi).unwrap();
    evcap_audit::certify(&aoi, &solved).expect("honest presentation certifies");
    let as_qom = aoi.with_objective(Objective::Qom);
    let report = audit(&as_qom, &solved);
    assert_rejects(&report, "objective-value");
    assert!(evcap_audit::certify(&as_qom, &solved).is_err());
}

#[test]
fn forged_objective_value_is_rejected() {
    use evcap_spec::Objective;
    let (scenario, _) = clustering_artifact();
    let scenario = scenario.with_objective(Objective::AoiMean);
    let mut solved = solve(&scenario).unwrap();
    // Claim an age below the capture-every-event floor: impossible.
    solved.meta.objective_value = Some(0.01);
    let report = audit(&scenario, &solved);
    assert_rejects(&report, "objective-value");
}

#[test]
fn mismatched_scenario_is_rejected() {
    let (_, solved) = greedy_artifact();
    let other = Scenario::new("weibull:10,1.5", PolicySpec::Greedy, 0.07)
        .unwrap()
        .with_horizon(1_024);
    let report = audit(&other, &solved);
    assert_rejects(&report, "meta-consistency");
}

#[test]
fn mislabeled_meta_is_rejected() {
    let (scenario, mut solved) = greedy_artifact();
    solved.meta.label = "clustering(n1=1, n2=2, n3=3)".to_owned();
    let report = audit(&scenario, &solved);
    assert_rejects(&report, "meta-consistency");
}

#[test]
fn certify_passes_clean_artifacts_and_refuses_tampered_ones() {
    let (scenario, solved) = greedy_artifact();
    let report = evcap_audit::certify(&scenario, &solved).expect("fresh solve certifies");
    assert!(report.is_clean());

    let (scenario, mut solved) = greedy_artifact();
    solved.policy = Box::new(BrokenPolicy);
    solved.table = None;
    let err = evcap_audit::certify(&scenario, &solved).unwrap_err();
    assert!(!err.report.is_clean());
    let text = err.to_string();
    assert!(text.contains("failed certification"), "{text}");
    assert!(text.contains("coefficient-range"), "{text}");
}
