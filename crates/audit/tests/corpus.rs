//! Corpus gate: every artifact `spec::solve` produces across the full
//! matrix of distribution families × policy families × cost regimes must
//! certify cleanly.

use evcap_audit::{audit, Outcome};
use evcap_spec::{solve, PolicySpec, Scenario};

const DISTS: &[&str] = &[
    "exp:0.1",
    "weibull:10,0.8",
    "weibull:10,3",
    "pareto:5,2.5",
    "erlang:3,0.3",
    "uniform:2,18",
    "det:8",
    "hyperexp:0.4,0.2,0.04",
];

const POLICIES: &[PolicySpec] = &[
    PolicySpec::Greedy,
    PolicySpec::Clustering,
    PolicySpec::Aggressive,
    PolicySpec::Periodic { theta1: 3 },
    PolicySpec::Myopic,
];

/// `(e, δ1, δ2)` regimes: the paper's default, sensing-dominated, and
/// capture-dominated costs under a tighter budget.
const REGIMES: &[(f64, f64, f64)] = &[(0.2, 1.0, 6.0), (0.35, 2.0, 1.0), (0.05, 0.5, 12.0)];

fn certify(scenario: &Scenario) {
    let solved = match solve(scenario) {
        Ok(s) => s,
        Err(e) => panic!("solve failed for {}: {e}", scenario.canonical_key()),
    };
    let report = audit(scenario, &solved);
    assert!(
        report.is_clean(),
        "audit rejected {}:\n{report}",
        scenario.canonical_key()
    );
    // Every known invariant must appear in the report exactly once.
    for name in [
        "coefficient-range",
        "energy-feasibility",
        "water-filling",
        "region-shape",
        "table-agreement",
        "objective-bound",
        "objective-value",
        "meta-consistency",
    ] {
        assert!(report.check(name).is_some(), "missing invariant {name}");
    }
    assert_eq!(report.checks.len(), 8);
}

#[test]
fn all_dist_families_certify_for_every_policy() {
    for dist in DISTS {
        for &policy in POLICIES {
            let scenario = Scenario::new(dist, policy, 0.2)
                .unwrap()
                .with_horizon(2_048);
            certify(&scenario);
        }
    }
}

#[test]
fn cost_regimes_certify_for_every_policy() {
    for &(e, d1, d2) in REGIMES {
        for &policy in POLICIES {
            let scenario = Scenario::new("weibull:12,1.5", policy, e)
                .unwrap()
                .with_costs(d1, d2)
                .with_horizon(2_048);
            certify(&scenario);
        }
    }
}

#[test]
fn family_specific_invariants_actually_run() {
    let greedy = Scenario::new("exp:0.1", PolicySpec::Greedy, 0.2)
        .unwrap()
        .with_horizon(1_024);
    let solved = solve(&greedy).unwrap();
    let report = audit(&greedy, &solved);
    assert_eq!(
        report.check("water-filling").unwrap().outcome,
        Outcome::Pass
    );
    assert_eq!(
        report.check("region-shape").unwrap().outcome,
        Outcome::Skipped
    );

    let clustering = Scenario::new("exp:0.1", PolicySpec::Clustering, 0.2)
        .unwrap()
        .with_horizon(1_024);
    let solved = solve(&clustering).unwrap();
    let report = audit(&clustering, &solved);
    assert_eq!(report.check("region-shape").unwrap().outcome, Outcome::Pass);
    assert_eq!(
        report.check("water-filling").unwrap().outcome,
        Outcome::Skipped
    );
    assert_eq!(
        report.check("objective-bound").unwrap().outcome,
        Outcome::Pass
    );
}

#[test]
fn age_objective_solves_certify_for_every_policy() {
    use evcap_spec::Objective;
    for objective in [Objective::AoiMean, Objective::AoiPeak] {
        for &policy in POLICIES {
            let scenario = Scenario::new("weibull:12,1.5", policy, 0.2)
                .unwrap()
                .with_horizon(2_048)
                .with_objective(objective);
            certify(&scenario);
        }
    }
}

#[test]
fn multi_sensor_scenarios_certify() {
    for &policy in POLICIES {
        let scenario = Scenario::new("exp:0.08", policy, 0.1)
            .unwrap()
            .with_sensors(4)
            .with_horizon(1_024);
        certify(&scenario);
    }
}
