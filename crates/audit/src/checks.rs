//! The invariant checks themselves.
//!
//! Everything here is *analytic*: checks read the discretized pmf and the
//! policy's activation coefficients, never a simulation. The invariants come
//! straight from the paper — LP (7)–(8) feasibility, Theorem 1's
//! water-filling structure, the cooling/hot/cooling/recovery shape of
//! `π'_PI` — plus the artifact-integrity promises the pipeline layer makes
//! (table/policy bit-agreement, meta consistency).

use evcap_core::{DecisionContext, EnergyBudget, GreedyPolicy, PolicyTable};
use evcap_spec::{Objective, PolicySpec, Scenario, SolvedPolicy};

use crate::report::{AuditReport, Check, Outcome};

/// Tolerances and sampling bounds for one audit pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AuditOptions {
    /// Relative tolerance on analytic sums (energy budgets, objectives).
    pub energy_tol: f64,
    /// Absolute slack when classifying a coefficient as 0, 1, or a valid
    /// probability (floating-point dust from the water-filling).
    pub coeff_eps: f64,
    /// Most states any per-state scan will visit (tails are sampled, not
    /// enumerated — auditing must stay cheap even for `n3 = u32::MAX`).
    pub max_sampled_states: usize,
}

impl Default for AuditOptions {
    fn default() -> Self {
        Self {
            energy_tol: 1e-6,
            coeff_eps: 1e-9,
            max_sampled_states: PolicyTable::MAX_EXPLICIT_STATES,
        }
    }
}

/// Audits a solved artifact with default tolerances.
pub fn audit(scenario: &Scenario, solved: &SolvedPolicy) -> AuditReport {
    audit_with(scenario, solved, &AuditOptions::default())
}

/// Audits a solved artifact: proves the paper's analytic invariants and the
/// pipeline's artifact-integrity promises, statically.
///
/// The report contains one entry per known invariant; a check that does not
/// apply to the policy family is recorded as skipped, never silently
/// dropped.
pub fn audit_with(scenario: &Scenario, solved: &SolvedPolicy, opts: &AuditOptions) -> AuditReport {
    let checks = vec![
        check_coefficient_range(solved, opts),
        check_table_agreement(solved, opts),
        check_energy_feasibility(scenario, solved, opts),
        check_water_filling(scenario, solved, opts),
        check_region_shape(solved, opts),
        check_objective_bound(scenario, solved, opts),
        check_objective_value(scenario, solved, opts),
        check_meta_consistency(scenario, solved, opts),
    ];
    AuditReport {
        scenario_key: scenario.canonical_key(),
        policy: scenario.policy().name().to_owned(),
        checks,
    }
}

/// A certification refusal: the full audit report, every violation intact.
#[derive(Debug, Clone, PartialEq)]
pub struct CertifyError {
    /// The report whose failed checks caused the refusal.
    pub report: AuditReport,
}

impl std::fmt::Display for CertifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let named: Vec<String> = self
            .report
            .violations()
            .map(|c| format!("{}: {}", c.invariant, c.detail))
            .collect();
        write!(
            f,
            "artifact `{}` failed certification ({})",
            self.report.scenario_key,
            named.join("; ")
        )
    }
}

impl std::error::Error for CertifyError {}

/// Certifies a solved artifact for serving: audits it and turns any failed
/// invariant into a hard error.
///
/// This is the mandatory gate between *deserialized* artifacts (a store
/// load, any future wire ingestion) and a serve response — [`audit`]
/// merely reports, `certify` refuses. A clean pass returns the report so
/// callers can log what was proved. Runs under the `audit.certify` timing
/// span.
///
/// # Errors
///
/// [`CertifyError`] carrying the full report when any invariant fails.
pub fn certify(scenario: &Scenario, solved: &SolvedPolicy) -> Result<AuditReport, CertifyError> {
    let _span = evcap_obs::timing::span("audit.certify");
    let report = audit(scenario, solved);
    if report.is_clean() {
        Ok(report)
    } else {
        Err(CertifyError { report })
    }
}

fn pass(invariant: &'static str, detail: impl Into<String>) -> Check {
    Check {
        invariant,
        outcome: Outcome::Pass,
        detail: detail.into(),
    }
}

fn fail(invariant: &'static str, detail: impl Into<String>) -> Check {
    Check {
        invariant,
        outcome: Outcome::Fail,
        detail: detail.into(),
    }
}

fn skip(invariant: &'static str, detail: impl Into<String>) -> Check {
    Check {
        invariant,
        outcome: Outcome::Skipped,
        detail: detail.into(),
    }
}

/// States probed beyond any explicit region, to exercise the constant tail.
fn tail_samples(beyond: usize) -> [usize; 3] {
    [
        beyond.saturating_add(1),
        beyond.saturating_add(123),
        beyond.saturating_mul(2).saturating_add(4567),
    ]
}

/// Invariant: every activation coefficient is a probability in `[0, 1]`.
fn check_coefficient_range(solved: &SolvedPolicy, opts: &AuditOptions) -> Check {
    const NAME: &str = "coefficient-range";
    let horizon = solved.pmf.horizon().min(opts.max_sampled_states);
    let mut scanned = 0usize;
    let probe = |i: usize| -> Option<Check> {
        let c = solved.probability(i);
        if !c.is_finite() || c < -opts.coeff_eps || c > 1.0 + opts.coeff_eps {
            Some(fail(NAME, format!("c_{i} = {c} is not a probability")))
        } else {
            None
        }
    };
    for i in 1..=horizon {
        if let Some(violation) = probe(i) {
            return violation;
        }
        scanned += 1;
    }
    for i in tail_samples(solved.pmf.horizon()) {
        if let Some(violation) = probe(i) {
            return violation;
        }
        scanned += 1;
    }
    pass(NAME, format!("{scanned} states in [0, 1]"))
}

/// Invariant: the precompiled table agrees with the boxed policy bit for bit
/// on every explicit state and on the constant tail; when no table was
/// materialized (non-stationary policy, or the `MAX_EXPLICIT_STATES`
/// fallback), the artifact's `probability` accessor must still match the
/// boxed policy through dynamic dispatch.
fn check_table_agreement(solved: &SolvedPolicy, opts: &AuditOptions) -> Check {
    const NAME: &str = "table-agreement";
    let at = |i: usize| solved.policy.probability(&DecisionContext::stationary(i));
    match &solved.table {
        Some(table) => {
            if table.explicit_states() > PolicyTable::MAX_EXPLICIT_STATES {
                return fail(
                    NAME,
                    format!(
                        "table materializes {} explicit states (cap {})",
                        table.explicit_states(),
                        PolicyTable::MAX_EXPLICIT_STATES
                    ),
                );
            }
            for i in 1..=table.explicit_states() {
                let (t, p) = (table.probability(i), at(i));
                if t.to_bits() != p.to_bits() {
                    return fail(NAME, format!("state {i}: table {t} vs policy {p}"));
                }
            }
            for i in tail_samples(table.explicit_states()) {
                let (t, p) = (table.probability(i), at(i));
                if t.to_bits() != p.to_bits() {
                    return fail(NAME, format!("tail state {i}: table {t} vs policy {p}"));
                }
            }
            pass(
                NAME,
                format!(
                    "{} explicit states + tail bit-identical",
                    table.explicit_states()
                ),
            )
        }
        None => {
            // Dynamic-dispatch fallback: the serving accessor must route to
            // the boxed policy unchanged, on a sampled prefix plus deep-tail
            // states (cheap even when the explicit region is astronomically
            // large, e.g. a no-recovery ablation with `n3 = u32::MAX`).
            let prefix = solved.pmf.horizon().clamp(64, 2_048);
            for i in (1..=prefix).chain(tail_samples(opts.max_sampled_states)) {
                let (s, p) = (solved.probability(i), at(i));
                if s.to_bits() != p.to_bits() {
                    return fail(NAME, format!("state {i}: accessor {s} vs policy {p}"));
                }
            }
            pass(
                NAME,
                format!("no table: dynamic dispatch verified on {prefix} states + tail"),
            )
        }
    }
}

/// One allocatable slot of the full-information LP: its hazard ordering key,
/// per-renewal energy cost `ξ_i`, and capture reward `α_i`.
struct FiItem {
    /// Slot index, or `usize::MAX` for the aggregated geometric tail.
    slot: usize,
    hazard: f64,
    cost: f64,
}

/// Builds the LP item list exactly as the optimizer does (unreachable slots
/// skipped, tail aggregated analytically), sorted by decreasing hazard with
/// ties to the earlier slot.
fn fi_items(solved: &SolvedPolicy) -> Vec<FiItem> {
    let pmf = &solved.pmf;
    let d1 = solved.consumption.delta1_units();
    let d2 = solved.consumption.delta2_units();
    let mut items = Vec::with_capacity(pmf.horizon() + 1);
    for i in 1..=pmf.horizon() {
        let cost = d1 * pmf.survival(i - 1) + d2 * pmf.pmf(i);
        if cost <= 0.0 {
            continue;
        }
        items.push(FiItem {
            slot: i,
            hazard: pmf.hazard(i),
            cost,
        });
    }
    let tail_mass = pmf.tail_mass();
    if tail_mass > 0.0 {
        let h = pmf.tail_hazard();
        items.push(FiItem {
            slot: usize::MAX,
            hazard: h,
            cost: d1 * tail_mass / h + d2 * tail_mass,
        });
    }
    items.sort_by(|a, b| {
        b.hazard
            .partial_cmp(&a.hazard)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.slot.cmp(&b.slot))
    });
    items
}

/// The coefficient the artifact assigns to an LP item (the aggregated tail
/// reads one state past the explicit horizon).
fn item_coefficient(solved: &SolvedPolicy, item: &FiItem) -> f64 {
    if item.slot == usize::MAX {
        solved.probability(solved.pmf.horizon() + 1)
    } else {
        solved.probability(item.slot)
    }
}

/// Invariant: LP (7)–(8) feasibility — the policy's expected per-renewal
/// spend `Σ ξ_i c_i` stays within the budget `e·μ` (full information), or
/// the solver-reported analytic discharge rate stays within `e` (partial
/// information).
fn check_energy_feasibility(
    scenario: &Scenario,
    solved: &SolvedPolicy,
    opts: &AuditOptions,
) -> Check {
    const NAME: &str = "energy-feasibility";
    let e_total = scenario.e() * scenario.sensors() as f64;
    match scenario.policy() {
        PolicySpec::Greedy => {
            let mu = solved.pmf.mean();
            let per_renewal = e_total * mu;
            let spent: f64 = fi_items(solved)
                .iter()
                .map(|item| item_coefficient(solved, item) * item.cost)
                .sum();
            let slack = opts.energy_tol * per_renewal.max(1.0);
            if spent > per_renewal + slack {
                return fail(
                    NAME,
                    format!("Σ ξ·c = {spent:.9} exceeds budget e·μ = {per_renewal:.9}"),
                );
            }
            if let Some(rate) = solved.meta.discharge_rate {
                let implied = spent / mu;
                if (implied - rate).abs() > opts.energy_tol * rate.max(1.0) {
                    return fail(
                        NAME,
                        format!(
                            "reported discharge {rate:.9} disagrees with Σ ξ·c / μ = {implied:.9}"
                        ),
                    );
                }
            }
            pass(NAME, format!("Σ ξ·c = {spent:.6} ≤ e·μ = {per_renewal:.6}"))
        }
        PolicySpec::Clustering => match solved.meta.discharge_rate {
            Some(rate) => {
                let slack = opts.energy_tol * e_total.max(1.0);
                if rate > e_total + slack {
                    fail(
                        NAME,
                        format!("analytic discharge {rate:.9} exceeds recharge e = {e_total:.9}"),
                    )
                } else {
                    pass(NAME, format!("discharge {rate:.6} ≤ e = {e_total:.6}"))
                }
            }
            None => fail(NAME, "partial-information solve reported no discharge rate"),
        },
        PolicySpec::Myopic => match solved.meta.discharge_rate {
            Some(rate) => {
                let slack = opts.energy_tol * e_total.max(1.0);
                if rate <= e_total + slack {
                    pass(NAME, format!("discharge {rate:.6} ≤ e = {e_total:.6}"))
                } else {
                    // The myopic derivation documents this: when even the
                    // least-active window overshoots, it keeps the plan and
                    // lets the battery throttle it at runtime.
                    skip(
                        NAME,
                        format!(
                            "planned discharge {rate:.6} exceeds e = {e_total:.6}: \
                             least-active fallback, battery-throttled at runtime"
                        ),
                    )
                }
            }
            None => fail(NAME, "partial-information solve reported no discharge rate"),
        },
        PolicySpec::Periodic { .. } => skip(
            NAME,
            "duty cycle is energy-balanced by construction at solve time",
        ),
        PolicySpec::Aggressive => skip(
            NAME,
            "battery-throttled baseline spends opportunistically by design",
        ),
    }
}

/// Invariant (Theorem 1 with Remark 1): the full-information optimum is a
/// hazard-sorted water-filling — saturated slots first, at most one
/// fractional coefficient, zeros after — and the budget is spent exactly
/// when saturation is incomplete.
fn check_water_filling(scenario: &Scenario, solved: &SolvedPolicy, opts: &AuditOptions) -> Check {
    const NAME: &str = "water-filling";
    if scenario.policy() != PolicySpec::Greedy {
        return skip(NAME, "Theorem 1 structure applies to the FI greedy family");
    }
    let items = fi_items(solved);
    let eps = opts.coeff_eps;
    let mut fractional = 0usize;
    let mut seen_zero = false;
    let mut spent = 0.0;
    let mut saturated = 0usize;
    for item in &items {
        let c = item_coefficient(solved, item);
        spent += c * item.cost;
        let slot = item.slot;
        if c >= 1.0 - eps {
            saturated += 1;
            if seen_zero || fractional > 0 {
                return fail(
                    NAME,
                    format!("slot {slot} is saturated after lower-hazard slots were cut"),
                );
            }
        } else if c <= eps {
            seen_zero = true;
        } else {
            if seen_zero {
                return fail(
                    NAME,
                    format!("fractional c at slot {slot} after the water level was passed"),
                );
            }
            fractional += 1;
            if fractional > 1 {
                return fail(
                    NAME,
                    format!("more than one fractional coefficient (second at slot {slot})"),
                );
            }
        }
    }
    // Unsaturated optimum ⇒ the budget constraint is tight (Theorem 1's
    // water level): spending less would leave captures on the table.
    let fully_saturated = saturated == items.len();
    if !fully_saturated {
        let per_renewal = scenario.e() * scenario.sensors() as f64 * solved.pmf.mean();
        if (spent - per_renewal).abs() > opts.energy_tol * per_renewal.max(1.0) {
            return fail(
                NAME,
                format!(
                    "unsaturated policy spends {spent:.9} instead of the full budget \
                     {per_renewal:.9}"
                ),
            );
        }
    }
    pass(
        NAME,
        format!(
            "{saturated} saturated, {fractional} fractional over {} slots{}",
            items.len(),
            if fully_saturated {
                ""
            } else {
                "; budget tight"
            }
        ),
    )
}

/// Invariant (Eq. 11): clustering solutions have ordered region boundaries
/// `1 ≤ n1 ≤ n2 ≤ n3`, zero coefficients inside the cooling regions, full
/// activation inside the hot region and the aggressive recovery tail, and
/// the reported boundary coefficients on the boundaries.
fn check_region_shape(solved: &SolvedPolicy, opts: &AuditOptions) -> Check {
    const NAME: &str = "region-shape";
    if solved.scenario.policy() != PolicySpec::Clustering {
        return skip(NAME, "region structure applies to the clustering family");
    }
    let Some(r) = &solved.meta.regions else {
        return fail(NAME, "clustering solve reported no region boundaries");
    };
    let (n1, n2, n3) = (r.n1, r.n2, r.n3);
    if n1 < 1 || n1 > n2 || n2 > n3 {
        return fail(
            NAME,
            format!("unordered boundaries n1={n1} n2={n2} n3={n3}"),
        );
    }
    let (q1, q2, q3) = r.boundary;
    for (name, q) in [("q1", q1), ("q2", q2), ("q3", q3)] {
        if !q.is_finite() || !(-opts.coeff_eps..=1.0 + opts.coeff_eps).contains(&q) {
            return fail(NAME, format!("boundary coefficient {name} = {q}"));
        }
    }
    // The piecewise shape of Eq. 11; earlier regions win coinciding
    // boundaries, mirroring `ClusteringPolicy::coefficient`.
    let expected = |state: usize| -> f64 {
        if state < n1 {
            0.0
        } else if state == n1 {
            q1
        } else if state < n2 {
            1.0
        } else if state == n2 {
            q2
        } else if state < n3 {
            0.0
        } else if state == n3 {
            q3
        } else {
            1.0
        }
    };
    // Sampled probe states covering every region, its boundaries, and the
    // recovery tail; sampling (not enumeration) keeps no-recovery ablations
    // with n3 near usize::MAX auditable.
    let mid = |a: usize, b: usize| a + (b - a) / 2;
    let mut states = vec![
        1,
        n1.saturating_sub(1).max(1),
        n1,
        n1.saturating_add(1).min(n2),
        mid(n1, n2),
        n2.saturating_sub(1).max(n1),
        n2,
        n2.saturating_add(1).min(n3),
        mid(n2, n3),
        n3.saturating_sub(1).max(n2),
        n3,
        n3.saturating_add(1),
        n3.saturating_add(997),
    ];
    states.sort_unstable();
    states.dedup();
    for state in states {
        let got = solved.probability(state);
        let want = expected(state);
        if got.to_bits() != want.to_bits() {
            return fail(
                NAME,
                format!("state {state}: coefficient {got} but region shape implies {want}"),
            );
        }
    }
    pass(
        NAME,
        format!("regions [{n1}, {n2}] ∪ [{n3}, ∞) well-formed"),
    )
}

/// Invariant: any reported objective is a probability and never exceeds the
/// analytic full-information optimum `U(π*_FI(e))` — the paper's universal
/// upper bound (Fig. 3's "Upper Bound" curve). For the greedy family the
/// objective must *equal* the recomputed optimum.
fn check_objective_bound(scenario: &Scenario, solved: &SolvedPolicy, opts: &AuditOptions) -> Check {
    const NAME: &str = "objective-bound";
    let Some(objective) = solved.meta.objective else {
        return skip(NAME, "family reports no analytic objective");
    };
    if !objective.is_finite() || objective < -opts.coeff_eps {
        return fail(NAME, format!("objective {objective} is not a probability"));
    }
    if objective > 1.0 + opts.coeff_eps {
        return fail(NAME, format!("objective {objective} exceeds 1"));
    }
    // The bound is computed at the artifact's planned spend rate: any
    // policy spending at rate r captures at most U(π*_FI(r)). For greedy
    // and clustering the plan never exceeds e, so this is the paper's
    // upper-bound curve; the myopic least-active fallback may plan above e
    // and is bounded at its own rate.
    let e_total = scenario.e() * scenario.sensors() as f64;
    let rate = solved
        .meta
        .discharge_rate
        .map_or(e_total, |r| r.max(e_total));
    let budget = EnergyBudget::per_slot(rate);
    // tidy:allow(solve-site): independent recomputation of the FI bound is the point of the audit
    let bound = match GreedyPolicy::optimize(&solved.pmf, budget, &solved.consumption) {
        Ok(fi) => fi.ideal_qom(),
        Err(e) => {
            return fail(NAME, format!("cannot recompute the FI upper bound: {e}"));
        }
    };
    let slack = opts.energy_tol * bound.max(1.0);
    if objective > bound + slack {
        return fail(
            NAME,
            format!("objective {objective:.9} exceeds the FI upper bound U = {bound:.9}"),
        );
    }
    if scenario.policy() == PolicySpec::Greedy && (objective - bound).abs() > slack {
        return fail(
            NAME,
            format!("greedy objective {objective:.9} disagrees with recomputed U = {bound:.9}"),
        );
    }
    pass(NAME, format!("U = {objective:.6} ≤ U(π*_FI) = {bound:.6}"))
}

/// Invariant: the artifact's objective bookkeeping is honest — it was
/// optimized for the objective it is presented under (a QoM-certified
/// artifact served as an AoI answer is a certification refusal, and vice
/// versa), and any reported value respects the objective's analytic bound.
/// For the age objectives that bound is the capture-every-event floor: no
/// policy ages slower than one whose cycle is a single inter-arrival gap.
/// QoM's upper bound is proved by `objective-bound`; here its value must
/// mirror the ideal-QoM report bit for bit.
fn check_objective_value(scenario: &Scenario, solved: &SolvedPolicy, opts: &AuditOptions) -> Check {
    const NAME: &str = "objective-value";
    let presented = scenario.objective();
    let kind = solved.meta.objective_kind;
    if kind != presented {
        return fail(
            NAME,
            format!("artifact optimized for {kind} presented as {presented}"),
        );
    }
    if solved.scenario.objective() != kind {
        return fail(
            NAME,
            format!(
                "meta records {kind} but the embedded scenario says {}",
                solved.scenario.objective()
            ),
        );
    }
    let Some(value) = solved.meta.objective_value else {
        return skip(NAME, "family reports no objective value");
    };
    match kind {
        Objective::Qom => match solved.meta.objective {
            Some(qom) if value.to_bits() == qom.to_bits() => pass(
                NAME,
                format!("QoM value {value:.6} mirrors the ideal-QoM report"),
            ),
            Some(qom) => fail(
                NAME,
                format!("QoM value {value} disagrees with the ideal-QoM report {qom}"),
            ),
            None => fail(NAME, format!("QoM value {value} with no ideal-QoM report")),
        },
        Objective::AoiMean | Objective::AoiPeak => {
            // `+∞` is legitimate (a policy that never recovers never
            // captures again); NaN and negative ages are not.
            if value.is_nan() || value < 0.0 {
                return fail(NAME, format!("{kind} value {value} is not an age"));
            }
            let Some(floor) = kind.value_floor(&solved.pmf) else {
                return fail(NAME, format!("{kind} reports no value floor"));
            };
            let slack = opts.energy_tol * floor.max(1.0);
            if value < floor - slack {
                return fail(
                    NAME,
                    format!(
                        "{kind} value {value:.9} beats the capture-every-event floor {floor:.9}"
                    ),
                );
            }
            pass(NAME, format!("{kind} = {value:.6} ≥ floor {floor:.6}"))
        }
    }
}

/// Invariant: the artifact's metadata is internally consistent — it
/// describes the scenario it was solved from and the policy it carries.
fn check_meta_consistency(
    scenario: &Scenario,
    solved: &SolvedPolicy,
    opts: &AuditOptions,
) -> Check {
    const NAME: &str = "meta-consistency";
    if solved.scenario.canonical_key() != scenario.canonical_key() {
        return fail(
            NAME,
            format!(
                "artifact was solved from `{}`, not `{}`",
                solved.scenario.canonical_key(),
                scenario.canonical_key()
            ),
        );
    }
    if solved.meta.label != solved.policy.label() {
        return fail(
            NAME,
            format!(
                "meta label `{}` vs policy label `{}`",
                solved.meta.label,
                solved.policy.label()
            ),
        );
    }
    if solved.meta.info != solved.policy.info_model() {
        return fail(NAME, "meta info model disagrees with the policy".to_owned());
    }
    let is_clustering = scenario.policy() == PolicySpec::Clustering;
    if solved.meta.regions.is_some() != is_clustering {
        return fail(
            NAME,
            format!(
                "regions {} for a {} policy",
                if solved.meta.regions.is_some() {
                    "reported"
                } else {
                    "missing"
                },
                scenario.policy().name()
            ),
        );
    }
    let mu = solved.pmf.mean();
    if (solved.meta.mean_gap - mu).abs() > opts.energy_tol * mu.max(1.0) {
        return fail(
            NAME,
            format!("meta mean gap {} vs pmf mean {mu}", solved.meta.mean_gap),
        );
    }
    if let Some(rate) = solved.meta.discharge_rate {
        if !rate.is_finite() || rate < 0.0 {
            return fail(NAME, format!("discharge rate {rate} is not a rate"));
        }
    }
    if let Some(cycle) = solved.meta.expected_cycle {
        // `+∞` is legitimate: a no-recovery ablation never captures again.
        if cycle.is_nan() || cycle <= 0.0 {
            return fail(NAME, format!("expected cycle {cycle} is not a length"));
        }
    }
    pass(NAME, "label, info model, regions, and rates consistent")
}
