//! The audit verdict: a list of named invariant checks with outcomes.
//!
//! Every invariant the certifier knows about appears in the report exactly
//! once, whether it passed, failed, or was skipped as not applicable to the
//! policy family — so a clean report also documents *what* was proved.

use std::fmt;

use evcap_obs::JsonObject;

/// How one invariant check concluded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// The invariant holds.
    Pass,
    /// The invariant is violated; the artifact must be rejected.
    Fail,
    /// The invariant does not apply to this policy family (e.g. the
    /// water-filling structure for a clustering policy).
    Skipped,
}

impl Outcome {
    /// Short lowercase form used in text and JSON output.
    pub fn as_str(self) -> &'static str {
        match self {
            Outcome::Pass => "pass",
            Outcome::Fail => "fail",
            Outcome::Skipped => "skipped",
        }
    }
}

/// One invariant check: a stable name, the outcome, and a human-readable
/// detail line (for failures, the concrete numbers that broke it).
#[derive(Debug, Clone, PartialEq)]
pub struct Check {
    /// Stable invariant name (`coefficient-range`, `energy-feasibility`,
    /// `water-filling`, `region-shape`, `table-agreement`,
    /// `objective-bound`, `meta-consistency`).
    pub invariant: &'static str,
    /// How the check concluded.
    pub outcome: Outcome,
    /// What was verified, or why it failed.
    pub detail: String,
}

/// The result of auditing one `(Scenario, SolvedPolicy)` pair.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditReport {
    /// The scenario's canonical cache identity.
    pub scenario_key: String,
    /// The policy family audited (wire name, e.g. `"greedy"`).
    pub policy: String,
    /// Every invariant check that ran.
    pub checks: Vec<Check>,
}

impl AuditReport {
    /// `true` when no check failed (skipped checks do not count against).
    pub fn is_clean(&self) -> bool {
        self.checks.iter().all(|c| c.outcome != Outcome::Fail)
    }

    /// The failed checks, in declaration order.
    pub fn violations(&self) -> impl Iterator<Item = &Check> {
        self.checks.iter().filter(|c| c.outcome == Outcome::Fail)
    }

    /// Looks up a check by invariant name.
    pub fn check(&self, invariant: &str) -> Option<&Check> {
        self.checks.iter().find(|c| c.invariant == invariant)
    }

    /// A flat JSON record (JSONL-friendly, parseable by
    /// `evcap_obs::parse_line`): outcome counts plus a `violations` field
    /// naming each failed invariant with its detail.
    pub fn to_json(&self) -> String {
        let mut obj = JsonObject::with_type("audit");
        obj.field_str("key", &self.scenario_key);
        obj.field_str("policy", &self.policy);
        obj.field_bool("clean", self.is_clean());
        let passed = self
            .checks
            .iter()
            .filter(|c| c.outcome == Outcome::Pass)
            .count();
        let skipped = self
            .checks
            .iter()
            .filter(|c| c.outcome == Outcome::Skipped)
            .count();
        obj.field_usize("passed", passed);
        obj.field_usize("skipped", skipped);
        obj.field_usize("failed", self.checks.len() - passed - skipped);
        let checked: Vec<&str> = self
            .checks
            .iter()
            .filter(|c| c.outcome == Outcome::Pass)
            .map(|c| c.invariant)
            .collect();
        obj.field_str("checked", &checked.join(","));
        let violations: Vec<String> = self
            .violations()
            .map(|c| format!("{}: {}", c.invariant, c.detail))
            .collect();
        obj.field_str("violations", &violations.join("; "));
        obj.finish()
    }
}

impl fmt::Display for AuditReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "audit: {} ({})", self.scenario_key, self.policy)?;
        for check in &self.checks {
            writeln!(
                f,
                "  [{:>7}] {:<18} {}",
                check.outcome.as_str(),
                check.invariant,
                check.detail
            )?;
        }
        write!(
            f,
            "verdict: {}",
            if self.is_clean() {
                "CERTIFIED"
            } else {
                "REJECTED"
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evcap_obs::{parse_line, JsonValue};

    fn sample() -> AuditReport {
        AuditReport {
            scenario_key: "greedy|det:7|…".to_owned(),
            policy: "greedy".to_owned(),
            checks: vec![
                Check {
                    invariant: "coefficient-range",
                    outcome: Outcome::Pass,
                    detail: "64 states sampled".to_owned(),
                },
                Check {
                    invariant: "region-shape",
                    outcome: Outcome::Skipped,
                    detail: "not a clustering policy".to_owned(),
                },
                Check {
                    invariant: "energy-feasibility",
                    outcome: Outcome::Fail,
                    detail: "spent 9.99 > budget 3.5".to_owned(),
                },
            ],
        }
    }

    #[test]
    fn clean_and_violations_reflect_outcomes() {
        let report = sample();
        assert!(!report.is_clean());
        let v: Vec<&str> = report.violations().map(|c| c.invariant).collect();
        assert_eq!(v, ["energy-feasibility"]);
        assert!(report.check("region-shape").is_some());
        assert!(report.check("nonexistent").is_none());

        let mut clean = report.clone();
        clean.checks.retain(|c| c.outcome != Outcome::Fail);
        assert!(clean.is_clean());
    }

    #[test]
    fn json_round_trips_and_names_the_violation() {
        let body = sample().to_json();
        let v = parse_line(&body).unwrap();
        assert_eq!(v.get("type").and_then(JsonValue::as_str), Some("audit"));
        assert_eq!(v.get("clean").and_then(JsonValue::as_str), None);
        assert_eq!(v.get("passed").and_then(JsonValue::as_f64), Some(1.0));
        assert_eq!(v.get("failed").and_then(JsonValue::as_f64), Some(1.0));
        assert_eq!(v.get("skipped").and_then(JsonValue::as_f64), Some(1.0));
        let violations = v.get("violations").and_then(JsonValue::as_str).unwrap();
        assert!(violations.contains("energy-feasibility"), "{violations}");
    }

    #[test]
    fn display_renders_verdict() {
        let text = sample().to_string();
        assert!(text.contains("REJECTED"));
        assert!(text.contains("energy-feasibility"));
        let clean = AuditReport {
            checks: vec![],
            ..sample()
        };
        assert!(clean.to_string().contains("CERTIFIED"));
    }
}
