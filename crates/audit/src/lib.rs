//! Static certification of solved activation policies.
//!
//! `spec::solve` is the workspace's only policy-construction site; this
//! crate is the only *verifier* of what it produces. [`audit`] proves the
//! paper's analytic invariants about a [`SolvedPolicy`](evcap_spec::SolvedPolicy)
//! without running a single simulation slot:
//!
//! - **coefficient-range** — every activation coefficient is a probability.
//! - **energy-feasibility** — LP (7)–(8): the expected per-renewal spend
//!   `Σ ξ_i c_i` with `ξ_i = δ1(1−F(i−1)) + δ2 α_i` stays within `e·μ`
//!   (full information), or the analytic discharge rate stays within `e`
//!   (partial information).
//! - **water-filling** — Theorem 1: greedy solutions are hazard-sorted
//!   saturations with at most one fractional coefficient, and spend the
//!   budget exactly when unsaturated.
//! - **region-shape** — Eq. 11: clustering solutions have ordered
//!   `1 ≤ n1 ≤ n2 ≤ n3` boundaries with zero coefficients in the cooling
//!   regions.
//! - **table-agreement** — the precompiled [`PolicyTable`](evcap_core::PolicyTable)
//!   matches the boxed policy bit for bit on every explicit state and the
//!   tail, including the `MAX_EXPLICIT_STATES` dynamic-dispatch fallback.
//! - **objective-bound** — any reported objective is at most the analytic
//!   QoM upper bound `U(π*_FI(e))`.
//! - **meta-consistency** — the artifact's metadata describes the scenario
//!   and policy it carries.
//!
//! Checks that do not apply to a policy family are reported as *skipped*,
//! never dropped, so a clean report also documents what was proved. The
//! certifier is wired into `evcap audit`, an opt-in `evcap serve`
//! validation pass, a debug assertion inside `spec::solve`, and the CI
//! corpus gate (`scripts/audit_corpus.sh`).

#![forbid(unsafe_code)]

mod checks;
mod report;

pub use checks::{audit, audit_with, certify, AuditOptions, CertifyError};
pub use report::{AuditReport, Check, Outcome};
