//! Socket-level coverage for the opt-in artifact validation pass and for
//! the no-panic guarantee on request paths.
//!
//! A worker thread that panics closes its connection without a response —
//! so every test here drives *multiple* requests through *one* connection:
//! if a malformed body had killed the worker, the follow-up request on the
//! same socket would fail instead of answering.

use std::time::Duration;

use evcap_obs::{parse_line, JsonValue};
use evcap_serve::client::{self, Conn};
use evcap_serve::{ServeConfig, Server};

const TIMEOUT: Duration = Duration::from_secs(10);

fn validating_config() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        threads: 2,
        cache_cap: 64,
        shards: 4,
        read_timeout: Duration::from_millis(500),
        coalesce_timeout: Duration::from_secs(20),
        max_slots: 500_000,
        validate_artifacts: true,
        ..ServeConfig::default()
    }
}

fn metric(server: &Server, name: &str) -> f64 {
    let resp = client::get(server.local_addr(), "/metrics", TIMEOUT).expect("GET /metrics");
    let v = parse_line(&resp.text()).expect("metrics body parses");
    v.get(name)
        .and_then(JsonValue::as_f64)
        .unwrap_or_else(|| panic!("metrics has no `{name}`: {}", resp.text()))
}

#[test]
fn validation_certifies_clean_artifacts_and_still_caches() {
    let server = Server::start(validating_config()).expect("bind");
    let addr = server.local_addr();
    let mut conn = Conn::connect(addr, TIMEOUT).unwrap();

    // Every family must pass certification end to end under --validate.
    for policy in ["greedy", "clustering", "aggressive", "periodic", "myopic"] {
        let body =
            format!(r#"{{"dist":"weibull:20,2","e":0.2,"policy":"{policy}","horizon":4096}}"#);
        let resp = conn
            .request("POST", "/v1/solve", body.as_bytes())
            .expect("solve");
        assert_eq!(resp.status, 200, "{policy}: {}", resp.text());
    }

    // Validation runs once per artifact, not per request: a simulate on an
    // already-certified scenario is an artifact-cache hit.
    let body = br#"{"dist":"weibull:20,2","e":0.2,"policy":"greedy","horizon":4096,"slots":2000,"seed":7}"#;
    let resp = conn
        .request("POST", "/v1/simulate", body)
        .expect("simulate");
    assert_eq!(resp.status, 200, "{}", resp.text());
    assert_eq!(metric(&server, "artifact_cache_misses"), 5.0);
    assert!(metric(&server, "artifact_cache_hits") >= 1.0);

    server.shutdown();
}

#[test]
fn malformed_requests_get_structured_errors_and_never_kill_the_worker() {
    let server = Server::start(validating_config()).expect("bind");
    let addr = server.local_addr();
    let mut conn = Conn::connect(addr, TIMEOUT).unwrap();

    // Not JSON at all.
    let resp = conn
        .request("POST", "/v1/solve", b"this is not json")
        .expect("connection must survive");
    assert_eq!(resp.status, 400);
    let v = parse_line(&resp.text()).expect("structured error body");
    assert_eq!(
        v.get("kind").and_then(JsonValue::as_str),
        Some("invalid_json")
    );

    // Canonicalizes, but the recharge parameter domain is invalid (a
    // Bernoulli probability above 1): the request path that used to
    // `expect()` after validation must answer 422, not panic.
    let resp = conn
        .request(
            "POST",
            "/v1/simulate",
            br#"{"dist":"exp:0.1","e":0.2,"policy":"greedy","recharge":"bernoulli:1.5,1","slots":1000,"horizon":2048}"#,
        )
        .expect("connection must survive");
    assert_eq!(resp.status, 422, "{}", resp.text());
    let v = parse_line(&resp.text()).expect("structured error body");
    assert_eq!(
        v.get("kind").and_then(JsonValue::as_str),
        Some("unsolvable")
    );

    // A zero budget is rejected at the validation layer with a structured
    // 400 — it never reaches the optimizer or the certifier.
    let resp = conn
        .request(
            "POST",
            "/v1/solve",
            br#"{"dist":"exp:0.1","e":0.0,"policy":"greedy","horizon":2048}"#,
        )
        .expect("connection must survive");
    assert_eq!(resp.status, 400, "{}", resp.text());

    // The same connection still serves a normal request afterwards — no
    // worker died along the way.
    let resp = conn
        .request(
            "POST",
            "/v1/solve",
            br#"{"dist":"exp:0.1","e":0.2,"horizon":2048}"#,
        )
        .expect("connection must survive");
    assert_eq!(resp.status, 200, "{}", resp.text());

    // Compute failures (including any validation rejection) are never
    // cached: the failed solve above was not stored.
    assert_eq!(metric(&server, "solve_cache_hits"), 0.0);

    server.shutdown();
}
