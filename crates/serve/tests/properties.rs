//! Property tests for the serving cache: the slab LRU against a naive
//! reference model, and single-flight coalescing under real threads.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

use evcap_serve::cache::{Fetch, Lru, ShardedCache};
use proptest::prelude::*;

/// One step of the randomized LRU workload.
#[derive(Debug, Clone)]
enum Op {
    Insert(u8, u16),
    Get(u8),
    Remove(u8),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..24, 0u16..1000).prop_map(|(k, v)| Op::Insert(k, v)),
        (0u8..24).prop_map(Op::Get),
        (0u8..24).prop_map(Op::Remove),
    ]
}

/// A trivially-correct LRU: a Vec ordered most-recent-first.
#[derive(Default)]
struct ModelLru {
    cap: usize,
    entries: Vec<(String, u16)>,
}

impl ModelLru {
    fn new(cap: usize) -> Self {
        Self {
            cap: cap.max(1),
            entries: Vec::new(),
        }
    }

    fn touch(&mut self, key: &str) -> Option<u16> {
        let i = self.entries.iter().position(|(k, _)| k == key)?;
        let entry = self.entries.remove(i);
        let value = entry.1;
        self.entries.insert(0, entry);
        Some(value)
    }

    fn insert(&mut self, key: String, value: u16) -> Option<(String, u16)> {
        if let Some(i) = self.entries.iter().position(|(k, _)| *k == key) {
            self.entries.remove(i);
            self.entries.insert(0, (key, value));
            return None;
        }
        self.entries.insert(0, (key, value));
        if self.entries.len() > self.cap {
            self.entries.pop()
        } else {
            None
        }
    }

    fn remove(&mut self, key: &str) -> Option<u16> {
        let i = self.entries.iter().position(|(k, _)| k == key)?;
        Some(self.entries.remove(i).1)
    }

    fn keys_mru(&self) -> Vec<&str> {
        self.entries.iter().map(|(k, _)| k.as_str()).collect()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The slab LRU agrees with the naive reference on every observable:
    /// op-by-op return values, eviction victims, and full MRU order.
    #[test]
    fn lru_matches_reference_model(
        cap in 1usize..12,
        ops in proptest::collection::vec(arb_op(), 1..200),
    ) {
        let mut real = Lru::<u16>::new(cap);
        let mut model = ModelLru::new(cap);
        for op in ops {
            match op {
                Op::Insert(k, v) => {
                    let key = format!("k{k}");
                    let evicted = real.insert(key.clone(), v);
                    let expected = model.insert(key, v);
                    prop_assert_eq!(evicted, expected);
                }
                Op::Get(k) => {
                    let key = format!("k{k}");
                    let got = real.get(&key).copied();
                    let expected = model.touch(&key);
                    prop_assert_eq!(got, expected);
                }
                Op::Remove(k) => {
                    let key = format!("k{k}");
                    prop_assert_eq!(real.remove(&key), model.remove(&key));
                }
            }
            prop_assert_eq!(real.len(), model.entries.len());
            prop_assert!(real.len() <= cap);
            prop_assert_eq!(real.keys_mru(), model.keys_mru());
        }
    }

    /// M threads racing on one uncached key always produce exactly one
    /// compute; everyone observes the same value.
    #[test]
    fn single_flight_computes_exactly_once(m in 2usize..7, seed in 0u16..100) {
        let cache = Arc::new(ShardedCache::<String, String>::new(64, 4));
        let computes = Arc::new(AtomicU64::new(0));
        let barrier = Arc::new(Barrier::new(m));
        let key = format!("scenario-{seed}");
        let results: Vec<Fetch<String, String>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..m)
                .map(|_| {
                    let cache = Arc::clone(&cache);
                    let computes = Arc::clone(&computes);
                    let barrier = Arc::clone(&barrier);
                    let key = key.clone();
                    scope.spawn(move || {
                        barrier.wait();
                        cache.get_or_compute(&key, Duration::from_secs(10), || {
                            computes.fetch_add(1, Ordering::SeqCst);
                            Ok::<_, String>(format!("value-{seed}"))
                        })
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("no panic")).collect()
        });
        prop_assert_eq!(computes.load(Ordering::SeqCst), 1);
        let expected = format!("value-{seed}");
        let mut leaders = 0usize;
        for fetch in results {
            match fetch {
                Fetch::Computed(v) => {
                    leaders += 1;
                    prop_assert_eq!(v, expected.clone());
                }
                Fetch::Hit(v) | Fetch::Coalesced(v) => prop_assert_eq!(v, expected.clone()),
                other => prop_assert!(false, "unexpected outcome {:?}", other.label()),
            }
        }
        prop_assert_eq!(leaders, 1);
        let stats = cache.stats();
        prop_assert_eq!(stats.misses, 1);
        prop_assert_eq!(stats.hits + stats.coalesced, (m - 1) as u64);
    }
}
